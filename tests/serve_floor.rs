//! Served-throughput floor on the **real threaded plane**.
//!
//! The serve chaos suites prove the plane never hangs, never loses a
//! request, and degrades gracefully — none of which stops a regression
//! that makes the healthy path pathologically slow (a dispatcher that
//! serialises workers, a lock held across inference, a batch former that
//! stops batching). This test pins the other side: on a fast backbone
//! with no injected faults, a drained burst must complete at a serving
//! rate above a deliberately generous floor. The bound is CI-safe — an
//! order of magnitude below what a laptop sustains — so only a
//! structural slowdown (not scheduler jitter) can cross it.
//!
//! The run is wired through [`ServePlane::start_with_metrics`], so it
//! doubles as the pinning test for the `serve.*` telemetry surface: the
//! registry's books must agree with the [`ServeReport`] exactly, and the
//! latency histogram must have seen every completion.

use geofm_serve::{Backbone, PlaneConfig, ServeConfig, ServePlane, SimBackbone, TenantConfig};
use geofm_telemetry::MetricsRegistry;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TENANTS: usize = 3;
const REQUESTS: u64 = 600;
/// Floor in completions per second. A healthy plane on the fast sim
/// backbone (50 µs + 10 µs/item per batch) clears 600 requests in tens
/// of milliseconds — tens of thousands per second. 200/s only trips when
/// something structural serialises the pipeline (≈5 ms per request).
const FLOOR_PER_S: f64 = 200.0;

#[test]
fn drained_burst_beats_the_throughput_floor_with_telemetry_books_balanced() {
    let backbone = Arc::new(SimBackbone::new(8, 50_000, 10_000));
    let tenant_cfgs: Vec<TenantConfig> = (0..TENANTS)
        .map(|_| {
            let mut cfg = TenantConfig::standard(f64::INFINITY);
            // deep enough that a healthy plane admits the whole burst —
            // a rejection here is itself a throughput regression signal
            cfg.queue_capacity = REQUESTS as usize;
            cfg
        })
        .collect();
    // short linger: the floor measures serving rate, not batch-forming
    // patience on a tail that will never fill
    let serve_cfg = ServeConfig { linger_ns: 300_000, ..ServeConfig::default() };
    let registry = MetricsRegistry::new();
    let plane = ServePlane::start_with_metrics(
        serve_cfg,
        &tenant_cfgs,
        backbone as Arc<dyn Backbone>,
        None,
        PlaneConfig::default(),
        &registry,
    );

    let started = Instant::now();
    let mut admitted_client = 0u64;
    for i in 0..REQUESTS {
        let (_, v) = plane.submit((i % TENANTS as u64) as usize, i % 64);
        if v.admitted() {
            admitted_client += 1;
        }
    }
    assert!(
        plane.drain(Duration::from_secs(30)),
        "healthy no-fault burst failed to drain within 30s — throughput collapse"
    );
    let elapsed = started.elapsed();
    let report = plane.shutdown();

    report.assert_conservation();
    assert_eq!(report.submitted(), REQUESTS, "submitted count drifted");
    assert_eq!(
        report.admitted(),
        REQUESTS,
        "a healthy plane with per-tenant queues sized to the burst must admit everything"
    );
    assert_eq!(report.admitted(), admitted_client, "server books disagree with client verdicts");
    assert_eq!(report.shed(), 0, "no-fault drained run must shed nothing");
    assert_eq!(report.completed(), REQUESTS, "drained run must complete every admission");

    // the floor itself: completions per wall-clock second over the whole
    // submit-plus-drain window
    let rate = report.completed() as f64 / elapsed.as_secs_f64().max(1e-9);
    assert!(
        rate >= FLOOR_PER_S,
        "served throughput {rate:.0}/s fell below the {FLOOR_PER_S}/s floor \
         ({} completions in {elapsed:?})",
        report.completed()
    );

    // telemetry surface: the serve.* registry must tell the same story
    let snap = registry.snapshot();
    assert_eq!(snap.counters.get("serve.admitted"), Some(&report.admitted()));
    assert_eq!(snap.counters.get("serve.rejected"), Some(&0));
    assert_eq!(snap.counters.get("serve.shed"), Some(&0));
    assert_eq!(snap.counters.get("serve.completed"), Some(&report.completed()));
    let latency = snap.histograms.get("serve.latency_ns").expect("latency histogram registered");
    assert_eq!(
        latency.count,
        report.completed(),
        "every completion must be observed by the serve.latency_ns histogram"
    );
    assert!(latency.max > 0, "latency histogram recorded no time");
    // and the report-side percentile view stays available
    assert!(report.latency_percentile(0.5).is_some(), "median latency must exist");
}
