//! Seeded chaos harness for the inference serving plane: 125 randomized
//! overload/fault schedules against the deterministic DES, ~20 against
//! the real threaded plane, plus a concurrent-producer admission-control
//! stress. Every schedule holds the serving invariant:
//!
//! > the run terminates in a **conserved, structured `ServeReport`** —
//! > per tenant `submitted = admitted + rejected` and
//! > `admitted = completed + shed` — it never hangs, and under a pinned
//! > seed it replays **byte-identically**.
//!
//! Each DES seed samples a traffic regime (idle → 2×-capacity storm), a
//! defense posture (queue caps, rate limits, defended vs naive), a
//! shutdown posture (drain vs kill-mid-burst), and a serve-side
//! [`FaultMix`] of tenant request storms, slow clients, and hung
//! inference batches. Every schedule is run **twice** with fresh but
//! identical plans and the whole reports compared for equality — the
//! replay-determinism property that makes a failing seed debuggable.
//!
//! The threaded-plane schedules hold the same conservation law under
//! real concurrency (dispatcher + worker pool + hedge monitor), with a
//! hard wall-clock bound standing in for "never hangs". The
//! concurrent-producer stress drives admission from several submitter
//! threads at once against a tiny bounded queue and a slow backbone,
//! counting verdicts client-side: the server's books must agree with the
//! clients' exactly, queues must respect their bound, and a shutdown
//! with work still pending must neither deadlock nor lose a request.
//!
//! CI runs this suite under a hard timeout with `GEOFM_CHAOS_SEED`
//! pinned, like `tests/chaos.rs`.

use geofm_resilience::{FaultMix, FaultPlan};
use geofm_serve::{
    run_sim, Priority, ServeConfig, ServePlane, SimBackbone, SimConfig, TenantConfig,
};
use geofm_serve::{Backbone, PlaneConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Base offset added to every seed, pinned in CI via `GEOFM_CHAOS_SEED`.
fn seed_base() -> u64 {
    std::env::var("GEOFM_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

const TENANTS: usize = 3;
const TICKS: usize = 80;

/// Serve-side fault cocktail, scaled per seed from calm to hostile.
fn serve_mix(seed: u64) -> FaultMix {
    let severity = (seed % 4) as f64; // 0 = calm, 3 = hostile
    FaultMix {
        serve_burst_prob: 0.03 * severity,
        serve_burst_extra: (8, 40),
        serve_slow_client_prob: 0.03 * severity,
        serve_slow_ms: (1, 12),
        serve_hang_prob: 0.04 * severity,
        ..FaultMix::crashes_only(0.0)
    }
}

fn serve_plan(seed: u64) -> FaultPlan {
    // zero training dimensions: these plans carry only serve events
    FaultPlan::seeded_with_serve(seed, 0, 0, 0, 0, TENANTS, TICKS, &serve_mix(seed))
}

/// Traffic regime + defense + shutdown posture for one schedule, all
/// derived deterministically from the seed.
fn schedule_cfg(seed: u64) -> SimConfig {
    let tenants: Vec<TenantConfig> = (0..TENANTS)
        .map(|i| {
            let class = match (i + seed as usize) % 3 {
                0 => Priority::Premium,
                1 => Priority::Standard,
                _ => Priority::Low,
            };
            // every 5th schedule rate-limits its tenants (sim time runs
            // at 1000 ticks/s, so 3000 req/s = 3 req/tick)
            let rate = if seed.is_multiple_of(5) { 3000.0 } else { f64::INFINITY };
            let mut cfg = TenantConfig::standard(rate).with_priority(class);
            cfg.queue_capacity = [8, 16, 32, 64][(seed % 4) as usize];
            cfg
        })
        .collect();
    // every 7th schedule runs the naive server: no defenses, unbounded
    // queues — it must still conserve and terminate
    let serve =
        if seed % 7 == 3 { ServeConfig::undefended() } else { ServeConfig::default() };
    SimConfig {
        tenants,
        serve,
        ticks: TICKS,
        tick_ns: 1_000_000,
        // 0.5..4.0 requests per tenant per tick: idle to ~2.2x capacity
        base_rate: 0.5 + 0.5 * (seed % 8) as f64,
        diurnal_amplitude: 0.5,
        diurnal_period: TICKS / 2,
        tiles: [32u64, 256, 4096][(seed % 3) as usize],
        hang_factor: 20,
        hedge: seed % 6 != 5,
        drain: !seed.is_multiple_of(3),
    }
}

/// One DES schedule: run twice, demand byte-identical replay plus the
/// conservation law, inside a wall-clock bound.
fn des_schedule(seed: u64) {
    let cfg = schedule_cfg(seed);
    let started = Instant::now();
    // fresh plans per run: one-shot fault draws are consumed by firing
    let a = run_sim(&cfg, &serve_plan(seed), seed);
    let b = run_sim(&cfg, &serve_plan(seed), seed);
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "seed {seed}: DES schedule exceeded its wall-clock bound — hang regression"
    );
    assert_eq!(a, b, "seed {seed}: same (config, plan, seed) must replay byte-identically");
    a.assert_conservation();
    assert!(a.submitted() > 0, "seed {seed}: schedule generated no traffic");
    // bounded queues must hold their bound even mid-chaos (naive
    // schedules are exactly the ones allowed to blow past it)
    if a.tenants.values().next().is_some() && cfg.serve.defended {
        let cap = cfg.tenants.iter().map(|t| t.queue_capacity).max().unwrap_or(0);
        for (id, t) in &a.tenants {
            assert!(
                t.queue_depth_max <= cap,
                "seed {seed}: tenant {id} queue hit {} > bound {cap}",
                t.queue_depth_max
            );
        }
    }
}

fn des_range(lo: u64, hi: u64) {
    let base = seed_base();
    for seed in lo..hi {
        des_schedule(base + seed);
    }
}

// 125 DES schedules, split so the test runner parallelises the batches.

#[test]
fn serve_des_seeds_000_049() {
    des_range(0, 50);
}

#[test]
fn serve_des_seeds_050_099() {
    des_range(50, 100);
}

#[test]
fn serve_des_seeds_100_124() {
    des_range(100, 125);
}

/// One real threaded-plane schedule: submit a burst, optionally drain,
/// then shut down; the books must balance under real concurrency.
fn plane_schedule(seed: u64) {
    let backbone = Arc::new(SimBackbone::new(8, 50_000, 10_000));
    let tenant_cfgs: Vec<TenantConfig> = (0..TENANTS)
        .map(|i| {
            let mut cfg = TenantConfig::standard(f64::INFINITY);
            cfg.queue_capacity = [16, 64][(seed % 2) as usize];
            cfg.priority = if i == 0 { Priority::Premium } else { Priority::Standard };
            cfg
        })
        .collect();
    let serve_cfg = ServeConfig { linger_ns: 300_000, ..ServeConfig::default() };
    let plan = seed.is_multiple_of(2).then(|| Arc::new(serve_plan(seed)));
    let plane_cfg = PlaneConfig {
        workers: 1 + (seed % 3) as usize,
        hang: Duration::from_millis(40),
        ..PlaneConfig::default()
    };
    let started = Instant::now();
    let plane = ServePlane::start(serve_cfg, &tenant_cfgs, backbone, plan, plane_cfg);
    let n = 120 + (seed % 5) * 40;
    let mut admitted_client = 0u64;
    for i in 0..n {
        let (_, v) = plane.submit((i % TENANTS as u64) as usize, i % 64);
        if v.admitted() {
            admitted_client += 1;
        }
    }
    if !seed.is_multiple_of(3) {
        plane.drain(Duration::from_secs(15));
    } // else: kill mid-burst
    let report = plane.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "seed {seed}: threaded plane exceeded its wall-clock bound — hang regression"
    );
    report.assert_conservation();
    assert_eq!(report.submitted(), n, "seed {seed}: submitted count drifted");
    assert_eq!(
        report.admitted(),
        admitted_client,
        "seed {seed}: server admitted-books disagree with client-side verdict count"
    );
}

#[test]
fn serve_plane_seeds_run_bounded_and_conserve() {
    let base = seed_base();
    for seed in 0..20 {
        plane_schedule(base + seed);
    }
}

/// Admission-control stress: concurrent producers against a tiny bounded
/// queue and a deliberately slow backbone. Queue depth stays bounded,
/// no response is lost (client verdict counts equal the server's books
/// exactly), and a shutdown with work still pending does not deadlock.
#[test]
fn concurrent_producers_bounded_queue_zero_lost_responses() {
    const PRODUCERS: usize = 8;
    const PER_PRODUCER: u64 = 250;
    const QUEUE_CAP: usize = 8;
    // slow backbone: 2 ms + 200 µs/item keeps the queue saturated so
    // admission control actually has to reject
    let backbone = Arc::new(SimBackbone::new(8, 2_000_000, 200_000));
    let mut tenant = TenantConfig::standard(f64::INFINITY);
    tenant.queue_capacity = QUEUE_CAP;
    let tenant_cfgs = vec![tenant; TENANTS];
    let plane = ServePlane::start(
        ServeConfig::default(),
        &tenant_cfgs,
        backbone as Arc<dyn Backbone>,
        None,
        PlaneConfig::default(),
    );

    let started = Instant::now();
    let admitted_client: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let plane = &plane;
                s.spawn(move || {
                    let mut admitted = 0u64;
                    for i in 0..PER_PRODUCER {
                        let tenant = (p + i as usize) % TENANTS;
                        let (_, v) = plane.submit(tenant, i % 32);
                        if v.admitted() {
                            admitted += 1;
                        }
                    }
                    admitted
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("producer panicked")).sum()
    });
    // shutdown mid-burst: the queue is still full of unexecuted work
    let report = plane.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "concurrent admission stress exceeded its wall-clock bound — deadlock regression"
    );
    report.assert_conservation();
    assert_eq!(
        report.submitted(),
        (PRODUCERS as u64) * PER_PRODUCER,
        "every submit must be booked exactly once"
    );
    assert_eq!(
        report.admitted(),
        admitted_client,
        "zero lost responses: server books must equal client-side verdict counts"
    );
    assert!(report.rejected() > 0, "a saturated 8-slot queue must reject");
    for (id, t) in &report.tenants {
        assert!(
            t.queue_depth_max <= QUEUE_CAP,
            "tenant {id}: queue depth {} broke the bound {QUEUE_CAP} under concurrency",
            t.queue_depth_max
        );
    }
}
