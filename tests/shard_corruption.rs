//! Corrupted-shard suite: every malformed `GEOFMSH1` artifact must be
//! *rejected* with a structured error — never trusted, never a panic,
//! and **never a silent escape** (a read that returns bytes differing
//! from what the builder wrote).
//!
//! The shards under test are written by the real corpus builder
//! ([`geofm_data::build_corpus`]), then abused on disk: truncation at
//! every framing boundary, targeted bit flips, foreign magics, trailing
//! garbage, and a seeded random-corruption sweep in the style of
//! `checkpoint_corruption.rs`. The zero-silent-escape property is the
//! data-layer analogue of that suite's contract: whatever the mutation,
//! `read_record` either errors or returns exactly the pristine record.

use geofm_data::shard::{ShardError, ShardReader, HEADER_LEN};
use geofm_data::store::{FsShardStore, ReadError, ShardStore, StoreMeta};
use geofm_data::{build_corpus, DatasetKind};
use geofm_resilience::RecordId;
use geofm_tensor::TensorRng;
use std::path::PathBuf;

const SHARDS: usize = 2;
const PER_SHARD: usize = 6;
const IMG: usize = 4;
const CHANNELS: usize = 1;

fn test_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("geofm-shard-corrupt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Build a corpus and return (dir, pristine bytes of shard 0).
fn corpus(tag: &str) -> (PathBuf, Vec<u8>) {
    let dir = test_dir(tag);
    let manifest = build_corpus(&dir, DatasetKind::Ucm, SHARDS, PER_SHARD, IMG, CHANNELS, 11).unwrap();
    let bytes = std::fs::read(&manifest.shard_files[0]).unwrap();
    (dir, bytes)
}

#[test]
fn truncation_at_every_boundary_is_rejected() {
    let (_dir, pristine) = corpus("trunc");
    // every framing boundary plus a stride sweep through the interior
    let mut cuts: Vec<usize> = vec![0, 1, 7, 8, HEADER_LEN - 1, HEADER_LEN, pristine.len() - 1];
    cuts.extend((HEADER_LEN..pristine.len()).step_by(97));
    for cut in cuts {
        let err = ShardReader::from_bytes(pristine[..cut].to_vec())
            .err()
            .unwrap_or_else(|| panic!("truncation at {cut} must be rejected"));
        match err {
            ShardError::TooShort(_) | ShardError::SizeMismatch { .. } => {}
            other => panic!("truncation at {cut} gave the wrong error: {other}"),
        }
    }
}

#[test]
fn bad_magic_and_foreign_formats_are_rejected() {
    let (_dir, pristine) = corpus("magic");
    for magic in [b"GEOFMCK3" as &[u8], b"GEOFMSH2", b"PK\x03\x04zzzz", b"\x00\x00\x00\x00\x00\x00\x00\x00"] {
        let mut bytes = pristine.clone();
        bytes[..8].copy_from_slice(magic);
        match ShardReader::from_bytes(bytes) {
            Err(ShardError::BadMagic(m)) => assert_eq!(&m, magic),
            other => panic!("foreign magic {magic:?} must be rejected, got {other:?}"),
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let (_dir, pristine) = corpus("garbage");
    for extra in [1usize, 13, 4096] {
        let mut bytes = pristine.clone();
        bytes.extend(vec![0xA5u8; extra]);
        assert!(
            matches!(ShardReader::from_bytes(bytes), Err(ShardError::SizeMismatch { .. })),
            "{extra} trailing bytes must fail the exact-size check"
        );
    }
}

#[test]
fn header_rot_is_caught_by_the_header_crc() {
    let (_dir, pristine) = corpus("header");
    // flip one bit in every header byte after the magic (fields + CRC)
    for byte in 8..HEADER_LEN {
        let mut bytes = pristine.clone();
        bytes[byte] ^= 0x10;
        let res = ShardReader::from_bytes(bytes);
        assert!(
            matches!(
                res,
                Err(ShardError::HeaderCorrupt { .. }) | Err(ShardError::SizeMismatch { .. })
            ),
            "header bit flip at byte {byte} must be rejected, got {res:?}"
        );
    }
}

#[test]
fn record_bit_flips_are_caught_and_isolated() {
    let (_dir, pristine) = corpus("record");
    let clean = ShardReader::from_bytes(pristine.clone()).unwrap();
    let record_bytes = clean.header().record_bytes() as usize;
    for victim in 0..PER_SHARD {
        let mut bytes = pristine.clone();
        // flip a payload bit in the middle of the victim record
        let off = HEADER_LEN + victim * record_bytes + record_bytes / 2;
        bytes[off] ^= 0x04;
        let reader = ShardReader::from_bytes(bytes).unwrap();
        for r in 0..PER_SHARD {
            let res = reader.read_record(r);
            if r == victim {
                assert!(
                    matches!(res, Err(ShardError::RecordCorrupt { record }) if record == victim),
                    "rotten record {victim} must be caught"
                );
            } else {
                assert_eq!(
                    res.unwrap().features,
                    clean.read_record(r).unwrap().features,
                    "rot in record {victim} must not contaminate record {r}"
                );
            }
        }
    }
}

#[test]
fn out_of_range_reads_are_structured_errors() {
    let (_dir, pristine) = corpus("range");
    let reader = ShardReader::from_bytes(pristine).unwrap();
    assert!(matches!(
        reader.read_record(PER_SHARD),
        Err(ShardError::OutOfRange { record, n_records }) if record == PER_SHARD && n_records == PER_SHARD
    ));
}

#[test]
fn fs_store_maps_disk_damage_to_structural_errors() {
    let (dir, pristine) = corpus("store");
    let manifest = build_corpus(&dir, DatasetKind::Ucm, SHARDS, PER_SHARD, IMG, CHANNELS, 11).unwrap();
    let meta = StoreMeta {
        shards: SHARDS,
        records_per_shard: PER_SHARD,
        record_len: CHANNELS * IMG * IMG,
        img: IMG,
        channels: CHANNELS,
        classes: DatasetKind::Ucm.classes(),
    };
    let store = FsShardStore::new(manifest.shard_files.clone(), meta);
    // whole-file loss
    std::fs::remove_file(&manifest.shard_files[0]).unwrap();
    assert!(matches!(
        store.read(RecordId { shard: 0, record: 0 }),
        Err(ReadError::MissingShard { shard: 0 })
    ));
    // truncation mid-record: the keep-count names the survivors
    let rb = ShardReader::from_bytes(pristine.clone()).unwrap().header().record_bytes() as usize;
    let cut = HEADER_LEN + 3 * rb + 5;
    std::fs::write(
        &manifest.shard_files[1],
        &std::fs::read(&manifest.shard_files[1]).unwrap()[..cut],
    )
    .unwrap();
    assert!(matches!(
        store.read(RecordId { shard: 1, record: 0 }),
        Err(ReadError::TruncatedShard { shard: 1, keep_records: 3 })
    ));
}

/// The sweep: seeded random byte mutations over builder-written shards.
/// Whatever the damage, a read must either error or return the pristine
/// record — zero silent escapes.
#[test]
fn seeded_corruption_sweep_has_zero_silent_escapes() {
    let (_dir, pristine) = corpus("sweep");
    let clean = ShardReader::from_bytes(pristine.clone()).unwrap();
    let pristine_records: Vec<_> =
        (0..PER_SHARD).map(|r| clean.read_record(r).unwrap()).collect();
    let mut escapes = 0u32;
    let mut rejections = 0u32;
    for seed in 0..40u64 {
        let mut rng = TensorRng::seed_from(900 + seed);
        let mut bytes = pristine.clone();
        // 1–4 random byte mutations anywhere in the file
        let hits = 1 + rng.below(4);
        for _ in 0..hits {
            let off = rng.below(bytes.len());
            let bit = 1u8 << rng.below(8);
            bytes[off] ^= bit;
        }
        match ShardReader::from_bytes(bytes) {
            Err(_) => rejections += 1,
            Ok(reader) => {
                for (r, pristine_rec) in pristine_records.iter().enumerate() {
                    match reader.read_record(r) {
                        Err(_) => rejections += 1,
                        Ok(rec) => {
                            // any Ok must be byte-identical to pristine
                            if rec.label != pristine_rec.label
                                || rec.features != pristine_rec.features
                            {
                                escapes += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    assert_eq!(escapes, 0, "corrupt bytes served as clean records");
    assert!(rejections >= 40, "the sweep must actually exercise the rejection paths");
}
