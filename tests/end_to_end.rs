//! End-to-end integration: distributed MAE pretraining through the real
//! FSDP engine must match single-rank MAE pretraining — the full paper
//! stack (data → masking → MAE → sharded training) in one assertion.

use geofm::data::{DatasetKind, SceneDataset};
use geofm::fsdp::{run_data_parallel, FsdpConfig, ShardingStrategy};
use geofm::mae::{MaeConfig, MaeModel, MaskPlan, MaskSampler};
use geofm::tensor::TensorRng;
use geofm::vit::VitConfig;

fn tiny_mae() -> MaeConfig {
    let enc = VitConfig {
        name: "e2e".into(),
        width: 16,
        depth: 2,
        mlp: 32,
        heads: 4,
        patch: 4,
        img: 8,
        channels: 1,
    };
    MaeConfig { encoder: enc, dec_width: 8, dec_depth: 1, dec_heads: 2, mask_ratio: 0.5 }
}

/// Deterministic global batch + mask plan for a step.
fn global_step_data(cfg: &MaeConfig, step: usize, global: usize) -> (geofm::tensor::Tensor, MaskPlan) {
    let mut rng = TensorRng::seed_from(31_000 + step as u64);
    let imgs = rng.randn(&[global, cfg.encoder.channels * 64], 1.0);
    let sampler = MaskSampler::new(cfg.encoder.tokens(), cfg.mask_ratio);
    let plan = sampler.sample(global, &mut rng);
    (imgs, plan)
}

/// Slice a per-sample mask plan for one rank's microbatch.
fn slice_plan(plan: &MaskPlan, start: usize, end: usize) -> MaskPlan {
    MaskPlan {
        tokens: plan.tokens,
        visible: plan.visible,
        visible_idx: plan.visible_idx[start..end].to_vec(),
        masked_idx: plan.masked_idx[start..end].to_vec(),
    }
}

fn run_mae(strategy: ShardingStrategy, world: usize, steps: usize) -> Vec<f32> {
    let report = run_data_parallel(
        FsdpConfig::tuned(strategy),
        world,
        0.0,
        steps,
        |_| {
            let cfg = tiny_mae();
            let mut rng = TensorRng::seed_from(77);
            let mut model = MaeModel::new(&cfg, &mut rng);
            // one FSDP unit per encoder unit + one for the whole decoder
            use geofm::nn::Module;
            let enc_units = model.encoder.unit_param_counts();
            let total = model.num_params();
            let dec_unit = total - enc_units.iter().sum::<usize>();
            let mut units = enc_units;
            units.push(dec_unit);
            (model, units)
        },
        move |model, rank, step| {
            let cfg = tiny_mae();
            let global = 4;
            let per = global / world;
            let (imgs, plan) = global_step_data(&cfg, step, global);
            let xl = imgs.rows(rank * per, (rank + 1) * per);
            let pl = slice_plan(&plan, rank * per, (rank + 1) * per);
            use geofm::nn::Module;
            model.zero_grad();
            let (loss, dpred) = model.forward(&xl, &pl);
            model.backward(&dpred);
            loss
        },
        |_| 1e-3,
    );
    report.final_params
}

#[test]
fn distributed_mae_pretraining_matches_single_rank() {
    let baseline = run_mae(ShardingStrategy::NoShard, 1, 3);
    for strategy in [
        ShardingStrategy::FullShard,
        ShardingStrategy::ShardGradOp,
        ShardingStrategy::Hybrid { shard_size: 2 },
    ] {
        let dist = run_mae(strategy, 2, 3);
        let max_diff = baseline
            .iter()
            .zip(&dist)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff < 1e-3,
            "{}: distributed MAE diverges from single rank by {}",
            strategy.name(),
            max_diff
        );
    }
}

/// The complete small pipeline: generate scenes → MAE pretrain → the loss
/// must drop; features of the pretrained encoder must be usable.
#[test]
fn scenes_to_pretrained_features() {
    use geofm::mae::{LinearProbe, MaePretrainer};
    let cfg = tiny_mae();
    let data = SceneDataset::generate(DatasetKind::Ucm, 64, cfg.encoder.img, cfg.encoder.channels, 0, 3);
    let mut rng = TensorRng::seed_from(5);
    let mut trainer = MaePretrainer::new(&cfg, 3e-3, 40, &mut rng);
    let first = trainer.eval_loss(&data.images, 111);
    let mut data_rng = TensorRng::seed_from(6);
    for step in 0..40 {
        let start = (step * 16) % 48;
        let batch = data.images.rows(start, start + 16);
        trainer.step(&batch, &mut data_rng);
    }
    let last = trainer.eval_loss(&data.images, 111);
    assert!(last < first, "MAE loss must drop: {} -> {}", first, last);

    let feats = LinearProbe::extract_moment_features(&trainer.model.encoder, &data.images, 16);
    assert_eq!(feats.shape(), &[64, 2 * cfg.encoder.width]);
    assert!(!feats.has_non_finite());
}
