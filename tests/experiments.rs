//! Experiment-level invariants: the qualitative claims of the paper's
//! evaluation (DESIGN.md §4), asserted against the simulator. These lock in
//! the calibration — if a future change to the machine model breaks a
//! paper-shape claim, these tests fail.

use geofm::frontier::{simulate, FrontierMachine, MaeWorkload, SimConfig, VitWorkload};
use geofm::fsdp::{PrefetchPolicy, ShardingStrategy};
use geofm::vit::{VitConfig, VitVariant};

fn ips(nodes: usize, v: VitVariant, s: ShardingStrategy) -> f64 {
    let wl = VitWorkload::build(&VitConfig::table1(v), 32, 224);
    simulate(&SimConfig::tuned(FrontierMachine::new(nodes), s, wl)).ips_syn
}

// ---------- Figure 1 ----------

#[test]
fn fig1_curve_ordering_io_nocomm_syn_real() {
    for nodes in [1usize, 8, 64] {
        let wl = MaeWorkload::build(&VitConfig::table1(VitVariant::B3), 32, 0.75);
        let r = simulate(&SimConfig::tuned(
            FrontierMachine::new(nodes),
            ShardingStrategy::NoShard,
            wl,
        ));
        assert!(r.ips_io > r.ips_no_comm, "{} nodes: io must beat compute", nodes);
        assert!(r.ips_no_comm >= r.ips_syn, "{} nodes", nodes);
        assert!(r.ips_syn > r.ips_real, "{} nodes", nodes);
    }
}

#[test]
fn fig1_comm_share_grows_and_hits_paper_band_at_64_nodes() {
    let wl = MaeWorkload::build(&VitConfig::table1(VitVariant::B3), 32, 0.75);
    let share = |nodes: usize| {
        simulate(&SimConfig::tuned(FrontierMachine::new(nodes), ShardingStrategy::NoShard, wl.clone()))
            .comm_share()
    };
    let s1 = share(1);
    let s8 = share(8);
    let s64 = share(64);
    assert!(s1 < s8 && s8 < s64, "comm share must grow with scale: {} {} {}", s1, s8, s64);
    assert!(
        (0.15..0.30).contains(&s64),
        "64-node comm share {} should be near the paper's ~22%",
        s64
    );
}

// ---------- Figure 2 ----------

#[test]
fn fig2_backward_pre_and_limit_all_gathers_win() {
    let wl = VitWorkload::build(&VitConfig::table1(VitVariant::B5), 32, 224);
    let machine = FrontierMachine::new(8);
    for strategy in [
        ShardingStrategy::FullShard,
        ShardingStrategy::Hybrid { shard_size: 2 },
        ShardingStrategy::Hybrid { shard_size: 8 },
    ] {
        let run = |prefetch, limit| {
            let mut c = SimConfig::tuned(machine, strategy, wl.clone());
            c.prefetch = prefetch;
            c.limit_all_gathers = limit;
            simulate(&c).ips_syn
        };
        let pre = run(PrefetchPolicy::BackwardPre, true);
        let none = run(PrefetchPolicy::None, true);
        let unlimited = run(PrefetchPolicy::BackwardPre, false);
        assert!(pre >= none * 0.999, "{}: BACKWARD_PRE must not lose to None", strategy.name());
        assert!(pre >= unlimited * 0.999, "{}: limiting gathers must not hurt", strategy.name());
    }
}

// ---------- Figure 3 ----------

#[test]
fn fig3_hybrid1_beats_hybrid2_and_no_shard_beats_ddp() {
    for v in [VitVariant::Base, VitVariant::Huge, VitVariant::B1, VitVariant::B3] {
        for nodes in [16usize, 64] {
            let h1 = ips(nodes, v, ShardingStrategy::Hybrid { shard_size: 1 });
            let h2 = ips(nodes, v, ShardingStrategy::Hybrid { shard_size: 2 });
            let ns = ips(nodes, v, ShardingStrategy::NoShard);
            let ddp = ips(nodes, v, ShardingStrategy::ddp_default());
            assert!(h1 >= h2 * 0.999, "{:?}@{}: HYBRID_1 {} < HYBRID_2 {}", v, nodes, h1, h2);
            assert!(ns > ddp * 0.999, "{:?}@{}: NO_SHARD {} vs DDP {}", v, nodes, ns, ddp);
        }
    }
}

#[test]
fn fig3_fsdp_vs_ddp_gap_grows_with_model_size() {
    let gap = |v: VitVariant| {
        let ns = ips(64, v, ShardingStrategy::NoShard);
        let ddp = ips(64, v, ShardingStrategy::ddp_default());
        ns / ddp
    };
    assert!(gap(VitVariant::B3) > gap(VitVariant::Base), "gap must grow with model size");
}

#[test]
fn fig3_full_shard_flattens_earlier_for_smaller_models() {
    // FULL_SHARD's weak-scaling efficiency at 64 nodes (vs 1 node × 64):
    // the latency-bound ViT-Base saturates earlier than the compute-heavy
    // ViT-Huge/1B (the paper's "flattens for more than 16 nodes" claim).
    // ViT-3B re-descends in our model because its 12 GB gathers saturate
    // the node NICs — recorded as a known deviation in EXPERIMENTS.md.
    let eff = |v: VitVariant| {
        let e1 = ips(1, v, ShardingStrategy::FullShard);
        let e64 = ips(64, v, ShardingStrategy::FullShard);
        e64 / (e1 * 64.0)
    };
    let base = eff(VitVariant::Base);
    assert!(base < eff(VitVariant::Huge), "Base must flatten before Huge");
    assert!(base < eff(VitVariant::B1), "Base must flatten before 1B");
}

#[test]
fn fig3_full_shard_underperforms_replication_at_scale() {
    for v in [VitVariant::Base, VitVariant::B3] {
        let fs = ips(64, v, ShardingStrategy::FullShard);
        let h1 = ips(64, v, ShardingStrategy::Hybrid { shard_size: 1 });
        assert!(fs < h1, "{:?}: FULL_SHARD {} must trail HYBRID_1 {}", v, fs, h1);
    }
}

// ---------- Figure 4 ----------

#[test]
fn fig4_wide_hybrids_win_for_5b_at_scale() {
    let h2 = ips(64, VitVariant::B5, ShardingStrategy::Hybrid { shard_size: 2 });
    let h16 = ips(64, VitVariant::B5, ShardingStrategy::Hybrid { shard_size: 16 });
    assert!(h16 > h2, "HYBRID_16 {} must beat HYBRID_2 {} at 64 nodes", h16, h2);
}

#[test]
fn fig4_shard_grad_op_scales_best_for_15b() {
    for nodes in [32usize, 64] {
        let sgo = ips(nodes, VitVariant::B15, ShardingStrategy::ShardGradOp);
        for other in [
            ShardingStrategy::Hybrid { shard_size: 4 },
            ShardingStrategy::Hybrid { shard_size: 8 },
            ShardingStrategy::Hybrid { shard_size: 16 },
            ShardingStrategy::FullShard,
        ] {
            let o = ips(nodes, VitVariant::B15, other);
            assert!(sgo > o, "{}n: SGO {} must beat {} {}", nodes, sgo, other.name(), o);
        }
    }
}

#[test]
fn fig4_calibration_anchor_1509_vs_1307() {
    // §IV-D: 1509 (SHARD_GRAD_OP) vs 1307 (FULL_SHARD) ips, ViT-5B, 32 nodes
    let sgo = ips(32, VitVariant::B5, ShardingStrategy::ShardGradOp);
    let fs = ips(32, VitVariant::B5, ShardingStrategy::FullShard);
    assert!((sgo - 1509.0).abs() / 1509.0 < 0.10, "SGO {} vs paper 1509", sgo);
    assert!((fs - 1307.0).abs() / 1307.0 < 0.10, "FULL_SHARD {} vs paper 1307", fs);
    assert!(sgo > fs);
}

#[test]
fn fig4_power_ordering_sgo_above_full_shard() {
    // §IV-D: SHARD_GRAD_OP draws more power than FULL_SHARD (more compute-
    // busy), consistent with its higher throughput.
    let machine = FrontierMachine::new(32);
    let wl = VitWorkload::build(&VitConfig::table1(VitVariant::B5), 32, 224);
    let trace = |s| {
        let sim = simulate(&SimConfig::tuned(machine, s, wl.clone()));
        sim.power_trace(&machine, 256).mean_power()
    };
    let sgo = trace(ShardingStrategy::ShardGradOp);
    let fs = trace(ShardingStrategy::FullShard);
    assert!(sgo > fs, "SGO power {} must exceed FULL_SHARD {}", sgo, fs);
}

#[test]
fn fig4_memory_feasibility_matches_paper() {
    // 5B needs ≥2 GPUs, 15B needs ≥4 (paper §IV-D)
    let wl5 = VitWorkload::build(&VitConfig::table1(VitVariant::B5), 32, 224);
    let wl15 = VitWorkload::build(&VitConfig::table1(VitVariant::B15), 32, 224);
    let machine = FrontierMachine::new(8);
    let fits = |wl: &geofm::frontier::StepWorkload, s| {
        simulate(&SimConfig::tuned(machine, s, wl.clone())).fits
    };
    assert!(!fits(&wl5, ShardingStrategy::Hybrid { shard_size: 1 }));
    assert!(fits(&wl5, ShardingStrategy::Hybrid { shard_size: 2 }));
    assert!(!fits(&wl15, ShardingStrategy::Hybrid { shard_size: 2 }));
    assert!(fits(&wl15, ShardingStrategy::Hybrid { shard_size: 4 }));
}
