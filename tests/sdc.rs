//! Silent-data-corruption campaign: ≥100 seeded corruption-only schedules
//! (gradient bit flips + poisoned losses) against the guarded resilient
//! trainer, each holding THREE invariants:
//!
//! 1. **Zero silent escapes** — every injected corruption event is
//!    detected: the guard trips exactly once per corrupted step and the
//!    final weights are bit-identical to a clean run told to skip the same
//!    steps (an escaped flip would diverge the weights).
//! 2. **Zero hangs** — detection is in-band (the corrupt reduce completes
//!    its barrier schedule before erroring), so no schedule may stall.
//! 3. **Deterministic recovery** — rollback-and-skip is bit-reproducible:
//!    the recovered loss curve equals the clean-with-skips curve bit for
//!    bit, NaN placeholders included.
//!
//! Odd seeds run the comm/compute overlap engine (collectives on the
//! per-rank comm thread, reduce-scatters double-buffered — since the
//! lock-free rework this exercises the SPSC job ring and the recycled
//! buffer pool), even seeds the blocking engine. A corrupt reduce surfaces from `wait()` with the same
//! verdict on every rank while the pipeline stays in lockstep, so the
//! guard's trip/rollback/skip accounting must be identical either way —
//! the clean comparator runs with the *same* overlap setting.
//!
//! CI runs this suite under a hard timeout with `GEOFM_CHAOS_SEED` pinned.

use geofm_fsdp::{
    try_run_data_parallel, DistReport, FsdpConfig, GuardConfig, ResilienceConfig, ShardingStrategy,
};
use geofm_nn::{Linear, Module, ParamVisitor};
use geofm_resilience::{FaultKind, FaultMix, FaultPlan};
use geofm_tensor::{Tensor, TensorRng};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Toy {
    a: Linear,
    b: Linear,
}

impl Module for Toy {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.a.visit_params(f);
        self.b.visit_params(f);
    }
}

impl Toy {
    fn new(seed: u64) -> (Self, Vec<usize>) {
        let mut rng = TensorRng::seed_from(seed);
        let mut a = Linear::new(3, 2, &mut rng, "a");
        let mut b = Linear::new(3, 2, &mut rng, "b");
        let units = vec![a.num_params(), b.num_params()];
        (Self { a, b }, units)
    }

    fn compute(&mut self, x: &Tensor, y: &Tensor) -> f32 {
        self.zero_grad();
        let ya = self.a.forward(x);
        let yb = self.b.forward(x);
        let out = ya.add(&yb);
        let diff = out.sub(y);
        let n = diff.numel() as f32;
        let loss = diff.sum_sq() / n;
        let dy = diff.scale(2.0 / n);
        let _ = self.a.backward(&dy);
        let _ = self.b.backward(&dy);
        loss
    }
}

const WORLD: usize = 4;
const STEPS: usize = 8;
const STRATEGIES: [ShardingStrategy; 4] = [
    ShardingStrategy::FullShard,
    ShardingStrategy::ShardGradOp,
    ShardingStrategy::Hybrid { shard_size: 2 },
    ShardingStrategy::NoShard,
];

fn seed_base() -> u64 {
    std::env::var("GEOFM_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn guard(skip_steps: BTreeSet<usize>) -> GuardConfig {
    GuardConfig {
        // generous budget: even a schedule that corrupts every step must
        // recover rather than fail — budget exhaustion is for repeating
        // (non-transient) faults, which one-shot injection never produces
        max_rollbacks: WORLD * STEPS * 2,
        skip_steps,
        ..GuardConfig::default()
    }
}

fn run(
    strategy: ShardingStrategy,
    overlap: bool,
    plan: Arc<FaultPlan>,
    skip_steps: BTreeSet<usize>,
) -> Result<DistReport, geofm_resilience::FailureReport> {
    try_run_data_parallel(
        if overlap { FsdpConfig::overlapped(strategy) } else { FsdpConfig::tuned(strategy) },
        WORLD,
        0.01,
        STEPS,
        |_| Toy::new(7),
        |m, rank, step| {
            let mut rng = TensorRng::seed_from(5000 + step as u64);
            let x = rng.randn(&[8, 3], 1.0);
            let y = rng.randn(&[8, 2], 1.0);
            let per = 8 / WORLD;
            let xl = x.rows(rank * per, (rank + 1) * per);
            let yl = y.rows(rank * per, (rank + 1) * per);
            m.compute(&xl, &yl)
        },
        |_| 0.01,
        None,
        ResilienceConfig {
            fault_plan: plan,
            collective_timeout: Some(Duration::from_secs(5)),
            guard: Some(guard(skip_steps)),
            ..ResilienceConfig::disabled()
        },
    )
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// One seeded corruption schedule: inject, recover, verify all three
/// invariants.
fn sdc_schedule(seed: u64) {
    let strategy = STRATEGIES[(seed as usize) % STRATEGIES.len()];
    // odd seeds exercise the overlap engine: corruption must surface from
    // an async wait() with the pipeline still in flight
    let overlap = seed % 2 == 1;
    let plan = Arc::new(FaultPlan::seeded(seed, WORLD, STEPS, &FaultMix::corruption_only(0.04)));
    // the steps the schedule corrupts — every one must be caught
    let corrupted: BTreeSet<usize> = plan
        .events()
        .iter()
        .filter_map(|k| match k {
            FaultKind::BitFlipGrad { step, .. } | FaultKind::PoisonLoss { step, .. } => Some(*step),
            _ => None,
        })
        .collect();

    let started = Instant::now();
    let outcome = run(strategy, overlap, Arc::clone(&plan), BTreeSet::new());
    let elapsed = started.elapsed();

    // invariant 2: zero hangs — detection is in-band, nothing may stall
    assert!(
        elapsed < Duration::from_secs(60),
        "seed {seed} ({}, overlap={overlap}): schedule took {elapsed:?} — hang regression \
         (plan: {:?})",
        strategy.name(),
        plan.events()
    );

    let report = outcome.unwrap_or_else(|e| {
        panic!(
            "seed {seed} ({}, overlap={overlap}): corruption-only schedule must recover, \
             got: {e} (plan: {:?})",
            strategy.name(),
            plan.events()
        )
    });
    assert_eq!(report.restarts, 0, "seed {seed}: SDC recovery must not burn restarts");

    // invariant 1: zero silent escapes — one trip per corrupted step,
    // every corrupted step skipped, nothing else skipped
    let gr = report.guard.as_ref().expect("guard report must be present");
    let skipped: BTreeSet<usize> = gr.skipped_steps.iter().copied().collect();
    assert_eq!(
        skipped,
        corrupted,
        "seed {seed} ({}, overlap={overlap}): skipped steps must be exactly the corrupted \
         steps (guard: {gr}, plan: {:?})",
        strategy.name(),
        plan.events()
    );
    assert_eq!(
        gr.trips,
        corrupted.len(),
        "seed {seed} ({}, overlap={overlap}): one trip per corrupted step (guard: {gr})",
        strategy.name()
    );
    assert_eq!(gr.rollbacks, gr.trips, "seed {seed}: every trip must roll back ({gr})");
    for (s, l) in report.mean_losses.iter().enumerate() {
        assert_eq!(
            l.is_nan(),
            corrupted.contains(&s),
            "seed {seed}: loss series must be NaN exactly at skipped steps"
        );
    }

    // invariant 3 (and the other half of 1): bit-identical to a clean run
    // with the same skips — an escaped corruption would diverge here
    let clean = run(strategy, overlap, Arc::new(FaultPlan::none()), corrupted.clone())
        .expect("clean comparator must succeed");
    assert_eq!(
        bits(&report.final_params),
        bits(&clean.final_params),
        "seed {seed} ({}, overlap={overlap}): recovered weights diverged from \
         clean-with-skips (plan: {:?})",
        strategy.name(),
        plan.events()
    );
    assert_eq!(
        bits(&report.mean_losses),
        bits(&clean.mean_losses),
        "seed {seed} ({}, overlap={overlap}): recovered loss curve diverged (plan: {:?})",
        strategy.name(),
        plan.events()
    );
}

fn sdc_range(lo: u64, hi: u64) {
    let base = seed_base();
    for seed in lo..hi {
        sdc_schedule(base + seed);
    }
}

// 120 schedules, split so the test runner parallelises the batches.

#[test]
fn sdc_seeds_000_029() {
    sdc_range(0, 30);
}

#[test]
fn sdc_seeds_030_059() {
    sdc_range(30, 60);
}

#[test]
fn sdc_seeds_060_089() {
    sdc_range(60, 90);
}

#[test]
fn sdc_seeds_090_119() {
    sdc_range(90, 120);
}

/// The negative control, once per strategy: the same bit flip with the
/// guard OFF completes "successfully" with different weights — the silent
/// escape the guard exists to prevent. If this test ever fails, the fault
/// injection has stopped injecting and the whole suite is vacuous.
#[test]
fn unguarded_corruption_escapes_silently() {
    for (i, strategy) in STRATEGIES.iter().enumerate() {
        let clean = run(*strategy, false, Arc::new(FaultPlan::none()), BTreeSet::new())
            .expect("clean run");
        let plan = Arc::new(FaultPlan::none().with_bitflip_grad(i % WORLD, 2, 26));
        let corrupted = try_run_data_parallel(
            FsdpConfig::tuned(*strategy),
            WORLD,
            0.01,
            STEPS,
            |_| Toy::new(7),
            |m, rank, step| {
                let mut rng = TensorRng::seed_from(5000 + step as u64);
                let x = rng.randn(&[8, 3], 1.0);
                let y = rng.randn(&[8, 2], 1.0);
                let per = 8 / WORLD;
                m.compute(&x.rows(rank * per, (rank + 1) * per), &y.rows(rank * per, (rank + 1) * per))
            },
            |_| 0.01,
            None,
            ResilienceConfig {
                fault_plan: plan,
                collective_timeout: Some(Duration::from_secs(5)),
                ..ResilienceConfig::disabled()
            },
        )
        .expect("unguarded corruption sails through");
        assert!(corrupted.guard.is_none());
        assert_ne!(
            bits(&clean.final_params),
            bits(&corrupted.final_params),
            "{}: an unguarded exponent-bit flip must actually perturb the weights",
            strategy.name()
        );
    }
}
