//! Elastic-resharding acceptance suite: shrink-and-continue on permanent
//! rank loss, re-grow on spare rejoin.
//!
//! The invariant under test (ISSUE acceptance): a seeded run that loses a
//! rank permanently mid-training shrinks its world, continues, and
//! produces final parameters **bit-identical** to a reference run launched
//! fresh at the smaller world from the same resharded state — across all
//! sharding strategies and ≥ 64 seeded shrink/grow schedules, with zero
//! hangs. The reference resumes through the on-disk GEOFMCK3 image
//! recorded on the [`ReshardEvent`], so every schedule exercises both the
//! live (in-memory) reshard path and world-size-independent checkpoint
//! recovery from disk.
//!
//! Per strategy, 16 seeded schedules rotate through four shapes:
//!
//! * `seed % 4 == 0` — single permanent leave (shrink once);
//! * `seed % 4 == 1` — leave then spare rejoin (shrink, then grow back);
//! * `seed % 4 == 2` — two leaves across attempts (shrink twice);
//! * `seed % 4 == 3` — single leave under the comm/compute **overlap**
//!   engine (drain protocol quiesces in-flight nonblocking collectives).
//!
//! Even seeds write the GEOFMCK3 image to disk at checkpoint cadence; odd
//! seeds keep it in memory only — the trainer reshards live either way.
//! 5 strategies × 16 seeds = 80 schedules ≥ the 64 the issue demands.

use geofm_fsdp::{
    try_run_elastic, DistReport, ElasticConfig, FsdpConfig, ReshardEvent, ReshardKind,
    ResilienceConfig, ShardingStrategy,
};
use geofm_nn::{Linear, Module, ParamVisitor};
use geofm_resilience::{FailureReport, FaultMix, FaultPlan};
use geofm_tensor::{Tensor, TensorRng};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Toy {
    a: Linear,
    b: Linear,
}

impl Module for Toy {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.a.visit_params(f);
        self.b.visit_params(f);
    }
}

impl Toy {
    fn new(seed: u64) -> (Self, Vec<usize>) {
        let mut rng = TensorRng::seed_from(seed);
        let mut a = Linear::new(3, 2, &mut rng, "a");
        let mut b = Linear::new(3, 2, &mut rng, "b");
        let units = vec![a.num_params(), b.num_params()];
        (Self { a, b }, units)
    }

    fn compute(&mut self, x: &Tensor, y: &Tensor) -> f32 {
        self.zero_grad();
        let ya = self.a.forward(x);
        let yb = self.b.forward(x);
        let out = ya.add(&yb);
        let diff = out.sub(y);
        let n = diff.numel() as f32;
        let loss = diff.sum_sq() / n;
        let dy = diff.scale(2.0 / n);
        let _ = self.a.backward(&dy);
        let _ = self.b.backward(&dy);
        loss
    }
}

const WORLD: usize = 4;
const STEPS: usize = 8;
/// Global batch: divisible by every world size a schedule can visit (1..=4).
const GLOBAL: usize = 12;

const STRATEGIES: [ShardingStrategy; 5] = [
    ShardingStrategy::FullShard,
    ShardingStrategy::ShardGradOp,
    ShardingStrategy::Hybrid { shard_size: 2 },
    ShardingStrategy::NoShard,
    ShardingStrategy::Ddp { bucket_bytes: 25 * 1024 * 1024 },
];

/// Base offset added to every seed, pinned in CI via `GEOFM_CHAOS_SEED`.
fn seed_base() -> u64 {
    std::env::var("GEOFM_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn run(
    config: FsdpConfig,
    world: usize,
    resilience: ResilienceConfig,
) -> Result<DistReport, FailureReport> {
    try_run_elastic(
        config,
        world,
        0.01,
        STEPS,
        |_| Toy::new(7),
        |m, rank, world, step| {
            let mut rng = TensorRng::seed_from(5000 + step as u64);
            let x = rng.randn(&[GLOBAL, 3], 1.0);
            let y = rng.randn(&[GLOBAL, 2], 1.0);
            let per = GLOBAL / world;
            let xl = x.rows(rank * per, (rank + 1) * per);
            let yl = y.rows(rank * per, (rank + 1) * per);
            m.compute(&xl, &yl)
        },
        |_| 0.01,
        None,
        resilience,
    )
}

fn tmp_dir(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("geofm-elastic-{tag}-{seed}-{}", std::process::id()))
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Launch the acceptance reference: a fresh, fault-free run at the event's
/// post-transition world, resumed from the event's recorded checkpoint
/// through the GEOFMCK3 **disk** path (an empty checkpoint means the
/// transition restarted from scratch, so the reference starts fresh too).
fn reference_from_event(ev: &ReshardEvent, seed: u64) -> DistReport {
    let clean = ResilienceConfig {
        collective_timeout: Some(Duration::from_secs(5)),
        ..ResilienceConfig::disabled()
    };
    let config = FsdpConfig::tuned(ev.strategy);
    if ev.ckpt.unit_sizes.is_empty() {
        return run(config, ev.to_world, clean).expect("fresh reference must succeed");
    }
    let dir = tmp_dir("ref", seed);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("elastic.ck3");
    ev.ckpt.save(&path).expect("event checkpoint must serialise");
    let report = run(
        config,
        ev.to_world,
        ResilienceConfig {
            elastic: Some(ElasticConfig { checkpoint_path: Some(path), ..ElasticConfig::default() }),
            ..clean
        },
    )
    .expect("disk-resumed reference must succeed");
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// One seeded shrink/grow schedule for one strategy; asserts the full
/// invariant: completion, a consistent transition chain, bit-identity of
/// the continued run against the reference, and a hang budget.
fn elastic_schedule(strategy: ShardingStrategy, seed: u64) {
    let kind = seed % 4;
    let ck_every = 1 + (seed as usize % 3);
    let leave_step = 1 + (seed as usize % (STEPS - 2));
    let leave_rank = (seed as usize * 7 + 3) % WORLD;

    let mut plan = FaultPlan::none().with_rank_leave(leave_rank, leave_step);
    let mut expected_kinds = vec![ReshardKind::Shrink];
    match kind {
        1 => {
            plan = plan.with_spare_rejoin(leave_step + 1);
            expected_kinds.push(ReshardKind::Grow);
        }
        2 => {
            // second departure lands in the already-shrunken world
            let second_rank = (leave_rank + 1) % (WORLD - 1);
            let second_step = (leave_step + 2).min(STEPS - 1);
            plan = plan.with_rank_leave(second_rank, second_step);
            expected_kinds.push(ReshardKind::Shrink);
        }
        _ => {}
    }
    let overlap = kind == 3;
    let config =
        if overlap { FsdpConfig::overlapped(strategy) } else { FsdpConfig::tuned(strategy) };

    // even seeds persist the GEOFMCK3 image; odd seeds reshard from memory
    let dir = seed.is_multiple_of(2).then(|| tmp_dir("run", seed));
    if let Some(d) = &dir {
        let _ = std::fs::remove_dir_all(d);
    }
    let resilience = ResilienceConfig {
        fault_plan: Arc::new(plan),
        checkpoint_every: ck_every,
        collective_timeout: Some(Duration::from_secs(5)),
        max_restarts: 4,
        elastic: Some(ElasticConfig {
            checkpoint_path: dir.as_ref().map(|d| d.join("elastic.ck3")),
            ..ElasticConfig::default()
        }),
        ..ResilienceConfig::disabled()
    };

    let started = Instant::now();
    let report = run(config, WORLD, resilience).unwrap_or_else(|e| {
        panic!("{} seed {seed}: schedule must complete, got {e}", strategy.name())
    });
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(60),
        "{} seed {seed}: {elapsed:?} — hang regression",
        strategy.name()
    );
    if let Some(d) = &dir {
        let _ = std::fs::remove_dir_all(d);
    }

    // the transition chain matches the schedule and is internally consistent
    let events = &report.reshard.events;
    let kinds: Vec<ReshardKind> = events.iter().map(|e| e.kind).collect();
    assert_eq!(kinds, expected_kinds, "{} seed {seed}", strategy.name());
    let mut world = WORLD;
    for ev in events {
        assert_eq!(ev.from_world, world, "{} seed {seed}: chain broke", strategy.name());
        world = ev.to_world;
        match ev.kind {
            ReshardKind::Shrink => assert_eq!(ev.to_world, ev.from_world - ev.departed.len()),
            ReshardKind::Grow => assert_eq!(ev.to_world, ev.from_world + 1),
        }
        // the recorded strategy always matches the remap rule
        assert_eq!(ev.strategy, strategy.remap_for_world(ev.to_world));
    }
    assert_eq!(report.mean_losses.len(), STEPS, "{} seed {seed}", strategy.name());

    // bit-identity: the continued run equals a fresh run launched at the
    // final world from the last transition's resharded state
    let last = events.last().expect("every schedule reshards at least once");
    let reference = reference_from_event(last, seed);
    assert_eq!(
        bits(&report.final_params),
        bits(&reference.final_params),
        "{} seed {seed}: post-reshard training diverged from the fresh \
         small-world reference (kind {:?}, step {}, {} -> {})",
        strategy.name(),
        last.kind,
        last.step,
        last.from_world,
        last.to_world,
    );
    assert_eq!(
        bits(&report.mean_losses),
        bits(&reference.mean_losses),
        "{} seed {seed}: loss curve diverged from the reference",
        strategy.name()
    );
}

fn strategy_schedules(idx: usize) {
    for s in 0..16 {
        elastic_schedule(STRATEGIES[idx], seed_base() + s);
    }
}

#[test]
fn full_shard_shrink_grow_schedules() {
    strategy_schedules(0);
}

#[test]
fn shard_grad_op_shrink_grow_schedules() {
    strategy_schedules(1);
}

#[test]
fn hybrid_shrink_grow_schedules() {
    strategy_schedules(2);
}

#[test]
fn no_shard_shrink_grow_schedules() {
    strategy_schedules(3);
}

#[test]
fn ddp_shrink_grow_schedules() {
    strategy_schedules(4);
}

/// Elastic events mixed into a full random fault cocktail: the run either
/// completes (possibly resharded) or fails with a structured report —
/// never a hang. Bit-level checks live in the seeded schedules above;
/// here the mix makes shrink interact with crashes, hangs and stragglers.
#[test]
fn elastic_chaos_mix_never_hangs() {
    let mix = FaultMix {
        crash_prob: 0.02,
        straggler_prob: 0.02,
        straggler_ms: (1, 10),
        degraded_rank_prob: 0.05,
        degraded_link_prob: 0.05,
        slowdown_permille: (1500, 3000),
        hang_prob: 0.005,
        ckpt_crash_prob: 0.02,
        bitflip_prob: 0.0,
        poison_prob: 0.0,
        leave_prob: 0.03,
        rejoin_prob: 0.05,
        ..FaultMix::crashes_only(0.0)
    };
    for s in 0..24u64 {
        let seed = seed_base() + s;
        let strategy = STRATEGIES[(seed as usize) % STRATEGIES.len()];
        let plan = Arc::new(FaultPlan::seeded(seed, WORLD, STEPS, &mix));
        let resilience = ResilienceConfig {
            fault_plan: Arc::clone(&plan),
            checkpoint_every: 2,
            collective_timeout: Some(Duration::from_millis(300)),
            max_restarts: 4,
            elastic: Some(ElasticConfig::default()),
            ..ResilienceConfig::disabled()
        };
        let started = Instant::now();
        let outcome = run(FsdpConfig::tuned(strategy), WORLD, resilience);
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "seed {seed} ({}): hang regression (plan: {:?})",
            strategy.name(),
            plan.events()
        );
        match outcome {
            Ok(report) => {
                assert_eq!(report.mean_losses.len(), STEPS, "seed {seed}");
                let mut world = WORLD;
                for ev in &report.reshard.events {
                    assert_eq!(ev.from_world, world, "seed {seed}: transition chain broke");
                    world = ev.to_world;
                }
            }
            Err(report) => {
                assert!(!report.failures.is_empty(), "seed {seed}: unexplained failure");
            }
        }
    }
}
