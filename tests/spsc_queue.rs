//! Concurrency suite for the lock-free SPSC job ring
//! (`geofm_collectives::spsc`) — the submission path under the comm
//! thread. The properties locked in here are exactly the ones the
//! nonblocking collectives rely on:
//!
//! * **FIFO, lossless, duplicate-free** under a real two-thread race
//!   (10 000 ops per seed × 32 seeds, randomised push/pop mix);
//! * **full/empty boundary** behaviour (`Full` hands the item back;
//!   `pop` on empty returns `None`; batched pushes overflow in order);
//! * **drop-while-nonempty drains cleanly** — every queued item is
//!   dropped exactly once, whichever side unplugs first;
//! * **shutdown racing enqueue** never loses an item: a push either lands
//!   (and is drained) or comes back as `Disconnected`;
//! * **job-cell pooling** above the ring reaches a steady state: after
//!   warmup, submissions are served by resetting retired cells in place
//!   (`reuses` tracks `takes`) and fresh allocations stop.

use geofm_collectives::spsc::{ring, PushError};
use geofm_collectives::{CommThread, Group};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Tiny deterministic RNG (splitmix64) so the stress schedules are
/// reproducible per seed without pulling in an RNG crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const OPS: u64 = 10_000;
const SEEDS: u64 = 32;

/// Two-thread stress: the producer pushes `0..OPS` using a seed-dependent
/// mix of `push` (with retry), `push_wait` and `push_batch`; the consumer
/// pops with a mix of `pop` and `pop_wait`. The consumer asserts values
/// arrive in strictly increasing order starting at 0 (FIFO ⇒ no loss, no
/// duplication, no reordering) and that exactly `OPS` values arrive.
#[test]
fn seeded_two_thread_stress_preserves_fifo() {
    for seed in 0..SEEDS {
        // small capacities exercise the full boundary constantly
        let cap = [2usize, 4, 8, 64][(seed % 4) as usize];
        let (mut tx, mut rx) = ring::<u64>(cap);
        let consumer = std::thread::spawn(move || {
            let mut rng = Rng(seed.wrapping_mul(0xA5A5_5A5A) + 1);
            let mut expect = 0u64;
            loop {
                let got = if rng.below(4) == 0 {
                    match rx.pop() {
                        Some(v) => Some(v),
                        None => {
                            if rng.below(8) == 0 {
                                std::thread::yield_now();
                            }
                            continue;
                        }
                    }
                } else {
                    rx.pop_wait()
                };
                match got {
                    Some(v) => {
                        assert_eq!(
                            v, expect,
                            "seed {seed}: out-of-order/lost/duplicated item (cap {cap})"
                        );
                        expect += 1;
                    }
                    None => return expect,
                }
            }
        });
        let mut rng = Rng(seed + 1);
        let mut next = 0u64;
        while next < OPS {
            match rng.below(3) {
                0 => {
                    // nonblocking push, retry on full
                    let mut v = next;
                    loop {
                        match tx.push(v) {
                            Ok(()) => break,
                            Err(PushError::Full(back)) => {
                                v = back;
                                std::thread::yield_now();
                            }
                            Err(PushError::Disconnected(_)) => {
                                panic!("seed {seed}: consumer vanished")
                            }
                        }
                    }
                    next += 1;
                }
                1 => {
                    tx.push_wait(next).unwrap();
                    next += 1;
                }
                _ => {
                    // batched window; overflow re-queued via push_wait
                    let upper = (next + 1 + rng.below(6)).min(OPS);
                    let (_, overflow) = tx.push_batch(next..upper);
                    for v in overflow {
                        tx.push_wait(v).unwrap();
                    }
                    next = upper;
                }
            }
        }
        drop(tx);
        let received = consumer.join().unwrap();
        assert_eq!(received, OPS, "seed {seed}: consumer count mismatch");
    }
}

#[test]
fn full_and_empty_boundaries() {
    let (mut tx, mut rx) = ring::<u32>(4);
    assert_eq!(tx.capacity(), 4);
    assert!(tx.is_empty() && rx.is_empty());
    assert_eq!(rx.pop(), None, "pop on empty must not block or fabricate");
    for i in 0..4 {
        tx.push(i).unwrap();
    }
    assert_eq!(tx.len(), 4);
    assert_eq!(tx.push(99), Err(PushError::Full(99)), "full ring hands the item back");
    // one slot frees, exactly one push fits again
    assert_eq!(rx.pop(), Some(0));
    tx.push(4).unwrap();
    assert_eq!(tx.push(5), Err(PushError::Full(5)));
    // FIFO across the wrap
    for expect in 1..5 {
        assert_eq!(rx.pop(), Some(expect));
    }
    assert_eq!(rx.pop(), None);
}

#[test]
fn batch_overflow_comes_back_in_order_and_nothing_is_lost() {
    let (mut tx, mut rx) = ring::<u32>(4);
    let (n, overflow) = tx.push_batch(0..11);
    assert_eq!(n, 4);
    assert_eq!(overflow, vec![4, 5, 6, 7, 8, 9, 10]);
    for expect in 0..4 {
        assert_eq!(rx.pop(), Some(expect));
    }
    // the handed-back tail continues the sequence seamlessly
    let (n2, overflow2) = tx.push_batch(overflow);
    assert_eq!(n2, 4);
    assert_eq!(overflow2, vec![8, 9, 10]);
    for expect in 4..8 {
        assert_eq!(rx.pop(), Some(expect));
    }
}

/// An item that counts its drops, to prove drain-exactly-once.
#[derive(Debug)]
struct Tracked(Arc<AtomicUsize>);

impl Drop for Tracked {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn drop_while_nonempty_drains_every_item_exactly_once() {
    // producer first, consumer last — the consumer side drains
    let drops = Arc::new(AtomicUsize::new(0));
    let (mut tx, rx) = ring::<Tracked>(8);
    for _ in 0..5 {
        tx.push(Tracked(Arc::clone(&drops))).unwrap();
    }
    drop(tx);
    assert_eq!(drops.load(Ordering::SeqCst), 0, "queued items must outlive the producer");
    drop(rx);
    assert_eq!(drops.load(Ordering::SeqCst), 5, "consumer drop must drain the leftovers");

    // consumer first, producer last — the producer side drains
    let drops = Arc::new(AtomicUsize::new(0));
    let (mut tx, rx) = ring::<Tracked>(8);
    for _ in 0..3 {
        tx.push(Tracked(Arc::clone(&drops))).unwrap();
    }
    drop(rx);
    drop(tx);
    assert_eq!(drops.load(Ordering::SeqCst), 3, "producer drop must drain the leftovers");
}

/// Shutdown racing enqueue: the consumer disconnects at a random point
/// while the producer streams. Every created item must end up dropped
/// exactly once — either consumed, handed back via `Disconnected`, or
/// drained by the last side out — across many seeds to hit the race
/// window from both sides.
#[test]
fn shutdown_racing_enqueue_never_loses_or_double_frees() {
    for seed in 0..SEEDS {
        let drops = Arc::new(AtomicUsize::new(0));
        let consumed = Arc::new(AtomicUsize::new(0));
        let (mut tx, mut rx) = ring::<Tracked>(4);
        let consumer = {
            let consumed = Arc::clone(&consumed);
            std::thread::spawn(move || {
                let mut rng = Rng(seed * 31 + 7);
                let quit_after = rng.below(200);
                for _ in 0..quit_after {
                    if rx.pop_wait().is_none() {
                        return;
                    }
                    consumed.fetch_add(1, Ordering::SeqCst);
                }
                // rx dropped here, mid-stream
            })
        };
        let mut created = 0usize;
        let mut returned = 0usize;
        for _ in 0..400 {
            created += 1;
            match tx.push_wait(Tracked(Arc::clone(&drops))) {
                Ok(()) => {}
                Err(PushError::Disconnected(item)) => {
                    returned += 1;
                    drop(item);
                    break;
                }
                Err(PushError::Full(_)) => unreachable!("push_wait never reports Full"),
            }
        }
        drop(tx);
        consumer.join().unwrap();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            created,
            "seed {seed}: every item must be dropped exactly once \
             (consumed {}, handed back {returned})",
            consumed.load(Ordering::SeqCst),
        );
    }
}

/// Steady-state cell pooling on the comm path that rides this ring: after
/// a warmup, every submitted collective must be served by recycling a
/// retired job cell — zero fresh `Arc<JobCell>` allocations per op — for
/// both the wait-and-recycle and the fire-many-then-wait submission
/// shapes. A regression that re-introduces the per-op allocation flips
/// `allocs` proportional to ops and fails loudly here.
#[test]
fn comm_path_cell_pool_reaches_zero_alloc_steady_state() {
    const WARMUP: u64 = 64;
    const OPS_STEADY: u64 = 2_000;
    let handles = Group::create(2);
    let stats: Vec<_> = std::thread::scope(|s| {
        let joins: Vec<_> = handles
            .into_iter()
            .map(|h| {
                s.spawn(move || {
                    let data = vec![1.0f32; 256];
                    let comm = CommThread::spawn();
                    let g = comm.register(&h);
                    for _ in 0..WARMUP {
                        comm.recycle(comm.all_reduce_async(&g, &data).wait().unwrap());
                    }
                    let warm = comm.cell_stats();
                    // shape 1: submit → wait → recycle, one in flight
                    for _ in 0..OPS_STEADY {
                        comm.recycle(comm.all_reduce_async(&g, &data).wait().unwrap());
                    }
                    // shape 2: several in flight before the oldest is waited
                    for _ in 0..OPS_STEADY / 4 {
                        let pend: Vec<_> =
                            (0..4).map(|_| comm.all_reduce_async(&g, &data)).collect();
                        for p in pend {
                            comm.recycle(p.wait().unwrap());
                        }
                    }
                    let done = comm.cell_stats();
                    comm.join();
                    (warm, done)
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    for (rank, (warm, done)) in stats.into_iter().enumerate() {
        let ops = done.takes - warm.takes;
        assert_eq!(ops, 2 * OPS_STEADY, "rank {rank}: unexpected op count");
        // Steady state is not literally zero-alloc: the LRU front cell can
        // still be ring-held inside the reclaim backlog window, forcing an
        // occasional fresh cell. The pooling invariant is that allocations
        // do NOT scale with ops — a per-op-alloc regression turns this
        // difference from ~0.1% of ops into 100% of them.
        let fresh = done.allocs - warm.allocs;
        assert!(
            fresh <= ops / 50,
            "rank {rank}: steady-state allocations scale with ops — pooling regressed \
             (warmup {warm:?}, final {done:?})"
        );
        assert_eq!(
            (done.reuses - warm.reuses) + fresh,
            ops,
            "rank {rank}: every op is either a pool reuse or a (rare) fresh alloc"
        );
        assert!(
            warm.allocs <= WARMUP + 8,
            "rank {rank}: warmup allocations should be bounded by the in-flight window, \
             got {warm:?}"
        );
    }
}

/// The parked-consumer wakeup path: a consumer blocked on an empty ring
/// must observe a push promptly, and a producer blocked on a full ring
/// must observe the pop — no missed-wakeup deadlock across many rounds.
#[test]
fn park_unpark_has_no_missed_wakeups() {
    let (mut tx, mut rx) = ring::<u64>(2);
    let t = std::thread::spawn(move || {
        let mut sum = 0u64;
        while let Some(v) = rx.pop_wait() {
            sum += v;
            // slow consumer forces the producer onto the full/park path
            if v % 97 == 0 {
                std::thread::yield_now();
            }
        }
        sum
    });
    for i in 1..=5000u64 {
        tx.push_wait(i).unwrap();
    }
    drop(tx);
    assert_eq!(t.join().unwrap(), 5000 * 5001 / 2);
}
