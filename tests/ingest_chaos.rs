//! Ingest chaos harness: 120 seeded I/O fault schedules against the
//! streaming ingest plane + resilient trainer, each holding ONE
//! invariant — the data-layer twin of `tests/chaos.rs`:
//!
//! > training never hangs, never consumes a corrupt record silently,
//! > and a completed degraded run is **bit-identical** to a clean run
//! > over the same surviving record set (quarantine supplied up front).
//!
//! Each seed samples per-record corruption / transient flakes / stalled
//! reads and per-shard loss / truncation / slowness via
//! `FaultPlan::seeded_with_io` (deterministic per seed — a failing seed
//! replays exactly) and drives `try_run_streaming` over a
//! fault-injectable [`SimShardStore`]. The defenses must hold:
//!
//! * transient faults (flaky reads, stalls, slow shards) heal in place —
//!   retries and hedges, **zero** quarantines;
//! * persistent faults (rot, missing/truncated shards) quarantine
//!   exactly the planned records, never more;
//! * a rank whose whole slice is quarantined surfaces a structured
//!   [`RankFailure`] — not a hang;
//! * with defenses off, planted rot *does* reach training (the negative
//!   control proving the harness can see silent escapes).
//!
//! CI runs this suite under a hard timeout with `GEOFM_CHAOS_SEED`
//! pinned, alongside the rank-fault chaos suite.

use geofm_data::stream::{DefenseConfig, StreamConfig};
use geofm_data::store::SimShardStore;
use geofm_data::{Batch, DatasetKind, IngestPlane};
use geofm_fsdp::{try_run_streaming, DistReport, FsdpConfig, ResilienceConfig, ShardingStrategy};
use geofm_nn::{Linear, Module, ParamVisitor};
use geofm_resilience::{FailureReport, FaultMix, FaultPlan, RecordId};
use geofm_tensor::{Tensor, TensorRng};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 6;
const PER_SHARD: usize = 24;
const IMG: usize = 2;
const CHANNELS: usize = 1;
const RECORD_LEN: usize = CHANNELS * IMG * IMG; // 4 features
const GLOBAL_BATCH: usize = 12;
const WORLD: usize = 2;
const STEPS: usize = 6;
const DATA_SEED: u64 = 7;
const SHUFFLE_SEED: u64 = 21;

struct Toy {
    a: Linear,
}

impl Module for Toy {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.a.visit_params(f);
    }
}

impl Toy {
    fn new(seed: u64) -> (Self, Vec<usize>) {
        let mut rng = TensorRng::seed_from(seed);
        let mut a = Linear::new(RECORD_LEN, 2, &mut rng, "a");
        let units = vec![a.num_params()];
        (Self { a }, units)
    }

    /// Regress the record features onto a two-hot target derived from the
    /// label — every surviving row influences the gradients, so one
    /// silently corrupted record changes the final parameters.
    fn compute(&mut self, batch: &Batch) -> f32 {
        self.zero_grad();
        let rows = batch.labels.len();
        let mut y = Tensor::zeros(&[rows, 2]);
        for (i, &label) in batch.labels.iter().enumerate() {
            y.data_mut()[i * 2 + label % 2] = 1.0;
        }
        let out = self.a.forward(&batch.images);
        let diff = out.sub(&y);
        let n = diff.numel() as f32;
        let loss = diff.sum_sq() / n;
        let dy = diff.scale(2.0 / n);
        let _ = self.a.backward(&dy);
        loss
    }
}

fn seed_base() -> u64 {
    std::env::var("GEOFM_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn store(plan: Arc<FaultPlan>) -> Arc<SimShardStore> {
    Arc::new(SimShardStore::generate(
        DatasetKind::Ucm,
        SHARDS,
        PER_SHARD,
        IMG,
        CHANNELS,
        DATA_SEED,
        plan,
    ))
}

fn stream_cfg(quarantine: BTreeSet<RecordId>, defense: DefenseConfig) -> StreamConfig {
    let mut cfg = StreamConfig::new(GLOBAL_BATCH, SHUFFLE_SEED);
    // keep hedges snappy under injected stalls so 120 schedules stay fast
    cfg.defense = DefenseConfig { timeout_floor: Duration::from_millis(5), ..defense };
    cfg.quarantine = quarantine;
    cfg
}

fn run(plane: Arc<IngestPlane>) -> Result<DistReport, FailureReport> {
    try_run_streaming(
        FsdpConfig::tuned(ShardingStrategy::FullShard),
        WORLD,
        0.01,
        STEPS,
        |_| Toy::new(11),
        plane,
        |m, batch, _rank, _world, _step| m.compute(batch),
        |_| 0.01,
        None,
        ResilienceConfig::disabled(),
    )
}

fn bits(report: &DistReport) -> (Vec<u32>, Vec<u32>) {
    (
        report.final_params.iter().map(|v| v.to_bits()).collect(),
        report.mean_losses.iter().map(|v| v.to_bits()).collect(),
    )
}

/// Run one seeded I/O schedule and assert the ingest chaos invariant.
fn ingest_schedule(seed: u64) {
    let mix = FaultMix {
        // per-record faults: rot, transient flakes, stalls
        io_corrupt_prob: 0.01,
        io_flaky_prob: 0.02,
        io_stall_prob: 0.004,
        io_stall_ms: (10, 25),
        // per-shard faults: loss, truncation, slowness
        io_missing_prob: 0.03,
        io_truncate_prob: 0.03,
        io_slow_prob: 0.05,
        io_slow_ms: (1, 3),
        ..FaultMix::crashes_only(0.0)
    };
    let plan =
        Arc::new(FaultPlan::seeded_with_io(seed, WORLD, STEPS, SHARDS, PER_SHARD, &mix));
    let plane = Arc::new(IngestPlane::new(
        store(Arc::clone(&plan)),
        stream_cfg(BTreeSet::new(), DefenseConfig::default()),
    ));

    let started = Instant::now();
    let outcome = run(Arc::clone(&plane));
    let elapsed = started.elapsed();

    // never hang: stalls are hedged past, structural faults fail fast
    assert!(
        elapsed < Duration::from_secs(30),
        "seed {seed}: schedule took {elapsed:?} — ingest hang regression (plan: {:?})",
        plan.events()
    );

    let data = match &outcome {
        Ok(report) => report.data.clone().expect("streaming run must carry a DataReport"),
        Err(report) => {
            // a failed schedule must explain itself, and still account
            // for its ingest activity
            assert!(!report.failures.is_empty(), "seed {seed}: failure report with no failures");
            *report.data.clone().expect("failed streaming run must carry a DataReport")
        }
    };

    // quarantine soundness: only records a *persistent* planned fault
    // covers may be condemned — transient flakes and stalls must heal
    for id in &data.quarantined {
        let planned = plan.io_corrupt(id.shard, id.record)
            || plan.io_missing(id.shard)
            || plan.io_truncated(id.shard).is_some();
        assert!(
            planned,
            "seed {seed}: record {id} quarantined without a persistent planned fault \
             (plan: {:?})",
            plan.events()
        );
    }
    for &shard in &data.quarantined_shards {
        assert!(
            plan.io_missing(shard) || plan.io_truncated(shard).is_some(),
            "seed {seed}: shard {shard} condemned without a shard-fatal planned fault"
        );
    }

    let Ok(report) = outcome else {
        return; // structured failure is an allowed outcome
    };

    // the degradation contract: bit-identical to a clean run over the
    // same surviving record set, quarantine supplied up front
    let quarantine: BTreeSet<RecordId> = data.quarantined.iter().copied().collect();
    let clean_plane = Arc::new(IngestPlane::new(
        store(Arc::new(FaultPlan::none())),
        stream_cfg(quarantine, DefenseConfig::default()),
    ));
    let clean = run(clean_plane).expect("clean comparator must succeed");
    assert_eq!(
        bits(&report),
        bits(&clean),
        "seed {seed}: degraded run diverged from clean run over the surviving records \
         (quarantined: {:?}, plan: {:?})",
        data.quarantined,
        plan.events()
    );
}

fn ingest_range(lo: u64, hi: u64) {
    let base = seed_base();
    for seed in lo..hi {
        ingest_schedule(base + seed);
    }
}

// 120 schedules, split so the test runner parallelises the batches.

#[test]
fn ingest_chaos_seeds_000_039() {
    ingest_range(0, 40);
}

#[test]
fn ingest_chaos_seeds_040_079() {
    ingest_range(40, 80);
}

#[test]
fn ingest_chaos_seeds_080_119() {
    ingest_range(80, 120);
}

/// The negative control: with defenses off, planted rot flows into
/// training — the run completes but silently diverges from clean. This
/// proves the harness would catch a silent escape if the defenses let
/// one through.
#[test]
fn undefended_rot_is_visible_to_the_harness() {
    let rotten = Arc::new(IngestPlane::new(
        store(Arc::new(FaultPlan::none().with_corrupt_record(2, 5).with_corrupt_record(4, 1))),
        stream_cfg(BTreeSet::new(), DefenseConfig::off()),
    ));
    let clean = Arc::new(IngestPlane::new(
        store(Arc::new(FaultPlan::none())),
        stream_cfg(BTreeSet::new(), DefenseConfig::off()),
    ));
    let a = run(rotten).expect("undefended run still completes");
    let b = run(clean).expect("clean run completes");
    assert!(a.data.as_ref().unwrap().quarantined.is_empty(), "defenses off: nothing quarantined");
    assert_ne!(
        bits(&a),
        bits(&b),
        "consumed rot must change training results — otherwise the bit-identity \
         invariant above is vacuous"
    );
}

/// Same seed, same schedule, same bits: the whole faulted pipeline is
/// deterministic even with hedging and retries in play.
#[test]
fn faulted_runs_are_deterministic_per_seed() {
    let go = || {
        let plan = Arc::new(FaultPlan::seeded_with_io(
            1234,
            WORLD,
            STEPS,
            SHARDS,
            PER_SHARD,
            &FaultMix::io_only(0.02, 0.05),
        ));
        let plane = Arc::new(IngestPlane::new(
            store(plan),
            stream_cfg(BTreeSet::new(), DefenseConfig::default()),
        ));
        run(plane)
    };
    match (go(), go()) {
        (Ok(a), Ok(b)) => {
            assert_eq!(bits(&a), bits(&b));
            assert_eq!(
                a.data.as_ref().unwrap().quarantined,
                b.data.as_ref().unwrap().quarantined
            );
        }
        (Err(a), Err(b)) => {
            assert_eq!(
                a.data.as_ref().unwrap().quarantined,
                b.data.as_ref().unwrap().quarantined
            );
        }
        (a, b) => panic!(
            "same seed produced different outcomes: {:?} vs {:?}",
            a.is_ok(),
            b.is_ok()
        ),
    }
}

/// A rank whose whole slice is quarantined must surface a structured
/// rank failure — never hang, never fabricate data.
#[test]
fn fully_quarantined_slice_fails_structurally() {
    // condemn every record up front
    let all: BTreeSet<RecordId> = (0..SHARDS)
        .flat_map(|s| (0..PER_SHARD).map(move |r| RecordId { shard: s, record: r }))
        .collect();
    let plane = Arc::new(IngestPlane::new(
        store(Arc::new(FaultPlan::none())),
        stream_cfg(all, DefenseConfig::default()),
    ));
    let started = Instant::now();
    let err = run(plane).expect_err("nothing to train on must fail");
    assert!(started.elapsed() < Duration::from_secs(30), "empty corpus must fail fast");
    assert!(
        err.failures.iter().any(|f| f.cause.contains("quarantined")),
        "failure must name the ingest cause: {:?}",
        err.failures
    );
}

/// Satellite: the ingest watermarks ride the DistReport, so an
/// input-bound step is distinguishable from a compute straggler.
#[test]
fn dist_report_surfaces_ingest_watermarks() {
    let plane = Arc::new(IngestPlane::new(
        store(Arc::new(FaultPlan::none())),
        stream_cfg(BTreeSet::new(), DefenseConfig::default()),
    ));
    let report = run(plane).expect("clean streaming run succeeds");
    let data = report.data.expect("streaming runs attach ingest accounting");
    // at least every consumed record, plus whatever the double-buffered
    // prefetchers read ahead past the final step
    assert!(data.records_read >= (GLOBAL_BATCH * STEPS) as u64);
    assert_eq!(data.bytes_read, data.records_read * (RECORD_LEN * 4) as u64);
    assert!(data.wait_ns_max > 0, "first batch always waits on the prefetcher");
    assert!(data.queue_depth_max >= 0);
    assert!(data.quarantined.is_empty() && data.dropped_rows == 0);
}
