//! Hook-equivalence suite for the composable rank runtime.
//!
//! The middleware refactor's load-bearing claim is that hooks are
//! **observational**: a `RuntimeStack` with extra `Stage::Observe`
//! middleware interleaved between every policy layer must produce
//! bit-identical training outcomes to the bare stack — same final
//! parameter bits, same loss-curve bits, same guard accounting, same
//! structured failures — across the same fault climates the pinned
//! chaos/sdc/elastic corpora exercise.
//!
//! Each schedule here runs twice: once with no probe installed (the
//! production configuration) and once with a process-global
//! [`ProbeCounters`] probe installed, which makes the trainer build its
//! stack with a `ProbeMw` observer between every policy middleware. The
//! deterministic report surface must not move a bit while the probe's
//! hook counters must — proving the observers really ran inside the hot
//! path rather than being compiled away.
//!
//! The probe registry is process-global, so every test that touches it
//! serialises on one mutex; the negative-control tests for stack
//! construction ride the same file because they share the middleware
//! vocabulary.
//!
//! Negative controls (the satellite contract): a misordered stack — the
//! guard ahead of health recording, or a checkpoint scheduled inside the
//! drain layer — must be rejected at **construction** with a structured
//! [`StackError`] naming both offenders, never silently reordered.

use geofm_fsdp::runtime::{install_probe, uninstall_probe};
use geofm_fsdp::{
    try_run_elastic, Descriptor, DistReport, ElasticConfig, FsdpConfig, GuardConfig, ProbeCounters,
    RankMiddleware, ResilienceConfig, RuntimeStack, ShardingStrategy, Stage, StackError,
};
use geofm_nn::{Linear, Module, ParamVisitor};
use geofm_resilience::{FailureReport, FaultMix, FaultPlan};
use geofm_tensor::{Tensor, TensorRng};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

struct Toy {
    a: Linear,
    b: Linear,
}

impl Module for Toy {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.a.visit_params(f);
        self.b.visit_params(f);
    }
}

impl Toy {
    fn new(seed: u64) -> (Self, Vec<usize>) {
        let mut rng = TensorRng::seed_from(seed);
        let mut a = Linear::new(3, 2, &mut rng, "a");
        let mut b = Linear::new(3, 2, &mut rng, "b");
        let units = vec![a.num_params(), b.num_params()];
        (Self { a, b }, units)
    }

    fn compute(&mut self, x: &Tensor, y: &Tensor) -> f32 {
        self.zero_grad();
        let ya = self.a.forward(x);
        let yb = self.b.forward(x);
        let out = ya.add(&yb);
        let diff = out.sub(y);
        let n = diff.numel() as f32;
        let loss = diff.sum_sq() / n;
        let dy = diff.scale(2.0 / n);
        let _ = self.a.backward(&dy);
        let _ = self.b.backward(&dy);
        loss
    }
}

const WORLD: usize = 4;
const STEPS: usize = 6;
const STRATEGIES: [ShardingStrategy; 4] = [
    ShardingStrategy::FullShard,
    ShardingStrategy::ShardGradOp,
    ShardingStrategy::Hybrid { shard_size: 2 },
    ShardingStrategy::NoShard,
];

fn seed_base() -> u64 {
    std::env::var("GEOFM_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// The probe registry is process-global; serialise every test that
/// installs/uninstalls it (and every trainer run that might observe it).
fn probe_lock() -> &'static Mutex<()> {
    static LOCK: Mutex<()> = Mutex::new(());
    &LOCK
}

/// Gray + corruption faults only: the climates whose outcomes are
/// bit-deterministic between two identical runs. Fail-stop faults are
/// deliberately absent from the sampled mix — a crash's timeout-staggered
/// teardown can consume a varying number of restarts (and with them,
/// which pending fault draws get wasted), so two *identical* runs need
/// not match bit-for-bit; run-to-run nondeterminism would be charged to
/// the probe. Fail-stop and elastic transitions are covered by the
/// scripted single-event corpus below, where the restart boundary is
/// unambiguous.
fn equivalence_mix() -> FaultMix {
    FaultMix {
        straggler_prob: 0.03,
        straggler_ms: (1, 10),
        degraded_rank_prob: 0.08,
        degraded_link_prob: 0.08,
        bitflip_prob: 0.03,
        poison_prob: 0.03,
        ..FaultMix::crashes_only(0.0)
    }
}

fn ckpt_dir(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("geofm-rteq-{tag}-{seed}-{}", std::process::id()))
}

fn run_once(
    strategy: ShardingStrategy,
    overlap: bool,
    plan: Arc<FaultPlan>,
    dir: &std::path::Path,
) -> Result<DistReport, FailureReport> {
    let resilience = ResilienceConfig {
        fault_plan: plan,
        checkpoint_every: 2,
        checkpoint_path: Some(dir.join("step.ckpt")),
        collective_timeout: Some(Duration::from_millis(300)),
        max_restarts: 3,
        adaptive_timeout: None,
        straggler_threshold: 2.5,
        guard: Some(GuardConfig {
            max_rollbacks: WORLD * STEPS * 2,
            ..GuardConfig::default()
        }),
        elastic: Some(ElasticConfig {
            checkpoint_path: Some(dir.join("elastic.ck3")),
            ..ElasticConfig::default()
        }),
    };
    try_run_elastic(
        if overlap { FsdpConfig::overlapped(strategy) } else { FsdpConfig::tuned(strategy) },
        WORLD,
        0.01,
        STEPS,
        |_| Toy::new(7),
        |m: &mut Toy, rank: usize, world: usize, step: usize| {
            let mut rng = TensorRng::seed_from(5000 + step as u64);
            let x = rng.randn(&[8, 3], 1.0);
            let y = rng.randn(&[8, 2], 1.0);
            let per = 8 / world;
            let xl = x.rows(rank * per, (rank + 1) * per);
            let yl = y.rows(rank * per, (rank + 1) * per);
            m.compute(&xl, &yl)
        },
        |_| 0.01,
        None,
        resilience,
    )
}

/// The deterministic face of an outcome: every field that must be
/// bit-identical between a probed and an unprobed run. Wall-clock-derived
/// fields (the gray-degradation report) are intentionally excluded — a
/// probe may legally change timings, never results.
fn fingerprint(outcome: &Result<DistReport, FailureReport>) -> String {
    match outcome {
        Ok(r) => format!(
            "ok params={:?} losses={:?} traffic={:?} restarts={} guard={:?} reshard={:?}",
            r.final_params.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            r.mean_losses.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            r.traffic,
            r.restarts,
            r.guard,
            r.reshard.events,
        ),
        Err(f) => format!(
            "err restarts={} resumed={:?} failures={:?} guard={:?} reshards={:?}",
            f.restarts_used, f.resumed_from_step, f.failures, f.guard, f.reshards,
        ),
    }
}

/// Run one schedule probe-off then probe-on and hold the equivalence
/// invariant. `make_plan` builds a FRESH plan per run: fault draws are
/// consumed as a run takes them, so the two runs must not share one.
/// Returns the probed run's counters for corpus-level checks.
fn assert_equivalent(
    tag: &str,
    seed: u64,
    overlap: bool,
    make_plan: impl Fn() -> FaultPlan,
) -> ProbeCounters {
    use std::sync::atomic::Ordering;
    let strategy = STRATEGIES[(seed as usize) % STRATEGIES.len()];

    let dir = ckpt_dir(tag, seed);
    let _ = std::fs::remove_dir_all(&dir);
    let bare = run_once(strategy, overlap, Arc::new(make_plan()), &dir);
    let _ = std::fs::remove_dir_all(&dir);

    let counters = Arc::new(ProbeCounters::default());
    install_probe(Arc::clone(&counters));
    let probed = run_once(strategy, overlap, Arc::new(make_plan()), &dir);
    uninstall_probe();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        fingerprint(&bare),
        fingerprint(&probed),
        "{tag} seed {seed} ({}, overlap={overlap}): probed run diverged from bare run \
         (plan: {:?})",
        strategy.name(),
        make_plan().events()
    );

    // the observers must actually have run inside the hot path
    let calls = counters.before_forward.load(Ordering::Relaxed)
        + counters.after_backward.load(Ordering::Relaxed)
        + counters.on_step.load(Ordering::Relaxed)
        + counters.on_failure.load(Ordering::Relaxed)
        + counters.on_finish.load(Ordering::Relaxed);
    assert!(calls > 0, "{tag} seed {seed}: probe installed but no hook fired");
    if bare.is_ok() {
        assert!(
            counters.before_forward.load(Ordering::Relaxed) >= STEPS,
            "{tag} seed {seed}: a completed run must cross before_forward every step"
        );
        assert!(
            counters.around_collective.load(Ordering::Relaxed) > 0,
            "{tag} seed {seed}: the step collective schedule was never wrapped"
        );
    }
    Arc::try_unwrap(counters).expect("probe uninstalled; no other owner")
}

/// Chaos-style corpus: the full trainer-side fault cocktail, both
/// engines (odd seeds overlap), sampled across all four strategies.
#[test]
fn probed_runs_match_bare_runs_under_chaos() {
    let _serial = probe_lock().lock().unwrap_or_else(|e| e.into_inner());
    let base = seed_base();
    for seed in 0..16u64 {
        let seed = base + seed;
        assert_equivalent("chaos", seed, seed % 2 == 1, || {
            FaultPlan::seeded(seed, WORLD, STEPS, &equivalence_mix())
        });
    }
}

/// SDC-style corpus: corruption-only schedules with the guard hot — the
/// guard middleware's rollback/skip bookkeeping must be untouched by
/// interleaved observers.
#[test]
fn probed_runs_match_bare_runs_under_corruption() {
    let _serial = probe_lock().lock().unwrap_or_else(|e| e.into_inner());
    let base = seed_base();
    for seed in 0..6u64 {
        let seed = base + 100 + seed;
        assert_equivalent("sdc", seed, seed % 2 == 1, || {
            FaultPlan::seeded(seed, WORLD, STEPS, &FaultMix::corruption_only(0.5))
        });
    }
}

/// Elastic-style corpus: scripted departures and rejoins — the reshard
/// transition chain (drain, consensus, re-partition) must be identical
/// with and without observers, including the recorded ReshardEvents.
#[test]
fn probed_runs_match_bare_runs_across_reshards() {
    let _serial = probe_lock().lock().unwrap_or_else(|e| e.into_inner());
    let base = seed_base();
    let scripted: [fn() -> FaultPlan; 3] = [
        || FaultPlan::none().with_rank_leave(3, 2),
        || FaultPlan::none().with_rank_leave(1, 1).with_spare_rejoin(4),
        || FaultPlan::none().with_rank_crash(2, 3),
    ];
    for (i, make_plan) in scripted.into_iter().enumerate() {
        let seed = base + 200 + i as u64;
        assert_equivalent("elastic", seed, i % 2 == 1, make_plan);
    }
}

// ---------------------------------------------------------------------------
// Negative controls: stack construction rejects broken orderings loudly.
// ---------------------------------------------------------------------------

/// A descriptor-only middleware: `RuntimeStack::new` consults nothing but
/// `descriptor()`, so the ordering laws are testable without constructing
/// any real policy state.
struct At(&'static str, Stage);

impl RankMiddleware<Toy> for At {
    fn descriptor(&self) -> Descriptor {
        Descriptor { name: self.0, stage: self.1 }
    }
}

fn stack_of(mws: Vec<At>) -> Result<RuntimeStack<'static, Toy>, StackError> {
    RuntimeStack::new(
        mws.into_iter().map(|m| Box::new(m) as Box<dyn RankMiddleware<Toy>>).collect(),
    )
}

/// The canonical ordering is accepted (sanity for the controls below).
#[test]
fn canonical_stack_order_is_accepted() {
    let stack = stack_of(vec![
        At("health", Stage::Health),
        At("guard", Stage::Guard),
        At("inject", Stage::Inject),
        At("checkpoint", Stage::Checkpoint),
        At("drain", Stage::Drain),
    ]);
    assert!(stack.is_ok(), "the canonical middleware order must construct");
}

/// Guard ahead of health: a rollback would erase health statistics that
/// were never recorded — rejected at construction, naming both layers.
#[test]
fn guard_before_health_is_rejected_with_structured_error() {
    let err = stack_of(vec![At("guard", Stage::Guard), At("health", Stage::Health)])
        .err()
        .expect("misordered stack must not construct");
    match err {
        StackError::Misordered { first, second, reason } => {
            assert_eq!(first, "guard");
            assert_eq!(second, "health");
            assert!(
                reason.contains("health"),
                "the violation must explain itself, got: {reason}"
            );
        }
        other => panic!("expected Misordered, got {other:?}"),
    }
    // the error is a std::error::Error with a displayable message
    let msg = format!("{}", stack_of(vec![
        At("guard", Stage::Guard),
        At("health", Stage::Health),
    ]).err().unwrap());
    assert!(msg.contains("guard") && msg.contains("health"), "display names both layers: {msg}");
}

/// A checkpoint scheduled inside the drain layer: persisting state after
/// the comm plane has begun tearing down is exactly the torn-write bug
/// the ordering laws exist to forbid.
#[test]
fn checkpoint_inside_drain_is_rejected_with_structured_error() {
    let err = stack_of(vec![
        At("health", Stage::Health),
        At("drain", Stage::Drain),
        At("checkpoint", Stage::Checkpoint),
    ])
    .err()
    .expect("checkpoint after drain must not construct");
    match err {
        StackError::Misordered { first, second, .. } => {
            assert_eq!(first, "drain");
            assert_eq!(second, "checkpoint");
        }
        other => panic!("expected Misordered, got {other:?}"),
    }
}

/// Two policy middleware with the same name would make failure
/// attribution ambiguous — rejected as a duplicate.
#[test]
fn duplicate_policy_names_are_rejected() {
    let err = stack_of(vec![At("guard", Stage::Guard), At("guard", Stage::Guard)])
        .err()
        .expect("duplicate names must not construct");
    assert!(
        matches!(err, StackError::Duplicate { name: "guard" }),
        "expected Duplicate {{ guard }}, got {err:?}"
    );
}

/// Observers are exempt from both ordering and duplication: any number
/// of probes may interleave anywhere — the freedom the equivalence suite
/// above depends on.
#[test]
fn observers_interleave_anywhere_without_tripping_the_ordering_laws() {
    let stack = stack_of(vec![
        At("probe", Stage::Observe),
        At("health", Stage::Health),
        At("probe", Stage::Observe),
        At("guard", Stage::Guard),
        At("probe", Stage::Observe),
        At("drain", Stage::Drain),
        At("probe", Stage::Observe),
    ]);
    assert!(stack.is_ok(), "Observe-stage middleware must be exempt from the ordering laws");
}
