//! Differential suite for the blocked compute kernels: the cache-blocked
//! matmul family (`geofm_tensor::matmul`) against textbook three-loop
//! references, and the fused AdamW against its retained scalar reference
//! (`AdamW::step_reference`).
//!
//! The contract under test is the one `DESIGN.md` §13 states: blocking and
//! fusion reorder *memory traffic*, never the per-element floating-point
//! operation sequence. For the AXPY-shaped kernels (`matmul`,
//! `matmul_at_b`, the batched variants) and for AdamW that means
//! **bit-identical** results — asserted across ~64 seeded shapes per
//! kernel, deliberately including non-multiples of the MC/KC/NC tiles,
//! degenerate dims, denormals, zero gradients and NaN/∞ inputs. The
//! dot-shaped `matmul_a_bt` uses eight accumulation chains and is held to
//! a tight relative tolerance instead.

use geofm_nn::{AdamW, Optimizer};
use geofm_tensor::{bmm, bmm_a_bt, bmm_at_b, matmul, matmul_a_bt, matmul_at_b, Tensor, TensorRng};

const TRIALS: u64 = 64;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Bit patterns with every NaN collapsed to one canonical encoding.
/// IEEE 754 leaves the sign/payload of a NaN *result* unspecified and
/// LLVM exploits that (e.g. commuting a multiply changes which operand's
/// NaN propagates, flipping the sign bit between opt levels), so two
/// correct kernels may legally differ in NaN bits while agreeing on
/// everything observable: which lanes are NaN, and the exact bits of
/// every non-NaN lane — denormals, signed zeros and infinities included.
fn canonical_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| if x.is_nan() { 0x7FC0_0000 } else { x.to_bits() }).collect()
}

/// Seeded dims sweeping 1..~200: below, at and above every tile boundary
/// (MC=32 rows, KC=64, NC=128), with exact tile multiples mixed in.
fn trial_dims(seed: u64, trial: u64) -> (usize, usize, usize) {
    let mut rng = TensorRng::seed_from(seed ^ trial.wrapping_mul(0x9E37_79B9));
    let pick = |rng: &mut TensorRng| match rng.below(4) {
        0 => rng.below(8) + 1,            // tiny: 1..=8
        1 => [32, 64, 128][rng.below(3)], // exact tile multiples
        2 => [31, 33, 63, 65, 127, 129][rng.below(6)], // straddling tiles
        _ => rng.below(200) + 1,          // anything
    };
    (pick(&mut rng), pick(&mut rng), pick(&mut rng))
}

fn rand_tensor(rng: &mut TensorRng, shape: &[usize]) -> Tensor {
    rng.randn(shape, 1.0)
}

fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dim(0), a.dim(1));
    let n = b.dim(1);
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for kk in 0..k {
                s += a.at(&[i, kk]) * b.at(&[kk, j]);
            }
            out.set(&[i, j], s);
        }
    }
    out
}

fn naive_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.dim(0), a.dim(1));
    let n = b.dim(1);
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for kk in 0..k {
                s += a.at(&[kk, i]) * b.at(&[kk, j]);
            }
            out.set(&[i, j], s);
        }
    }
    out
}

fn naive_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dim(0), a.dim(1));
    let n = b.dim(0);
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for kk in 0..k {
                s += a.at(&[i, kk]) * b.at(&[j, kk]);
            }
            out.set(&[i, j], s);
        }
    }
    out
}

#[test]
fn blocked_matmul_bit_identical_to_naive_across_shapes() {
    for trial in 0..TRIALS {
        let (m, k, n) = trial_dims(11, trial);
        let mut rng = TensorRng::seed_from(100 + trial);
        let a = rand_tensor(&mut rng, &[m, k]);
        let b = rand_tensor(&mut rng, &[k, n]);
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        assert_eq!(
            bits(fast.data()),
            bits(slow.data()),
            "trial {trial} ({m}x{k}x{n}): blocked matmul diverged from naive"
        );
    }
}

#[test]
fn blocked_at_b_bit_identical_to_naive_across_shapes() {
    for trial in 0..TRIALS {
        let (m, k, n) = trial_dims(22, trial);
        let mut rng = TensorRng::seed_from(200 + trial);
        let a = rand_tensor(&mut rng, &[k, m]);
        let b = rand_tensor(&mut rng, &[k, n]);
        let fast = matmul_at_b(&a, &b);
        let slow = naive_at_b(&a, &b);
        assert_eq!(
            bits(fast.data()),
            bits(slow.data()),
            "trial {trial} ({m}x{k}x{n}): blocked matmul_at_b diverged from naive"
        );
    }
}

#[test]
fn a_bt_matches_naive_within_tight_tolerance() {
    // dot-shaped kernel: eight accumulation chains reassociate the sum, so
    // the contract is a tight relative error bound, not bit equality
    for trial in 0..TRIALS {
        let (m, k, n) = trial_dims(33, trial);
        let mut rng = TensorRng::seed_from(300 + trial);
        let a = rand_tensor(&mut rng, &[m, k]);
        let b = rand_tensor(&mut rng, &[n, k]);
        let fast = matmul_a_bt(&a, &b);
        let slow = naive_a_bt(&a, &b);
        for (i, (x, y)) in fast.data().iter().zip(slow.data()).enumerate() {
            let scale = y.abs().max((k as f32).sqrt());
            assert!(
                (x - y).abs() <= 1e-5 * scale,
                "trial {trial} ({m}x{k}x{n}) elem {i}: {x} vs {y}"
            );
        }
    }
}

#[test]
fn batched_kernels_bit_identical_to_their_2d_cores() {
    // bmm routes through the same blocked panel bodies as the 2-D kernels;
    // slabwise results must therefore match the 2-D calls bit for bit
    for trial in 0..16 {
        let (m, k, n) = trial_dims(44, trial);
        let bs = (trial as usize % 3) + 1;
        let mut rng = TensorRng::seed_from(400 + trial);
        let a = rand_tensor(&mut rng, &[bs, m, k]);
        let b = rand_tensor(&mut rng, &[bs, k, n]);
        let out = bmm(&a, &b);
        let abt_b = rand_tensor(&mut rng, &[bs, n, k]);
        let out_abt = bmm_a_bt(&a, &abt_b);
        let at = rand_tensor(&mut rng, &[bs, k, m]);
        let out_atb = bmm_at_b(&at, &b);
        for bi in 0..bs {
            let asl = Tensor::from_vec(&[m, k], a.data()[bi * m * k..(bi + 1) * m * k].to_vec());
            let bsl = Tensor::from_vec(&[k, n], b.data()[bi * k * n..(bi + 1) * k * n].to_vec());
            let expect = matmul(&asl, &bsl);
            assert_eq!(
                bits(expect.data()),
                bits(&out.data()[bi * m * n..(bi + 1) * m * n]),
                "trial {trial} slab {bi}: bmm diverged from matmul"
            );
            let absl =
                Tensor::from_vec(&[n, k], abt_b.data()[bi * n * k..(bi + 1) * n * k].to_vec());
            let expect = matmul_a_bt(&asl, &absl);
            assert_eq!(
                bits(expect.data()),
                bits(&out_abt.data()[bi * m * n..(bi + 1) * m * n]),
                "trial {trial} slab {bi}: bmm_a_bt diverged from matmul_a_bt"
            );
            let atsl = Tensor::from_vec(&[k, m], at.data()[bi * k * m..(bi + 1) * k * m].to_vec());
            let expect = matmul_at_b(&atsl, &bsl);
            assert_eq!(
                bits(expect.data()),
                bits(&out_atb.data()[bi * m * n..(bi + 1) * m * n]),
                "trial {trial} slab {bi}: bmm_at_b diverged from matmul_at_b"
            );
        }
    }
}

#[test]
fn matmul_edge_values_follow_ieee_like_the_reference() {
    // ±0, ∞, NaN, denormals: the blocked kernel must propagate them the
    // way the naive loop does (no zero-skip shortcuts)
    let specials = [
        0.0f32,
        -0.0,
        1.0,
        -1.0,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        f32::MIN_POSITIVE,
        f32::MIN_POSITIVE / 2.0, // denormal
        1e-38,
        1e38,
    ];
    let mut rng = TensorRng::seed_from(77);
    for trial in 0..TRIALS {
        let (m, k, n) = trial_dims(55, trial);
        let fill = |rng: &mut TensorRng, len: usize| -> Vec<f32> {
            (0..len)
                .map(|_| {
                    if rng.below(4) == 0 {
                        specials[rng.below(specials.len())]
                    } else {
                        rng.normal()
                    }
                })
                .collect()
        };
        let a = Tensor::from_vec(&[m, k], fill(&mut rng, m * k));
        let b = Tensor::from_vec(&[k, n], fill(&mut rng, k * n));
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        assert_eq!(
            canonical_bits(fast.data()),
            canonical_bits(slow.data()),
            "trial {trial} ({m}x{k}x{n}): edge-value matmul diverged \
             (non-NaN bits exact, NaNs canonicalized)"
        );
    }
}

// ---------------------------------------------------------------------------
// Fused AdamW vs scalar reference.

fn adamw_pair(len: usize, wd: f32, mask: Option<Vec<bool>>) -> (AdamW, AdamW) {
    let make = || {
        let opt = AdamW::new(len, wd);
        match &mask {
            Some(m) => opt.with_decay_mask(m.clone()),
            None => opt,
        }
    };
    (make(), make())
}

/// Run `steps` updates through both implementations and assert bitwise
/// equality of parameters and exported state after every step (NaN lanes
/// canonicalized — see [`canonical_bits`]; for finite inputs this is
/// plain bit equality).
fn assert_adamw_matches(
    len: usize,
    wd: f32,
    mask: Option<Vec<bool>>,
    lr: f32,
    grad_of: impl Fn(u64, usize) -> f32,
    what: &str,
) {
    let (mut fused, mut reference) = adamw_pair(len, wd, mask);
    let mut pf: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin()).collect();
    let mut pr = pf.clone();
    for step in 0..12u64 {
        let grads: Vec<f32> = (0..len).map(|i| grad_of(step, i)).collect();
        fused.step(&mut pf, &grads, lr);
        reference.step_reference(&mut pr, &grads, lr);
        assert_eq!(
            canonical_bits(&pf),
            canonical_bits(&pr),
            "{what}: params diverged at step {step}"
        );
        let (sf, sr) = (fused.export_state(), reference.export_state());
        assert_eq!(
            canonical_bits(&sf.m),
            canonical_bits(&sr.m),
            "{what}: first moment diverged at step {step}"
        );
        assert_eq!(
            canonical_bits(&sf.v),
            canonical_bits(&sr.v),
            "{what}: second moment diverged at step {step}"
        );
    }
}

#[test]
fn fused_adamw_bit_identical_normal_grads() {
    for trial in 0..16u64 {
        let mut rng = TensorRng::seed_from(500 + trial);
        let len = rng.below(300) + 1;
        let seeds: Vec<f32> = (0..len * 12).map(|_| rng.normal()).collect();
        assert_adamw_matches(
            len,
            0.05,
            None,
            1.5e-4,
            |step, i| seeds[(step as usize * len + i) % seeds.len()],
            &format!("trial {trial} uniform decay"),
        );
    }
}

#[test]
fn fused_adamw_bit_identical_with_decay_mask() {
    for trial in 0..16u64 {
        let mut rng = TensorRng::seed_from(600 + trial);
        let len = rng.below(200) + 1;
        let mask: Vec<bool> = (0..len).map(|_| rng.below(2) == 0).collect();
        let seeds: Vec<f32> = (0..len * 12).map(|_| rng.normal()).collect();
        assert_adamw_matches(
            len,
            0.1,
            Some(mask),
            1e-3,
            |step, i| seeds[(step as usize * len + i) % seeds.len()],
            &format!("trial {trial} masked decay"),
        );
    }
}

#[test]
fn fused_adamw_bit_identical_zero_weight_decay() {
    assert_adamw_matches(64, 0.0, None, 1e-3, |s, i| ((s as f32) - i as f32).cos(), "wd=0");
}

#[test]
fn fused_adamw_bit_identical_on_edge_gradients() {
    // zero grads, denormals, huge/tiny magnitudes, NaN and ±∞ — the fused
    // path must produce the same bits (NaN payload propagation included)
    let specials = [
        0.0f32,
        -0.0,
        f32::MIN_POSITIVE,
        f32::MIN_POSITIVE / 4.0, // denormal
        1e-30,
        1e30,
        f32::MAX,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
    ];
    let len = specials.len() * 4;
    let mask: Vec<bool> = (0..len).map(|i| i % 3 != 0).collect();
    assert_adamw_matches(
        len,
        0.05,
        Some(mask),
        1.5e-4,
        |step, i| {
            let v = specials[(i + step as usize) % specials.len()];
            if i % 2 == 0 {
                v
            } else {
                -v
            }
        },
        "edge gradients",
    );
}
