//! Buffer-pool suite: the allocation-recycling layer under the nonblocking
//! collectives (`geofm_collectives::pool`).
//!
//! Three properties:
//!
//! * **zero steady-state allocations** — after a warmup step, every
//!   collective's input copy and output buffer is served from the pool
//!   (observed through [`PoolStats`], at the raw-collective level and
//!   through a full FSDP trainer);
//! * **no cross-collective aliasing** — concurrent in-flight collectives
//!   never observe each other's buffers (distinct results, correct
//!   contents, even with handles waited out of creation order);
//! * **pooling is invisible to correctness** — the chaos/SDC harnesses'
//!   overlapped-vs-blocking comparisons (`tests/chaos.rs`, `tests/sdc.rs`)
//!   already pin this end to end; here the corrupt-verdict path is checked
//!   directly against a pooled comm thread.

use geofm_collectives::{BufferPool, CollectiveError, CommThread, Group};
use geofm_collectives::{HierarchyLayout, ProcessGroups};
use geofm_fsdp::{FsdpConfig, FsdpRank, ShardingStrategy};
use geofm_nn::{Linear, Module, ParamVisitor};
use geofm_tensor::{Tensor, TensorRng};
use std::sync::Arc;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn steady_state_raw_collectives_allocate_nothing() {
    let world = 4;
    let handles = Group::create(world);
    std::thread::scope(|s| {
        for h in handles {
            s.spawn(move || {
                let pool = Arc::new(BufferPool::new());
                let comm = CommThread::spawn_with_pool(Arc::clone(&pool));
                let g = comm.register(&h);
                let data: Vec<f32> = (0..100).map(|i| (i * (h.rank() + 1)) as f32).collect();
                // warmup: populate the size classes this workload needs
                for _ in 0..3 {
                    comm.recycle(comm.all_reduce_async(&g, &data).wait().unwrap());
                    comm.recycle(comm.all_gather_async(&g, &data).wait().unwrap());
                    comm.recycle(comm.reduce_scatter_async(&g, &data).wait().unwrap());
                }
                let warm = pool.stats();
                assert!(warm.allocs > 0, "warmup must have allocated the initial buffers");
                for _ in 0..25 {
                    comm.recycle(comm.all_reduce_async(&g, &data).wait().unwrap());
                    comm.recycle(comm.all_gather_async(&g, &data).wait().unwrap());
                    comm.recycle(comm.reduce_scatter_async(&g, &data).wait().unwrap());
                }
                let steady = pool.stats();
                assert_eq!(
                    steady.allocs, warm.allocs,
                    "rank {}: steady-state collectives must be allocation-free \
                     (takes {} reuses {})",
                    h.rank(),
                    steady.takes,
                    steady.reuses
                );
                assert!(
                    steady.reuses > warm.reuses && steady.takes > warm.takes,
                    "rank {}: free lists must actually serve the takes",
                    h.rank()
                );
                comm.join();
            });
        }
    });
}

#[test]
fn in_flight_collectives_do_not_alias() {
    // many collectives in flight over recycled buffers: each result must
    // be the correct one for its own submission, proving a buffer is never
    // handed to two live jobs at once
    let world = 4;
    let handles = Group::create(world);
    std::thread::scope(|s| {
        for h in handles {
            s.spawn(move || {
                let comm = CommThread::spawn();
                let g = comm.register(&h);
                for round in 0..20u32 {
                    let pending: Vec<_> = (0..8u32)
                        .map(|j| {
                            let data: Vec<f32> =
                                (0..64).map(|i| (round * 8 + j) as f32 + i as f32 * 0.5).collect();
                            comm.all_reduce_async(&g, &data)
                        })
                        .collect();
                    let outs: Vec<Vec<f32>> =
                        pending.into_iter().map(|p| p.wait().unwrap()).collect();
                    for (j, out) in outs.iter().enumerate() {
                        let expect: Vec<f32> = (0..64)
                            .map(|i| {
                                (world as f32) * ((round * 8 + j as u32) as f32 + i as f32 * 0.5)
                            })
                            .collect();
                        assert_eq!(
                            bits(&expect),
                            bits(out),
                            "rank {} round {round} job {j}: aliased or stale buffer",
                            h.rank()
                        );
                    }
                    // distinct live buffers: no two results share storage
                    let mut ptrs: Vec<*const f32> = outs.iter().map(|o| o.as_ptr()).collect();
                    ptrs.sort();
                    ptrs.dedup();
                    assert_eq!(ptrs.len(), outs.len(), "two live results share a buffer");
                    for out in outs {
                        comm.recycle(out);
                    }
                }
                comm.join();
            });
        }
    });
}

#[test]
fn recycled_buffers_come_back_cleared_not_stale() {
    let pool = BufferPool::new();
    let mut a = pool.take(16);
    a.extend_from_slice(&[7.0; 16]);
    pool.put(a);
    let b = pool.take(16);
    assert!(b.is_empty(), "reused buffer must come back empty");
    let c = pool.take_zeroed(16);
    assert!(c.iter().all(|&v| v == 0.0), "zeroed take must not expose stale data");
}

struct Toy {
    a: Linear,
    b: Linear,
}

impl Module for Toy {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.a.visit_params(f);
        self.b.visit_params(f);
    }
}

impl Toy {
    fn new(seed: u64) -> (Self, Vec<usize>) {
        let mut rng = TensorRng::seed_from(seed);
        let mut a = Linear::new(3, 2, &mut rng, "a");
        let mut b = Linear::new(3, 2, &mut rng, "b");
        let units = vec![a.num_params(), b.num_params()];
        (Self { a, b }, units)
    }

    fn compute(&mut self, x: &Tensor, y: &Tensor) -> f32 {
        self.zero_grad();
        let ya = self.a.forward(x);
        let yb = self.b.forward(x);
        let diff = ya.add(&yb).sub(y);
        let n = diff.numel() as f32;
        let loss = diff.sum_sq() / n;
        let dy = diff.scale(2.0 / n);
        let _ = self.a.backward(&dy);
        let _ = self.b.backward(&dy);
        loss
    }
}

#[test]
fn overlapped_trainer_is_allocation_free_after_warmup() {
    // full FSDP steps through the overlap engine: after the first step has
    // populated the pool's size classes, subsequent steps must not allocate
    // a single comm buffer — for every strategy that exercises the engine
    for strategy in
        [ShardingStrategy::FullShard, ShardingStrategy::ShardGradOp, ShardingStrategy::NoShard]
    {
        let world = 4;
        let shard_size = strategy.shard_group_size(world);
        let groups = ProcessGroups::hierarchy(HierarchyLayout { world, shard_size });
        let config = FsdpConfig::overlapped(strategy);
        std::thread::scope(|s| {
            for g in groups {
                s.spawn(move || {
                    let rank = g.rank;
                    let (model, units) = Toy::new(7);
                    let mut fr = FsdpRank::new(model, &units, config, g, 0.01);
                    let step = |fr: &mut FsdpRank<Toy>, step: usize| {
                        let mut rng = TensorRng::seed_from(9000 + step as u64);
                        let x = rng.randn(&[8, 3], 1.0);
                        let y = rng.randn(&[8, 2], 1.0);
                        let xl = x.rows(rank * 2, rank * 2 + 2);
                        let yl = y.rows(rank * 2, rank * 2 + 2);
                        fr.step(0.01, |m| m.compute(&xl, &yl));
                    };
                    for i in 0..3 {
                        step(&mut fr, i); // warmup
                    }
                    let warm = fr.comm_pool_stats().expect("overlap engine must expose the pool");
                    for i in 3..15 {
                        step(&mut fr, i);
                    }
                    let steady = fr.comm_pool_stats().unwrap();
                    // allocations must not scale with steps. A tiny slack is
                    // allowed because the peak number of simultaneously-live
                    // buffers depends on thread interleaving (prefetch window
                    // + wait-steal), so a post-warmup step can discover a new
                    // liveness peak once — but never per step.
                    let fresh = steady.allocs - warm.allocs;
                    assert!(
                        fresh <= 2,
                        "{} rank {rank}: 12 steady steps allocated {fresh} comm buffers \
                         ({} takes, {} reuses)",
                        strategy.name(),
                        steady.takes - warm.takes,
                        steady.reuses - warm.reuses
                    );
                    assert!(steady.takes > warm.takes, "steps must actually use the pool");
                });
            }
        });
    }
}

#[test]
fn corrupt_verdict_identical_with_pooling() {
    // a checksummed reduce with an armed bit flip: the pooled async path
    // must return the same Corrupt verdict the blocking path does, and the
    // group must stay usable afterwards (in-band detection contract)
    let handles = Group::create(2);
    std::thread::scope(|s| {
        for h in handles {
            s.spawn(move || {
                let h = h.with_checksums(true);
                let comm = CommThread::spawn();
                let g = comm.register(&h);
                // warm the pool so the corrupt round runs on recycled buffers
                for _ in 0..2 {
                    comm.recycle(comm.all_reduce_async(&g, &[1.0f32; 32]).wait().unwrap());
                }
                if h.rank() == 0 {
                    h.arm_bitflip(12);
                }
                let r = comm.all_reduce_async(&g, &[1.0f32; 32]).wait();
                assert!(
                    matches!(r, Err(CollectiveError::Corrupt(_))),
                    "rank {}: expected Corrupt, got {r:?}",
                    h.rank()
                );
                let again = comm.all_reduce_async(&g, &[3.0f32; 32]).wait().unwrap();
                assert!(again.iter().all(|&v| v == 6.0), "group unusable after corrupt verdict");
                comm.join();
            });
        }
    });
}
