//! Equivalence suite for the nonblocking collectives and the FSDP
//! comm/compute overlap engine, holding ONE invariant at two levels:
//!
//! > routing a collective through the per-rank comm thread changes *which
//! > thread blocks* and nothing else — results are **bit-identical** to
//! > the blocking path.
//!
//! Level 1 exercises the three async ops (`all_gather_async`,
//! `reduce_scatter_async`, `all_reduce_async`) against their blocking
//! twins across world sizes {2, 4, 8} and 64 seeded shapes each — one at
//! a time, with the whole batch pipelined in flight, and through the
//! batched `submit_batch` window publication. The async transport under
//! test is the lock-free SPSC ring with pooled scratch buffers
//! (`geofm_collectives::spsc` / `pool`), including the waiter-steals-job
//! inline-execution path taken whenever the comm thread is starved.
//!
//! Level 2 runs the full trainer: for every sharding strategy (and a sweep
//! of prefetch depths) the overlapped engine's final parameters and loss
//! curve must match the blocking engine bit for bit. This is the property
//! that lets the chaos/SDC suites compare overlapped runs against blocking
//! baselines, and the reason `figU`'s hidden-comm gains are "free".
//!
//! CI runs this suite under a hard timeout with `GEOFM_CHAOS_SEED` pinned.

use geofm_collectives::{AsyncOp, CollectiveHandle, CommThread, Group};
use geofm_fsdp::{run_data_parallel, DistReport, FsdpConfig, OverlapConfig, ShardingStrategy};
use geofm_nn::{Linear, Module, ParamVisitor};
use geofm_tensor::{Tensor, TensorRng};

fn seed_base() -> u64 {
    std::env::var("GEOFM_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

const TRIALS: u64 = 64;

/// Seeded input for one (trial, rank) cell. The length is a pure function
/// of the trial (identical across ranks — the SPMD contract); the values
/// depend on the rank so the reduction actually mixes data.
fn trial_input(seed: u64, trial: u64, rank: usize, world: usize) -> Vec<f32> {
    let mut shape_rng = TensorRng::seed_from(seed ^ trial.wrapping_mul(0x9E37_79B9));
    // lengths sweep 1..=300: smaller than, equal to and much larger than
    // the world size, so reduce-scatter sees empty and ragged chunks too
    let len = shape_rng.below(300) + 1;
    let mut rng = TensorRng::seed_from(seed + trial * 1009 + rank as u64 * 7919 + world as u64);
    (0..len).map(|_| rng.normal()).collect()
}

/// Level 1, one world size: every op, blocking vs async on the same group,
/// 64 seeded shapes.
fn ops_match_blocking(world: usize) {
    let seed = seed_base();
    let handles = Group::create(world);
    std::thread::scope(|s| {
        for h in handles {
            s.spawn(move || {
                let comm = CommThread::spawn();
                let g = comm.register(&h);
                for trial in 0..TRIALS {
                    let data = trial_input(seed, trial, h.rank(), world);

                    let mut blocking = data.clone();
                    h.try_all_reduce(&mut blocking).unwrap();
                    let reduced = comm.all_reduce_async(&g, &data).wait().unwrap();
                    assert_eq!(
                        bits(&blocking),
                        bits(&reduced),
                        "world {world} trial {trial} rank {}: all_reduce diverged",
                        h.rank()
                    );

                    let mut gathered_blocking = Vec::new();
                    h.try_all_gather(&data, &mut gathered_blocking).unwrap();
                    let gathered = comm.all_gather_async(&g, &data).wait().unwrap();
                    assert_eq!(
                        bits(&gathered_blocking),
                        bits(&gathered),
                        "world {world} trial {trial} rank {}: all_gather diverged",
                        h.rank()
                    );

                    let mut chunk_blocking = Vec::new();
                    h.try_reduce_scatter(&data, &mut chunk_blocking).unwrap();
                    let chunk = comm.reduce_scatter_async(&g, &data).wait().unwrap();
                    assert_eq!(
                        bits(&chunk_blocking),
                        bits(&chunk),
                        "world {world} trial {trial} rank {}: reduce_scatter diverged",
                        h.rank()
                    );
                    // recycle the pooled outputs so later trials run
                    // allocation-free — the path the trainer uses
                    comm.recycle(reduced);
                    comm.recycle(gathered);
                    comm.recycle(chunk);
                }
                comm.join();
            });
        }
    });
}

#[test]
fn collectives_bit_identical_world_2() {
    ops_match_blocking(2);
}

#[test]
fn collectives_bit_identical_world_4() {
    ops_match_blocking(4);
}

#[test]
fn collectives_bit_identical_world_8() {
    ops_match_blocking(8);
}

/// Level 1, pipelined variant: issue a whole mixed batch of collectives
/// before waiting on any of them. FIFO execution in submission order must
/// keep the results equal to the one-at-a-time blocking schedule.
#[test]
fn pipelined_batch_matches_blocking() {
    let seed = seed_base();
    for world in [2usize, 4, 8] {
        let handles = Group::create(world);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let comm = CommThread::spawn();
                    let g = comm.register(&h);
                    // blocking reference pass first (same order on every rank)
                    let mut expect: Vec<Vec<f32>> = Vec::new();
                    for trial in 0..TRIALS {
                        let data = trial_input(seed, trial, h.rank(), world);
                        match trial % 3 {
                            0 => {
                                let mut buf = data.clone();
                                h.try_all_reduce(&mut buf).unwrap();
                                expect.push(buf);
                            }
                            1 => {
                                let mut out = Vec::new();
                                h.try_all_gather(&data, &mut out).unwrap();
                                expect.push(out);
                            }
                            _ => {
                                let mut out = Vec::new();
                                h.try_reduce_scatter(&data, &mut out).unwrap();
                                expect.push(out);
                            }
                        }
                    }
                    // async pass: everything in flight, then wait in order
                    let pending: Vec<CollectiveHandle> = (0..TRIALS)
                        .map(|trial| {
                            let data = trial_input(seed, trial, h.rank(), world);
                            match trial % 3 {
                                0 => comm.all_reduce_async(&g, &data),
                                1 => comm.all_gather_async(&g, &data),
                                _ => comm.reduce_scatter_async(&g, &data),
                            }
                        })
                        .collect();
                    for (trial, pending) in pending.into_iter().enumerate() {
                        let op = pending.op();
                        let got = pending.wait().unwrap();
                        assert_eq!(
                            bits(&expect[trial]),
                            bits(&got),
                            "world {world} trial {trial} rank {}: pipelined {op} diverged",
                            h.rank()
                        );
                    }
                    comm.join();
                });
            }
        });
    }
}

/// Level 1, batched variant: the whole mixed window goes through
/// `submit_batch` — one release store publishes every job — and must be
/// indistinguishable from the one-at-a-time blocking schedule.
#[test]
fn batched_submission_matches_blocking() {
    let seed = seed_base();
    for world in [2usize, 4, 8] {
        let handles = Group::create(world);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let comm = CommThread::spawn();
                    let g = comm.register(&h);
                    let inputs: Vec<Vec<f32>> = (0..TRIALS)
                        .map(|trial| trial_input(seed, trial, h.rank(), world))
                        .collect();
                    let mut expect: Vec<Vec<f32>> = Vec::new();
                    for (trial, data) in inputs.iter().enumerate() {
                        match trial % 3 {
                            0 => {
                                let mut buf = data.clone();
                                h.try_all_reduce(&mut buf).unwrap();
                                expect.push(buf);
                            }
                            1 => {
                                let mut out = Vec::new();
                                h.try_all_gather(data, &mut out).unwrap();
                                expect.push(out);
                            }
                            _ => {
                                let mut out = Vec::new();
                                h.try_reduce_scatter(data, &mut out).unwrap();
                                expect.push(out);
                            }
                        }
                    }
                    // submit in windows of 8 (a realistic prefetch depth),
                    // waiting each window in issue order before the next
                    for (w, window) in inputs.chunks(8).enumerate() {
                        let ops: Vec<AsyncOp<'_>> = window
                            .iter()
                            .enumerate()
                            .map(|(i, data)| match (w * 8 + i) % 3 {
                                0 => AsyncOp::AllReduce(data),
                                1 => AsyncOp::AllGather(data),
                                _ => AsyncOp::ReduceScatter(data),
                            })
                            .collect();
                        for (i, handle) in comm.submit_batch(&g, &ops).into_iter().enumerate() {
                            let trial = w * 8 + i;
                            let op = handle.op();
                            let got = handle.wait().unwrap();
                            assert_eq!(
                                bits(&expect[trial]),
                                bits(&got),
                                "world {world} trial {trial} rank {}: batched {op} diverged",
                                h.rank()
                            );
                            comm.recycle(got);
                        }
                    }
                    comm.join();
                });
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Level 2: the trainer end to end.

struct Toy {
    a: Linear,
    b: Linear,
}

impl Module for Toy {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.a.visit_params(f);
        self.b.visit_params(f);
    }
}

impl Toy {
    fn new(seed: u64) -> (Self, Vec<usize>) {
        let mut rng = TensorRng::seed_from(seed);
        let mut a = Linear::new(3, 2, &mut rng, "a");
        let mut b = Linear::new(3, 2, &mut rng, "b");
        let units = vec![a.num_params(), b.num_params()];
        (Self { a, b }, units)
    }

    fn compute(&mut self, x: &Tensor, y: &Tensor) -> f32 {
        self.zero_grad();
        let ya = self.a.forward(x);
        let yb = self.b.forward(x);
        let out = ya.add(&yb);
        let diff = out.sub(y);
        let n = diff.numel() as f32;
        let loss = diff.sum_sq() / n;
        let dy = diff.scale(2.0 / n);
        let _ = self.a.backward(&dy);
        let _ = self.b.backward(&dy);
        loss
    }
}

const WORLD: usize = 4;
const STEPS: usize = 6;

fn train(config: FsdpConfig) -> DistReport {
    run_data_parallel(
        config,
        WORLD,
        0.01,
        STEPS,
        |_| Toy::new(7),
        |m, rank, step| {
            let mut rng = TensorRng::seed_from(5000 + step as u64);
            let x = rng.randn(&[8, 3], 1.0);
            let y = rng.randn(&[8, 2], 1.0);
            let per = 8 / WORLD;
            let xl = x.rows(rank * per, (rank + 1) * per);
            let yl = y.rows(rank * per, (rank + 1) * per);
            m.compute(&xl, &yl)
        },
        |_| 0.01,
    )
}

fn assert_equivalent(blocking: &DistReport, overlapped: &DistReport, what: &str) {
    assert_eq!(
        bits(&blocking.final_params),
        bits(&overlapped.final_params),
        "{what}: overlapped final params diverged from blocking"
    );
    assert_eq!(
        bits(&blocking.mean_losses),
        bits(&overlapped.mean_losses),
        "{what}: overlapped loss curve diverged from blocking"
    );
}

/// Every sharding strategy: the overlapped engine (prefetched gathers,
/// double-buffered reduce-scatters) is bit-identical to the blocking one.
#[test]
fn overlapped_trainer_bit_identical_for_every_strategy() {
    let strategies = [
        ShardingStrategy::NoShard,
        ShardingStrategy::Ddp { bucket_bytes: 16 },
        ShardingStrategy::FullShard,
        ShardingStrategy::ShardGradOp,
        ShardingStrategy::Hybrid { shard_size: 1 },
        ShardingStrategy::Hybrid { shard_size: 2 },
        ShardingStrategy::Hybrid { shard_size: 4 },
    ];
    for strategy in strategies {
        let blocking = train(FsdpConfig::tuned(strategy));
        let overlapped = train(FsdpConfig::overlapped(strategy));
        assert_equivalent(&blocking, &overlapped, &strategy.name());
        // the equivalence is about payloads, not transport: the overlap
        // engine moves the same bytes through the same collectives
        assert_eq!(
            blocking.traffic.total(),
            overlapped.traffic.total(),
            "{}: overlap must not change communication volume",
            strategy.name()
        );
    }
}

/// Prefetch depth changes how far the pipeline runs ahead, never what it
/// computes: every depth matches the blocking engine bit for bit.
#[test]
fn prefetch_depth_never_changes_results() {
    let strategy = ShardingStrategy::FullShard;
    let blocking = train(FsdpConfig::tuned(strategy));
    for depth in [1usize, 2, 4] {
        let mut config = FsdpConfig::overlapped(strategy);
        config.overlap = OverlapConfig { enabled: true, prefetch_depth: depth };
        let overlapped = train(config);
        assert_equivalent(&blocking, &overlapped, &format!("FULL_SHARD depth {depth}"));
    }
}
