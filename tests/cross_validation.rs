//! Cross-validation between the three layers of the system:
//!
//! 1. the **real threaded engine** (`geofm-fsdp`) meters actual ring-model
//!    bytes through `geofm-collectives`;
//! 2. the **simulator** (`geofm-frontier`) prices exactly those volumes;
//! 3. the **analytic** ring formulas predict both.
//!
//! If the engine and the simulator ever disagree about how many bytes a
//! strategy moves, the performance study is measuring the wrong system —
//! these tests prevent that.

use geofm::collectives::CollectiveKind;
use geofm::fsdp::{run_data_parallel, FlatLayout, FsdpConfig, ShardingStrategy};
use geofm::nn::Module;
use geofm::tensor::TensorRng;
use geofm::vit::{VitConfig, VitModel};

fn tiny() -> VitConfig {
    VitConfig {
        name: "xval".into(),
        width: 16,
        depth: 2,
        mlp: 32,
        heads: 4,
        patch: 4,
        img: 8,
        channels: 1,
    }
}

fn run(strategy: ShardingStrategy, world: usize, steps: usize) -> geofm::fsdp::DistReport {
    let cfg = tiny();
    run_data_parallel(
        FsdpConfig::tuned(strategy),
        world,
        0.0,
        steps,
        |_| {
            let mut rng = TensorRng::seed_from(5);
            let cfg = tiny();
            let mut m = VitModel::new(&cfg, &mut rng);
            let units = m.unit_param_counts();
            (m, units)
        },
        move |m, rank, step| {
            let mut rng = TensorRng::seed_from(900 + step as u64);
            let imgs = rng.randn(&[4, cfg.channels * 64], 1.0);
            let per = 4 / world;
            let xl = imgs.rows(rank * per, (rank + 1) * per);
            m.zero_grad();
            let enc = m.forward(&xl);
            let n = enc.numel() as f32;
            let loss = enc.sum_sq() / n;
            m.backward(&enc.scale(2.0 / n));
            loss
        },
        |_| 1e-4,
    )
}

/// Analytic all-gather bytes for one full gather pass over every unit.
fn gather_pass_bytes(world: usize) -> u64 {
    let mut rng = TensorRng::seed_from(5);
    let mut model = VitModel::new(&tiny(), &mut rng);
    let units = model.unit_param_counts();
    let layout = FlatLayout::new(&units, world);
    let mut per_rank = 0u64;
    for (u, _) in units.iter().enumerate() {
        let padded = (layout.shard_len(u) * world * 4) as u64;
        per_rank += CollectiveKind::AllGather.ring_bytes_per_rank(padded, world);
    }
    per_rank * world as u64
}

#[test]
fn engine_gather_traffic_matches_analytic_ring_model() {
    let world = 4;
    let steps = 3;
    let report = run(ShardingStrategy::FullShard, world, steps);
    // FULL_SHARD gathers every unit twice per step (forward + backward
    // re-gather) plus once in the final materialize().
    let expected = gather_pass_bytes(world) * (2 * steps as u64 + 1);
    assert_eq!(
        report.traffic.all_gather, expected,
        "engine gathered {} B, ring model predicts {} B",
        report.traffic.all_gather, expected
    );
}

#[test]
fn engine_reduce_traffic_matches_analytic_ring_model() {
    let world = 4;
    let report = run(ShardingStrategy::FullShard, world, 1);
    let mut rng = TensorRng::seed_from(5);
    let mut model = VitModel::new(&tiny(), &mut rng);
    let units = model.unit_param_counts();
    let layout = FlatLayout::new(&units, world);
    let mut per_rank = 0u64;
    for (u, _) in units.iter().enumerate() {
        let padded = (layout.shard_len(u) * world * 4) as u64;
        per_rank += CollectiveKind::ReduceScatter.ring_bytes_per_rank(padded, world);
    }
    assert_eq!(report.traffic.reduce_scatter, per_rank * world as u64);
}

#[test]
fn no_shard_traffic_matches_all_reduce_model() {
    let world = 2;
    let report = run(ShardingStrategy::NoShard, world, 1);
    let mut rng = TensorRng::seed_from(5);
    let mut model = VitModel::new(&tiny(), &mut rng);
    let units = model.unit_param_counts();
    // per-unit all-reduce of the unpadded unit bytes + the scalar norm reduce
    let per_rank: u64 = units
        .iter()
        .map(|&u| CollectiveKind::AllReduce.ring_bytes_per_rank(u as u64 * 4, world))
        .sum();
    // scalar grad-norm all_reduce is only issued by sharded strategies
    assert_eq!(report.traffic.all_reduce, per_rank * world as u64);
    assert_eq!(report.traffic.all_gather, 0);
}

#[test]
fn strategies_order_by_gather_volume() {
    // FULL_SHARD (2 gathers/step) > SHARD_GRAD_OP (1 gather/step) >
    // NO_SHARD (0); +1 materialize pass each for the sharded strategies
    let steps = 2u64;
    let fs = run(ShardingStrategy::FullShard, 4, steps as usize).traffic;
    let sgo = run(ShardingStrategy::ShardGradOp, 4, steps as usize).traffic;
    let ns = run(ShardingStrategy::NoShard, 4, steps as usize).traffic;
    assert!(fs.all_gather > sgo.all_gather && sgo.all_gather > ns.all_gather);
    let pass = gather_pass_bytes(4);
    assert_eq!(fs.all_gather, pass * (2 * steps + 1));
    assert_eq!(sgo.all_gather, pass * (steps + 1));
}

#[test]
fn hybrid_total_traffic_between_extremes() {
    // hybrid(2) moves strictly more than NO_SHARD (gathers) and uses both
    // reduction stages
    let h2 = run(ShardingStrategy::Hybrid { shard_size: 2 }, 4, 1).traffic;
    assert!(h2.all_gather > 0 && h2.reduce_scatter > 0 && h2.all_reduce > 0);
}
