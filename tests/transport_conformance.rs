//! Transport-conformance battery: the executable specification of the
//! [`Transport`] laws (DESIGN.md §17), instantiated identically against
//! all three backends — the production shared-memory engine, the seeded
//! lossy/delayed `SimNetTransport`, and the single-rank loopback
//! reference. A backend is wired into the FSDP engine only after it
//! passes this battery unmodified.
//!
//! The legs, one per law:
//!
//! 1. **Reference semantics** — every blocking verb returns the
//!    bit-exact reference result (sums and rank-order concatenations of
//!    f32 values chosen to be exactly representable).
//! 2. **FIFO submission** — a 32-op mixed nonblocking batch redeems in
//!    issue order with reference results; a second leg redeems tickets
//!    out of issue order and must see the same values.
//! 3. **Poison terminates, never wedges** — one rank poisons instead of
//!    entering the barrier; every peer's blocked and future collective
//!    returns `RankLost` inside a hard wall-clock bound, including
//!    already-submitted nonblocking work.
//! 4. **Checksum verdict agreement** — an armed bit flip surfaces as the
//!    *identical* `CorruptPayload` on every rank, the group stays
//!    barrier-usable, and a single-rank group (no wire) never consumes
//!    the armed flip.
//! 5. **Pooled-buffer steady state** — for backends that pool
//!    (`pool_stats() -> Some`), fresh cell allocations stop growing once
//!    the pool warms up.
//! 6. **Quiesce drains** — after `quiesce`, every outstanding ticket
//!    redeems without further peer progress and blocking verbs still
//!    work.
//!
//! A final cross-backend leg runs one pinned op schedule through all
//! three transports and demands numerically identical outputs — the
//! "passes identically" acceptance criterion, literally.

use geofm_collectives::transport::reference_result;
use geofm_collectives::{
    CollectiveError, LoopbackTransport, RankLost, SharedMemTransport, SimNetConfig,
    SimNetTransport, Transport, TransportOp,
};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(10);
/// Hard bound for "never wedges" legs: comfortably above TIMEOUT plus
/// scheduling noise, far below a hang.
const WEDGE_BOUND: Duration = Duration::from_secs(25);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    SharedMem,
    SimNet,
    Loopback,
}

impl Flavor {
    /// World sizes this backend supports (loopback is the single-rank
    /// reference by construction).
    fn worlds(self) -> &'static [usize] {
        match self {
            Flavor::Loopback => &[1],
            _ => &[1, 2, 4],
        }
    }

    /// One endpoint per rank of a fresh group.
    fn make(self, world: usize, checksums: bool) -> Vec<Box<dyn Transport>> {
        match self {
            Flavor::SharedMem => SharedMemTransport::create(world, checksums, Some(TIMEOUT))
                .into_iter()
                .map(|t| Box::new(t) as Box<dyn Transport>)
                .collect(),
            Flavor::SimNet => {
                let cfg = SimNetConfig {
                    base_latency: Duration::from_micros(5),
                    jitter: Duration::from_micros(40),
                    timeout: Some(TIMEOUT),
                    checksums,
                };
                SimNetTransport::create(world, 0xC0FFEE, None, cfg)
                    .into_iter()
                    .map(|t| Box::new(t) as Box<dyn Transport>)
                    .collect()
            }
            Flavor::Loopback => {
                assert_eq!(world, 1, "loopback is the single-rank reference");
                vec![Box::new(LoopbackTransport::new().with_timeout(Some(TIMEOUT)))]
            }
        }
    }
}

/// Run `f` on every endpoint concurrently (each rank on its own thread,
/// like the FSDP engine drives the production transport).
fn run_world(
    mut endpoints: Vec<Box<dyn Transport>>,
    f: impl Fn(&mut dyn Transport) + Sync,
) {
    std::thread::scope(|s| {
        for t in endpoints.iter_mut() {
            let f = &f;
            s.spawn(move || f(t.as_mut()));
        }
    });
}

/// The pinned mixed op schedule every FIFO/identity leg runs: `n` ops,
/// kinds rotating, exactly-representable values derived from (rank, op).
fn schedule(world: usize, rank: usize, n: usize) -> (Vec<TransportOp>, Vec<Vec<f32>>) {
    let buf = |r: usize, i: usize, len: usize| -> Vec<f32> {
        (0..len).map(|j| (r * 100 + i * 7 + j) as f32).collect()
    };
    let mut ops = Vec::with_capacity(n);
    let mut expected = Vec::with_capacity(n);
    for i in 0..n {
        let len = 4 + (i % 3) * 2;
        let inputs: Vec<Vec<f32>> = (0..world).map(|r| buf(r, i, len)).collect();
        let op = match i % 3 {
            0 => TransportOp::AllReduce(buf(rank, i, len)),
            1 => TransportOp::AllGather(buf(rank, i, len)),
            _ => TransportOp::ReduceScatter(buf(rank, i, len)),
        };
        expected.push(reference_result(&op, &inputs, rank));
        ops.push(op);
    }
    (ops, expected)
}

// --- law 1: blocking verbs match reference semantics -----------------------

fn leg_blocking_reference(flavor: Flavor, world: usize) {
    run_world(flavor.make(world, false), |t| {
        let (rank, world) = (t.rank(), t.size());
        let inputs: Vec<Vec<f32>> =
            (0..world).map(|r| vec![(r * 3 + 1) as f32, (r * 3 + 2) as f32]).collect();

        let mut buf = inputs[rank].clone();
        t.try_all_reduce(&mut buf).expect("clean all_reduce");
        assert_eq!(buf, reference_result(&TransportOp::AllReduce(vec![]), &inputs, rank));

        let mut out = Vec::new();
        t.try_all_gather(&inputs[rank], &mut out).expect("clean all_gather");
        assert_eq!(out, reference_result(&TransportOp::AllGather(vec![]), &inputs, rank));

        t.try_reduce_scatter(&inputs[rank].clone(), &mut out).expect("clean reduce_scatter");
        assert_eq!(out, reference_result(&TransportOp::ReduceScatter(vec![]), &inputs, rank));

        let mut bc = if rank == 0 { vec![42.0, 7.0] } else { vec![0.0, 0.0] };
        t.try_broadcast(&mut bc, 0).expect("clean broadcast");
        assert_eq!(bc, vec![42.0, 7.0]);

        t.try_barrier().expect("clean barrier");
    });
}

// --- law 2: FIFO submission, in-order and out-of-order redemption ----------

fn leg_fifo(flavor: Flavor, world: usize) {
    const OPS: usize = 32;
    run_world(flavor.make(world, false), |t| {
        let (ops, expected) = schedule(t.size(), t.rank(), OPS);
        let tickets = t.submit(ops);
        assert_eq!(tickets.len(), OPS, "one ticket per submitted op, in issue order");
        for (ticket, want) in tickets.into_iter().zip(expected) {
            let got = t.wait(ticket).expect("clean submitted op");
            assert_eq!(got, want, "FIFO completion must match sequential reference");
        }
    });
}

fn leg_out_of_order_redeem(flavor: Flavor, world: usize) {
    const OPS: usize = 9;
    run_world(flavor.make(world, false), |t| {
        let (ops, expected) = schedule(t.size(), t.rank(), OPS);
        let tickets = t.submit(ops);
        // redeem back-to-front: completion order is still issue order
        // under the hood, so every value must be unchanged
        for i in (0..OPS).rev() {
            let got = t.wait(tickets[i]).expect("clean submitted op");
            assert_eq!(got, expected[i], "out-of-order redemption changed a result");
        }
    });
}

// --- law 3: poison terminates, never wedges --------------------------------

fn leg_barrier_under_poison(flavor: Flavor, world: usize) {
    let started = Instant::now();
    run_world(flavor.make(world, false), |t| {
        if t.rank() == 0 {
            // rank 0 dies instead of entering the barrier
            t.poison();
            assert!(t.is_poisoned());
            assert_eq!(t.try_barrier(), Err(RankLost::Poisoned));
        } else {
            // peers must unblock with a structured loss, not hang
            assert!(t.try_barrier().is_err(), "a poisoned group's barrier cannot succeed");
            // poison is permanent: future collectives fail fast
            let mut buf = vec![1.0];
            assert!(t.try_all_reduce(&mut buf).is_err());
        }
    });
    assert!(
        started.elapsed() < WEDGE_BOUND,
        "{flavor:?} world {world}: barrier-under-poison exceeded the wedge bound"
    );
}

fn leg_rank_lost_propagates_to_submitted_work(flavor: Flavor, world: usize) {
    let started = Instant::now();
    run_world(flavor.make(world, false), |t| {
        if t.rank() == 0 {
            t.poison();
        } else {
            let tickets = t.submit(vec![
                TransportOp::AllReduce(vec![1.0, 2.0]),
                TransportOp::AllGather(vec![3.0]),
            ]);
            for ticket in tickets {
                assert!(
                    matches!(t.wait(ticket), Err(CollectiveError::Lost(_))),
                    "submitted work on a poisoned group must redeem as RankLost"
                );
            }
            // quiesce on a poisoned group must also terminate
            t.quiesce();
        }
    });
    assert!(
        started.elapsed() < WEDGE_BOUND,
        "{flavor:?} world {world}: RankLost propagation exceeded the wedge bound"
    );
}

// --- law 4: checksum verdict agreement -------------------------------------

fn leg_checksum_verdict_agreement(flavor: Flavor, world: usize) {
    if world == 1 {
        // a single-rank group has no wire: the armed flip is never
        // consumed and the reduce succeeds (the size-1 contract)
        run_world(flavor.make(1, true), |t| {
            t.arm_bitflip(12);
            let mut buf = vec![1.0, 2.0, 3.0];
            t.try_all_reduce(&mut buf).expect("size-1 reduce has nothing to corrupt");
            assert_eq!(buf, vec![1.0, 2.0, 3.0]);
        });
        return;
    }
    let verdicts: Mutex<Vec<(usize, CollectiveError)>> = Mutex::new(Vec::new());
    run_world(flavor.make(world, true), |t| {
        if t.rank() == 1 {
            t.arm_bitflip(19);
        }
        let mut buf = vec![t.rank() as f32 + 1.0; 8];
        let verdict = t.try_all_reduce(&mut buf).expect_err("an armed flip must be detected");
        verdicts.lock().unwrap().push((t.rank(), verdict));
        // the verdict is non-poisoning: all barriers were crossed and
        // the group stays usable
        t.try_barrier().expect("a corrupt verdict must not poison the group");
        let mut clean = vec![1.0; 4];
        t.try_all_reduce(&mut clean).expect("the group must stay usable after a verdict");
        assert_eq!(clean, vec![world as f32; 4]);
    });
    let verdicts = verdicts.into_inner().unwrap();
    assert_eq!(verdicts.len(), world, "every rank must observe the verdict");
    let reference = verdicts[0].1;
    assert!(
        matches!(reference, CollectiveError::Corrupt(c) if c.rank == 1),
        "verdict must name the corrupting rank: {reference:?}"
    );
    for (rank, v) in &verdicts {
        assert_eq!(*v, reference, "rank {rank} disagrees on the corruption verdict");
    }
}

// --- law 5: pooled-buffer steady state -------------------------------------

fn leg_pooled_buffer_steady_state(flavor: Flavor, world: usize) {
    // The cell pool only reaches sustained reuse once it has grown past
    // ~2× the reclaim backlog window (the LRU front must have been
    // drained before it comes up for reuse), so the warmup must be a few
    // hundred ops — mirroring the spsc_queue.rs steady-state test.
    const WARMUP_WAVES: usize = 160;
    const WAVES: usize = 40;
    const WAVE: usize = 4;
    run_world(flavor.make(world, false), |t| {
        let Some(_) = t.pool_stats() else { return }; // backend does not pool
        let warm = |t: &mut dyn Transport, waves: usize| {
            for w in 0..waves {
                let ops = (0..WAVE)
                    .map(|i| TransportOp::AllReduce(vec![(w * WAVE + i) as f32; 16]))
                    .collect();
                for ticket in t.submit(ops) {
                    t.wait(ticket).expect("clean pooled op");
                }
            }
        };
        warm(t, WARMUP_WAVES);
        let mid = t.pool_stats().expect("pooling backend keeps reporting");
        warm(t, WAVES);
        let end = t.pool_stats().expect("pooling backend keeps reporting");
        assert_eq!(
            end.takes - mid.takes,
            (WAVES * WAVE) as u64,
            "every op takes exactly one cell"
        );
        // the heart of the invariant: once warmed, fresh allocations stop
        // scaling with ops (wait-before-next-wave keeps the pool hot)
        let fresh = end.allocs - mid.allocs;
        assert!(
            fresh <= (WAVES * WAVE / 20) as u64,
            "pool failed to reach steady state: {fresh} fresh allocs in {} ops",
            WAVES * WAVE
        );
    });
}

// --- law 6: quiesce drains -------------------------------------------------

fn leg_quiesce_then_functional(flavor: Flavor, world: usize) {
    run_world(flavor.make(world, false), |t| {
        let (ops, expected) = schedule(t.size(), t.rank(), 6);
        let tickets = t.submit(ops);
        t.quiesce();
        // post-quiesce, every ticket redeems without peer progress
        for (ticket, want) in tickets.into_iter().zip(expected) {
            assert_eq!(t.wait(ticket).expect("drained op"), want);
        }
        // and the group is still fully functional
        let mut buf = vec![2.0; 4];
        t.try_all_reduce(&mut buf).expect("post-quiesce collective");
        assert_eq!(buf, vec![2.0 * t.size() as f32; 4]);
        t.try_barrier().expect("post-quiesce barrier");
    });
}

/// The one battery, instantiated per flavor.
fn battery(flavor: Flavor) {
    for &world in flavor.worlds() {
        leg_blocking_reference(flavor, world);
        leg_fifo(flavor, world);
        leg_out_of_order_redeem(flavor, world);
        leg_barrier_under_poison(flavor, world);
        leg_rank_lost_propagates_to_submitted_work(flavor, world);
        leg_checksum_verdict_agreement(flavor, world);
        leg_pooled_buffer_steady_state(flavor, world);
        leg_quiesce_then_functional(flavor, world);
    }
}

#[test]
fn conformance_shared_mem() {
    battery(Flavor::SharedMem);
}

#[test]
fn conformance_simnet() {
    battery(Flavor::SimNet);
}

#[test]
fn conformance_loopback() {
    battery(Flavor::Loopback);
}

/// Acceptance criterion, literally: one pinned op schedule through all
/// three transports produces numerically identical per-rank outputs.
#[test]
fn all_three_transports_agree_on_a_pinned_schedule() {
    const OPS: usize = 12;
    let collect = |flavor: Flavor, world: usize| -> Vec<(usize, Vec<Vec<f32>>)> {
        let results: Mutex<Vec<(usize, Vec<Vec<f32>>)>> = Mutex::new(Vec::new());
        run_world(flavor.make(world, false), |t| {
            let (ops, _) = schedule(t.size(), t.rank(), OPS);
            let got: Vec<Vec<f32>> = t
                .submit(ops)
                .into_iter()
                .map(|k| t.wait(k).expect("clean pinned schedule"))
                .collect();
            results.lock().unwrap().push((t.rank(), got));
        });
        let mut r = results.into_inner().unwrap();
        r.sort_by_key(|(rank, _)| *rank);
        r
    };
    // world 1: all three backends must agree bit-for-bit
    let shared1 = collect(Flavor::SharedMem, 1);
    assert_eq!(shared1, collect(Flavor::SimNet, 1), "simnet diverged from shared-mem");
    assert_eq!(shared1, collect(Flavor::Loopback, 1), "loopback diverged from shared-mem");
    // world 4: the two multi-rank backends must agree bit-for-bit
    let shared4 = collect(Flavor::SharedMem, 4);
    assert_eq!(shared4, collect(Flavor::SimNet, 4), "simnet diverged at world 4");
}

/// SimNet-specific: plan-driven wire faults surface through the same
/// structured error surface the laws demand — a crash draw propagates as
/// `RankLost` to every peer inside the wedge bound, and a bit-flip draw
/// yields the unanimous checksum verdict.
#[test]
fn simnet_plan_faults_keep_the_laws() {
    use geofm_resilience::{FaultMix, FaultPlan};
    use std::sync::Arc;

    // a plan whose only event is: rank 0 crashes at its first op
    let plan = Arc::new(FaultPlan::none().with_rank_crash(0, 0));
    let cfg = SimNetConfig { timeout: Some(TIMEOUT), ..SimNetConfig::default() };
    let started = Instant::now();
    let mut endpoints = SimNetTransport::create(4, 3, Some(plan), cfg.clone());
    std::thread::scope(|s| {
        for t in endpoints.iter_mut() {
            s.spawn(move || {
                let r = t.rank();
                let mut buf = vec![r as f32; 4];
                let out = t.try_all_reduce(&mut buf);
                if r == 0 {
                    assert!(out.is_err(), "the crashing endpoint must observe its own loss");
                    assert!(t.is_poisoned());
                } else {
                    assert!(
                        matches!(out, Err(CollectiveError::Lost(_))),
                        "peers of a crashed endpoint must observe RankLost, got {out:?}"
                    );
                }
            });
        }
    });
    assert!(started.elapsed() < WEDGE_BOUND, "simnet crash leg exceeded the wedge bound");

    // a seeded corruption-only mix must reproduce the unanimous verdict
    let plan = Arc::new(FaultPlan::seeded(11, 2, 16, &FaultMix::corruption_only(1.0)));
    let mut endpoints = SimNetTransport::create(2, 11, Some(plan), cfg);
    let verdicts: Mutex<Vec<CollectiveError>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in endpoints.iter_mut() {
            let verdicts = &verdicts;
            s.spawn(move || {
                // drive ops until the armed flip lands or the horizon ends
                for i in 0..16 {
                    let mut buf = vec![i as f32 + 1.0; 8];
                    if let Err(e) = t.try_all_reduce(&mut buf) {
                        verdicts.lock().unwrap().push(e);
                        return;
                    }
                }
            });
        }
    });
    let verdicts = verdicts.into_inner().unwrap();
    if !verdicts.is_empty() {
        assert_eq!(verdicts.len(), 2, "a verdict must be unanimous, not one-sided");
        assert_eq!(verdicts[0], verdicts[1], "ranks disagree on the corruption verdict");
        assert!(matches!(verdicts[0], CollectiveError::Corrupt(_)));
    }
}
