//! Corrupted-checkpoint suite: every malformed on-disk artifact must be
//! *rejected* (`None`), never trusted and never a panic.
//!
//! Covers every checkpoint format in the workspace:
//!
//! * the encoder-level pretraining cache (`geofm_core::checkpoint`,
//!   `GEOFMCK2` magic) via its explicit-directory API,
//! * the step-level distributed checkpoint (`geofm_resilience::ckpt`),
//!   where the payload is small enough to truncate at **every** byte
//!   boundary exhaustively, and
//! * the world-size-independent elastic checkpoint (`GEOFMCK3`), abused
//!   end-to-end: the file under test is written by the *trainer*, and the
//!   reader must map truncation / bit rot / legacy magics / layout
//!   mismatch each to its own structured [`CkptError`] — `Option`-style
//!   silent `None`s are not acceptable for the elastic path, because the
//!   resharding trainer branches on the *kind* of rejection.

use geofm_core::checkpoint::{load_in, save_in};
use geofm_core::{pretrain, RecipeConfig};
use geofm_fsdp::{try_run_elastic, DistReport, ElasticConfig, FsdpConfig, ResilienceConfig};
use geofm_nn::{Linear, Module, ParamVisitor};
use geofm_resilience::{CkptError, ElasticCheckpoint, FailureReport, RankSlot, StepCheckpoint};
use geofm_tensor::{Tensor, TensorRng};
use geofm_vit::VitConfig;
use std::path::PathBuf;
use std::time::Duration;

fn test_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("geofm-ws-ckpt-{tag}-{}", std::process::id()))
}

fn tiny_recipe() -> RecipeConfig {
    RecipeConfig {
        pretrain_images: 64,
        pretrain_epochs: 1,
        probe_epochs: 1,
        probe_scale: 0.02,
        max_test: 20,
        ..RecipeConfig::default()
    }
}

/// The single `.ckpt` file written under `dir` by `save_in`.
fn ckpt_file(dir: &std::path::Path) -> PathBuf {
    let d = dir.join("checkpoints");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&d)
        .expect("checkpoint dir exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    assert_eq!(files.len(), 1, "expected exactly one checkpoint in {}", d.display());
    files.pop().unwrap()
}

#[test]
fn encoder_checkpoint_rejects_every_corruption() {
    let dir = test_dir("encoder");
    let rc = tiny_recipe();
    let cfg = VitConfig::tiny_family()[0].clone();
    let mut out = pretrain(&cfg, &rc);
    save_in(&dir, &cfg, &rc, &mut out).expect("save must succeed");
    assert!(load_in(&dir, &cfg, &rc).is_some(), "pristine checkpoint must load");

    let path = ckpt_file(&dir);
    let good = std::fs::read(&path).unwrap();

    // Truncation: every structural boundary plus a byte-stride sweep
    // through the payload (the file is too large to cut at every offset).
    let mut cuts = vec![0, 1, 7, 8, 9, 15, 16, 17, good.len() - 5, good.len() - 4, good.len() - 1];
    cuts.extend((0..good.len()).step_by(97));
    for cut in cuts {
        std::fs::write(&path, &good[..cut]).unwrap();
        assert!(load_in(&dir, &cfg, &rc).is_none(), "truncation at {cut} must be rejected");
    }

    // Bit flips: header, length field, payload interior, CRC footer.
    for &(offset, bit) in
        &[(0usize, 0u8), (3, 7), (8, 0), (12, 4), (20, 1), (good.len() / 2, 3), (good.len() - 2, 6)]
    {
        let mut bad = good.clone();
        bad[offset] ^= 1 << bit;
        std::fs::write(&path, &bad).unwrap();
        assert!(
            load_in(&dir, &cfg, &rc).is_none(),
            "bit flip at byte {offset} bit {bit} must be rejected"
        );
    }

    // Stale magic from a previous format version.
    let mut stale = good.clone();
    stale[..8].copy_from_slice(b"GEOFMCK1");
    std::fs::write(&path, &stale).unwrap();
    assert!(load_in(&dir, &cfg, &rc).is_none(), "stale magic must be rejected");

    // Appended garbage (length field no longer matches the file).
    let mut long = good.clone();
    long.extend_from_slice(&[0xAB; 16]);
    std::fs::write(&path, &long).unwrap();
    assert!(load_in(&dir, &cfg, &rc).is_none(), "trailing garbage must be rejected");

    // A key mismatch (different recipe) must miss even on a pristine file.
    std::fs::write(&path, &good).unwrap();
    let other_rc = RecipeConfig { pretrain_epochs: 2, ..tiny_recipe() };
    assert!(load_in(&dir, &cfg, &other_rc).is_none(), "mismatched key must miss");

    // And after all that abuse, the restored-good file still loads.
    assert!(load_in(&dir, &cfg, &rc).is_some(), "restored checkpoint must load again");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn step_checkpoint_rejects_truncation_at_every_boundary() {
    let ck = StepCheckpoint {
        step: 11,
        ranks: (0..3)
            .map(|r| RankSlot {
                params: vec![r as f32; 5],
                adam_m: vec![0.25; 5],
                adam_v: vec![0.5; 5],
                adam_t: 11,
                losses: vec![1.0, 0.5],
            })
            .collect(),
    };
    let good = ck.to_bytes();
    assert_eq!(StepCheckpoint::from_bytes(&good).as_ref(), Some(&ck));

    for cut in 0..good.len() {
        assert!(
            StepCheckpoint::from_bytes(&good[..cut]).is_none(),
            "truncation at byte {cut} must be rejected"
        );
    }
    for byte in 0..good.len() {
        let mut bad = good.clone();
        bad[byte] ^= 0x10;
        let reread = StepCheckpoint::from_bytes(&bad);
        // Any single corrupted byte must either be caught (None) — the CRC
        // guarantees this — and must certainly never reproduce the original.
        assert!(reread.is_none(), "bit flip at byte {byte} must be rejected");
    }
}

#[test]
fn both_checkpoint_formats_share_the_canonical_crc32() {
    // One table-driven CRC32 for the whole workspace: implemented in
    // geofm-resilience, re-exported by geofm-core, reused by the collective
    // payload checksums. The two re-exports must be the same function, and
    // the streaming form must agree with the one-shot digest.
    let payload = b"geofm shared integrity primitive";
    assert_eq!(geofm_core::crc32(payload), geofm_resilience::crc32(payload));
    let mid = payload.len() / 2;
    let partial = geofm_core::crc32_update(0xFFFF_FFFF, &payload[..mid]);
    assert_eq!(!geofm_core::crc32_update(partial, &payload[mid..]), geofm_core::crc32(payload));
}

// ---------------------------------------------------------------------------
// GEOFMCK3 (elastic) corruption coverage, end-to-end through the trainer
// ---------------------------------------------------------------------------

struct Toy {
    a: Linear,
    b: Linear,
}

impl Module for Toy {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.a.visit_params(f);
        self.b.visit_params(f);
    }
}

impl Toy {
    fn new(seed: u64) -> (Self, Vec<usize>) {
        let mut rng = TensorRng::seed_from(seed);
        let mut a = Linear::new(3, 2, &mut rng, "a");
        let mut b = Linear::new(3, 2, &mut rng, "b");
        let units = vec![a.num_params(), b.num_params()];
        (Self { a, b }, units)
    }

    fn compute(&mut self, x: &Tensor, y: &Tensor) -> f32 {
        self.zero_grad();
        let ya = self.a.forward(x);
        let yb = self.b.forward(x);
        let out = ya.add(&yb);
        let diff = out.sub(y);
        let n = diff.numel() as f32;
        let loss = diff.sum_sq() / n;
        let dy = diff.scale(2.0 / n);
        let _ = self.a.backward(&dy);
        let _ = self.b.backward(&dy);
        loss
    }
}

/// A short fault-free elastic run at world 2; `resilience` decides whether
/// (and where) the GEOFMCK3 image lands on disk.
fn toy_elastic_run(resilience: ResilienceConfig) -> Result<DistReport, FailureReport> {
    try_run_elastic(
        FsdpConfig::tuned(geofm_fsdp::ShardingStrategy::FullShard),
        2,
        0.01,
        4,
        |_| Toy::new(7),
        |m, rank, world, step| {
            let mut rng = TensorRng::seed_from(900 + step as u64);
            let x = rng.randn(&[8, 3], 1.0);
            let y = rng.randn(&[8, 2], 1.0);
            let per = 8 / world;
            let xl = x.rows(rank * per, (rank + 1) * per);
            let yl = y.rows(rank * per, (rank + 1) * per);
            m.compute(&xl, &yl)
        },
        |_| 0.01,
        None,
        resilience,
    )
}

fn elastic_resilience(path: PathBuf) -> ResilienceConfig {
    ResilienceConfig {
        checkpoint_every: 2,
        collective_timeout: Some(Duration::from_secs(5)),
        elastic: Some(ElasticConfig {
            checkpoint_path: Some(path),
            ..ElasticConfig::default()
        }),
        ..ResilienceConfig::disabled()
    }
}

#[test]
fn elastic_checkpoint_written_by_trainer_rejects_every_corruption() {
    let dir = test_dir("elastic");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("elastic.ck3");
    toy_elastic_run(elastic_resilience(path.clone())).expect("writer run must succeed");

    let good = std::fs::read(&path).unwrap();
    let pristine = ElasticCheckpoint::load(&path).expect("pristine GEOFMCK3 must load");
    assert_eq!(pristine.step, 4, "writer ran 4 steps at cadence 2");
    assert_eq!(pristine.world_written, 2);
    assert_eq!(pristine.params.len(), pristine.unit_sizes.iter().sum::<usize>());

    // Truncation: every structural boundary plus a stride sweep. Always a
    // structured error, never a panic, never a silently "loaded" image.
    let mut cuts = vec![0, 1, 7, 8, 9, 15, 16, 17, good.len() - 5, good.len() - 4, good.len() - 1];
    cuts.extend((0..good.len()).step_by(13));
    for cut in cuts {
        std::fs::write(&path, &good[..cut]).unwrap();
        assert!(
            ElasticCheckpoint::load(&path).is_err(),
            "truncation at byte {cut} must be a structured error"
        );
    }

    // Bit rot: flip one bit at every stride-7 offset; the CRC must catch
    // anything the structural checks miss.
    for pos in (0..good.len()).step_by(7) {
        let mut bad = good.clone();
        bad[pos] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        assert!(
            ElasticCheckpoint::load(&path).is_err(),
            "bit flip at byte {pos} must be a structured error"
        );
    }

    // Version skew: each legacy magic is *named*, not a generic bad-magic.
    for legacy in ["GEOFMSC1", "GEOFMCK2", "GEOFMCK1"] {
        let mut stale = good.clone();
        stale[..8].copy_from_slice(legacy.as_bytes());
        std::fs::write(&path, &stale).unwrap();
        assert_eq!(
            ElasticCheckpoint::load(&path),
            Err(CkptError::LegacyFormat { magic: legacy }),
            "legacy magic {legacy} must be reported by name"
        );
    }

    // Unknown magic and appended garbage get their own verdicts.
    let mut alien = good.clone();
    alien[..8].copy_from_slice(b"NOTACKPT");
    std::fs::write(&path, &alien).unwrap();
    assert!(matches!(ElasticCheckpoint::load(&path), Err(CkptError::BadMagic { .. })));
    let mut long = good.clone();
    long.extend_from_slice(&[0xAB; 9]);
    std::fs::write(&path, &long).unwrap();
    assert!(matches!(ElasticCheckpoint::load(&path), Err(CkptError::Malformed(_))));

    // World mismatch: a checkpoint for a *different model* parses fine but
    // fails unit validation with the structured layout verdict.
    let other = ElasticCheckpoint { unit_sizes: vec![3, 4], ..pristine.clone() };
    assert!(matches!(
        other.validate_units(&pristine.unit_sizes),
        Err(CkptError::LayoutMismatch { .. })
    ));

    // After all that abuse the restored bytes still load bit-exactly.
    std::fs::write(&path, &good).unwrap();
    let back = ElasticCheckpoint::load(&path).unwrap();
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
    assert_eq!(bits(&back.params), bits(&pristine.params));
    assert_eq!(bits(&back.adam_m), bits(&pristine.adam_m));
    assert_eq!(bits(&back.adam_v), bits(&pristine.adam_v));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trainer_starts_fresh_when_elastic_checkpoint_is_garbage() {
    let dir = test_dir("elastic-garbage");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("elastic.ck3");
    // a torn/corrupt file at the resume path must be rejected and the run
    // started fresh — identical to a run with no checkpoint at all
    std::fs::write(&path, b"GEOFMCK3 but then the payload is nonsense").unwrap();
    let abused = toy_elastic_run(elastic_resilience(path)).expect("run must not trust garbage");
    let fresh = toy_elastic_run(ResilienceConfig {
        collective_timeout: Some(Duration::from_secs(5)),
        ..ResilienceConfig::disabled()
    })
    .expect("fresh run must succeed");
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
    assert_eq!(bits(&abused.final_params), bits(&fresh.final_params));
    assert_eq!(bits(&abused.mean_losses), bits(&fresh.mean_losses));
}

#[test]
fn trainer_surfaces_layout_mismatch_as_structured_failure() {
    let dir = test_dir("elastic-mismatch");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("elastic.ck3");
    // a *valid* GEOFMCK3 for a different model: parses, seeds the resume,
    // then must be rejected at unit validation with a structured failure
    let wrong = ElasticCheckpoint {
        step: 2,
        world_written: 2,
        shard_n_written: 2,
        adam_t: 2,
        unit_sizes: vec![3, 4],
        params: vec![0.5; 7],
        adam_m: vec![0.0; 7],
        adam_v: vec![0.0; 7],
        mean_losses: vec![1.0, 0.9],
    };
    wrong.save(&path).unwrap();
    let mut resilience = elastic_resilience(path);
    resilience.max_restarts = 0;
    let report = toy_elastic_run(resilience).expect_err("mismatched layout must fail the run");
    assert!(
        report.failures.iter().any(|f| f.cause.contains("elastic checkpoint rejected")),
        "failure must carry the structured rejection, got {:?}",
        report.failures
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn step_checkpoint_save_is_atomic_and_reloadable() {
    let dir = test_dir("step");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s.ckpt");
    let ck = StepCheckpoint {
        step: 3,
        ranks: vec![RankSlot {
            params: vec![1.0, 2.0],
            adam_m: vec![0.0; 2],
            adam_v: vec![0.0; 2],
            adam_t: 3,
            losses: vec![],
        }],
    };
    ck.save(&path).unwrap();
    assert_eq!(StepCheckpoint::load(&path).as_ref(), Some(&ck));
    assert!(
        !path.with_extension("tmp").exists(),
        "atomic write must not leave a tmp sibling behind"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
