//! Corrupted-checkpoint suite: every malformed on-disk artifact must be
//! *rejected* (`None`), never trusted and never a panic.
//!
//! Covers both checkpoint formats in the workspace:
//!
//! * the encoder-level pretraining cache (`geofm_core::checkpoint`,
//!   `GEOFMCK2` magic) via its explicit-directory API, and
//! * the step-level distributed checkpoint (`geofm_resilience::ckpt`),
//!   where the payload is small enough to truncate at **every** byte
//!   boundary exhaustively.

use geofm_core::checkpoint::{load_in, save_in};
use geofm_core::{pretrain, RecipeConfig};
use geofm_resilience::{RankSlot, StepCheckpoint};
use geofm_vit::VitConfig;
use std::path::PathBuf;

fn test_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("geofm-ws-ckpt-{tag}-{}", std::process::id()))
}

fn tiny_recipe() -> RecipeConfig {
    RecipeConfig {
        pretrain_images: 64,
        pretrain_epochs: 1,
        probe_epochs: 1,
        probe_scale: 0.02,
        max_test: 20,
        ..RecipeConfig::default()
    }
}

/// The single `.ckpt` file written under `dir` by `save_in`.
fn ckpt_file(dir: &std::path::Path) -> PathBuf {
    let d = dir.join("checkpoints");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&d)
        .expect("checkpoint dir exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    assert_eq!(files.len(), 1, "expected exactly one checkpoint in {}", d.display());
    files.pop().unwrap()
}

#[test]
fn encoder_checkpoint_rejects_every_corruption() {
    let dir = test_dir("encoder");
    let rc = tiny_recipe();
    let cfg = VitConfig::tiny_family()[0].clone();
    let mut out = pretrain(&cfg, &rc);
    save_in(&dir, &cfg, &rc, &mut out).expect("save must succeed");
    assert!(load_in(&dir, &cfg, &rc).is_some(), "pristine checkpoint must load");

    let path = ckpt_file(&dir);
    let good = std::fs::read(&path).unwrap();

    // Truncation: every structural boundary plus a byte-stride sweep
    // through the payload (the file is too large to cut at every offset).
    let mut cuts = vec![0, 1, 7, 8, 9, 15, 16, 17, good.len() - 5, good.len() - 4, good.len() - 1];
    cuts.extend((0..good.len()).step_by(97));
    for cut in cuts {
        std::fs::write(&path, &good[..cut]).unwrap();
        assert!(load_in(&dir, &cfg, &rc).is_none(), "truncation at {cut} must be rejected");
    }

    // Bit flips: header, length field, payload interior, CRC footer.
    for &(offset, bit) in
        &[(0usize, 0u8), (3, 7), (8, 0), (12, 4), (20, 1), (good.len() / 2, 3), (good.len() - 2, 6)]
    {
        let mut bad = good.clone();
        bad[offset] ^= 1 << bit;
        std::fs::write(&path, &bad).unwrap();
        assert!(
            load_in(&dir, &cfg, &rc).is_none(),
            "bit flip at byte {offset} bit {bit} must be rejected"
        );
    }

    // Stale magic from a previous format version.
    let mut stale = good.clone();
    stale[..8].copy_from_slice(b"GEOFMCK1");
    std::fs::write(&path, &stale).unwrap();
    assert!(load_in(&dir, &cfg, &rc).is_none(), "stale magic must be rejected");

    // Appended garbage (length field no longer matches the file).
    let mut long = good.clone();
    long.extend_from_slice(&[0xAB; 16]);
    std::fs::write(&path, &long).unwrap();
    assert!(load_in(&dir, &cfg, &rc).is_none(), "trailing garbage must be rejected");

    // A key mismatch (different recipe) must miss even on a pristine file.
    std::fs::write(&path, &good).unwrap();
    let other_rc = RecipeConfig { pretrain_epochs: 2, ..tiny_recipe() };
    assert!(load_in(&dir, &cfg, &other_rc).is_none(), "mismatched key must miss");

    // And after all that abuse, the restored-good file still loads.
    assert!(load_in(&dir, &cfg, &rc).is_some(), "restored checkpoint must load again");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn step_checkpoint_rejects_truncation_at_every_boundary() {
    let ck = StepCheckpoint {
        step: 11,
        ranks: (0..3)
            .map(|r| RankSlot {
                params: vec![r as f32; 5],
                adam_m: vec![0.25; 5],
                adam_v: vec![0.5; 5],
                adam_t: 11,
                losses: vec![1.0, 0.5],
            })
            .collect(),
    };
    let good = ck.to_bytes();
    assert_eq!(StepCheckpoint::from_bytes(&good).as_ref(), Some(&ck));

    for cut in 0..good.len() {
        assert!(
            StepCheckpoint::from_bytes(&good[..cut]).is_none(),
            "truncation at byte {cut} must be rejected"
        );
    }
    for byte in 0..good.len() {
        let mut bad = good.clone();
        bad[byte] ^= 0x10;
        let reread = StepCheckpoint::from_bytes(&bad);
        // Any single corrupted byte must either be caught (None) — the CRC
        // guarantees this — and must certainly never reproduce the original.
        assert!(reread.is_none(), "bit flip at byte {byte} must be rejected");
    }
}

#[test]
fn both_checkpoint_formats_share_the_canonical_crc32() {
    // One table-driven CRC32 for the whole workspace: implemented in
    // geofm-resilience, re-exported by geofm-core, reused by the collective
    // payload checksums. The two re-exports must be the same function, and
    // the streaming form must agree with the one-shot digest.
    let payload = b"geofm shared integrity primitive";
    assert_eq!(geofm_core::crc32(payload), geofm_resilience::crc32(payload));
    let mid = payload.len() / 2;
    let partial = geofm_core::crc32_update(0xFFFF_FFFF, &payload[..mid]);
    assert_eq!(!geofm_core::crc32_update(partial, &payload[mid..]), geofm_core::crc32(payload));
}

#[test]
fn step_checkpoint_save_is_atomic_and_reloadable() {
    let dir = test_dir("step");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s.ckpt");
    let ck = StepCheckpoint {
        step: 3,
        ranks: vec![RankSlot {
            params: vec![1.0, 2.0],
            adam_m: vec![0.0; 2],
            adam_v: vec![0.0; 2],
            adam_t: 3,
            losses: vec![],
        }],
    };
    ck.save(&path).unwrap();
    assert_eq!(StepCheckpoint::load(&path).as_ref(), Some(&ck));
    assert!(
        !path.with_extension("tmp").exists(),
        "atomic write must not leave a tmp sibling behind"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
