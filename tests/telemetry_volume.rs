//! Golden communication-volume tests.
//!
//! For one training step of every sharding strategy, the bytes recorded by
//! the telemetry-backed [`TrafficCounter`] must equal — **exactly**, to the
//! byte — the analytic prediction obtained by replaying the engine's
//! collective call sequence through
//! [`CollectiveKind::ring_bytes_per_rank`]. This pins the contract between
//! the threaded FSDP engine and the Frontier cost model: both derive
//! communication cost from the same per-rank ring formulas, so any drift in
//! either the step's collective schedule or the accounting shows up here as
//! a byte-level mismatch.
//!
//! The analytic model mirrors `FsdpRank::step`:
//!
//! 1. forward gather: per unit, all-gather of the padded unit over the
//!    shard group (issued even when the group has one rank — zero bytes,
//!    one call);
//! 2. backward re-gather: same again for FULL_SHARD / HYBRID when the
//!    shard group is larger than one rank;
//! 3. gradient reduction: DDP buckets all-reduces over the replica group;
//!    NO_SHARD all-reduces per unit; sharded strategies reduce-scatter the
//!    padded unit over the shard group, then all-reduce the shard over the
//!    replica group when replicas exist;
//! 4. grad-norm exchange: one 1-element all-reduce over the shard group
//!    when it is larger than one rank.

use geofm_collectives::{
    CollectiveKind, HierarchyLayout, ProcessGroups, TrafficCounter, TrafficSnapshot,
};
use geofm_fsdp::{FlatLayout, FsdpConfig, FsdpRank, ShardingStrategy};
use geofm_nn::{Linear, Module, ParamVisitor};
use geofm_tensor::{Tensor, TensorRng};
use geofm_telemetry::Telemetry;
use std::sync::Arc;

/// Two-unit toy model (mirrors the engine's own tests): two independent
/// linear layers summed, giving two FSDP units of different sizes so that
/// padding actually kicks in.
struct Toy {
    a: Linear,
    b: Linear,
}

impl Module for Toy {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.a.visit_params(f);
        self.b.visit_params(f);
    }
}

impl Toy {
    fn new(seed: u64) -> (Self, Vec<usize>) {
        let mut rng = TensorRng::seed_from(seed);
        let mut a = Linear::new(3, 2, &mut rng, "a");
        let mut b = Linear::new(3, 2, &mut rng, "b");
        let units = vec![a.num_params(), b.num_params()];
        (Self { a, b }, units)
    }

    fn compute(&mut self, x: &Tensor, y: &Tensor) -> f32 {
        self.zero_grad();
        let ya = self.a.forward(x);
        let yb = self.b.forward(x);
        let out = ya.add(&yb);
        let diff = out.sub(y);
        let n = diff.numel() as f32;
        let loss = diff.sum_sq() / n;
        let dy = diff.scale(2.0 / n);
        let _ = self.a.backward(&dy);
        let _ = self.b.backward(&dy);
        loss
    }
}

/// Replay one step's collective schedule analytically. Returns the traffic
/// one rank records; every rank records identical volume (padded shards are
/// equal length by construction), so the shared counter holds `world ×`
/// this.
fn expected_per_rank(strategy: ShardingStrategy, world: usize, unit_sizes: &[usize]) -> TrafficSnapshot {
    use CollectiveKind::*;
    let k = strategy.shard_group_size(world);
    let replicas = world / k;
    let layout = FlatLayout::new(unit_sizes, k);
    let mut s = TrafficSnapshot::default();

    // 1. forward gather (always issued, zero bytes when k == 1)
    for u in 0..layout.num_units() {
        s.all_gather += AllGather.ring_bytes_per_rank(layout.padded_lens[u] as u64 * 4, k);
        s.calls += 1;
    }

    // 2. backward re-gather
    if strategy.regathers_in_backward() && k > 1 {
        for u in 0..layout.num_units() {
            s.all_gather += AllGather.ring_bytes_per_rank(layout.padded_lens[u] as u64 * 4, k);
            s.calls += 1;
        }
    }

    // 3. gradient reduction
    match strategy {
        ShardingStrategy::Ddp { bucket_bytes } => {
            let total: usize = unit_sizes.iter().sum();
            let bucket_elems = (bucket_bytes / 4).max(1);
            let mut start = 0;
            while start < total {
                let end = (start + bucket_elems).min(total);
                s.all_reduce += AllReduce.ring_bytes_per_rank((end - start) as u64 * 4, replicas);
                s.calls += 1;
                start = end;
            }
        }
        ShardingStrategy::NoShard => {
            for &len in unit_sizes {
                s.all_reduce += AllReduce.ring_bytes_per_rank(len as u64 * 4, replicas);
                s.calls += 1;
            }
        }
        ShardingStrategy::FullShard | ShardingStrategy::ShardGradOp | ShardingStrategy::Hybrid { .. } => {
            for u in 0..layout.num_units() {
                s.reduce_scatter +=
                    ReduceScatter.ring_bytes_per_rank(layout.padded_lens[u] as u64 * 4, k);
                s.calls += 1;
                if replicas > 1 {
                    s.all_reduce +=
                        AllReduce.ring_bytes_per_rank(layout.shard_len(u) as u64 * 4, replicas);
                    s.calls += 1;
                }
            }
        }
    }

    // 4. grad-norm exchange (one f32)
    if k > 1 {
        s.all_reduce += AllReduce.ring_bytes_per_rank(4, k);
        s.calls += 1;
    }

    s
}

fn scale(s: TrafficSnapshot, by: u64) -> TrafficSnapshot {
    TrafficSnapshot {
        all_reduce: s.all_reduce * by,
        all_gather: s.all_gather * by,
        reduce_scatter: s.reduce_scatter * by,
        broadcast: s.broadcast * by,
        calls: s.calls * by,
    }
}

/// Run exactly one collective step of `strategy` on `world` rank threads,
/// recording through a telemetry-backed traffic counter; return the counter
/// snapshot and the registry's view of the same bytes.
fn run_one_step(strategy: ShardingStrategy, world: usize) -> (TrafficSnapshot, Arc<Telemetry>) {
    let tel = Telemetry::new();
    let traffic = Arc::new(TrafficCounter::with_registry(tel.metrics.clone()));
    let shard_size = strategy.shard_group_size(world);
    let groups =
        ProcessGroups::hierarchy_with_traffic(HierarchyLayout { world, shard_size }, traffic.clone());
    let config = FsdpConfig::tuned(strategy);
    std::thread::scope(|s| {
        for g in groups {
            s.spawn(move || {
                let rank = g.rank;
                let (model, units) = Toy::new(42);
                let mut fr = FsdpRank::new(model, &units, config, g, 0.0);
                let mut rng = TensorRng::seed_from(1000);
                let x = rng.randn(&[8, 3], 1.0);
                let y = rng.randn(&[8, 2], 1.0);
                let per = 8 / world;
                let xl = x.rows(rank * per, (rank + 1) * per);
                let yl = y.rows(rank * per, (rank + 1) * per);
                fr.step(0.01, |m| m.compute(&xl, &yl));
            });
        }
    });
    (traffic.snapshot(), tel)
}

fn strategies() -> Vec<ShardingStrategy> {
    vec![
        ShardingStrategy::NoShard,
        ShardingStrategy::FullShard,
        ShardingStrategy::ShardGradOp,
        ShardingStrategy::Hybrid { shard_size: 2 },
        ShardingStrategy::Ddp { bucket_bytes: 16 },
    ]
}

#[test]
fn recorded_bytes_match_analytic_prediction_exactly() {
    let world = 4;
    let (_, unit_sizes) = Toy::new(42);
    for strategy in strategies() {
        let expect = scale(expected_per_rank(strategy, world, &unit_sizes), world as u64);
        let (got, _) = run_one_step(strategy, world);
        assert_eq!(
            got,
            expect,
            "{}: recorded traffic diverges from the analytic ring model",
            strategy.name()
        );
    }
}

#[test]
fn registry_counters_agree_with_traffic_snapshot() {
    let world = 4;
    let (_, unit_sizes) = Toy::new(42);
    for strategy in strategies() {
        let expect = scale(expected_per_rank(strategy, world, &unit_sizes), world as u64);
        let (_, tel) = run_one_step(strategy, world);
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("comm.all_gather.bytes"), expect.all_gather, "{}", strategy.name());
        assert_eq!(snap.counter("comm.all_reduce.bytes"), expect.all_reduce, "{}", strategy.name());
        assert_eq!(
            snap.counter("comm.reduce_scatter.bytes"),
            expect.reduce_scatter,
            "{}",
            strategy.name()
        );
        assert_eq!(snap.counter("comm.broadcast.bytes"), 0, "{}", strategy.name());
        let calls: u64 = CollectiveKind::ALL
            .iter()
            .map(|k| snap.counter(&format!("comm.{}.calls", k.name())))
            .sum();
        assert_eq!(calls, expect.calls, "{}", strategy.name());
    }
}

#[test]
fn ddp_and_noshard_move_identical_reduce_volume_when_unbucketed() {
    // With a bucket at least as large as the whole gradient, DDP's traffic
    // degenerates to NO_SHARD's per-step all-reduce volume except for unit
    // granularity; both must match their own analytic predictions and agree
    // on totals because integer ring division never truncates here
    // (world = 4 divides every 4-byte-scaled payload).
    let world = 4;
    let (_, unit_sizes) = Toy::new(42);
    let total: usize = unit_sizes.iter().sum();
    let ddp = expected_per_rank(ShardingStrategy::Ddp { bucket_bytes: total * 4 }, world, &unit_sizes);
    let noshard = expected_per_rank(ShardingStrategy::NoShard, world, &unit_sizes);
    assert_eq!(ddp.all_reduce, noshard.all_reduce);
    let (got, _) = run_one_step(ShardingStrategy::Ddp { bucket_bytes: total * 4 }, world);
    assert_eq!(got, scale(ddp, world as u64));
}
