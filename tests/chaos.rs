//! Seeded chaos harness: ~200 randomized fault schedules against the
//! resilient trainer, each holding ONE invariant:
//!
//! > the run completes **bit-identical** to the fault-free run, or it
//! > returns a structured failure report — it never hangs and never
//! > silently diverges.
//!
//! Each seed samples a [`FaultMix`] of crashes, one-step stragglers,
//! persistently degraded ranks, degraded links, hangs, torn checkpoint
//! writes, silent gradient bit flips, poisoned losses, permanent rank
//! departures, spare rejoins — and, since the streaming ingest plane,
//! I/O faults too: corrupt records, flaky reads, stalled reads, missing
//! / truncated / slow shards — and, since the serving plane, serve-side
//! faults as well: tenant request storms, slow clients, hung inference
//! batches — via `FaultPlan::seeded_with_serve` (deterministic per seed
//! — a failing seed replays exactly; the serve draws are appended
//! strictly after the training streams, so training outcomes are
//! byte-identical to the `seeded_with_io` era), and rotates through the
//! sharding strategies. Batches come through
//! `try_run_streaming` over a fault-injectable `SimShardStore` sharing
//! the same plan; records the plane quarantines extend the comparator
//! the same way guard-skipped steps do — the clean run gets the
//! quarantine set up front. Gray faults must *never* change results;
//! fail-stop and hang faults must either be absorbed by elastic restart
//! (bit-identical completion) or surface in a `FailureReport` within the
//! wall-clock budget. Corruption faults run with the guard enabled: a
//! completed run whose guard skipped steps must be bit-identical to a
//! clean run told to skip the same steps. A permanent departure shrinks
//! the world and continues; the shrunken world reduces in a different
//! order, so those schedules hold the structural invariant (consistent
//! transition chain, full loss series, never hang) while bit-identity of
//! post-shrink training is pinned separately by `tests/elastic_reshard.rs`.
//!
//! Odd seeds run the comm/compute overlap engine (collectives on the
//! per-rank comm thread with prefetch in flight — since the lock-free
//! rework this is the SPSC job ring with batched submission and pooled,
//! recycled comm buffers), even seeds the blocking engine — same
//! invariant either way, and the overlapped runs compare against the
//! *blocking* baseline, so this doubles as an equivalence check for the
//! pooled lock-free path under fault injection.
//!
//! Each schedule also runs a serving-plane DES session off the same
//! plan (the serve-side draws are consumed only here): whatever the
//! overload and fault climate, the serving run must terminate in a
//! conserved, structured `ServeReport` — the serving twin of the
//! trainer's invariant. A third of the schedules shut the server down
//! mid-burst instead of draining. Deeper serving chaos (100+ schedules,
//! replay determinism, the real threaded plane) lives in
//! `tests/serve_chaos.rs`.
//!
//! CI runs this suite under a hard timeout with `GEOFM_CHAOS_SEED` pinned,
//! so a regression that reintroduces a deadlock fails fast instead of
//! stalling the pipeline.

use geofm_collectives::AdaptiveTimeoutConfig;
use geofm_data::stream::{Batch, DefenseConfig, StreamConfig};
use geofm_data::store::SimShardStore;
use geofm_data::{DatasetKind, IngestPlane};
use geofm_fsdp::{
    try_run_streaming, DistReport, ElasticConfig, FsdpConfig, GuardConfig, ResilienceConfig,
    ShardingStrategy,
};
use geofm_nn::{Linear, Module, ParamVisitor};
use geofm_resilience::{FaultMix, FaultPlan, RecordId};
use geofm_serve::{run_sim, SimConfig as ServeSimConfig};
use geofm_tensor::{Tensor, TensorRng};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

struct Toy {
    a: Linear,
    b: Linear,
}

impl Module for Toy {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.a.visit_params(f);
        self.b.visit_params(f);
    }
}

impl Toy {
    fn new(seed: u64) -> (Self, Vec<usize>) {
        let mut rng = TensorRng::seed_from(seed);
        let mut a = Linear::new(RECORD_LEN, 2, &mut rng, "a");
        let mut b = Linear::new(RECORD_LEN, 2, &mut rng, "b");
        let units = vec![a.num_params(), b.num_params()];
        (Self { a, b }, units)
    }

    fn compute(&mut self, batch: &Batch) -> f32 {
        self.zero_grad();
        let rows = batch.labels.len();
        // two-hot regression target from the record labels: every
        // surviving row moves the gradients, so a silently consumed
        // corrupt record would break the bit-compare below
        let mut y = Tensor::zeros(&[rows, 2]);
        for (i, &label) in batch.labels.iter().enumerate() {
            y.data_mut()[i * 2 + label % 2] = 1.0;
        }
        let ya = self.a.forward(&batch.images);
        let yb = self.b.forward(&batch.images);
        let out = ya.add(&yb);
        let diff = out.sub(&y);
        let n = diff.numel() as f32;
        let loss = diff.sum_sq() / n;
        let dy = diff.scale(2.0 / n);
        let _ = self.a.backward(&dy);
        let _ = self.b.backward(&dy);
        loss
    }
}

const WORLD: usize = 4;
const STEPS: usize = 6;
// streamed corpus geometry: 144 records, global batch 12 → the batch
// divides every world size a shrink can visit (4, 3, 2)
const SHARDS: usize = 6;
const PER_SHARD: usize = 24;
const IMG: usize = 2;
const CHANNELS: usize = 1;
const RECORD_LEN: usize = CHANNELS * IMG * IMG;
const GLOBAL_BATCH: usize = 12;
const DATA_SEED: u64 = 7;
const SHUFFLE_SEED: u64 = 21;
// serving-leg dimensions baked into every plan (serve draws are appended
// after the training streams, so they do not perturb training outcomes)
const SERVE_TENANTS: usize = 3;
const SERVE_TICKS: usize = 60;
const STRATEGIES: [ShardingStrategy; 4] = [
    ShardingStrategy::FullShard,
    ShardingStrategy::ShardGradOp,
    ShardingStrategy::Hybrid { shard_size: 2 },
    ShardingStrategy::NoShard,
];

/// Base offset added to every seed, pinned in CI via `GEOFM_CHAOS_SEED`.
fn seed_base() -> u64 {
    std::env::var("GEOFM_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// The fault cocktail: rare enough that most schedules are survivable
/// within the restart budget, rich enough that every kind appears across
/// 200 seeds.
fn chaos_mix() -> FaultMix {
    FaultMix {
        crash_prob: 0.02,
        straggler_prob: 0.02,
        straggler_ms: (1, 20),
        degraded_rank_prob: 0.08,
        degraded_link_prob: 0.08,
        slowdown_permille: (1500, 4000),
        hang_prob: 0.005,
        ckpt_crash_prob: 0.03,
        bitflip_prob: 0.02,
        poison_prob: 0.02,
        leave_prob: 0.01,
        rejoin_prob: 0.02,
        // the I/O fault kinds ride the same schedules: rare rot, flakes
        // and stalls per record; rare loss/truncation/slowness per shard
        io_corrupt_prob: 0.003,
        io_flaky_prob: 0.01,
        io_stall_prob: 0.002,
        io_stall_ms: (10, 25),
        io_missing_prob: 0.015,
        io_truncate_prob: 0.015,
        io_slow_prob: 0.03,
        io_slow_ms: (1, 3),
        // serve-side faults ride the same schedules (consumed only by
        // the serving DES leg): request storms, slow clients, hung
        // inference batches
        serve_burst_prob: 0.05,
        serve_burst_extra: (8, 32),
        serve_slow_client_prob: 0.05,
        serve_slow_ms: (1, 10),
        serve_hang_prob: 0.05,
    }
}

/// A fault-injectable streamed corpus sharing `plan` with the trainer.
fn plane(plan: Arc<FaultPlan>, quarantine: BTreeSet<RecordId>) -> Arc<IngestPlane> {
    let store = Arc::new(SimShardStore::generate(
        DatasetKind::Ucm,
        SHARDS,
        PER_SHARD,
        IMG,
        CHANNELS,
        DATA_SEED,
        plan,
    ));
    let mut cfg = StreamConfig::new(GLOBAL_BATCH, SHUFFLE_SEED);
    cfg.defense = DefenseConfig { timeout_floor: Duration::from_millis(5), ..Default::default() };
    cfg.quarantine = quarantine;
    Arc::new(IngestPlane::new(store, cfg))
}

fn run(
    strategy: ShardingStrategy,
    overlap: bool,
    resilience: ResilienceConfig,
    plane: Arc<IngestPlane>,
) -> Result<DistReport, geofm_resilience::FailureReport> {
    try_run_streaming(
        if overlap { FsdpConfig::overlapped(strategy) } else { FsdpConfig::tuned(strategy) },
        WORLD,
        0.01,
        STEPS,
        |_| Toy::new(7),
        plane,
        |m, batch, _rank, _world, _step| m.compute(batch),
        |_| 0.01,
        None,
        resilience,
    )
}

/// Fault-free baseline per strategy, in raw bits (computed once).
fn baseline(strategy_idx: usize) -> &'static (Vec<u32>, Vec<u32>) {
    static BASELINES: [OnceLock<(Vec<u32>, Vec<u32>)>; STRATEGIES.len()] =
        [OnceLock::new(), OnceLock::new(), OnceLock::new(), OnceLock::new()];
    BASELINES[strategy_idx].get_or_init(|| {
        // baseline is always blocking: overlapped schedules comparing equal
        // to it IS the equivalence property under chaos
        let report = run(
            STRATEGIES[strategy_idx],
            false,
            ResilienceConfig::disabled(),
            plane(Arc::new(FaultPlan::none()), BTreeSet::new()),
        )
        .expect("fault-free baseline must succeed");
        (
            report.final_params.iter().map(|v| v.to_bits()).collect(),
            report.mean_losses.iter().map(|v| v.to_bits()).collect(),
        )
    })
}

fn ckpt_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("geofm-chaos-{seed}-{}", std::process::id()))
}

/// Run one seeded schedule and assert the chaos invariant.
fn chaos_schedule(seed: u64) {
    let strategy_idx = (seed as usize) % STRATEGIES.len();
    let strategy = STRATEGIES[strategy_idx];
    // odd seeds exercise the overlap engine (comm thread + prefetch in flight)
    let overlap = seed % 2 == 1;
    let plan = Arc::new(FaultPlan::seeded_with_serve(
        seed,
        WORLD,
        STEPS,
        SHARDS,
        PER_SHARD,
        SERVE_TENANTS,
        SERVE_TICKS,
        &chaos_mix(),
    ));
    let dir = ckpt_dir(seed);
    let _ = std::fs::remove_dir_all(&dir);

    let resilience = ResilienceConfig {
        fault_plan: Arc::clone(&plan),
        checkpoint_every: 2,
        checkpoint_path: Some(dir.join("step.ckpt")),
        collective_timeout: Some(Duration::from_millis(300)),
        max_restarts: 3,
        adaptive_timeout: Some(AdaptiveTimeoutConfig {
            floor: Duration::from_millis(100),
            multiplier: 16.0,
            warmup: 8,
        }),
        straggler_threshold: 2.5,
        guard: Some(GuardConfig::default()),
        elastic: Some(ElasticConfig {
            checkpoint_path: Some(dir.join("elastic.ck3")),
            ..ElasticConfig::default()
        }),
    };

    let started = Instant::now();
    let outcome = run(strategy, overlap, resilience, plane(Arc::clone(&plan), BTreeSet::new()));
    let elapsed = started.elapsed();
    let _ = std::fs::remove_dir_all(&dir);

    // never hang: even a schedule that burns the whole restart budget on
    // hangs resolves within a few timeout periods per attempt
    assert!(
        elapsed < Duration::from_secs(60),
        "seed {seed} ({}, overlap={overlap}): schedule took {elapsed:?} — hang regression \
         (plan: {:?})",
        strategy.name(),
        plan.events()
    );

    // the serving plane rides the same schedule: the serve-side draws in
    // the shared plan (bursts, slow clients, hung batches) are consumed
    // only here. Whatever the climate, the run must terminate in a
    // conserved, structured report — never hang. A third of the
    // schedules kill the server mid-burst instead of draining.
    let serve_cfg = ServeSimConfig {
        ticks: SERVE_TICKS,
        base_rate: 1.0 + (seed % 5) as f64,
        drain: !seed.is_multiple_of(3),
        ..ServeSimConfig::default()
    };
    let serve_started = Instant::now();
    let serve_report = run_sim(&serve_cfg, &plan, seed);
    assert!(
        serve_started.elapsed() < Duration::from_secs(30),
        "seed {seed}: serving DES leg exceeded its wall-clock bound — hang regression"
    );
    serve_report.assert_conservation();
    assert!(serve_report.submitted() > 0, "seed {seed}: serving leg generated no traffic");

    match outcome {
        Ok(report) => {
            // A resharded run finished on a different world: the smaller
            // (or re-grown) world reduces in a different order, so the
            // bit-compare against the world-4 baseline cannot hold. Hold
            // the structural invariant instead — the transition chain is
            // consistent and the loss series is complete; bit-identity of
            // post-reshard training has its own suite.
            if !report.reshard.events.is_empty() {
                let mut world = WORLD;
                for ev in &report.reshard.events {
                    assert_eq!(
                        ev.from_world,
                        world,
                        "seed {seed} ({}, overlap={overlap}): reshard chain broke (plan: {:?})",
                        strategy.name(),
                        plan.events()
                    );
                    world = ev.to_world;
                }
                assert_eq!(
                    report.mean_losses.len(),
                    STEPS,
                    "seed {seed} ({}, overlap={overlap}): truncated loss series after reshard",
                    strategy.name()
                );
                return;
            }
            // Steps the guard rolled back and skipped carry the canonical
            // NaN loss placeholder. Derive the skip set from the losses —
            // not the guard report — because a skip can outlive an elastic
            // restart via the checkpointed loss series while the report is
            // per-attempt.
            let skipped: BTreeSet<usize> = report
                .mean_losses
                .iter()
                .enumerate()
                .filter_map(|(s, l)| l.is_nan().then_some(s))
                .collect();
            // records the ingest plane quarantined-and-skipped; the clean
            // comparator gets them up front — the degradation contract
            let quarantined: BTreeSet<RecordId> = report
                .data
                .as_ref()
                .map(|d| d.quarantined.iter().copied().collect())
                .unwrap_or_default();
            // never silently diverge: completion must be bit-identical to
            // the fault-free run — or, when the guard skipped steps or the
            // ingest plane quarantined records, to a clean run told to
            // skip/drop exactly those
            let (base_params, base_losses) = if skipped.is_empty() && quarantined.is_empty() {
                baseline(strategy_idx).clone()
            } else {
                let clean = run(
                    strategy,
                    overlap,
                    ResilienceConfig {
                        guard: Some(GuardConfig {
                            skip_steps: skipped.clone(),
                            ..GuardConfig::default()
                        }),
                        ..ResilienceConfig::disabled()
                    },
                    plane(Arc::new(FaultPlan::none()), quarantined.clone()),
                )
                .expect("clean comparator with forced skips must succeed");
                (
                    clean.final_params.iter().map(|v| v.to_bits()).collect(),
                    clean.mean_losses.iter().map(|v| v.to_bits()).collect(),
                )
            };
            let params: Vec<u32> = report.final_params.iter().map(|v| v.to_bits()).collect();
            let losses: Vec<u32> = report.mean_losses.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                params,
                base_params,
                "seed {seed} ({}, overlap={overlap}): final params diverged from clean run \
                 (skipped: {skipped:?}, plan: {:?})",
                strategy.name(),
                plan.events()
            );
            assert_eq!(
                losses,
                base_losses,
                "seed {seed} ({}, overlap={overlap}): loss curve diverged \
                 (skipped: {skipped:?}, plan: {:?})",
                strategy.name(),
                plan.events()
            );
        }
        Err(report) => {
            // a failed schedule must explain itself
            assert!(
                !report.failures.is_empty(),
                "seed {seed} ({}, overlap={overlap}): failure report with no failures \
                 (plan: {:?})",
                strategy.name(),
                plan.events()
            );
        }
    }

    // Odd seeds (the overlap-engine seeds) additionally drive the SimNet
    // transport: the same data plane behind a seeded jittery wire. A
    // pinned mixed-op exchange must come back bit-identical to the
    // reference semantics regardless of the per-(seed, rank, op) delays —
    // the chaos-suite face of transport law 1. The leg runs strictly
    // AFTER every training assertion, on its own fault-free plan, so
    // training outcomes stay byte-identical to the pre-SimNet era.
    if seed % 2 == 1 {
        simnet_exchange_leg(seed);
    }
}

/// Deterministic SimNet exchange: world 2, four mixed ops per rank,
/// results checked against `reference_result` (the loopback oracle).
fn simnet_exchange_leg(seed: u64) {
    use geofm_collectives::transport::{reference_result, Transport, TransportOp};
    use geofm_collectives::{SimNetConfig, SimNetTransport};

    const SIMNET_WORLD: usize = 2;
    let op_for = |rank: usize, i: usize| {
        let vals: Vec<f32> =
            (0..4).map(|j| (seed % 97) as f32 + (rank * 100 + i * 7 + j) as f32).collect();
        match i % 3 {
            0 => TransportOp::AllReduce(vals),
            1 => TransportOp::AllGather(vals),
            _ => TransportOp::ReduceScatter(vals),
        }
    };
    let cfg = SimNetConfig {
        base_latency: Duration::from_micros(2),
        jitter: Duration::from_micros(10),
        ..SimNetConfig::default()
    };
    let endpoints = SimNetTransport::create(SIMNET_WORLD, seed, None, cfg);
    std::thread::scope(|s| {
        for mut t in endpoints {
            s.spawn(move || {
                let rank = t.rank();
                let ops: Vec<TransportOp> = (0..4).map(|i| op_for(rank, i)).collect();
                let tickets = t.submit(ops);
                for (i, ticket) in tickets.into_iter().enumerate() {
                    let got = t.wait(ticket).expect("fault-free simnet wire");
                    let inputs: Vec<Vec<f32>> = (0..SIMNET_WORLD)
                        .map(|r| match op_for(r, i) {
                            TransportOp::AllReduce(v)
                            | TransportOp::AllGather(v)
                            | TransportOp::ReduceScatter(v) => v,
                        })
                        .collect();
                    assert_eq!(
                        got,
                        reference_result(&op_for(rank, i), &inputs, rank),
                        "seed {seed}: simnet rank {rank} op {i} diverged from reference"
                    );
                }
                t.quiesce();
            });
        }
    });
}

fn chaos_range(lo: u64, hi: u64) {
    let base = seed_base();
    for seed in lo..hi {
        chaos_schedule(base + seed);
    }
}

// 200 schedules, split so the test runner parallelises the batches.

#[test]
fn chaos_seeds_000_049() {
    chaos_range(0, 50);
}

#[test]
fn chaos_seeds_050_099() {
    chaos_range(50, 100);
}

#[test]
fn chaos_seeds_100_149() {
    chaos_range(100, 150);
}

#[test]
fn chaos_seeds_150_199() {
    chaos_range(150, 200);
}
