//! Determinism tests: two training runs with the same seed and strategy
//! must produce bit-identical final weights **and** identical telemetry
//! counter snapshots.
//!
//! Only counters are compared — timing histograms (`*.ns`) record
//! wall-clock durations, which legitimately vary run to run. Counter
//! metrics (`comm.*`, `fsdp.steps`) are pure functions of the collective
//! schedule and must not drift. Histogram *counts* (how many samples each
//! phase recorded) are also schedule-determined, so those are compared too;
//! their sums are not. The `health.*` watchdog counters are excluded like
//! the timing histograms: straggler flags are judgments about *observed
//! wall-clock* step times, so on a µs-scale toy workload scheduler jitter
//! may flag a rank in one run and not another — by design, not by drift.

use geofm_fsdp::{run_data_parallel_with_telemetry, DistReport, FsdpConfig, ShardingStrategy};
use geofm_nn::{Linear, Module, ParamVisitor};
use geofm_tensor::{Tensor, TensorRng};
use geofm_telemetry::{MetricsSnapshot, Telemetry};
use std::collections::BTreeMap;

struct Toy {
    a: Linear,
    b: Linear,
}

impl Module for Toy {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.a.visit_params(f);
        self.b.visit_params(f);
    }
}

impl Toy {
    fn new(seed: u64) -> (Self, Vec<usize>) {
        let mut rng = TensorRng::seed_from(seed);
        let mut a = Linear::new(3, 2, &mut rng, "a");
        let mut b = Linear::new(3, 2, &mut rng, "b");
        let units = vec![a.num_params(), b.num_params()];
        (Self { a, b }, units)
    }

    fn compute(&mut self, x: &Tensor, y: &Tensor) -> f32 {
        self.zero_grad();
        let ya = self.a.forward(x);
        let yb = self.b.forward(x);
        let out = ya.add(&yb);
        let diff = out.sub(y);
        let n = diff.numel() as f32;
        let loss = diff.sum_sq() / n;
        let dy = diff.scale(2.0 / n);
        let _ = self.a.backward(&dy);
        let _ = self.b.backward(&dy);
        loss
    }
}

const WORLD: usize = 4;
const STEPS: usize = 3;

fn train_once(strategy: ShardingStrategy) -> (DistReport, MetricsSnapshot) {
    let tel = Telemetry::new();
    let report = run_data_parallel_with_telemetry(
        FsdpConfig::tuned(strategy),
        WORLD,
        0.01,
        STEPS,
        |_| Toy::new(7),
        |m, rank, step| {
            // Deterministic per-(step, rank) microbatch.
            let mut rng = TensorRng::seed_from(5000 + step as u64);
            let x = rng.randn(&[8, 3], 1.0);
            let y = rng.randn(&[8, 2], 1.0);
            let per = 8 / WORLD;
            let xl = x.rows(rank * per, (rank + 1) * per);
            let yl = y.rows(rank * per, (rank + 1) * per);
            m.compute(&xl, &yl)
        },
        |_| 0.01,
        Some(tel.clone()),
    );
    let snap = tel.metrics.snapshot();
    (report, snap)
}

fn histogram_counts(snap: &MetricsSnapshot) -> BTreeMap<String, u64> {
    snap.histograms.iter().map(|(k, v)| (k.clone(), v.count)).collect()
}

/// Schedule-determined counters only: drop the `health.*` watchdog, whose
/// flags depend on observed wall-clock timings (see module docs).
fn schedule_counters(snap: &MetricsSnapshot) -> BTreeMap<String, u64> {
    snap.counters
        .iter()
        .filter(|(k, _)| !k.starts_with("health."))
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

fn strategies() -> Vec<ShardingStrategy> {
    vec![
        ShardingStrategy::NoShard,
        ShardingStrategy::FullShard,
        ShardingStrategy::ShardGradOp,
        ShardingStrategy::Hybrid { shard_size: 2 },
        ShardingStrategy::Ddp { bucket_bytes: 16 },
    ]
}

#[test]
fn repeated_runs_are_bit_identical_with_identical_counters() {
    for strategy in strategies() {
        let (r1, s1) = train_once(strategy);
        let (r2, s2) = train_once(strategy);

        // Bit-identical final weights: compare raw f32 bit patterns, which
        // is stricter than `==` (distinguishes -0.0, would catch NaN).
        let bits = |p: &[f32]| p.iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
        assert_eq!(
            bits(&r1.final_params),
            bits(&r2.final_params),
            "{}: final weights differ between identical runs",
            strategy.name()
        );
        assert_eq!(r1.traffic, r2.traffic, "{}: traffic differs", strategy.name());

        // Telemetry counters are a pure function of the schedule.
        assert_eq!(
            schedule_counters(&s1),
            schedule_counters(&s2),
            "{}: counter snapshots differ",
            strategy.name()
        );
        assert_eq!(
            histogram_counts(&s1),
            histogram_counts(&s2),
            "{}: histogram sample counts differ",
            strategy.name()
        );
    }
}

#[test]
fn counters_reflect_the_training_schedule() {
    for strategy in strategies() {
        let (_, snap) = train_once(strategy);
        assert_eq!(
            snap.counter("fsdp.steps"),
            (WORLD * STEPS) as u64,
            "{}: every rank increments fsdp.steps once per step",
            strategy.name()
        );
        // Every strategy moves bytes somewhere at world size 4.
        let moved = snap.counter("comm.all_reduce.bytes")
            + snap.counter("comm.all_gather.bytes")
            + snap.counter("comm.reduce_scatter.bytes");
        assert!(moved > 0, "{}: no communication recorded", strategy.name());
    }
}
