//! Workspace-level resilience tests: the fault-injection + recovery path
//! exercised end to end through the public crate APIs.
//!
//! Two properties anchor the suite:
//!
//! 1. **Bit-identical recovery** — a run that loses a rank mid-training and
//!    restarts from the last step checkpoint must finish with exactly the
//!    weights and loss curve of an uninterrupted run (the deterministic
//!    mailbox collectives make this an `assert_eq!`, not a tolerance).
//! 2. **No deadlock** — a rank that dies *without* poisoning its groups (a
//!    hard kill) must surface as `Err(RankLost)` on every surviving peer
//!    within a bounded wait, never as a hang.

use geofm_fsdp::{
    try_run_data_parallel, DistReport, FsdpConfig, ResilienceConfig, ShardingStrategy,
};
use geofm_nn::{Linear, Module, ParamVisitor};
use geofm_resilience::FaultPlan;
use geofm_tensor::{Tensor, TensorRng};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Toy {
    a: Linear,
    b: Linear,
}

impl Module for Toy {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.a.visit_params(f);
        self.b.visit_params(f);
    }
}

impl Toy {
    fn new(seed: u64) -> (Self, Vec<usize>) {
        let mut rng = TensorRng::seed_from(seed);
        let mut a = Linear::new(3, 2, &mut rng, "a");
        let mut b = Linear::new(3, 2, &mut rng, "b");
        let units = vec![a.num_params(), b.num_params()];
        (Self { a, b }, units)
    }

    fn compute(&mut self, x: &Tensor, y: &Tensor) -> f32 {
        self.zero_grad();
        let ya = self.a.forward(x);
        let yb = self.b.forward(x);
        let out = ya.add(&yb);
        let diff = out.sub(y);
        let n = diff.numel() as f32;
        let loss = diff.sum_sq() / n;
        let dy = diff.scale(2.0 / n);
        let _ = self.a.backward(&dy);
        let _ = self.b.backward(&dy);
        loss
    }
}

const WORLD: usize = 4;
const STEPS: usize = 8;

fn run(strategy: ShardingStrategy, resilience: ResilienceConfig) -> DistReport {
    try_run_data_parallel(
        FsdpConfig::tuned(strategy),
        WORLD,
        0.01,
        STEPS,
        |_| Toy::new(7),
        |m, rank, step| {
            let mut rng = TensorRng::seed_from(5000 + step as u64);
            let x = rng.randn(&[8, 3], 1.0);
            let y = rng.randn(&[8, 2], 1.0);
            let per = 8 / WORLD;
            let xl = x.rows(rank * per, (rank + 1) * per);
            let yl = y.rows(rank * per, (rank + 1) * per);
            m.compute(&xl, &yl)
        },
        |_| 0.01,
        None,
        resilience,
    )
    .expect("run should succeed")
}

fn ckpt_path(tag: &str) -> PathBuf {
    std::env::temp_dir()
        .join(format!("geofm-ws-resilience-{tag}-{}", std::process::id()))
        .join("step.ckpt")
}

#[test]
fn crashed_run_recovers_bit_identically_across_strategies() {
    for strategy in [
        ShardingStrategy::FullShard,
        ShardingStrategy::Hybrid { shard_size: 2 },
    ] {
        let clean = run(strategy, ResilienceConfig::disabled());

        let path = ckpt_path(&strategy.name());
        let faulted = run(
            strategy,
            ResilienceConfig {
                fault_plan: Arc::new(FaultPlan::none().with_rank_crash(2, 5)),
                checkpoint_every: 2,
                checkpoint_path: Some(path.clone()),
                collective_timeout: Some(Duration::from_secs(30)),
                max_restarts: 2,
                ..ResilienceConfig::disabled()
            },
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());

        assert_eq!(faulted.restarts, 1, "{}: expected exactly one restart", strategy.name());
        let bits = |p: &[f32]| p.iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
        assert_eq!(
            bits(&clean.final_params),
            bits(&faulted.final_params),
            "{}: recovered weights are not bit-identical",
            strategy.name()
        );
        assert_eq!(
            clean.mean_losses, faulted.mean_losses,
            "{}: recovered loss curve differs",
            strategy.name()
        );
    }
}

#[test]
fn unrecoverable_crash_produces_structured_failure_report() {
    let err = try_run_data_parallel(
        FsdpConfig::tuned(ShardingStrategy::FullShard),
        WORLD,
        0.01,
        STEPS,
        |_| Toy::new(7),
        |m, rank, step| {
            let mut rng = TensorRng::seed_from(5000 + step as u64);
            let x = rng.randn(&[8, 3], 1.0);
            let y = rng.randn(&[8, 2], 1.0);
            let per = 8 / WORLD;
            m.compute(&x.rows(rank * per, (rank + 1) * per), &y.rows(rank * per, (rank + 1) * per))
        },
        |_| 0.01,
        None,
        ResilienceConfig {
            fault_plan: Arc::new(FaultPlan::none().with_rank_crash(1, 3)),
            collective_timeout: Some(Duration::from_secs(30)),
            ..ResilienceConfig::disabled()
        },
    )
    .expect_err("no checkpoint and no restart budget: the run must fail");
    assert!(err.failures.iter().any(|f| f.rank == 1 && f.step == 3));
}

/// A hard-killed rank (no poisoning, no panic hook — it simply never shows
/// up) must not hang its peers: every survivor gets `Err(RankLost)` within
/// roughly one timeout period, and the whole test is wall-clock bounded.
#[test]
fn hard_killed_rank_unblocks_all_peers_within_timeout() {
    use geofm_collectives::Group;

    let timeout = Duration::from_millis(250);
    let handles = Group::create(WORLD);
    let started = Instant::now();
    let results: Vec<Option<Duration>> = std::thread::scope(|s| {
        let joins: Vec<_> = handles
            .iter()
            .map(|h| {
                let h = h.clone().with_timeout(Some(timeout));
                s.spawn(move || {
                    if h.rank() == 3 {
                        return None; // hard kill: vanish without poisoning
                    }
                    let t0 = Instant::now();
                    let mut buf = vec![h.rank() as f32; 8];
                    let _ = h.try_all_reduce(&mut buf).expect_err("peer is dead");
                    Some(t0.elapsed())
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let total = started.elapsed();

    let survivor_waits: Vec<Duration> = results.into_iter().flatten().collect();
    assert_eq!(survivor_waits.len(), WORLD - 1, "every survivor must return");
    // One timeout unblocks the first waiter, which poisons the barrier and
    // cascades; generous slack for CI schedulers.
    assert!(
        total < timeout * 20,
        "peers took {total:?} to unblock (timeout was {timeout:?}) — deadlock regression"
    );
}
