//! # geofm
//!
//! A Rust reproduction of *"Pretraining Billion-scale Geospatial
//! Foundational Models on Frontier"* (Tsaris et al., ORNL, 2024):
//! MAE-pretrained Vision Transformers for remote-sensing imagery, a real
//! FSDP-style sharded training engine, and a calibrated discrete-event
//! simulator of the Frontier supercomputer that regenerates the paper's
//! performance study.
//!
//! This crate re-exports the whole workspace as one umbrella API:
//!
//! * [`tensor`] — dense f32 tensors + rayon kernels
//! * [`nn`] — layers with explicit backward, optimizers (AdamW/LARS/SGD)
//! * [`vit`] — ViT configurations (paper Table I) and the encoder model
//! * [`mae`] — masked-autoencoder pretraining and linear probing
//! * [`data`] — synthetic MillionAID/UCM/AID/NWPU scene datasets + loader
//! * [`collectives`] — threaded process groups (all-reduce/-gather/…)
//! * [`fsdp`] — NO_SHARD / FULL_SHARD / SHARD_GRAD_OP / HYBRID / DDP
//! * [`frontier`] — the Frontier machine model and simulator
//! * [`core`] — the end-to-end pretrain → linear-probe recipe
//! * [`telemetry`] — metrics registry + Chrome-trace span recorder
//! * [`resilience`] — fault plans, crash-safe checkpoint format, MTBF /
//!   Young-Daly goodput modeling
//!
//! ## Quickstart
//!
//! ```
//! use geofm::core::{pretrain, probe_dataset, RecipeConfig};
//! use geofm::data::DatasetKind;
//! use geofm::vit::VitConfig;
//!
//! // a tiny budget so the doctest runs in seconds
//! let rc = RecipeConfig {
//!     pretrain_images: 64,
//!     pretrain_epochs: 1,
//!     probe_epochs: 2,
//!     probe_scale: 0.02,
//!     max_test: 60,
//!     ..RecipeConfig::default()
//! };
//! let family = VitConfig::tiny_family();
//! let out = pretrain(&family[0], &rc);
//! let probe = probe_dataset(&out.encoder, DatasetKind::Ucm, &rc);
//! assert!(probe.final_top1 >= 0.0 && probe.final_top5 <= 1.0);
//! ```

pub use geofm_collectives as collectives;
pub use geofm_core as core;
pub use geofm_data as data;
pub use geofm_fsdp as fsdp;
pub use geofm_frontier as frontier;
pub use geofm_mae as mae;
pub use geofm_nn as nn;
pub use geofm_resilience as resilience;
pub use geofm_serve as serve;
pub use geofm_tensor as tensor;
pub use geofm_telemetry as telemetry;
pub use geofm_vit as vit;
