//! The data-loading (IO) throughput model — Figure 1's `io` curve.
//!
//! The paper runs the PyTorch dataloader in isolation with 4 workers per
//! rank against MillionAID on Frontier's Lustre ("Orion") filesystem. Three
//! ceilings apply: per-worker decode CPU time, per-node filesystem
//! bandwidth, and the aggregate Lustre bandwidth (which never binds at
//! ≤ 64 nodes — Orion delivers multiple TB/s).

use crate::machine::FrontierMachine;

/// Data-loader model parameters.
#[derive(Debug, Clone, Copy)]
pub struct IoModel {
    /// Loader workers per rank (paper: 4).
    pub workers_per_rank: usize,
    /// CPU time to read + decode + augment one 512² image (s).
    pub decode_s: f64,
    /// Achievable per-node filesystem bandwidth (B/s).
    pub node_fs_bw: f64,
    /// Aggregate Lustre bandwidth (B/s).
    pub lustre_bw: f64,
}

impl Default for IoModel {
    fn default() -> Self {
        Self {
            workers_per_rank: 4,
            decode_s: 0.10,
            node_fs_bw: 5e9,
            lustre_bw: 5e12,
        }
    }
}

impl IoModel {
    /// Aggregate loader throughput in images/s for a job on `machine`
    /// reading images of `image_bytes` each.
    pub fn io_ips(&self, machine: &FrontierMachine, image_bytes: u64) -> f64 {
        let cpu_bound =
            machine.world() as f64 * self.workers_per_rank as f64 / self.decode_s;
        let node_bound = machine.nodes as f64 * self.node_fs_bw / image_bytes as f64;
        let lustre_bound = self.lustre_bw / image_bytes as f64;
        cpu_bound.min(node_bound).min(lustre_bound)
    }

    /// Per-step non-overlapped loader overhead added to the "real"
    /// application time: the fraction of host-side work (collation, H2D)
    /// the prefetching pipeline cannot hide.
    pub fn exposed_overhead(&self, step_time_syn: f64) -> f64 {
        0.04 * step_time_syn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_scales_linearly_while_cpu_bound() {
        let io = IoModel::default();
        let img = 3 * 512 * 512;
        let one = io.io_ips(&FrontierMachine::new(1), img);
        let four = io.io_ips(&FrontierMachine::new(4), img);
        assert!((four / one - 4.0).abs() < 1e-6);
    }

    #[test]
    fn lustre_caps_extreme_scale() {
        let io = IoModel { lustre_bw: 1e10, ..Default::default() }; // artificially small aggregate
        let img = 3 * 512 * 512;
        let small = io.io_ips(&FrontierMachine::new(1), img);
        let big = io.io_ips(&FrontierMachine::new(512), img);
        assert!(big < small * 512.0, "aggregate cap must bind");
        assert!((big - io.lustre_bw / img as f64).abs() < 1.0);
    }

    #[test]
    fn default_io_exceeds_typical_compute_rates() {
        // Figure 1: io is faster than syn even at one node (MAE-3B runs at
        // tens of ips per node; the loader sustains hundreds).
        let io = IoModel::default();
        let ips = io.io_ips(&FrontierMachine::new(1), 3 * 512 * 512);
        assert!(ips > 100.0, "io ips {}", ips);
    }

    #[test]
    fn overhead_is_small_fraction() {
        let io = IoModel::default();
        assert!(io.exposed_overhead(1.0) < 0.1);
    }
}
