//! Frontier hardware description and collective cost models.

/// Collective operations priced by the machine model (mirrors
/// `geofm_collectives::CollectiveKind`, duplicated to keep this crate free
/// of the threaded transport).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommOp {
    /// Sum to all ranks.
    AllReduce,
    /// Concatenate shards to all ranks.
    AllGather,
    /// Sum, leaving each rank one shard.
    ReduceScatter,
}

/// Where a process group's ranks physically sit, which decides its
/// bottleneck link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupSpan {
    /// Both ranks are GCDs of one MI250X package (Infinity Fabric die pair).
    SamePair,
    /// All ranks within one node (Infinity Fabric GPU–GPU mesh).
    SameNode,
    /// Ranks on multiple nodes (Slingshot-11).
    CrossNode,
}

/// Physical geometry of one process group on the machine: member count,
/// span, how many sibling groups share each node's NIC, and how many nodes
/// the group touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupGeom {
    /// Group size (ranks).
    pub m: usize,
    /// Bottleneck link class.
    pub span: GroupSpan,
    /// Concurrent sibling groups whose boundary flows share a node NIC.
    pub flows_per_node: usize,
    /// Nodes the group has members on.
    pub nodes_spanned: usize,
}

/// Calibration constants for the performance model.
///
/// Bandwidths are *achievable* (not peak) figures; the two throughput
/// targets from §IV-D (1509/1307 ips) anchor the compute-efficiency curve.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Achievable matmul throughput ceiling per GCD (mixed precision),
    /// FLOP/s. MI250X peak is ~191 TF/GCD (bf16); large trainings reach a
    /// fraction of it.
    pub peak_flops: f64,
    /// Asymptotic fraction of `peak_flops` reached by very wide layers.
    pub eff_max: f64,
    /// Width at which efficiency reaches half of `eff_max` (roofline knee).
    pub eff_whalf: f64,
    /// Achievable bandwidth between the two GCDs of one MI250X (B/s).
    pub bw_pair: f64,
    /// Achievable Infinity-Fabric bandwidth within a node (B/s).
    pub bw_node: f64,
    /// Achieved node-aggregate RCCL bus bandwidth across nodes (B/s).
    ///
    /// The key structural fact: a ring that is node-contiguous crosses each
    /// node boundary once, so the *node NIC* is the shared bottleneck and a
    /// global gradient reduction moves ~2·P bytes per node **regardless of
    /// the sharding-group size k** (k replica groups each move P/k through
    /// k boundary flows). Calibrated so the MAE-3B communication share
    /// reaches ≈22 % at 64 nodes (§IV-A) — measured RCCL busbw on
    /// Slingshot-11 at this era was far below the 100 GB/s NIC peak.
    pub bw_node_nic: f64,
    /// Straggler/jitter inflation per log2 of group size: large collectives
    /// are slowed by OS noise and arrival skew, `×(1 + jitter·log2(m))`.
    pub jitter_per_log2: f64,
    /// Fixed CPU issue/synchronization overhead per sharded unit pass (s):
    /// flat-param views must be rebuilt and streams synchronized each time
    /// a unit's parameters are materialised or its gradients flattened.
    pub shard_unit_overhead: f64,
    /// Flat-parameter copy-in/copy-out bandwidth (B/s): sharded strategies
    /// unflatten gathered parameters before compute and flatten gradients
    /// after, on the compute stream (the paper's "synchronization overhead
    /// for model sharding", §IV-C).
    pub shard_copy_bw: f64,
    /// Software launch overhead per collective call (s).
    pub alpha_call: f64,
    /// Per-ring-step latency within a node (s).
    pub alpha_step_intra: f64,
    /// Per-ring-step latency across nodes (s).
    pub alpha_step_inter: f64,
    /// Kernel-launch + bookkeeping overhead per unit per pass (s).
    pub kernel_overhead: f64,
    /// Extra per-call overhead multiplier for the NO_SHARD code path
    /// (§IV-C observes HYBRID_1GPU > NO_SHARD despite identical algebra —
    /// the implementations differ).
    pub no_shard_call_penalty: f64,
    /// Duration multiplier applied to all-gathers issued while more than
    /// two are already in flight and `limit_all_gathers` is off (allocator
    /// and cache thrash, §IV-B).
    pub unthrottled_gather_penalty: f64,
    /// GPU power draw at full compute utilisation (W per GCD).
    pub power_compute: f64,
    /// GPU power draw while communicating (W per GCD).
    pub power_comm: f64,
    /// GPU idle power (W per GCD).
    pub power_idle: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Self {
            peak_flops: 191e12,
            eff_max: 0.32,
            eff_whalf: 670.0,
            bw_pair: 150e9,
            bw_node: 40e9,
            bw_node_nic: 16e9,
            jitter_per_log2: 0.15,
            shard_unit_overhead: 0.3e-3,
            shard_copy_bw: 40e9,
            alpha_call: 30e-6,
            alpha_step_intra: 1e-6,
            alpha_step_inter: 8e-6,
            kernel_overhead: 100e-6,
            no_shard_call_penalty: 1.6,
            unthrottled_gather_penalty: 1.22,
            power_compute: 250.0,
            power_comm: 150.0,
            power_idle: 90.0,
        }
    }
}

/// The Frontier machine (§III-B).
#[derive(Debug, Clone, Copy)]
pub struct FrontierMachine {
    /// Nodes allocated to the job.
    pub nodes: usize,
    /// GCDs per node (the paper treats each GCD as a GPU).
    pub gpus_per_node: usize,
    /// HBM per GCD in bytes.
    pub hbm_per_gpu: u64,
    /// Calibration constants.
    pub cal: Calibration,
}

impl FrontierMachine {
    /// A Frontier allocation of `nodes` nodes with default calibration.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes >= 1, "need at least one node");
        assert!(nodes <= 9408, "Frontier has 9408 nodes");
        Self { nodes, gpus_per_node: 8, hbm_per_gpu: 64 * (1 << 30), cal: Calibration::default() }
    }

    /// Total GPUs (GCDs) in the allocation.
    pub fn world(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Physical span of a group of `group_size` **contiguous** ranks.
    pub fn contiguous_span(&self, group_size: usize) -> GroupSpan {
        if group_size <= 2 {
            GroupSpan::SamePair
        } else if group_size <= self.gpus_per_node {
            GroupSpan::SameNode
        } else {
            GroupSpan::CrossNode
        }
    }

    /// Geometry of a sharding group of `k` contiguous ranks.
    pub fn shard_geom(&self, k: usize) -> GroupGeom {
        let k = k.min(self.world());
        GroupGeom {
            m: k,
            span: self.contiguous_span(k),
            flows_per_node: 1,
            nodes_spanned: k.div_ceil(self.gpus_per_node),
        }
    }

    /// Geometry of a replica group when the shard groups have `k` ranks:
    /// `world/k` members strided `k` apart. For `k ≤ 8` there are `k`
    /// concurrent replica rings whose boundary flows share each node's NIC;
    /// for `k > 8` a node's eight GCDs belong to eight distinct replica
    /// groups.
    pub fn replica_geom(&self, k: usize) -> GroupGeom {
        let world = self.world();
        let k = k.min(world).max(1);
        let m = world / k;
        if m <= 1 {
            return GroupGeom { m: 1, span: GroupSpan::SamePair, flows_per_node: 1, nodes_spanned: 1 };
        }
        let g = self.gpus_per_node;
        let span = if self.nodes == 1 {
            let extent = (m - 1) * k + 1;
            if extent <= 2 { GroupSpan::SamePair } else { GroupSpan::SameNode }
        } else {
            GroupSpan::CrossNode
        };
        GroupGeom { m, span, flows_per_node: k.min(g), nodes_spanned: self.nodes.min(m) }
    }

    /// Geometry of the full world group.
    pub fn world_geom(&self) -> GroupGeom {
        self.shard_geom(self.world())
    }

    /// Achievable bottleneck bandwidth for a group (per boundary flow).
    pub fn geom_bandwidth(&self, geom: &GroupGeom) -> f64 {
        match geom.span {
            GroupSpan::SamePair => self.cal.bw_pair,
            GroupSpan::SameNode => self.cal.bw_node,
            GroupSpan::CrossNode => self.cal.bw_node_nic / geom.flows_per_node as f64,
        }
    }

    /// Time for one collective of `op` over `bytes` of payload on a group
    /// with geometry `geom`.
    ///
    /// Node-contiguous rings cross each node boundary once, so the moved
    /// volume per bottleneck link is `c_op · bytes · (m−1)/m` at the
    /// geometry's bottleneck bandwidth, inflated by straggler jitter
    /// (`× (1 + jitter · log2 m)`), plus per-call launch overhead and ring
    /// latency.
    pub fn collective_time(&self, op: CommOp, bytes: u64, geom: &GroupGeom) -> f64 {
        if geom.m <= 1 {
            return 0.0;
        }
        let m = geom.m as f64;
        let c = match op {
            CommOp::AllGather | CommOp::ReduceScatter => 1.0,
            CommOp::AllReduce => 2.0,
        };
        let volume = c * bytes as f64 * (m - 1.0) / m;
        let bw = self.geom_bandwidth(geom);
        let jitter = 1.0 + self.cal.jitter_per_log2 * m.log2();
        let latency = match geom.span {
            GroupSpan::CrossNode => {
                geom.nodes_spanned as f64 * self.cal.alpha_step_inter
                    + (geom.m.saturating_sub(geom.nodes_spanned)) as f64 * self.cal.alpha_step_intra
            }
            _ => geom.m as f64 * self.cal.alpha_step_intra,
        };
        self.cal.alpha_call + volume * jitter / bw + c * latency
    }

    /// Compute time for `flops` of matmul-dominated work at layer width
    /// `width` (roofline-style efficiency ramp + kernel overhead).
    pub fn compute_time(&self, flops: f64, width: usize) -> f64 {
        let eff = self.cal.eff_max * width as f64 / (width as f64 + self.cal.eff_whalf);
        self.cal.kernel_overhead + flops / (self.cal.peak_flops * eff)
    }

    /// Flat-parameter copy (unflatten/flatten) time for `bytes` — charged
    /// to the compute stream by sharded strategies.
    pub fn shard_copy_time(&self, bytes: u64) -> f64 {
        self.cal.shard_unit_overhead + bytes as f64 / self.cal.shard_copy_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_counts_gcds() {
        assert_eq!(FrontierMachine::new(1).world(), 8);
        assert_eq!(FrontierMachine::new(64).world(), 512);
    }

    #[test]
    #[should_panic(expected = "9408")]
    fn cannot_exceed_frontier() {
        let _ = FrontierMachine::new(10_000);
    }

    #[test]
    fn span_classification_contiguous() {
        let m = FrontierMachine::new(4);
        assert_eq!(m.contiguous_span(2), GroupSpan::SamePair);
        assert_eq!(m.contiguous_span(4), GroupSpan::SameNode);
        assert_eq!(m.contiguous_span(8), GroupSpan::SameNode);
        assert_eq!(m.contiguous_span(16), GroupSpan::CrossNode);
    }

    #[test]
    fn replica_geometry_flows() {
        let m = FrontierMachine::new(4); // 32 GCDs
        let g2 = m.replica_geom(2);
        assert_eq!(g2.m, 16);
        assert_eq!(g2.flows_per_node, 2);
        assert_eq!(g2.span, GroupSpan::CrossNode);
        let g16 = m.replica_geom(16);
        assert_eq!(g16.m, 2);
        assert_eq!(g16.flows_per_node, 8);
        let g32 = m.replica_geom(32);
        assert_eq!(g32.m, 1); // no replication
    }

    #[test]
    fn replica_all_reduce_time_is_nearly_k_invariant() {
        // The conserved-NIC property: k replica groups each move P/k through
        // k flows → time independent of k (up to jitter/latency terms).
        let machine = FrontierMachine::new(64);
        let p: u64 = 12 * (1 << 30);
        let t = |k: usize| {
            machine.collective_time(CommOp::AllReduce, p / k as u64, &machine.replica_geom(k))
        };
        let t1 = machine.collective_time(CommOp::AllReduce, p, &machine.world_geom());
        let t2 = t(2);
        let t8 = t(8);
        assert!((t2 - t1).abs() / t1 < 0.2, "t1 {} vs t2 {}", t1, t2);
        assert!((t8 - t1).abs() / t1 < 0.3, "t1 {} vs t8 {}", t1, t8);
        // larger groups carry more jitter → k=1 (largest m) is the slowest
        assert!(t1 >= t8, "jitter should penalise the biggest ring");
    }

    #[test]
    fn bandwidth_ordering() {
        let m = FrontierMachine::new(2);
        let pair = m.geom_bandwidth(&m.shard_geom(2));
        let node = m.geom_bandwidth(&m.shard_geom(8));
        let inter = m.geom_bandwidth(&m.shard_geom(16));
        assert!(pair > node && node > inter);
    }

    #[test]
    fn all_reduce_costs_double_gather() {
        let m = FrontierMachine::new(2);
        let geom = m.shard_geom(16);
        let ag = m.collective_time(CommOp::AllGather, 1 << 30, &geom);
        let ar = m.collective_time(CommOp::AllReduce, 1 << 30, &geom);
        assert!(ar > 1.7 * ag && ar < 2.3 * ag, "ar {} vs ag {}", ar, ag);
    }

    #[test]
    fn single_rank_groups_are_free() {
        let m = FrontierMachine::new(1);
        assert_eq!(m.collective_time(CommOp::AllReduce, 1 << 20, &m.replica_geom(8)), 0.0);
    }

    #[test]
    fn compute_efficiency_grows_with_width() {
        let m = FrontierMachine::new(1);
        let flops = 1e12;
        assert!(m.compute_time(flops, 768) > m.compute_time(flops, 5040));
    }

    #[test]
    fn shard_copy_time_is_affine_in_bytes() {
        let m = FrontierMachine::new(1);
        let t0 = m.shard_copy_time(0);
        let t1 = m.shard_copy_time(1 << 30);
        let t2 = m.shard_copy_time(2 << 30);
        assert!(t0 > 0.0, "fixed issue overhead");
        assert!(((t2 - t0) / (t1 - t0) - 2.0).abs() < 1e-9);
    }
}
