//! Pricing the silent-data-corruption guard at Frontier scale.
//!
//! `geofm-collectives`/`geofm-fsdp` implement the guard mechanically
//! (per-chunk CRCs in every reduce, a per-step guard exchange, sentinel
//! screening, deterministic rollback-and-skip). This module prices that
//! machinery on the machine model, the same way [`crate::faults`] prices
//! fail-stop checkpointing and [`crate::gray`] prices gray degradation:
//!
//! * **Checksum compute** — CRC32 over the reduce payload is a single
//!   streaming pass, memory-bandwidth-bound on a GCD. Each rank hashes its
//!   own contribution once and verifies its peers' chunk digests against
//!   one re-scan of the reduced payload: ~2 payload passes per step at
//!   [`SdcGuardModel::crc_bw`].
//! * **Guard exchange** — one tiny (two-float) world all-reduce per step:
//!   pure latency, [`SdcGuardModel::exchange_alpha_s`].
//! * **Rollback snapshot** — an in-HBM copy of params + two AdamW moments
//!   every [`SdcGuardModel::snapshot_every`] steps, amortised.
//!
//! The payoff side is the goodput comparison the `figT` repro binary
//! sweeps: with per-GCD-per-step SDC probability `p`, the probability that
//! *some* rank corrupts a given step is `1 − (1−p)^world`. A guarded
//! campaign pays the overhead plus bounded rollback rework per incident and
//! degrades gracefully; an unguarded campaign is only useful if **zero**
//! SDCs occurred over the whole campaign — `(1 − p_step)^steps`, a cliff.
//! This is the Frontier-scale version of the paper's reliability argument:
//! at 9 408 nodes even vanishingly small per-component rates make
//! corruption the common case.

use crate::engine::execute;
use crate::schedule::build_step;
use crate::sim::SimConfig;

/// Cost model for the SDC guard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdcGuardModel {
    /// Sustained CRC32 throughput per GCD (bytes/s). A table-driven CRC is
    /// a read-mostly streaming kernel; on an MI250X GCD (~1.6 TB/s HBM
    /// peak) a fused pass sustains roughly half of peak — default 800 GB/s.
    pub crc_bw: f64,
    /// Latency of the per-step guard exchange (a two-float world
    /// all-reduce is pure α-cost; default 25 µs — Slingshot small-message
    /// latency across a dragonfly hop plus software overhead).
    pub exchange_alpha_s: f64,
    /// Bandwidth of the in-HBM rollback-snapshot copy (bytes/s).
    pub snapshot_bw: f64,
    /// Steps between in-memory rollback snapshots (the trainer's
    /// `GuardConfig::snapshot_every`). Also bounds rollback rework: a trip
    /// re-executes on average half an interval.
    pub snapshot_every: usize,
}

impl Default for SdcGuardModel {
    fn default() -> Self {
        Self {
            crc_bw: 8e11,
            exchange_alpha_s: 25e-6,
            snapshot_bw: 1.2e12,
            snapshot_every: 8,
        }
    }
}

/// One cell of a goodput-vs-SDC-rate sweep, guard on and off side by side.
#[derive(Debug, Clone, Copy)]
pub struct GuardPoint {
    /// Per-GCD per-step silent-corruption probability swept over.
    pub sdc_prob: f64,
    /// P(some rank corrupts a given step) = `1 − (1−sdc_prob)^world`.
    pub p_step: f64,
    /// Fault-free step time without the guard (seconds).
    pub base_step_s: f64,
    /// Step time with the guard's checksum + exchange + snapshot overhead.
    pub guard_step_s: f64,
    /// Guard overhead as a fraction of the unguarded step time.
    pub overhead_frac: f64,
    /// Expected detected-SDC incidents over the campaign (guard on).
    pub incidents: f64,
    /// Guarded goodput: useful unguarded-step-equivalents over guarded
    /// wall time, net of rollback rework and skipped steps.
    pub goodput_on: f64,
    /// Unguarded goodput: the campaign is only useful if *no* step was
    /// silently corrupted — `(1 − p_step)^steps`.
    pub goodput_off: f64,
}

impl SdcGuardModel {
    /// Per-step guard overhead (seconds) for the workload in `cfg`:
    /// two CRC passes over the gradient payload, the guard exchange, and
    /// the amortised rollback snapshot (3 × param bytes of optimizer
    /// state).
    pub fn overhead_s(&self, cfg: &SimConfig) -> f64 {
        let payload = cfg.workload.param_bytes() as f64;
        let crc = 2.0 * payload / self.crc_bw;
        let snapshot = 3.0 * payload / self.snapshot_bw / self.snapshot_every.max(1) as f64;
        crc + self.exchange_alpha_s + snapshot
    }

    /// DES step time for `cfg` on its own machine (no degradation).
    fn base_step_s(&self, cfg: &SimConfig) -> f64 {
        let tasks = build_step(
            &cfg.machine,
            &cfg.workload,
            cfg.strategy,
            cfg.prefetch,
            cfg.limit_all_gathers,
        );
        execute(&tasks).makespan
    }

    /// Price one SDC rate for a campaign of `total_steps`.
    pub fn expected(&self, cfg: &SimConfig, total_steps: usize, sdc_prob: f64) -> GuardPoint {
        assert!((0.0..=1.0).contains(&sdc_prob), "sdc_prob must be a probability");
        assert!(total_steps > 0, "a campaign needs steps");
        let world = cfg.machine.world() as f64;
        let p_step = 1.0 - (1.0 - sdc_prob).powf(world);

        let base = self.base_step_s(cfg);
        let guarded = base + self.overhead_s(cfg);
        let steps = total_steps as f64;

        // guard on: every incident is detected, rolled back (re-executing
        // on average half a snapshot interval) and its step skipped — the
        // skipped step is lost useful work but bounded wall time.
        let incidents = steps * p_step;
        let rework_steps = self.snapshot_every.max(1) as f64 / 2.0;
        let wall_on = (steps + incidents * rework_steps) * guarded;
        let useful_on = (steps - incidents).max(0.0) * base;
        let goodput_on = (useful_on / wall_on).max(0.0);

        // guard off: zero overhead, but one silent corruption anywhere in
        // the campaign poisons the weights — only an entirely clean
        // campaign counts as useful.
        let goodput_off = (1.0 - p_step).powf(steps);

        GuardPoint {
            sdc_prob,
            p_step,
            base_step_s: base,
            guard_step_s: guarded,
            overhead_frac: (guarded - base) / base,
            incidents,
            goodput_on,
            goodput_off,
        }
    }

    /// Sweep SDC rates; points come back in the order of `probs`.
    pub fn sweep(&self, cfg: &SimConfig, total_steps: usize, probs: &[f64]) -> Vec<GuardPoint> {
        probs.iter().map(|&p| self.expected(cfg, total_steps, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::FrontierMachine;
    use crate::workload::MaeWorkload;
    use geofm_fsdp::ShardingStrategy;
    use geofm_vit::{VitConfig, VitVariant};

    fn cfg(strategy: ShardingStrategy) -> SimConfig {
        let machine = FrontierMachine::new(8);
        let wl = MaeWorkload::build(&VitConfig::table1(VitVariant::B3), 32, 0.75);
        SimConfig::tuned(machine, strategy, wl)
    }

    #[test]
    fn guard_overhead_is_under_five_percent_for_every_strategy() {
        // the acceptance criterion: at zero SDC rate the guard must cost
        // < 5% of step time — otherwise nobody would leave it on
        let m = SdcGuardModel::default();
        for strategy in [
            ShardingStrategy::NoShard,
            ShardingStrategy::FullShard,
            ShardingStrategy::ShardGradOp,
            ShardingStrategy::Hybrid { shard_size: 8 },
        ] {
            let p = m.expected(&cfg(strategy), 10_000, 0.0);
            assert!(
                p.overhead_frac < 0.05,
                "{}: guard overhead {:.2}% must stay under 5%",
                strategy.name(),
                p.overhead_frac * 100.0
            );
            assert!(p.overhead_frac > 0.0, "the guard is not free");
            assert!((p.goodput_off - 1.0).abs() < 1e-12, "no SDC → unguarded is perfect");
        }
    }

    #[test]
    fn guarded_goodput_degrades_gracefully_while_unguarded_cliffs() {
        let m = SdcGuardModel::default();
        let c = cfg(ShardingStrategy::FullShard);
        // 64 GCDs × 1e-7/step ≈ p_step 6.4e-6; over 100k steps the
        // unguarded campaign is almost surely corrupted
        let p = m.expected(&c, 100_000, 1e-7);
        assert!(p.goodput_off < 0.6, "unguarded must cliff: {}", p.goodput_off);
        assert!(p.goodput_on > 0.9, "guarded must shrug it off: {}", p.goodput_on);
    }

    #[test]
    fn guarded_goodput_is_monotone_in_sdc_rate_and_never_cliffs() {
        let m = SdcGuardModel::default();
        let c = cfg(ShardingStrategy::ShardGradOp);
        let probs = [0.0, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4];
        let pts = m.sweep(&c, 20_000, &probs);
        for w in pts.windows(2) {
            assert!(
                w[1].goodput_on <= w[0].goodput_on + 1e-12,
                "goodput must not increase with corruption rate"
            );
            // graceful: each decade of rate costs a bounded factor, not a
            // collapse to zero
            assert!(
                w[1].goodput_on > 0.25 * w[0].goodput_on,
                "guarded goodput cliffed between p={} and p={}: {} → {}",
                w[0].sdc_prob,
                w[1].sdc_prob,
                w[0].goodput_on,
                w[1].goodput_on
            );
        }
        // while the unguarded curve collapses over the same sweep
        assert!(pts.last().unwrap().goodput_off < 1e-6);
    }

    #[test]
    fn incidents_scale_with_world_and_campaign_length() {
        let m = SdcGuardModel::default();
        let c = cfg(ShardingStrategy::NoShard);
        let short = m.expected(&c, 1_000, 1e-6);
        let long = m.expected(&c, 10_000, 1e-6);
        assert!(long.incidents > 9.0 * short.incidents);
        assert!((short.p_step - (1.0 - (1.0 - 1e-6f64).powf(64.0))).abs() < 1e-12);
    }

    #[test]
    fn tighter_snapshot_cadence_trades_overhead_for_rework() {
        let c = cfg(ShardingStrategy::FullShard);
        let tight = SdcGuardModel { snapshot_every: 1, ..Default::default() };
        let loose = SdcGuardModel { snapshot_every: 64, ..Default::default() };
        // more frequent snapshots cost more per step...
        assert!(tight.overhead_s(&c) > loose.overhead_s(&c));
        // ...but waste less on each rollback, which wins at high SDC rates
        let p = 1e-4;
        let t = tight.expected(&c, 10_000, p);
        let l = loose.expected(&c, 10_000, p);
        assert!(t.goodput_on > l.goodput_on, "{} vs {}", t.goodput_on, l.goodput_on);
    }
}
