//! Gray-failure (degraded-GCD / degraded-link) modeling for the DES.
//!
//! Fail-stop faults cost rework and restarts ([`crate::faults`]); *gray*
//! faults cost throughput continuously. Training is bulk-synchronous, so a
//! single persistently slow GCD gates every barrier — the step time of the
//! whole world becomes the slow rank's step time — and a single degraded
//! Slingshot link gates every ring collective that crosses it. Both
//! properties make the degraded regimes cheap to price exactly:
//!
//! * **degraded GCD** — re-run the step DAG on a machine whose
//!   `peak_flops` is divided by the slowdown. Under BSP, "every rank slow"
//!   and "one rank slow" have the same critical path through compute, so
//!   this is exact for the compute contribution.
//! * **degraded link** — divide the inter-node NIC bandwidth
//!   (`bw_node_nic`). A ring moves every byte across every link in the
//!   ring, so its throughput is the *minimum* link bandwidth — derating
//!   the machine-wide NIC bandwidth is exactly the one-bad-link cost for
//!   ring collectives.
//!
//! With per-GCD degradation probability `f`, the probability that *some*
//! GCD in a `W`-rank job is degraded is `1 − (1−f)^W` — at Frontier scale
//! even tiny `f` makes a degraded step the common case, which is the whole
//! point of the `figS` sweep built on [`GrayModel::sweep`].

use crate::engine::execute;
use crate::machine::FrontierMachine;
use crate::schedule::build_step;
use crate::sim::SimConfig;

/// Severity of gray degradation, applied machine-wide (see module docs for
/// why that equals the single-bad-component cost under BSP + rings).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayModel {
    /// How much slower a degraded GCD computes (3.0 = one third the
    /// FLOP/s — the regime of a thermally throttled or half-broken GCD).
    pub gcd_slowdown: f64,
    /// How much a degraded link's bandwidth is derated (4.0 = quarter
    /// bandwidth — e.g. a Slingshot link running with degraded lanes).
    pub link_derate: f64,
}

impl Default for GrayModel {
    fn default() -> Self {
        Self { gcd_slowdown: 3.0, link_derate: 4.0 }
    }
}

/// One cell of an ips-vs-degradation-fraction sweep.
#[derive(Debug, Clone, Copy)]
pub struct GrayPoint {
    /// Per-component degradation probability swept over.
    pub frac: f64,
    /// P(at least one degraded GCD) = `1 − (1−frac)^world`.
    pub p_any_gcd: f64,
    /// P(at least one degraded link) = `1 − (1−frac)^nodes`.
    pub p_any_link: f64,
    /// Expected step time (probability-weighted over the four health
    /// states), seconds.
    pub step_time: f64,
    /// Expected aggregate images/s.
    pub ips: f64,
    /// `ips` relative to the fault-free configuration (1.0 at `frac` = 0).
    pub relative: f64,
}

impl GrayModel {
    /// `machine` with every GCD computing `gcd_slowdown ×` slower.
    pub fn degrade_gcd(&self, machine: &FrontierMachine) -> FrontierMachine {
        let mut m = *machine;
        m.cal.peak_flops /= self.gcd_slowdown;
        m
    }

    /// `machine` with the inter-node NIC derated `link_derate ×`.
    pub fn degrade_link(&self, machine: &FrontierMachine) -> FrontierMachine {
        let mut m = *machine;
        m.cal.bw_node_nic /= self.link_derate;
        m
    }

    fn step_time(&self, cfg: &SimConfig, machine: &FrontierMachine) -> f64 {
        let tasks = build_step(
            machine,
            &cfg.workload,
            cfg.strategy,
            cfg.prefetch,
            cfg.limit_all_gathers,
        );
        execute(&tasks).makespan
    }

    /// Expected step time and throughput when each GCD is independently
    /// degraded with probability `frac` and each inter-node link likewise.
    pub fn expected(&self, cfg: &SimConfig, frac: f64) -> GrayPoint {
        assert!((0.0..=1.0).contains(&frac), "frac must be a probability");
        let world = cfg.machine.world() as f64;
        let nodes = cfg.machine.nodes as f64;
        let p_any_gcd = 1.0 - (1.0 - frac).powf(world);
        let p_any_link = 1.0 - (1.0 - frac).powf(nodes);

        let t_base = self.step_time(cfg, &cfg.machine);
        let t_gcd = self.step_time(cfg, &self.degrade_gcd(&cfg.machine));
        let t_link = self.step_time(cfg, &self.degrade_link(&cfg.machine));
        let t_both = self.step_time(cfg, &self.degrade_link(&self.degrade_gcd(&cfg.machine)));

        let step_time = (1.0 - p_any_gcd) * (1.0 - p_any_link) * t_base
            + p_any_gcd * (1.0 - p_any_link) * t_gcd
            + (1.0 - p_any_gcd) * p_any_link * t_link
            + p_any_gcd * p_any_link * t_both;

        let global_batch = (cfg.machine.world() * cfg.workload.local_batch) as f64;
        let ips = global_batch / step_time;
        GrayPoint {
            frac,
            p_any_gcd,
            p_any_link,
            step_time,
            ips,
            relative: t_base / step_time,
        }
    }

    /// Sweep the degradation fraction. Points are returned in the order of
    /// `fracs`; `relative` is normalised to the fault-free step time, so
    /// strategies are comparable even when their absolute ips differ.
    pub fn sweep(&self, cfg: &SimConfig, fracs: &[f64]) -> Vec<GrayPoint> {
        fracs.iter().map(|&f| self.expected(cfg, f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::MaeWorkload;
    use geofm_fsdp::ShardingStrategy;
    use geofm_vit::{VitConfig, VitVariant};

    fn cfg(strategy: ShardingStrategy) -> SimConfig {
        let machine = FrontierMachine::new(4);
        let wl = MaeWorkload::build(&VitConfig::table1(VitVariant::Base), 32, 0.75);
        SimConfig::tuned(machine, strategy, wl)
    }

    #[test]
    fn zero_fraction_is_fault_free() {
        let c = cfg(ShardingStrategy::FullShard);
        let p = GrayModel::default().expected(&c, 0.0);
        assert!((p.relative - 1.0).abs() < 1e-12, "{}", p.relative);
        assert_eq!(p.p_any_gcd, 0.0);
        assert_eq!(p.p_any_link, 0.0);
    }

    #[test]
    fn ips_is_monotone_non_increasing_in_fraction() {
        let c = cfg(ShardingStrategy::NoShard);
        let points =
            GrayModel::default().sweep(&c, &[0.0, 0.001, 0.01, 0.05, 0.1, 0.5, 1.0]);
        for w in points.windows(2) {
            assert!(
                w[1].ips <= w[0].ips + 1e-9,
                "ips must not increase with degradation: {} → {}",
                w[0].ips,
                w[1].ips
            );
        }
    }

    #[test]
    fn unit_severity_changes_nothing() {
        let c = cfg(ShardingStrategy::ShardGradOp);
        let m = GrayModel { gcd_slowdown: 1.0, link_derate: 1.0 };
        let p = m.expected(&c, 0.5);
        assert!((p.relative - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_fraction_hits_the_fully_degraded_floor() {
        let c = cfg(ShardingStrategy::FullShard);
        let m = GrayModel::default();
        let p = m.expected(&c, 1.0);
        // at frac = 1 every step runs on the doubly-degraded machine; the
        // slowdown is bounded by the compute derate (comm may overlap)
        assert!(p.relative < 1.0 / 2.0, "3x compute derate must cost >2x: {}", p.relative);
        assert!(p.relative > 0.05, "{}", p.relative);
    }

    #[test]
    fn steep_initial_drop_then_plateau() {
        // the curve's signature shape: P(any slow GCD) saturates fast, so
        // ips falls steeply at small fractions and flattens
        let c = cfg(ShardingStrategy::NoShard);
        let pts = GrayModel::default().sweep(&c, &[0.0, 0.05, 0.1, 0.6, 1.0]);
        let drop_early = pts[0].ips - pts[2].ips; // 0 → 0.1
        let drop_late = pts[2].ips - pts[4].ips; // 0.1 → 1.0
        assert!(
            drop_early > drop_late,
            "early drop {drop_early} must exceed late drop {drop_late}"
        );
    }

    #[test]
    fn probability_of_any_degraded_component_saturates_with_scale() {
        let m = GrayModel::default();
        let small = m.expected(&cfg(ShardingStrategy::NoShard), 0.01);
        let big_machine = FrontierMachine::new(64);
        let wl = MaeWorkload::build(&VitConfig::table1(VitVariant::Base), 32, 0.75);
        let big_cfg = SimConfig::tuned(big_machine, ShardingStrategy::NoShard, wl);
        let big = m.expected(&big_cfg, 0.01);
        assert!(big.p_any_gcd > small.p_any_gcd);
        assert!(big.p_any_gcd > 0.99, "512 GCDs at 1% each: {}", big.p_any_gcd);
    }
}
