//! Builds the per-step task DAG for each sharding strategy — the simulator
//! twin of `geofm-fsdp`'s real communication schedule.

use crate::engine::{Stream, Task};
use crate::machine::{CommOp, FrontierMachine, GroupGeom};
use crate::workload::StepWorkload;
use geofm_fsdp::{PrefetchPolicy, ShardingStrategy};

/// Bytes of unit `u` padded to a multiple of the shard-group size (FSDP
/// pads its flat parameters; also what `geofm_fsdp::FlatLayout` does).
fn padded_bytes(bytes: u64, k: usize) -> u64 {
    let elems = bytes / 4;
    elems.div_ceil(k as u64) * k as u64 * 4
}

/// Build one training step's task graph.
///
/// Streams: GPU compute and NIC comm. Units are gathered (sharded
/// strategies), computed forward, recomputed backward with the configured
/// prefetch policy, and reduced (reduce-scatter within the shard group,
/// all-reduce across replicas).
pub fn build_step(
    machine: &FrontierMachine,
    workload: &StepWorkload,
    strategy: ShardingStrategy,
    prefetch: PrefetchPolicy,
    limit_all_gathers: bool,
) -> Vec<Task> {
    let world = machine.world();
    let k = strategy.shard_group_size(world).min(world);
    let shard_geom = machine.shard_geom(k);
    let replica_geom =
        if k == 1 { machine.world_geom() } else { machine.replica_geom(k) };
    let m = replica_geom.m;
    let cal = machine.cal;
    let nunits = workload.units.len();
    let mut tasks: Vec<Task> = Vec::with_capacity(nunits * 6);

    let mut push = |dur: f64, stream: Stream, deps: Vec<usize>, label: String| -> usize {
        tasks.push(Task { dur, stream, deps, label });
        tasks.len() - 1
    };

    let gather_dur = |u: usize, order_in_phase: usize| -> f64 {
        let bytes = padded_bytes(workload.units[u].param_bytes, k);
        let mut d = machine.collective_time(CommOp::AllGather, bytes, &shard_geom);
        if !limit_all_gathers && order_in_phase >= 2 {
            // unthrottled in-flight gathers thrash the caching allocator
            d *= cal.unthrottled_gather_penalty;
        }
        d
    };

    // ---------- forward ----------
    let mut fwd_gather: Vec<Option<usize>> = vec![None; nunits];
    let mut fwd: Vec<usize> = Vec::with_capacity(nunits);
    for u in 0..nunits {
        if k > 1 {
            let mut deps = Vec::new();
            if limit_all_gathers && u >= 2 {
                // at most two gathered units in flight
                deps.push(fwd_gather[u - 2].unwrap());
            }
            let id = push(gather_dur(u, u), Stream::Comm, deps, format!("ag_fwd{}", u));
            fwd_gather[u] = Some(id);
        }
        let mut deps = Vec::new();
        if let Some(g) = fwd_gather[u] {
            deps.push(g);
        }
        if u > 0 {
            deps.push(fwd[u - 1]);
        }
        let unit = &workload.units[u];
        // sharded strategies unflatten gathered parameters on the compute
        // stream (the paper's model-sharding synchronization overhead)
        let copy = if k > 1 { machine.shard_copy_time(unit.param_bytes) } else { 0.0 };
        let id = push(
            machine.compute_time(unit.fwd_flops, unit.width) + copy,
            Stream::Compute,
            deps,
            format!("fwd{}", u),
        );
        fwd.push(id);
    }
    let last_fwd = fwd[nunits - 1];

    // ---------- backward ----------
    let regathers = strategy.regathers_in_backward() && k > 1;
    let mut bwd_prev: Option<usize> = None;
    let mut reduce_prev: Option<usize> = None;
    let mut regather_prev2: Option<usize> = None;
    let mut regather_prev: Option<usize> = None;
    let mut reduce_tasks: Vec<usize> = Vec::new();

    // DDP bucket assembly state
    let is_ddp = matches!(strategy, ShardingStrategy::Ddp { .. });
    let bucket_bytes_cfg = match strategy {
        ShardingStrategy::Ddp { bucket_bytes } => bucket_bytes as u64,
        _ => 0,
    };
    let mut bucket_fill: u64 = 0;

    for step_idx in 0..nunits {
        let u = nunits - 1 - step_idx;
        // backward re-gather (FULL_SHARD / HYBRID semantics)
        let regather = if regathers {
            let mut deps: Vec<usize> = Vec::new();
            match prefetch {
                PrefetchPolicy::BackwardPre => {
                    // issue as early as the comm stream allows once backward begins
                    if step_idx == 0 {
                        deps.push(last_fwd);
                    }
                }
                PrefetchPolicy::BackwardPost => {
                    if let Some(b) = bwd_prev {
                        deps.push(b);
                    } else {
                        deps.push(last_fwd);
                    }
                }
                PrefetchPolicy::None => {
                    if let Some(r) = reduce_prev {
                        deps.push(r);
                    } else {
                        deps.push(last_fwd);
                    }
                }
            }
            if limit_all_gathers {
                if let Some(g) = regather_prev2 {
                    deps.push(g);
                }
            }
            let id = push(gather_dur(u, step_idx), Stream::Comm, deps, format!("ag_bwd{}", u));
            regather_prev2 = regather_prev;
            regather_prev = Some(id);
            Some(id)
        } else {
            None
        };

        // backward compute
        let mut deps = vec![if let Some(b) = bwd_prev { b } else { last_fwd }];
        if let Some(g) = regather {
            deps.push(g);
        }
        let unit = &workload.units[u];
        // grad flatten (all sharded) + param unflatten (re-gathering ones)
        let copy = if k > 1 {
            let n_copies = if regathers { 2.0 } else { 1.0 };
            n_copies * machine.shard_copy_time(unit.param_bytes)
        } else {
            0.0
        };
        let bwd = push(
            machine.compute_time(unit.bwd_flops, unit.width) + copy,
            Stream::Compute,
            deps,
            format!("bwd{}", u),
        );
        bwd_prev = Some(bwd);

        // gradient reduction
        if is_ddp {
            // fixed-size buckets fire as gradients accumulate
            bucket_fill += workload.units[u].param_bytes;
            while bucket_fill >= bucket_bytes_cfg {
                bucket_fill -= bucket_bytes_cfg;
                let dur = machine.collective_time(
                    CommOp::AllReduce,
                    bucket_bytes_cfg,
                    &replica_geom,
                );
                let id = push(dur, Stream::Comm, vec![bwd], "ddp_bucket".into());
                reduce_tasks.push(id);
            }
        } else if k > 1 {
            let bytes = padded_bytes(unit.param_bytes, k);
            let rs = machine.collective_time(CommOp::ReduceScatter, bytes, &shard_geom);
            let rs_id = push(rs, Stream::Comm, vec![bwd], format!("rs{}", u));
            reduce_prev = Some(rs_id);
            reduce_tasks.push(rs_id);
            if m > 1 {
                let ar =
                    machine.collective_time(CommOp::AllReduce, bytes / k as u64, &replica_geom);
                let ar_id = push(ar, Stream::Comm, vec![rs_id], format!("ar{}", u));
                reduce_prev = Some(ar_id);
                reduce_tasks.push(ar_id);
            }
        } else {
            // NO_SHARD / HYBRID_1GPU: per-unit all-reduce across the world
            let mut dur =
                machine.collective_time(CommOp::AllReduce, unit.param_bytes, &replica_geom);
            if matches!(strategy, ShardingStrategy::NoShard) {
                dur += cal.alpha_call * (cal.no_shard_call_penalty - 1.0);
            }
            let id = push(dur, Stream::Comm, vec![bwd], format!("ar{}", u));
            reduce_prev = Some(id);
            reduce_tasks.push(id);
        }
    }
    // flush the last partial DDP bucket
    if is_ddp && bucket_fill > 0 {
        let dur = machine.collective_time(CommOp::AllReduce, bucket_fill, &replica_geom);
        let id = push(dur, Stream::Comm, vec![bwd_prev.unwrap()], "ddp_flush".into());
        reduce_tasks.push(id);
    }

    // ---------- optimizer ----------
    let owned_bytes = padded_bytes(workload.param_bytes(), k) / k as u64;
    let opt_dur = 50e-6 + 3.0 * owned_bytes as f64 / 1.0e12; // 3 passes at ~1 TB/s HBM
    let mut deps = reduce_tasks;
    deps.push(bwd_prev.unwrap());
    push(opt_dur, Stream::Compute, deps, "optimizer".into());

    tasks
}

/// Collapse the two-stream schedule into a fully serialized one: every
/// task additionally depends on its predecessor in issue order, so
/// communication is never concurrent with compute and the makespan is the
/// plain sum of all durations. This is the "overlap off" counterfactual
/// the `figU` sweep prices against the overlapped schedule — the DES twin
/// of running `geofm-fsdp` with `OverlapConfig::off()` (every collective
/// blocking on the compute thread).
pub fn serialize_streams(tasks: &[Task]) -> Vec<Task> {
    tasks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut deps = t.deps.clone();
            if i > 0 && !deps.contains(&(i - 1)) {
                deps.push(i - 1);
            }
            Task { dur: t.dur, stream: t.stream, deps, label: t.label.clone() }
        })
        .collect()
}

/// Identify comm tasks (used by the "syn no comm" variant of Figure 1).
pub fn strip_comm(tasks: &[Task]) -> Vec<Task> {
    tasks
        .iter()
        .map(|t| Task {
            dur: if t.stream == Stream::Comm { 0.0 } else { t.dur },
            stream: t.stream,
            deps: t.deps.clone(),
            label: t.label.clone(),
        })
        .collect()
}

/// Group geometries used by a strategy on a machine (for reporting).
pub fn geoms_for(
    machine: &FrontierMachine,
    strategy: ShardingStrategy,
) -> (GroupGeom, GroupGeom) {
    let world = machine.world();
    let k = strategy.shard_group_size(world).min(world);
    let shard = machine.shard_geom(k);
    let replica = if k == 1 { machine.world_geom() } else { machine.replica_geom(k) };
    (shard, replica)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute;
    use crate::workload::VitWorkload;
    use geofm_vit::{VitConfig, VitVariant};

    fn wl(v: VitVariant) -> StepWorkload {
        VitWorkload::build(&VitConfig::table1(v), 32, 224)
    }

    fn run(nodes: usize, v: VitVariant, strategy: ShardingStrategy) -> f64 {
        let m = FrontierMachine::new(nodes);
        let tasks = build_step(&m, &wl(v), strategy, PrefetchPolicy::BackwardPre, true);
        execute(&tasks).makespan
    }

    #[test]
    fn graphs_execute_for_all_strategies() {
        for strategy in [
            ShardingStrategy::NoShard,
            ShardingStrategy::ddp_default(),
            ShardingStrategy::FullShard,
            ShardingStrategy::ShardGradOp,
            ShardingStrategy::Hybrid { shard_size: 1 },
            ShardingStrategy::Hybrid { shard_size: 2 },
            ShardingStrategy::Hybrid { shard_size: 8 },
        ] {
            let t = run(2, VitVariant::Base, strategy);
            assert!(t.is_finite() && t > 0.0, "{}", strategy.name());
        }
    }

    #[test]
    fn single_gpu_equivalent_has_no_comm_cost() {
        // 1 node, HYBRID_8 = shard across all 8 GPUs; NO_SHARD on 1 node
        // still all-reduces. A world of 8 with NoShard must be slower than
        // the pure-compute lower bound.
        let m = FrontierMachine::new(1);
        let tasks =
            build_step(&m, &wl(VitVariant::Base), ShardingStrategy::NoShard, PrefetchPolicy::BackwardPre, true);
        let with = execute(&tasks).makespan;
        let without = execute(&strip_comm(&tasks)).makespan;
        assert!(with >= without);
    }

    #[test]
    fn full_shard_gathers_twice_as_many_bytes_as_sgo() {
        let m = FrontierMachine::new(4);
        let count_gathers = |s: ShardingStrategy| -> usize {
            build_step(&m, &wl(VitVariant::B1), s, PrefetchPolicy::BackwardPre, true)
                .iter()
                .filter(|t| t.label.starts_with("ag_"))
                .count()
        };
        let fs = count_gathers(ShardingStrategy::FullShard);
        let sgo = count_gathers(ShardingStrategy::ShardGradOp);
        assert_eq!(fs, 2 * sgo, "FULL_SHARD re-gathers every unit in backward");
    }

    #[test]
    fn ddp_emits_more_collectives_for_bigger_models() {
        let m = FrontierMachine::new(2);
        let buckets = |v: VitVariant| -> usize {
            build_step(&m, &wl(v), ShardingStrategy::ddp_default(), PrefetchPolicy::BackwardPre, true)
                .iter()
                .filter(|t| t.label.starts_with("ddp"))
                .count()
        };
        assert!(buckets(VitVariant::B3) > 4 * buckets(VitVariant::Base));
    }

    #[test]
    fn prefetch_pre_is_at_least_as_fast_as_none() {
        let m = FrontierMachine::new(8);
        let wl5 = wl(VitVariant::B5);
        let t = |p: PrefetchPolicy| {
            execute(&build_step(&m, &wl5, ShardingStrategy::FullShard, p, true)).makespan
        };
        assert!(t(PrefetchPolicy::BackwardPre) <= t(PrefetchPolicy::None) * 1.001);
    }

    #[test]
    fn limit_all_gathers_helps_when_comm_bound() {
        let m = FrontierMachine::new(8);
        let wl5 = wl(VitVariant::B5);
        let t = |limit: bool| {
            execute(&build_step(&m, &wl5, ShardingStrategy::Hybrid { shard_size: 2 }, PrefetchPolicy::BackwardPre, limit))
                .makespan
        };
        assert!(t(true) <= t(false), "throttled gathers should not be slower");
    }

    #[test]
    fn weak_scaling_step_time_grows_with_nodes() {
        // comm costs grow with world size → per-step time must not shrink
        let t1 = run(1, VitVariant::B3, ShardingStrategy::NoShard);
        let t64 = run(64, VitVariant::B3, ShardingStrategy::NoShard);
        assert!(t64 >= t1);
    }

    #[test]
    fn serialized_makespan_is_the_sum_of_durations() {
        let m = FrontierMachine::new(4);
        let tasks = build_step(
            &m,
            &wl(VitVariant::Base),
            ShardingStrategy::FullShard,
            PrefetchPolicy::BackwardPre,
            true,
        );
        let serial = serialize_streams(&tasks);
        let sum: f64 = tasks.iter().map(|t| t.dur).sum();
        let makespan = execute(&serial).makespan;
        assert!(
            (makespan - sum).abs() < 1e-12 * sum.max(1.0),
            "serialized makespan {makespan} vs duration sum {sum}"
        );
    }

    #[test]
    fn serialization_never_speeds_up_a_schedule() {
        for strategy in [
            ShardingStrategy::NoShard,
            ShardingStrategy::FullShard,
            ShardingStrategy::Hybrid { shard_size: 8 },
        ] {
            let m = FrontierMachine::new(8);
            let tasks =
                build_step(&m, &wl(VitVariant::B1), strategy, PrefetchPolicy::BackwardPre, true);
            let overlapped = execute(&tasks).makespan;
            let serial = execute(&serialize_streams(&tasks)).makespan;
            assert!(
                serial >= overlapped - 1e-12,
                "{}: serial {serial} < overlapped {overlapped}",
                strategy.name()
            );
        }
    }
}
