//! Closed-form step-time estimate, used to cross-validate the DES.

use crate::machine::{CommOp, FrontierMachine};
use crate::workload::StepWorkload;
use geofm_fsdp::ShardingStrategy;

/// Closed-form estimate: total compute + non-overlappable communication.
///
/// Communication that happens during the backward pass can hide under
/// backward compute (up to an overlap fraction); the remainder is exposed.
/// This is deliberately simpler than the DES — agreement between the two
/// validates the event engine.
pub fn estimate_step_time(
    machine: &FrontierMachine,
    workload: &StepWorkload,
    strategy: ShardingStrategy,
) -> f64 {
    let world = machine.world();
    let k = strategy.shard_group_size(world).min(world);
    let shard_geom = machine.shard_geom(k);
    let replica_geom =
        if k == 1 { machine.world_geom() } else { machine.replica_geom(k) };
    let m = replica_geom.m;

    let compute: f64 = workload
        .units
        .iter()
        .map(|u| {
            machine.compute_time(u.fwd_flops, u.width) + machine.compute_time(u.bwd_flops, u.width)
        })
        .sum();
    let bwd_compute: f64 =
        workload.units.iter().map(|u| machine.compute_time(u.bwd_flops, u.width)).sum();

    let mut comm = 0.0;
    for u in &workload.units {
        let bytes = u.param_bytes;
        match strategy {
            ShardingStrategy::NoShard | ShardingStrategy::Ddp { .. } => {
                comm += machine.collective_time(CommOp::AllReduce, bytes, &replica_geom);
            }
            ShardingStrategy::FullShard
            | ShardingStrategy::ShardGradOp
            | ShardingStrategy::Hybrid { .. } => {
                if k > 1 {
                    let gathers = if strategy.regathers_in_backward() { 2.0 } else { 1.0 };
                    comm += gathers
                        * machine.collective_time(CommOp::AllGather, bytes, &shard_geom);
                    comm += machine.collective_time(CommOp::ReduceScatter, bytes, &shard_geom);
                    if m > 1 {
                        comm += machine.collective_time(
                            CommOp::AllReduce,
                            bytes / k as u64,
                            &replica_geom,
                        );
                    }
                } else {
                    comm += machine.collective_time(CommOp::AllReduce, bytes, &replica_geom);
                }
            }
        }
    }

    // backward-side communication overlaps with backward compute
    const OVERLAP: f64 = 0.85;
    let hidden = (OVERLAP * bwd_compute).min(comm);
    compute + (comm - hidden)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute;
    use crate::schedule::build_step;
    use crate::workload::VitWorkload;
    use geofm_fsdp::PrefetchPolicy;
    use geofm_vit::{VitConfig, VitVariant};

    /// The DES and the closed form must agree within 25 % for the simple
    /// NO_SHARD schedule across scales — validating the event engine.
    #[test]
    fn des_matches_closed_form_for_no_shard() {
        for nodes in [1usize, 4, 16, 64] {
            let m = FrontierMachine::new(nodes);
            let wl = VitWorkload::build(&VitConfig::table1(VitVariant::B1), 32, 224);
            let des = execute(&build_step(
                &m,
                &wl,
                ShardingStrategy::NoShard,
                PrefetchPolicy::BackwardPre,
                true,
            ))
            .makespan;
            let cf = estimate_step_time(&m, &wl, ShardingStrategy::NoShard);
            let rel = (des - cf).abs() / des;
            assert!(rel < 0.25, "{} nodes: DES {} vs analytic {} (rel {:.2})", nodes, des, cf, rel);
        }
    }

    #[test]
    fn closed_form_orders_strategies_plausibly() {
        let m = FrontierMachine::new(16);
        let wl = VitWorkload::build(&VitConfig::table1(VitVariant::B3), 32, 224);
        let h1 = estimate_step_time(&m, &wl, ShardingStrategy::Hybrid { shard_size: 1 });
        let fs = estimate_step_time(&m, &wl, ShardingStrategy::FullShard);
        assert!(h1 < fs, "at 16 nodes the 3B model should favour replication");
    }
}
