//! The discrete-event simulation engine.
//!
//! A step is a DAG of tasks over two resource streams per (representative)
//! rank: the GPU compute stream and the NIC communication stream — the same
//! two-stream structure PyTorch FSDP schedules onto. Overlap between compute
//! and communication is *emergent*: a comm task runs concurrently with
//! compute whenever its dependencies allow.
//!
//! Because the workload is SPMD-symmetric (weak scaling with identical
//! per-rank work), one representative rank's timeline determines the step
//! time; cross-rank effects enter through the collective cost model.

use geofm_telemetry::TraceRecorder;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which resource a task occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// GPU kernels.
    Compute,
    /// Collective communication.
    Comm,
}

/// A node in the step DAG.
#[derive(Debug, Clone)]
pub struct Task {
    /// Duration in seconds.
    pub dur: f64,
    /// Resource stream.
    pub stream: Stream,
    /// Indices of tasks that must complete first.
    pub deps: Vec<usize>,
    /// Debug label.
    pub label: String,
}

/// A completed schedule.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// `(start, end, stream)` per task, indexed like the input.
    pub spans: Vec<(f64, f64, Stream)>,
    /// Total step time.
    pub makespan: f64,
    /// Busy time of the compute stream.
    pub compute_busy: f64,
    /// Busy time of the comm stream.
    pub comm_busy: f64,
}

/// Event-driven list scheduling: each stream serves one task at a time,
/// picking the ready task with the lowest index (= issue order).
pub fn execute(tasks: &[Task]) -> Timeline {
    let n = tasks.len();
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, t) in tasks.iter().enumerate() {
        indegree[i] = t.deps.len();
        for &d in &t.deps {
            assert!(d < n, "task {} depends on unknown task {}", i, d);
            assert!(d != i, "task {} depends on itself", i);
            dependents[d].push(i);
        }
    }

    // ready queues per stream, ordered by task index
    let mut ready_compute: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
    let mut ready_comm: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
    for (i, t) in tasks.iter().enumerate() {
        if indegree[i] == 0 {
            match t.stream {
                Stream::Compute => ready_compute.push(Reverse(i)),
                Stream::Comm => ready_comm.push(Reverse(i)),
            }
        }
    }

    #[derive(PartialEq)]
    struct Event {
        time: f64,
        task: usize,
    }
    impl Eq for Event {}
    impl PartialOrd for Event {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Event {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .time
                .partial_cmp(&self.time)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(other.task.cmp(&self.task))
        }
    }

    let mut spans = vec![(0.0, 0.0, Stream::Compute); n];
    let mut events: BinaryHeap<Event> = BinaryHeap::new();
    let mut compute_free_at = 0.0f64;
    let mut comm_free_at = 0.0f64;
    let mut compute_running: Option<usize> = None;
    let mut comm_running: Option<usize> = None;
    let mut now = 0.0f64;
    let mut done = 0usize;
    let mut compute_busy = 0.0;
    let mut comm_busy = 0.0;

    macro_rules! try_start {
        ($queue:ident, $running:ident, $free_at:ident, $busy:ident, $stream:expr) => {
            if $running.is_none() {
                if let Some(Reverse(i)) = $queue.pop() {
                    let start = now.max($free_at);
                    let end = start + tasks[i].dur;
                    spans[i] = (start, end, $stream);
                    $free_at = end;
                    $busy += tasks[i].dur;
                    $running = Some(i);
                    events.push(Event { time: end, task: i });
                }
            }
        };
    }

    loop {
        try_start!(ready_compute, compute_running, compute_free_at, compute_busy, Stream::Compute);
        try_start!(ready_comm, comm_running, comm_free_at, comm_busy, Stream::Comm);
        let Some(ev) = events.pop() else { break };
        now = ev.time;
        let i = ev.task;
        if compute_running == Some(i) {
            compute_running = None;
        }
        if comm_running == Some(i) {
            comm_running = None;
        }
        done += 1;
        for &dep in &dependents[i] {
            indegree[dep] -= 1;
            if indegree[dep] == 0 {
                match tasks[dep].stream {
                    Stream::Compute => ready_compute.push(Reverse(dep)),
                    Stream::Comm => ready_comm.push(Reverse(dep)),
                }
            }
        }
    }

    assert_eq!(done, n, "cycle in task graph: {} of {} tasks completed", done, n);
    Timeline { spans, makespan: now, compute_busy, comm_busy }
}

/// Export an executed schedule into `trace` as Chrome-trace complete events
/// in **virtual** time (simulated seconds → trace microseconds), one thread
/// track per stream under process `pid`. Open the written JSON in
/// `chrome://tracing` or Perfetto to see the emergent compute/comm overlap.
pub fn record_timeline(tasks: &[Task], timeline: &Timeline, trace: &TraceRecorder, pid: u64) {
    assert_eq!(tasks.len(), timeline.spans.len(), "timeline must come from these tasks");
    trace.name_thread(pid, 0, "compute");
    trace.name_thread(pid, 1, "comm");
    for (i, task) in tasks.iter().enumerate() {
        let (start, end, stream) = timeline.spans[i];
        let (tid, cat) = match stream {
            Stream::Compute => (0, "compute"),
            Stream::Comm => (1, "comm"),
        };
        let name = if task.label.is_empty() { format!("task{i}") } else { task.label.clone() };
        trace.complete_with_args(
            &name,
            cat,
            pid,
            tid,
            start * 1e6,
            (end - start) * 1e6,
            &[("dur_s", format!("{:.6}", task.dur))],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dur: f64, stream: Stream, deps: Vec<usize>) -> Task {
        Task { dur, stream, deps, label: String::new() }
    }

    #[test]
    fn serial_chain_sums() {
        let tasks = vec![
            t(1.0, Stream::Compute, vec![]),
            t(2.0, Stream::Compute, vec![0]),
            t(3.0, Stream::Compute, vec![1]),
        ];
        let tl = execute(&tasks);
        assert!((tl.makespan - 6.0).abs() < 1e-9);
        assert!((tl.compute_busy - 6.0).abs() < 1e-9);
    }

    #[test]
    fn independent_streams_overlap() {
        let tasks = vec![t(5.0, Stream::Compute, vec![]), t(4.0, Stream::Comm, vec![])];
        let tl = execute(&tasks);
        assert!((tl.makespan - 5.0).abs() < 1e-9, "full overlap expected");
    }

    #[test]
    fn same_stream_serialises() {
        let tasks = vec![t(2.0, Stream::Comm, vec![]), t(3.0, Stream::Comm, vec![])];
        let tl = execute(&tasks);
        assert!((tl.makespan - 5.0).abs() < 1e-9);
    }

    #[test]
    fn dependency_across_streams_delays() {
        // comm(2) -> compute(1): total 3
        let tasks = vec![t(2.0, Stream::Comm, vec![]), t(1.0, Stream::Compute, vec![0])];
        let tl = execute(&tasks);
        assert!((tl.makespan - 3.0).abs() < 1e-9);
        assert!(tl.spans[1].0 >= 2.0);
    }

    #[test]
    fn diamond_dag() {
        //      0(c,1)
        //     /      \
        //  1(m,2)   2(c,3)
        //     \      /
        //      3(c,1)
        let tasks = vec![
            t(1.0, Stream::Compute, vec![]),
            t(2.0, Stream::Comm, vec![0]),
            t(3.0, Stream::Compute, vec![0]),
            t(1.0, Stream::Compute, vec![1, 2]),
        ];
        let tl = execute(&tasks);
        // compute: 0 then 2 (1..4); comm: 1 (1..3); 3 starts at 4 → 5
        assert!((tl.makespan - 5.0).abs() < 1e-9);
    }

    #[test]
    fn issue_order_respected_within_stream() {
        // two ready comm tasks; index order must win
        let tasks = vec![t(1.0, Stream::Comm, vec![]), t(1.0, Stream::Comm, vec![])];
        let tl = execute(&tasks);
        assert!(tl.spans[0].0 < tl.spans[1].0);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn detects_cycles() {
        let tasks = vec![t(1.0, Stream::Compute, vec![1]), t(1.0, Stream::Compute, vec![0])];
        let _ = execute(&tasks);
    }

    #[test]
    fn zero_duration_tasks_ok() {
        let tasks = vec![t(0.0, Stream::Comm, vec![]), t(1.0, Stream::Compute, vec![0])];
        let tl = execute(&tasks);
        assert!((tl.makespan - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let tl = execute(&[]);
        assert_eq!(tl.makespan, 0.0);
    }
}
