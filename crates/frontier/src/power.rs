//! rocm-smi-style GPU telemetry traces derived from the DES timeline
//! (Figure 4, bottom panel: power / memory / utilisation).

use crate::engine::{Stream, Timeline};
use crate::machine::Calibration;

/// A sampled telemetry trace for one GPU over one (repeated) step.
#[derive(Debug, Clone)]
pub struct PowerTrace {
    /// Sample times (s).
    pub t: Vec<f64>,
    /// Power draw (W).
    pub power: Vec<f64>,
    /// GPU utilisation (%).
    pub util: Vec<f64>,
    /// Memory used (GiB), constant per strategy.
    pub mem_gib: f64,
}

impl PowerTrace {
    /// Mean power over the trace.
    pub fn mean_power(&self) -> f64 {
        if self.power.is_empty() {
            0.0
        } else {
            self.power.iter().sum::<f64>() / self.power.len() as f64
        }
    }

    /// Mean utilisation over the trace.
    pub fn mean_util(&self) -> f64 {
        if self.util.is_empty() {
            0.0
        } else {
            self.util.iter().sum::<f64>() / self.util.len() as f64
        }
    }
}

/// Sample a step timeline into a telemetry trace with `samples` points.
/// Compute activity dominates the reading when both streams are busy
/// (the GPU is the hotter device).
pub fn sample_trace(
    timeline: &Timeline,
    cal: &Calibration,
    mem_gib: f64,
    samples: usize,
) -> PowerTrace {
    let dt = timeline.makespan / samples.max(1) as f64;
    let mut t = Vec::with_capacity(samples);
    let mut power = Vec::with_capacity(samples);
    let mut util = Vec::with_capacity(samples);
    for s in 0..samples {
        let time = (s as f64 + 0.5) * dt;
        let mut compute = false;
        let mut comm = false;
        for &(start, end, stream) in &timeline.spans {
            if time >= start && time < end {
                match stream {
                    Stream::Compute => compute = true,
                    Stream::Comm => comm = true,
                }
            }
        }
        let (p, u) = if compute {
            (cal.power_compute, 100.0)
        } else if comm {
            (cal.power_comm, 100.0) // rocm-smi reports busy during collectives
        } else {
            (cal.power_idle, 0.0)
        };
        t.push(time);
        power.push(p);
        util.push(u);
    }
    PowerTrace { t, power, util, mem_gib }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{execute, Task};

    fn cal() -> Calibration {
        Calibration::default()
    }

    #[test]
    fn all_compute_draws_compute_power() {
        let tl = execute(&[Task { dur: 1.0, stream: Stream::Compute, deps: vec![], label: "c".into() }]);
        let tr = sample_trace(&tl, &cal(), 10.0, 50);
        assert!((tr.mean_power() - cal().power_compute).abs() < 1e-6);
        assert!((tr.mean_util() - 100.0).abs() < 1e-6);
        assert_eq!(tr.mem_gib, 10.0);
    }

    #[test]
    fn comm_only_draws_less_power() {
        let tl = execute(&[
            Task { dur: 1.0, stream: Stream::Compute, deps: vec![], label: "c".into() },
            Task { dur: 1.0, stream: Stream::Comm, deps: vec![0], label: "m".into() },
        ]);
        let tr = sample_trace(&tl, &cal(), 1.0, 100);
        // first half compute power, second half comm power
        let mid = tr.power.len() / 2;
        assert!(tr.power[mid / 2] > tr.power[mid + mid / 2]);
        let expect = (cal().power_compute + cal().power_comm) / 2.0;
        assert!((tr.mean_power() - expect).abs() < 10.0);
    }

    #[test]
    fn higher_compute_share_means_higher_mean_power() {
        let busy = execute(&[Task { dur: 2.0, stream: Stream::Compute, deps: vec![], label: String::new() }]);
        let mixed = execute(&[
            Task { dur: 1.0, stream: Stream::Compute, deps: vec![], label: String::new() },
            Task { dur: 1.0, stream: Stream::Comm, deps: vec![0], label: String::new() },
        ]);
        let pb = sample_trace(&busy, &cal(), 1.0, 64).mean_power();
        let pm = sample_trace(&mixed, &cal(), 1.0, 64).mean_power();
        assert!(pb > pm);
    }
}
