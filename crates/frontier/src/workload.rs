//! Per-unit compute/communication workloads for the simulator, derived from
//! the analytic FLOPs and parameter counts in `geofm-vit`.

use geofm_vit::config::VitConfig;
use geofm_vit::flops::encoder_flops;

/// One FSDP unit's share of the step.
#[derive(Debug, Clone)]
pub struct UnitWork {
    /// Display name.
    pub name: String,
    /// Parameter bytes (f32).
    pub param_bytes: u64,
    /// Forward FLOPs for the local batch.
    pub fwd_flops: f64,
    /// Backward FLOPs for the local batch (≈ 2× forward).
    pub bwd_flops: f64,
    /// Representative layer width (drives the efficiency model).
    pub width: usize,
}

/// The full per-rank step workload.
#[derive(Debug, Clone)]
pub struct StepWorkload {
    /// Human-readable name (e.g. "ViT-3B" or "MAE-ViT-3B").
    pub name: String,
    /// FSDP units in forward order.
    pub units: Vec<UnitWork>,
    /// Local (per-GPU) batch size.
    pub local_batch: usize,
    /// Bytes of one raw input image (for the IO model).
    pub image_bytes: u64,
    /// Activation memory per GPU in bytes (strategy-independent).
    pub act_bytes: u64,
}

impl StepWorkload {
    /// Total parameter bytes.
    pub fn param_bytes(&self) -> u64 {
        self.units.iter().map(|u| u.param_bytes).sum()
    }

    /// Largest unit's parameter bytes (transient gather buffer sizing).
    pub fn max_unit_bytes(&self) -> u64 {
        self.units.iter().map(|u| u.param_bytes).max().unwrap_or(0)
    }

    /// Total forward+backward FLOPs per step.
    pub fn total_flops(&self) -> f64 {
        self.units.iter().map(|u| u.fwd_flops + u.bwd_flops).sum()
    }
}

/// Activation-memory calibration: bytes ≈ K · batch · tokens · width · depth · 4.
/// K < 1 models activation rematerialisation (required to make the paper's
/// own memory statements mutually consistent — see EXPERIMENTS.md).
const ACT_FACTOR: f64 = 0.25;

fn act_bytes(batch: usize, tokens: usize, width: usize, depth: usize) -> u64 {
    (ACT_FACTOR * batch as f64 * tokens as f64 * width as f64 * depth as f64 * 4.0) as u64
}

/// Builder for the plain-ViT performance workload (Figures 2–4).
#[derive(Debug, Clone)]
pub struct VitWorkload;

impl VitWorkload {
    /// Build the per-step workload for `cfg` at `local_batch`, using
    /// `img` pixels for the performance geometry (the paper's performance
    /// sections do not state the image size; 224 px makes its §IV-C/IV-D
    /// memory statements consistent — see EXPERIMENTS.md).
    pub fn build(cfg: &VitConfig, local_batch: usize, img: usize) -> StepWorkload {
        let mut perf_cfg = cfg.clone();
        perf_cfg.img = img;
        let tokens = perf_cfg.tokens();
        let b = local_batch as f64;

        let block_fwd =
            b * encoder_flops(&perf_cfg, tokens, false) / perf_cfg.depth as f64;
        let embed_fwd = b * tokens as f64 * 2.0 * (perf_cfg.patch_dim() as f64)
            * perf_cfg.width as f64;

        let w = perf_cfg.width as u64;
        let embed_params =
            (perf_cfg.patch_dim() as u64) * w + w + (tokens as u64) * w;
        let mut units = vec![UnitWork {
            name: "embed".into(),
            param_bytes: embed_params * 4,
            fwd_flops: embed_fwd,
            bwd_flops: 2.0 * embed_fwd,
            width: perf_cfg.width,
        }];
        for i in 0..perf_cfg.depth {
            units.push(UnitWork {
                name: format!("block{}", i),
                param_bytes: perf_cfg.block_params() * 4,
                fwd_flops: block_fwd,
                bwd_flops: 2.0 * block_fwd,
                width: perf_cfg.width,
            });
        }
        units.push(UnitWork {
            name: "final_ln".into(),
            param_bytes: 2 * w * 4,
            fwd_flops: b * (tokens as f64) * 8.0 * perf_cfg.width as f64,
            bwd_flops: 2.0 * b * (tokens as f64) * 8.0 * perf_cfg.width as f64,
            width: perf_cfg.width,
        });

        StepWorkload {
            name: cfg.name.clone(),
            units,
            local_batch,
            image_bytes: (3 * img * img) as u64, // ~1 byte/px/channel compressed
            act_bytes: act_bytes(local_batch, tokens, perf_cfg.width, perf_cfg.depth),
        }
    }
}

/// Builder for the MAE pretraining workload (Figure 1): encoder on visible
/// tokens at the paper's 512 px geometry + the 8×512 decoder on all tokens.
#[derive(Debug, Clone)]
pub struct MaeWorkload;

impl MaeWorkload {
    /// Build the MAE step workload for encoder `cfg` at `local_batch` and
    /// `mask_ratio` (paper: 0.75, 512 px inputs).
    pub fn build(cfg: &VitConfig, local_batch: usize, mask_ratio: f64) -> StepWorkload {
        let tokens = cfg.tokens();
        let visible = ((tokens as f64) * (1.0 - mask_ratio)).round().max(1.0) as usize;
        let b = local_batch as f64;

        // encoder units on visible tokens
        let enc_block_fwd = b * encoder_flops(cfg, visible, false) / cfg.depth as f64;
        let embed_fwd = b * visible as f64 * 2.0 * (cfg.patch_dim() as f64) * cfg.width as f64;
        let w = cfg.width as u64;
        let embed_params = (cfg.patch_dim() as u64) * w + w + (tokens as u64) * w;

        let mut units = vec![UnitWork {
            name: "embed".into(),
            param_bytes: embed_params * 4,
            fwd_flops: embed_fwd,
            bwd_flops: 2.0 * embed_fwd,
            width: cfg.width,
        }];
        for i in 0..cfg.depth {
            units.push(UnitWork {
                name: format!("enc{}", i),
                param_bytes: cfg.block_params() * 4,
                fwd_flops: enc_block_fwd,
                bwd_flops: 2.0 * enc_block_fwd,
                width: cfg.width,
            });
        }

        // decoder: paper default 8 blocks × 512 wide on the full grid
        let dec = VitConfig {
            name: format!("{}-dec", cfg.name),
            width: 512,
            depth: 8,
            mlp: 2048,
            heads: 16,
            ..cfg.clone()
        };
        let dec_block_fwd = b * encoder_flops(&dec, tokens, false) / dec.depth as f64;
        for i in 0..dec.depth {
            units.push(UnitWork {
                name: format!("dec{}", i),
                param_bytes: dec.block_params() * 4,
                fwd_flops: dec_block_fwd,
                bwd_flops: 2.0 * dec_block_fwd,
                width: dec.width,
            });
        }
        // prediction head
        let pd = cfg.patch_dim() as f64;
        let pred_fwd = b * tokens as f64 * 2.0 * 512.0 * pd;
        units.push(UnitWork {
            name: "pred".into(),
            param_bytes: (512 * cfg.patch_dim() as u64 + cfg.patch_dim() as u64) * 4,
            fwd_flops: pred_fwd,
            bwd_flops: 2.0 * pred_fwd,
            width: 512,
        });

        let act = act_bytes(local_batch, visible, cfg.width, cfg.depth)
            + act_bytes(local_batch, tokens, 512, 8);

        StepWorkload {
            name: format!("MAE-{}", cfg.name),
            units,
            local_batch,
            image_bytes: (3 * cfg.img * cfg.img) as u64,
            act_bytes: act,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geofm_vit::config::VitVariant;

    #[test]
    fn vit_workload_param_bytes_match_analytic() {
        let cfg = VitConfig::table1(VitVariant::B3);
        let w = VitWorkload::build(&cfg, 32, 224);
        // the workload re-derives pos-embed size at 224px, so compare blocks
        let block_bytes: u64 = w.units[1..1 + cfg.depth].iter().map(|u| u.param_bytes).sum();
        assert_eq!(block_bytes, cfg.depth as u64 * cfg.block_params() * 4);
        assert_eq!(w.units.len(), cfg.depth + 2);
    }

    #[test]
    fn vit_flops_scale_with_batch() {
        let cfg = VitConfig::table1(VitVariant::Base);
        let w32 = VitWorkload::build(&cfg, 32, 224);
        let w64 = VitWorkload::build(&cfg, 64, 224);
        let r = w64.total_flops() / w32.total_flops();
        assert!((r - 2.0).abs() < 0.01);
    }

    #[test]
    fn bigger_models_have_more_flops_and_bytes() {
        let base = VitWorkload::build(&VitConfig::table1(VitVariant::Base), 32, 224);
        let b3 = VitWorkload::build(&VitConfig::table1(VitVariant::B3), 32, 224);
        assert!(b3.total_flops() > 10.0 * base.total_flops());
        assert!(b3.param_bytes() > 30 * base.param_bytes());
    }

    #[test]
    fn mae_encoder_runs_on_quarter_tokens() {
        let cfg = VitConfig::table1(VitVariant::B3);
        let mae = MaeWorkload::build(&cfg, 32, 0.75);
        let full = VitWorkload::build(&cfg, 32, 512);
        // encoder part of MAE ≈ 25% of full-grid encoder flops
        let mae_enc: f64 = mae.units[..cfg.depth + 1].iter().map(|u| u.fwd_flops).sum();
        let full_enc: f64 = full.units.iter().map(|u| u.fwd_flops).sum();
        let share = mae_enc / full_enc;
        assert!(share > 0.1 && share < 0.35, "share {}", share);
    }

    #[test]
    fn mae_has_decoder_units() {
        let cfg = VitConfig::table1(VitVariant::B3);
        let mae = MaeWorkload::build(&cfg, 32, 0.75);
        assert_eq!(mae.units.len(), 1 + cfg.depth + 8 + 1);
        assert!(mae.units.iter().any(|u| u.name == "dec0"));
    }

    #[test]
    fn memory_relevant_quantities_positive() {
        let cfg = VitConfig::table1(VitVariant::B5);
        let w = VitWorkload::build(&cfg, 32, 224);
        assert!(w.act_bytes > 0);
        assert!(w.max_unit_bytes() > 0);
        assert!(w.param_bytes() > 15_000_000_000); // ~3.8B params × 4
    }
}
