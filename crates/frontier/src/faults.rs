//! Failure/goodput modeling for Frontier-scale campaigns.
//!
//! Bridges the machine + workload models to `geofm-resilience`'s MTBF
//! machinery: given a workload, derive the checkpoint write cost from the
//! optimizer-state volume and the Lustre write bandwidth, then sweep
//! checkpoint intervals across node counts to find where goodput peaks —
//! and compare against the Young/Daly analytic optimum `τ* = √(2δM)`.
//! The `figR` repro binary drives [`FaultModel::sweep`].

use crate::workload::StepWorkload;
use geofm_resilience::{
    simulate_campaign, young_daly_interval, CampaignConfig, CampaignOutcome, NodeFailureModel,
};

/// Failure-environment description for a campaign.
#[derive(Debug, Clone, Copy)]
pub struct FaultModel {
    /// Mean time between failures of a single node, in hours. Frontier-era
    /// leadership systems report node MTBFs on the order of a few years;
    /// the default (25 000 h ≈ 2.9 y) matches published OLCF failure data
    /// for Summit-class nodes.
    pub node_mtbf_hours: f64,
    /// Aggregate sustained checkpoint *write* bandwidth to the parallel
    /// filesystem (bytes/s). Lustre/Orion sustains O(5) TB/s reads; writes
    /// from one job see a fraction — default 1 TB/s.
    pub ckpt_write_bw: f64,
    /// Restart cost: re-queue, re-init, checkpoint read-back (seconds).
    pub restart_cost_s: f64,
}

impl Default for FaultModel {
    fn default() -> Self {
        Self { node_mtbf_hours: 25_000.0, ckpt_write_bw: 1e12, restart_cost_s: 300.0 }
    }
}

/// One row of a goodput sweep: a (nodes, interval) cell.
#[derive(Debug, Clone, Copy)]
pub struct GoodputPoint {
    /// Nodes in the job.
    pub nodes: usize,
    /// Steps between checkpoints.
    pub ckpt_every_steps: usize,
    /// Simulated campaign accounting at this cell.
    pub outcome: CampaignOutcome,
}

/// A full sweep for one node count, with both optima marked.
#[derive(Debug, Clone)]
pub struct GoodputSweep {
    /// Nodes in the job.
    pub nodes: usize,
    /// System MTBF at this node count (seconds).
    pub system_mtbf_s: f64,
    /// Checkpoint write cost (seconds).
    pub ckpt_cost_s: f64,
    /// Analytic Young/Daly optimal interval, converted to steps.
    pub young_daly_steps: usize,
    /// The swept cells, in the order of `intervals`.
    pub points: Vec<GoodputPoint>,
    /// Interval (steps) with the best simulated goodput.
    pub best_steps: usize,
}

impl FaultModel {
    /// Per-node failure model in the units `geofm-resilience` wants.
    pub fn node_failure(&self) -> NodeFailureModel {
        NodeFailureModel { node_mtbf_s: self.node_mtbf_hours * 3600.0 }
    }

    /// Checkpoint write cost for a workload: the durable state is the
    /// parameters plus two AdamW moment buffers (3 × f32 per parameter =
    /// 12 bytes/param; `param_bytes` is already 4 bytes/param), streamed at
    /// the configured filesystem write bandwidth.
    pub fn checkpoint_cost_s(&self, workload: &StepWorkload) -> f64 {
        let state_bytes = workload.param_bytes() as f64 * 3.0;
        state_bytes / self.ckpt_write_bw
    }

    /// Young/Daly optimal interval for `nodes`, in steps of `step_time_s`.
    pub fn young_daly_steps(&self, ckpt_cost_s: f64, step_time_s: f64, nodes: usize) -> usize {
        let mtbf = self.node_failure().system_mtbf(nodes);
        (young_daly_interval(ckpt_cost_s, mtbf) / step_time_s).round().max(1.0) as usize
    }

    /// Sweep checkpoint intervals for one node count, averaging the
    /// simulated goodput over `seeds` failure realisations per cell.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep(
        &self,
        step_time_s: f64,
        total_steps: usize,
        nodes: usize,
        ckpt_cost_s: f64,
        intervals: &[usize],
        seeds: u64,
    ) -> GoodputSweep {
        assert!(seeds > 0, "need at least one failure realisation");
        let failure = self.node_failure();
        let mut points = Vec::with_capacity(intervals.len());
        let mut best = (0usize, f64::MIN);
        for &interval in intervals {
            let mut acc = CampaignOutcome::default();
            for seed in 0..seeds {
                let out = simulate_campaign(&CampaignConfig {
                    step_time_s,
                    total_steps,
                    ckpt_every_steps: interval,
                    ckpt_cost_s,
                    restart_cost_s: self.restart_cost_s,
                    nodes,
                    failure,
                    seed,
                });
                acc.wall_s += out.wall_s;
                acc.useful_s += out.useful_s;
                acc.ckpt_s += out.ckpt_s;
                acc.rework_s += out.rework_s;
                acc.restart_s += out.restart_s;
                acc.failures += out.failures;
            }
            let n = seeds as f64;
            let outcome = CampaignOutcome {
                wall_s: acc.wall_s / n,
                useful_s: acc.useful_s / n,
                ckpt_s: acc.ckpt_s / n,
                rework_s: acc.rework_s / n,
                restart_s: acc.restart_s / n,
                failures: (acc.failures as f64 / n).round() as u64,
                goodput: (acc.useful_s / n) / (acc.wall_s / n),
            };
            if outcome.goodput > best.1 {
                best = (interval, outcome.goodput);
            }
            points.push(GoodputPoint { nodes, ckpt_every_steps: interval, outcome });
        }
        GoodputSweep {
            nodes,
            system_mtbf_s: failure.system_mtbf(nodes),
            ckpt_cost_s,
            young_daly_steps: self.young_daly_steps(ckpt_cost_s, step_time_s, nodes),
            points,
            best_steps: best.0,
        }
    }
}

/// A geometric ladder of checkpoint intervals (in steps) spanning
/// `lo..=hi`, roughly ×3 per rung — wide enough that the goodput peak and
/// both flanks are visible at every node count.
pub fn interval_ladder(lo: usize, hi: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut x = lo.max(1);
    while x < hi {
        v.push(x);
        x = (x * 3).max(x + 1);
    }
    v.push(hi);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::MaeWorkload;
    use geofm_vit::{VitConfig, VitVariant};

    #[test]
    fn checkpoint_cost_scales_with_model_size() {
        let fm = FaultModel::default();
        let small = MaeWorkload::build(&VitConfig::table1(VitVariant::Base), 32, 0.75);
        let big = MaeWorkload::build(&VitConfig::table1(VitVariant::B3), 32, 0.75);
        assert!(fm.checkpoint_cost_s(&big) > 10.0 * fm.checkpoint_cost_s(&small));
    }

    #[test]
    fn young_daly_steps_shrink_with_node_count() {
        let fm = FaultModel::default();
        let few = fm.young_daly_steps(20.0, 1.0, 8);
        let many = fm.young_daly_steps(20.0, 1.0, 512);
        assert!(many < few, "more nodes → shorter optimal interval ({few} vs {many})");
    }

    #[test]
    fn sweep_marks_best_and_contains_every_interval() {
        let fm = FaultModel { node_mtbf_hours: 100.0, ..Default::default() };
        let intervals = interval_ladder(10, 1000);
        let sweep = fm.sweep(1.0, 2000, 64, 10.0, &intervals, 4);
        assert_eq!(sweep.points.len(), intervals.len());
        assert!(intervals.contains(&sweep.best_steps));
        assert!(sweep.young_daly_steps >= 1);
        let best = sweep
            .points
            .iter()
            .find(|p| p.ckpt_every_steps == sweep.best_steps)
            .unwrap();
        for p in &sweep.points {
            assert!(p.outcome.goodput <= best.outcome.goodput + 1e-12);
        }
    }

    #[test]
    fn interval_ladder_is_monotone() {
        let l = interval_ladder(1, 3000);
        assert!(l.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*l.last().unwrap(), 3000);
    }
}
