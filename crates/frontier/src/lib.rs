//! # geofm-frontier
//!
//! A calibrated performance model of the Frontier supercomputer for
//! FSDP-style ViT training — the substrate that regenerates the paper's
//! Figures 1–4 without the actual machine.
//!
//! Components:
//!
//! * [`machine`] — hardware description (§III-B: 8 GCDs/node with 64 GB HBM
//!   each, Infinity-Fabric intra-node links, Slingshot-11 inter-node) and
//!   α–β ring cost models for collectives over that topology.
//! * [`workload`] — per-unit compute/communication workload derived from
//!   `geofm-vit`'s analytic FLOPs and parameter counts (ViT and MAE).
//! * [`schedule`] — builds the per-step task DAG for every sharding
//!   strategy and prefetch policy (gather → compute → re-gather →
//!   reduce-scatter/all-reduce), mirroring `geofm-fsdp`'s real engine.
//! * [`engine`] — a discrete-event simulator with two resource streams per
//!   rank (GPU compute, NIC communication); overlap emerges from the DAG.
//! * [`memory`] — per-GPU memory footprint per strategy (Figures 3–4 memory
//!   panels).
//! * [`power`] — rocm-smi-style power/utilisation traces from the DES
//!   timeline (Figure 4 bottom panel).
//! * [`io`] — the Lustre/data-loader throughput model (Figure 1 `io` curve).
//! * [`faults`] — MTBF/goodput modeling on top of `geofm-resilience`:
//!   checkpoint-interval sweeps with the Young/Daly analytic optimum.
//! * [`elastic`] — elastic shrink-and-continue vs wait-for-restart goodput
//!   (the `figV` sweep pricing `geofm-fsdp`'s elastic resharding).
//! * [`gray`] — gray-failure pricing: expected throughput when GCDs or
//!   Slingshot links are persistently *degraded* rather than dead (the
//!   `figS` sweep).
//! * [`serve`] — closed-loop load sweep of the `geofm-serve` inference
//!   plane: defended vs naive goodput/p99 under overload (the `figX`
//!   sweep).
//! * [`sim`] — the top-level [`sim::simulate`] entry point.
//! * [`analytic`] — a closed-form estimate used to cross-check the DES.
//!
//! ## Calibration
//!
//! Absolute throughput is calibrated against the only two ips values the
//! paper prints (1509 vs 1307 ips for ViT-5B on 32 nodes, §IV-D); every
//! other claim reproduced is about *shape*: who wins, where curves flatten,
//! relative memory footprints. Calibration constants are collected in
//! [`machine::Calibration`] with documentation for each choice.

pub mod analytic;
pub mod elastic;
pub mod engine;
pub mod faults;
pub mod gray;
pub mod guard;
pub mod ingest;
pub mod io;
pub mod machine;
pub mod memory;
pub mod power;
pub mod schedule;
pub mod serve;
pub mod sim;
pub mod workload;

pub use elastic::{ElasticModel, ElasticPoint};
pub use faults::{interval_ladder, FaultModel, GoodputPoint, GoodputSweep};
pub use gray::{GrayModel, GrayPoint};
pub use guard::{GuardPoint, SdcGuardModel};
pub use ingest::{IngestModel, IngestPoint};
pub use machine::{Calibration, CommOp, FrontierMachine, GroupGeom, GroupSpan};
pub use memory::MemoryModel;
pub use schedule::{build_step, serialize_streams, strip_comm};
pub use serve::{ServeLoadModel, ServePoint};
pub use sim::{simulate, SimConfig, SimResult};
pub use workload::{MaeWorkload, StepWorkload, VitWorkload};
