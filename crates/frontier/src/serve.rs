//! Closed-loop load sweep of the inference serving plane.
//!
//! The other frontier modules *price* subsystems on an analytic machine
//! model; serving is cheap enough to measure directly. This module
//! drives the real [`geofm_serve`] scheduler — the same `ServeCore` the
//! threaded plane runs — through its deterministic virtual-time harness
//! at a grid of offered loads, **defenses on and defenses off**, under
//! identical diurnal traffic, tenant-burst storms, slow clients, and
//! worker hangs drawn from an identical seeded [`FaultPlan`].
//!
//! The `figX` repro binary sweeps offered load as a multiple of serving
//! capacity and CI enforces the tentpole claim: at every offered load at
//! or above capacity the defended plane **strictly dominates** the naive
//! plane on *both* axes — higher goodput (in-deadline completions) *and*
//! lower p99 — while costing under 5 % of goodput when lightly loaded.
//! The undefended failure mode is the classic one: an unbounded FIFO
//! queue grows without limit, head-of-line blocking pushes every
//! completion past its deadline, and p99 walks off with the backlog.

use geofm_resilience::{FaultMix, FaultPlan};
use geofm_serve::sim::{
    run_sim, SimConfig as ServeSimConfig, SIM_BASE_COST_NS, SIM_JITTER_MEAN, SIM_PER_ITEM_COST_NS,
};
use geofm_serve::{Priority, ServeConfig, ServeReport, TenantConfig};

/// Sweep configuration: traffic shape, fault climate, tenant census.
#[derive(Debug, Clone)]
pub struct ServeLoadModel {
    /// Tenants, round-robined Premium/Standard/Low.
    pub tenants: usize,
    /// Traffic ticks per run (1 tick = 1 ms of virtual time).
    pub ticks: usize,
    /// Tile universe per tenant (cache hit-rate lever).
    pub tiles: u64,
    /// Per-(tenant, tick) probability of an injected request storm.
    pub burst_prob: f64,
    /// Per-batch probability of an injected worker hang.
    pub hang_prob: f64,
    /// Seed for both the fault plan and the traffic generator.
    pub seed: u64,
}

impl Default for ServeLoadModel {
    fn default() -> Self {
        Self { tenants: 3, ticks: 400, tiles: 512, burst_prob: 0.1, hang_prob: 0.03, seed: 42 }
    }
}

/// One offered-load cell, defenses on and off side by side.
#[derive(Debug, Clone, Copy)]
pub struct ServePoint {
    /// Offered load as a multiple of serving capacity.
    pub offered: f64,
    /// Offered requests per tick (all tenants).
    pub rate_per_tick: f64,
    /// Requests submitted (defended run).
    pub submitted_on: u64,
    /// Goodput fraction, defended: in-deadline completions / submitted.
    pub goodput_on: f64,
    /// Goodput fraction, naive.
    pub goodput_off: f64,
    /// p50 completion latency, defended, milliseconds.
    pub p50_on_ms: f64,
    /// p50 completion latency, naive, milliseconds.
    pub p50_off_ms: f64,
    /// p99 completion latency, defended, milliseconds.
    pub p99_on_ms: f64,
    /// p99 completion latency, naive, milliseconds.
    pub p99_off_ms: f64,
    /// Fraction rejected at admission, defended (the honest backpressure).
    pub rejected_on_frac: f64,
    /// Of the defended rejections: bounded-queue overflow.
    pub rej_queue_frac: f64,
    /// Of the defended rejections: open circuit breakers.
    pub rej_breaker_frac: f64,
    /// Of the defended rejections: ladder-L3 shed-at-admission.
    pub rej_degraded_frac: f64,
    /// Fraction shed post-admission, defended.
    pub shed_on_frac: f64,
    /// Hedged duplicate executions launched, defended.
    pub hedges_on: u64,
    /// Highest degradation rung reached, defended (0 = never degraded).
    pub degrade_peak_on: u8,
    /// Deepest any bounded tenant queue got, defended.
    pub queue_max_on: usize,
    /// Deepest the unbounded queue got, naive — the growth witness.
    pub queue_max_off: usize,
}

fn percentile_ms(report: &ServeReport, q: f64) -> f64 {
    report.latency_percentile(q).unwrap_or(0) as f64 / 1e6
}

fn queue_max(report: &ServeReport) -> usize {
    report.tenants.values().map(|t| t.queue_depth_max).max().unwrap_or(0)
}

impl ServeLoadModel {
    /// Tenant census: one Premium, one Standard, then Low for the rest,
    /// all without token-bucket caps so admission pressure lands on the
    /// bounded queues and the ladder (the defenses under test).
    pub fn tenant_configs(&self) -> Vec<TenantConfig> {
        (0..self.tenants)
            .map(|i| {
                let class = match i {
                    0 => Priority::Premium,
                    1 => Priority::Standard,
                    _ => Priority::Low,
                };
                TenantConfig::standard(f64::INFINITY).with_priority(class)
            })
            .collect()
    }

    /// Serving capacity in requests per tick, from the sim backbone's
    /// affine batch cost at the default max batch, jitter divided out.
    pub fn capacity_per_tick(&self) -> f64 {
        let serve = ServeConfig::default();
        let per_req_ns = (SIM_BASE_COST_NS as f64 / serve.max_batch as f64
            + SIM_PER_ITEM_COST_NS as f64)
            * SIM_JITTER_MEAN;
        1e6 / per_req_ns
    }

    fn sim_config(&self, offered: f64, serve: ServeConfig) -> ServeSimConfig {
        let rate_per_tick = offered * self.capacity_per_tick();
        // hedged duplicates are one of the defenses under test: the
        // naive worker serves a hung batch in full
        let hedge = serve.defended;
        ServeSimConfig {
            tenants: self.tenant_configs(),
            serve,
            ticks: self.ticks,
            tick_ns: 1_000_000,
            base_rate: rate_per_tick / self.tenants.max(1) as f64,
            diurnal_amplitude: 0.4,
            diurnal_period: self.ticks / 4,
            tiles: self.tiles,
            hang_factor: 20,
            hedge,
            drain: true,
        }
    }

    fn plan(&self) -> FaultPlan {
        let mix = FaultMix {
            serve_burst_prob: self.burst_prob,
            serve_slow_client_prob: self.burst_prob,
            serve_hang_prob: self.hang_prob,
            ..FaultMix::crashes_only(0.0)
        };
        // zero training dimensions: this plan only carries serve events
        FaultPlan::seeded_with_serve(self.seed, 0, 0, 0, 0, self.tenants, self.ticks, &mix)
    }

    /// Run one offered-load cell: the identical traffic + fault climate
    /// against the defended and the naive server. Deterministic in
    /// `(self, offered)`.
    pub fn expected(&self, offered: f64) -> ServePoint {
        self.run_pair(offered, false)
    }

    /// The clean-path control: the same offered load with **no injected
    /// faults**. The <5 % defense-overhead criterion is judged here,
    /// like `figW`'s fault-rate-zero column — at light clean load the
    /// defended and naive servers should be indistinguishable.
    pub fn expected_clean(&self, offered: f64) -> ServePoint {
        self.run_pair(offered, true)
    }

    fn run_pair(&self, offered: f64, clean: bool) -> ServePoint {
        // fresh plans per run: one-shot faults are consumed by firing
        let plan = |clean: bool| if clean { FaultPlan::none() } else { self.plan() };
        let on = run_sim(
            &self.sim_config(offered, ServeConfig::default()),
            &plan(clean),
            self.seed,
        );
        let off = run_sim(
            &self.sim_config(offered, ServeConfig::undefended()),
            &plan(clean),
            self.seed,
        );
        on.assert_conservation();
        off.assert_conservation();
        let frac = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };
        let by_reason = |reason: geofm_serve::RejectReason| {
            on.tenants.values().map(|t| t.rejected.get(&reason).copied().unwrap_or(0)).sum::<u64>()
        };
        ServePoint {
            offered,
            rate_per_tick: offered * self.capacity_per_tick(),
            submitted_on: on.submitted(),
            goodput_on: frac(on.goodput(), on.submitted()),
            goodput_off: frac(off.goodput(), off.submitted()),
            p50_on_ms: percentile_ms(&on, 0.5),
            p50_off_ms: percentile_ms(&off, 0.5),
            p99_on_ms: percentile_ms(&on, 0.99),
            p99_off_ms: percentile_ms(&off, 0.99),
            rejected_on_frac: frac(on.rejected(), on.submitted()),
            rej_queue_frac: frac(by_reason(geofm_serve::RejectReason::QueueFull), on.rejected()),
            rej_breaker_frac: frac(
                by_reason(geofm_serve::RejectReason::CircuitOpen),
                on.rejected(),
            ),
            rej_degraded_frac: frac(by_reason(geofm_serve::RejectReason::Degraded), on.rejected()),
            shed_on_frac: frac(on.shed(), on.submitted()),
            hedges_on: on.hedges_launched,
            degrade_peak_on: on.degrade_peak as u8,
            queue_max_on: queue_max(&on),
            queue_max_off: queue_max(&off),
        }
    }

    /// Sweep a grid of offered loads (multiples of capacity).
    pub fn sweep(&self, loads: &[f64]) -> Vec<ServePoint> {
        loads.iter().map(|&l| self.expected(l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_load_overhead_is_under_five_percent() {
        let m = ServeLoadModel::default();
        let p = m.expected_clean(0.3);
        assert!(p.goodput_off > 0.95, "light clean naive load should succeed: {}", p.goodput_off);
        let overhead = (p.goodput_off - p.goodput_on) / p.goodput_off;
        assert!(
            overhead < 0.05,
            "defenses must cost <5% goodput at light load, got {:.2}% ({} vs {})",
            overhead * 100.0,
            p.goodput_on,
            p.goodput_off
        );
    }

    #[test]
    fn defended_dominates_at_and_above_capacity() {
        let m = ServeLoadModel::default();
        for p in m.sweep(&[1.0, 1.5, 2.0, 3.0]) {
            assert!(
                p.goodput_on > p.goodput_off,
                "goodput dominance failed at {}x: {} vs {}",
                p.offered,
                p.goodput_on,
                p.goodput_off
            );
            assert!(
                p.p99_on_ms < p.p99_off_ms,
                "p99 dominance failed at {}x: {} vs {}",
                p.offered,
                p.p99_on_ms,
                p.p99_off_ms
            );
        }
    }

    #[test]
    fn defended_queues_stay_bounded_while_naive_explodes() {
        let m = ServeLoadModel::default();
        let p = m.expected(2.0);
        let cap = m.tenant_configs().iter().map(|t| t.queue_capacity).max().unwrap();
        assert!(p.queue_max_on <= cap, "defended queues bounded: {} > {cap}", p.queue_max_on);
        assert!(
            p.queue_max_off > 4 * cap,
            "naive queue should grow far past any bound: {}",
            p.queue_max_off
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let m = ServeLoadModel::default();
        let a = m.expected(1.5);
        let b = m.expected(1.5);
        assert_eq!(a.submitted_on, b.submitted_on);
        assert_eq!(a.goodput_on.to_bits(), b.goodput_on.to_bits());
        assert_eq!(a.p99_off_ms.to_bits(), b.p99_off_ms.to_bits());
    }

    #[test]
    fn overload_engages_the_ladder_and_honest_backpressure() {
        let m = ServeLoadModel::default();
        let p = m.expected(2.5);
        assert!(p.degrade_peak_on >= 1, "sustained 2.5x overload must climb the ladder");
        assert!(
            p.rejected_on_frac + p.shed_on_frac > 0.2,
            "2.5x overload must visibly reject/shed: {} + {}",
            p.rejected_on_frac,
            p.shed_on_frac
        );
    }
}
