//! Top-level simulation entry point.

use crate::engine::{execute, record_timeline, Task, Timeline};
use crate::io::IoModel;
use crate::machine::FrontierMachine;
use crate::memory::{MemoryEstimate, MemoryModel};
use crate::power::{sample_trace, PowerTrace};
use crate::schedule::{build_step, serialize_streams, strip_comm};
use crate::workload::StepWorkload;
use geofm_fsdp::{PrefetchPolicy, ShardingStrategy};

/// One simulated configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The machine allocation.
    pub machine: FrontierMachine,
    /// Sharding strategy.
    pub strategy: ShardingStrategy,
    /// Prefetch policy.
    pub prefetch: PrefetchPolicy,
    /// Limit in-flight all-gathers.
    pub limit_all_gathers: bool,
    /// Comm/compute overlap: `true` (the default, what FSDP actually does)
    /// runs comm and compute on independent streams; `false` serializes
    /// every task in issue order, fully exposing communication — the DES
    /// twin of `geofm_fsdp::OverlapConfig`.
    pub overlap: bool,
    /// The per-rank step workload.
    pub workload: StepWorkload,
    /// IO model (for `io`/`real` curves).
    pub io: IoModel,
}

impl SimConfig {
    /// Build with the paper's tuned knobs (BACKWARD_PRE + limit_all_gathers
    /// + overlapped streams).
    pub fn tuned(machine: FrontierMachine, strategy: ShardingStrategy, workload: StepWorkload) -> Self {
        Self {
            machine,
            strategy,
            prefetch: PrefetchPolicy::BackwardPre,
            limit_all_gathers: true,
            overlap: true,
            workload,
            io: IoModel::default(),
        }
    }

    /// [`SimConfig::tuned`] with overlap disabled (fully serialized
    /// schedule; comm is entirely exposed).
    pub fn tuned_no_overlap(
        machine: FrontierMachine,
        strategy: ShardingStrategy,
        workload: StepWorkload,
    ) -> Self {
        Self { overlap: false, ..Self::tuned(machine, strategy, workload) }
    }
}

/// Simulation output for one configuration.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Step time on synthetic (cached) data — compute + communication.
    pub step_time_syn: f64,
    /// Step time with communication removed ("syn no comm").
    pub step_time_no_comm: f64,
    /// Real application step time (syn + exposed loader overhead).
    pub step_time_real: f64,
    /// Aggregate images/s on synthetic data.
    pub ips_syn: f64,
    /// Aggregate images/s without communication.
    pub ips_no_comm: f64,
    /// Aggregate images/s of the real application.
    pub ips_real: f64,
    /// Aggregate images/s of the dataloader in isolation.
    pub ips_io: f64,
    /// Ideal linear-scaling images/s (single-node no-comm rate × nodes).
    pub ips_ideal: f64,
    /// Busy time of the comm stream per step.
    pub comm_busy: f64,
    /// Busy time of the compute stream per step.
    pub compute_busy: f64,
    /// Per-GPU memory estimate.
    pub memory: MemoryEstimate,
    /// Whether the configuration fits in HBM.
    pub fits: bool,
    /// The step timeline (for power traces).
    pub timeline: Timeline,
    /// The step's task DAG, aligned with `timeline.spans` (for trace export).
    pub tasks: Vec<Task>,
}

impl SimResult {
    /// Fraction of the step attributable to exposed communication:
    /// `1 − t_no_comm / t_syn`.
    pub fn comm_share(&self) -> f64 {
        if self.step_time_syn <= 0.0 {
            0.0
        } else {
            1.0 - self.step_time_no_comm / self.step_time_syn
        }
    }

    /// Sample a rocm-smi-style telemetry trace for this configuration.
    pub fn power_trace(&self, machine: &FrontierMachine, samples: usize) -> PowerTrace {
        sample_trace(&self.timeline, &machine.cal, self.memory.total_gib(), samples)
    }

    /// Export this step's DES schedule as virtual-time trace spans under
    /// process `pid` (see [`record_timeline`]).
    pub fn record_trace(&self, trace: &geofm_telemetry::TraceRecorder, pid: u64) {
        record_timeline(&self.tasks, &self.timeline, trace, pid);
    }
}

/// Simulate one training step of `cfg`.
pub fn simulate(cfg: &SimConfig) -> SimResult {
    let step_tasks = |machine: &FrontierMachine| -> Vec<Task> {
        let t = build_step(machine, &cfg.workload, cfg.strategy, cfg.prefetch, cfg.limit_all_gathers);
        if cfg.overlap {
            t
        } else {
            serialize_streams(&t)
        }
    };
    let tasks = step_tasks(&cfg.machine);
    let timeline = execute(&tasks);
    // pure-compute counterfactual: comm durations zeroed on the *same*
    // (possibly serialized) DAG, so comm_share() prices exactly what the
    // overlap knob changes
    let no_comm = execute(&strip_comm(&tasks));

    let global_batch = (cfg.machine.world() * cfg.workload.local_batch) as f64;
    let step_time_syn = timeline.makespan;
    let step_time_no_comm = no_comm.makespan;
    let step_time_real = step_time_syn + cfg.io.exposed_overhead(step_time_syn);

    // ideal: single-node rate (with its own single-node comm) scaled linearly
    let one_node = FrontierMachine { nodes: 1, ..cfg.machine };
    let one_tasks = step_tasks(&one_node);
    let one_time = execute(&one_tasks).makespan;
    let ips_ideal = (one_node.world() * cfg.workload.local_batch) as f64 / one_time
        * cfg.machine.nodes as f64;

    let memory = MemoryModel::estimate(&cfg.workload, cfg.strategy, cfg.machine.world());
    let fits = memory.total() <= cfg.machine.hbm_per_gpu;

    SimResult {
        step_time_syn,
        step_time_no_comm,
        step_time_real,
        ips_syn: global_batch / step_time_syn,
        ips_no_comm: global_batch / step_time_no_comm,
        ips_real: global_batch / step_time_real,
        ips_io: cfg.io.io_ips(&cfg.machine, cfg.workload.image_bytes),
        ips_ideal,
        comm_busy: timeline.comm_busy,
        compute_busy: timeline.compute_busy,
        memory,
        fits,
        timeline,
        tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{MaeWorkload, VitWorkload};
    use geofm_vit::{VitConfig, VitVariant};

    fn sim(nodes: usize, v: VitVariant, strategy: ShardingStrategy) -> SimResult {
        let machine = FrontierMachine::new(nodes);
        let wl = VitWorkload::build(&VitConfig::table1(v), 32, 224);
        simulate(&SimConfig::tuned(machine, strategy, wl))
    }

    #[test]
    fn ordering_of_curves_matches_figure1_structure() {
        // io > no-comm ≥ syn ≥ real (in ips)
        let machine = FrontierMachine::new(8);
        let wl = MaeWorkload::build(&VitConfig::table1(VitVariant::B3), 32, 0.75);
        let r = simulate(&SimConfig::tuned(machine, ShardingStrategy::NoShard, wl));
        assert!(r.ips_io > r.ips_no_comm, "io {} vs no_comm {}", r.ips_io, r.ips_no_comm);
        assert!(r.ips_no_comm >= r.ips_syn);
        assert!(r.ips_syn > r.ips_real);
    }

    #[test]
    fn comm_share_grows_with_scale() {
        let machine1 = FrontierMachine::new(1);
        let machine64 = FrontierMachine::new(64);
        let wl = MaeWorkload::build(&VitConfig::table1(VitVariant::B3), 32, 0.75);
        let r1 = simulate(&SimConfig::tuned(machine1, ShardingStrategy::NoShard, wl.clone()));
        let r64 = simulate(&SimConfig::tuned(machine64, ShardingStrategy::NoShard, wl));
        assert!(r64.comm_share() > r1.comm_share());
    }

    #[test]
    fn figure1_comm_cost_near_22_percent_at_64_nodes() {
        // §IV-A: communication cost ≈ 22 % at 64 nodes for MAE-3B NO_SHARD
        let machine = FrontierMachine::new(64);
        let wl = MaeWorkload::build(&VitConfig::table1(VitVariant::B3), 32, 0.75);
        let r = simulate(&SimConfig::tuned(machine, ShardingStrategy::NoShard, wl));
        let share = r.comm_share();
        assert!(
            share > 0.10 && share < 0.35,
            "comm share at 64 nodes = {:.2} (paper ≈ 0.22)",
            share
        );
    }

    #[test]
    fn overlap_off_exposes_strictly_more_comm() {
        let wl = MaeWorkload::build(&VitConfig::table1(VitVariant::B3), 32, 0.75);
        for nodes in [1usize, 8, 64] {
            let machine = FrontierMachine::new(nodes);
            let on = simulate(&SimConfig::tuned(machine, ShardingStrategy::NoShard, wl.clone()));
            let off = simulate(&SimConfig::tuned_no_overlap(machine, ShardingStrategy::NoShard, wl.clone()));
            assert!(
                off.comm_share() > on.comm_share(),
                "{nodes} nodes: off {:.3} must exceed on {:.3}",
                off.comm_share(),
                on.comm_share()
            );
        }
    }

    #[test]
    fn weak_scaling_efficiency_below_one_and_decreasing() {
        let wl_eff = |nodes: usize| {
            let r = sim(nodes, VitVariant::B1, ShardingStrategy::NoShard);
            r.ips_syn / r.ips_ideal
        };
        let e1 = wl_eff(1);
        let e16 = wl_eff(16);
        let e64 = wl_eff(64);
        assert!(e1 <= 1.0 + 1e-9);
        assert!(e16 <= e1 + 1e-9);
        assert!(e64 <= e16 + 1e-9);
    }

    #[test]
    fn memory_flag_blocks_oversized_configs() {
        let r = sim(2, VitVariant::B15, ShardingStrategy::NoShard);
        assert!(!r.fits);
        let r2 = sim(2, VitVariant::B15, ShardingStrategy::Hybrid { shard_size: 4 });
        assert!(r2.fits);
    }

    #[test]
    fn power_trace_has_expected_sampling() {
        let r = sim(2, VitVariant::Base, ShardingStrategy::FullShard);
        let machine = FrontierMachine::new(2);
        let trace = r.power_trace(&machine, 100);
        assert_eq!(trace.t.len(), 100);
        assert!(trace.mean_power() > machine.cal.power_idle);
    }
}
