//! Per-GPU memory footprint model (Figures 3–4 memory panels).
//!
//! Components, in bytes, for a model with `P` parameter bytes (f32):
//!
//! * **state** — parameters + gradients + AdamW moments = `4P`, divided by
//!   the sharding factor of each component per strategy;
//! * **transient** — either a full-size flat temp (`P`, unsharded-parameter
//!   strategies: the reduce/optimizer staging buffer) or two gathered unit
//!   buffers (sharded strategies, FSDP's default two-units-in-flight);
//! * **activations** — strategy-independent (from the workload);
//! * **fixed** — runtime + workspace overhead.

use crate::workload::StepWorkload;
use geofm_fsdp::ShardingStrategy;

/// Fixed runtime overhead (ROCm runtime, RCCL buffers, fragmentation).
const FIXED_BYTES: u64 = 300 * (1 << 20);

/// A memory estimate broken into components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryEstimate {
    /// Persistent training state (params/grads/moments, after sharding).
    pub state_bytes: u64,
    /// Transient buffers (gather targets or flat temps).
    pub transient_bytes: u64,
    /// Activations.
    pub act_bytes: u64,
    /// Fixed overhead.
    pub fixed_bytes: u64,
}

impl MemoryEstimate {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.state_bytes + self.transient_bytes + self.act_bytes + self.fixed_bytes
    }

    /// Total in GiB.
    pub fn total_gib(&self) -> f64 {
        self.total() as f64 / (1u64 << 30) as f64
    }
}

/// The memory model.
pub struct MemoryModel;

impl MemoryModel {
    /// Estimate the per-GPU footprint of training `workload` under
    /// `strategy` on a world of `world` GPUs.
    pub fn estimate(
        workload: &StepWorkload,
        strategy: ShardingStrategy,
        world: usize,
    ) -> MemoryEstimate {
        let p = workload.param_bytes();
        let k = strategy.shard_group_size(world).min(world) as u64;
        // unsharded-parameter strategies stage a full flat temp plus
        // reduction buffers (calibrated: 1.3·P reproduces §IV-C's ">60 GB")
        let unsharded_transient = p + 3 * p / 10;
        let (state, transient) = match strategy {
            ShardingStrategy::NoShard | ShardingStrategy::Ddp { .. } => (4 * p, unsharded_transient),
            ShardingStrategy::Hybrid { .. } if k == 1 => (4 * p, unsharded_transient),
            ShardingStrategy::FullShard | ShardingStrategy::Hybrid { .. } => {
                (4 * p / k, 2 * workload.max_unit_bytes())
            }
            ShardingStrategy::ShardGradOp => {
                // params resident in full during compute; grads+moments sharded
                (p + 3 * p / k, 2 * workload.max_unit_bytes())
            }
        };
        MemoryEstimate {
            state_bytes: state,
            transient_bytes: transient,
            act_bytes: workload.act_bytes,
            fixed_bytes: FIXED_BYTES,
        }
    }

    /// Whether the strategy fits in `hbm_per_gpu` bytes.
    pub fn fits(workload: &StepWorkload, strategy: ShardingStrategy, world: usize, hbm: u64) -> bool {
        Self::estimate(workload, strategy, world).total() <= hbm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::VitWorkload;
    use geofm_vit::{VitConfig, VitVariant};

    const HBM: u64 = 64 * (1 << 30);

    fn wl(v: VitVariant) -> StepWorkload {
        VitWorkload::build(&VitConfig::table1(v), 32, 224)
    }

    #[test]
    fn vit3b_unsharded_uses_over_60_gb_but_fits() {
        // §IV-C: "the ViT-3B model uses more than 60 GB of memory per GPU"
        let est = MemoryModel::estimate(&wl(VitVariant::B3), ShardingStrategy::NoShard, 8);
        let gib = est.total_gib();
        assert!(gib > 60.0, "3B NO_SHARD = {:.1} GiB", gib);
        assert!(est.total() <= HBM, "3B must fit on one GPU ({:.1} GiB)", gib);
    }

    #[test]
    fn hybrid2_halves_the_footprint() {
        // §IV-C: "when the model is sharded on two GPUs ... memory usage is
        // dropped in half"
        let one = MemoryModel::estimate(&wl(VitVariant::B3), ShardingStrategy::Hybrid { shard_size: 1 }, 16)
            .total_gib();
        let two = MemoryModel::estimate(&wl(VitVariant::B3), ShardingStrategy::Hybrid { shard_size: 2 }, 16)
            .total_gib();
        let ratio = two / one;
        assert!(ratio > 0.35 && ratio < 0.6, "ratio {}", ratio);
    }

    #[test]
    fn full_shard_3b_drops_to_a_few_gb_at_64_nodes() {
        // §IV-C: FULL_SHARD memory falls with world size, "up to 4 GB"
        let est = MemoryModel::estimate(&wl(VitVariant::B3), ShardingStrategy::FullShard, 512);
        let gib = est.total_gib();
        assert!(gib < 6.0, "FULL_SHARD @512 = {:.1} GiB", gib);
    }

    #[test]
    fn full_shard_memory_decreases_with_world() {
        let w = wl(VitVariant::B3);
        let g8 = MemoryModel::estimate(&w, ShardingStrategy::FullShard, 8).total();
        let g64 = MemoryModel::estimate(&w, ShardingStrategy::FullShard, 64).total();
        let g512 = MemoryModel::estimate(&w, ShardingStrategy::FullShard, 512).total();
        assert!(g8 > g64 && g64 > g512);
    }

    #[test]
    fn no_shard_memory_constant_in_world() {
        let w = wl(VitVariant::Huge);
        let a = MemoryModel::estimate(&w, ShardingStrategy::NoShard, 8).total();
        let b = MemoryModel::estimate(&w, ShardingStrategy::NoShard, 512).total();
        assert_eq!(a, b);
    }

    #[test]
    fn vit5b_needs_two_gpus() {
        // §IV-D: 5B does not fit on one GPU; fits with HYBRID_2GPUs
        let w = wl(VitVariant::B5);
        assert!(!MemoryModel::fits(&w, ShardingStrategy::NoShard, 16, HBM));
        assert!(!MemoryModel::fits(&w, ShardingStrategy::Hybrid { shard_size: 1 }, 16, HBM));
        assert!(MemoryModel::fits(&w, ShardingStrategy::Hybrid { shard_size: 2 }, 16, HBM));
    }

    #[test]
    fn vit15b_needs_four_gpus() {
        // §IV-D: 15B fits on four GPUs at minimum
        let w = wl(VitVariant::B15);
        assert!(!MemoryModel::fits(&w, ShardingStrategy::Hybrid { shard_size: 2 }, 32, HBM));
        assert!(MemoryModel::fits(&w, ShardingStrategy::Hybrid { shard_size: 4 }, 32, HBM));
    }

    #[test]
    fn shard_grad_op_uses_more_than_full_shard() {
        // §IV-D: SHARD_GRAD_OP's footprint is much larger than FULL_SHARD's
        let w = wl(VitVariant::B15);
        let sgo = MemoryModel::estimate(&w, ShardingStrategy::ShardGradOp, 256).total();
        let fs = MemoryModel::estimate(&w, ShardingStrategy::FullShard, 256).total();
        assert!(sgo > 2 * fs, "sgo {} vs fs {}", sgo, fs);
    }

    #[test]
    fn smaller_models_use_less_memory() {
        let strategies = ShardingStrategy::NoShard;
        let base = MemoryModel::estimate(&wl(VitVariant::Base), strategies, 8).total();
        let huge = MemoryModel::estimate(&wl(VitVariant::Huge), strategies, 8).total();
        assert!(base < huge);
    }
}
