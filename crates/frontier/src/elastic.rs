//! Pricing **elastic shrink-and-continue** against **wait-for-checkpoint
//! restart** at Frontier scale.
//!
//! `geofm-fsdp`'s elastic trainer implements the mechanism: on a permanent
//! rank loss the survivors drain in-flight collectives, run a consensus
//! round, re-derive their shards from the world-size-independent GEOFMCK3
//! image and keep training at world − 1; when a spare rejoins the world
//! grows back. This module prices that policy on the machine model, the
//! same way [`crate::faults`] prices classic checkpoint/restart:
//!
//! * **Shrink cost** — quiesce + survivor consensus ([`ElasticModel::
//!   consensus_alpha_s`]) plus redistributing the 3 × param-bytes
//!   optimizer image across the surviving interconnect at
//!   [`ElasticModel::reshard_bw`]. The failed step itself is lost (the
//!   in-memory snapshot is at most one step old), but *nothing waits on
//!   the batch scheduler*.
//! * **Degraded throughput** — a shrunken world strong-scales the fixed
//!   global batch: each step at `a` of `n` nodes costs `n/a ×` the
//!   full-world step time until a spare arrives after
//!   [`ElasticModel::spare_wait_s`] and a grow reshard restores full
//!   speed.
//! * **Restart baseline** — the classic policy pays the spare wait *and*
//!   [`ElasticModel::restart_cost_s`] (re-queue, re-init, checkpoint
//!   read-back) *and* reworks everything since the last durable
//!   checkpoint, priced by `geofm_resilience::simulate_campaign` on the
//!   identical failure process.
//!
//! The `figV` repro binary sweeps node-MTBF × job size over both policies
//! and CI enforces the headline: at high failure rates shrink-and-continue
//! strictly dominates, because its per-failure cost is seconds of reshard
//! plus a throughput haircut while restart's is minutes of queue + rework
//! that *recur* at the full-world failure rate.

use crate::workload::StepWorkload;
use geofm_resilience::{simulate_campaign, CampaignConfig, NodeFailureModel};

/// Cost/environment model for the elastic-vs-restart comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticModel {
    /// Mean time between failures of a single node, in hours (the sweep
    /// variable; the default matches [`crate::FaultModel`]).
    pub node_mtbf_hours: f64,
    /// Time until a replacement node is available to rejoin (spare-pool
    /// draw or repair), seconds. Both policies wait this long for the
    /// *node*; only the restart policy also stalls the *job* on it.
    pub spare_wait_s: f64,
    /// Restart-policy overhead per failure beyond the spare wait:
    /// re-queue, re-init, checkpoint read-back (seconds).
    pub restart_cost_s: f64,
    /// Sustained bandwidth for redistributing the global param + AdamW
    /// image during a reshard (bytes/s). Bounded by a node's Slingshot
    /// injection bandwidth (4 × 25 GB/s on Frontier) — default 100 GB/s.
    pub reshard_bw: f64,
    /// Latency of the survivor consensus round plus drain (seconds).
    /// Measured in `reshard.consensus.ns`/`reshard.drain.ns` telemetry as
    /// sub-millisecond at test scale; the default budgets 250 ms for a
    /// full-system barrier plus software overhead.
    pub consensus_alpha_s: f64,
    /// Fraction of the original world below which the shrunken job stops
    /// and waits for spares instead of continuing (memory and goodput both
    /// collapse if the survivors must hold the whole model).
    pub min_world_frac: f64,
}

impl Default for ElasticModel {
    fn default() -> Self {
        Self {
            node_mtbf_hours: 25_000.0,
            spare_wait_s: 600.0,
            restart_cost_s: 300.0,
            reshard_bw: 1e11,
            consensus_alpha_s: 0.25,
            min_world_frac: 0.5,
        }
    }
}

/// One cell of the elastic-vs-restart sweep (one MTBF, one job size),
/// averaged over seeded failure realisations.
#[derive(Debug, Clone, Copy)]
pub struct ElasticPoint {
    /// Node MTBF at this cell (hours).
    pub node_mtbf_hours: f64,
    /// Nodes in the job.
    pub nodes: usize,
    /// Mean failures per campaign under the elastic policy.
    pub failures: f64,
    /// Mean shrink transitions (= failures absorbed without a restart).
    pub shrinks: f64,
    /// Mean grow transitions (spares that rejoined mid-campaign).
    pub grows: f64,
    /// Fraction of elastic wall time spent below full world.
    pub degraded_frac: f64,
    /// Goodput of shrink-and-continue: useful full-world step-seconds over
    /// wall time.
    pub goodput_elastic: f64,
    /// Goodput of wait-for-checkpoint-restart on the same failure process.
    pub goodput_restart: f64,
}

/// Deterministic splitmix64 — the same generator the workspace test
/// harnesses use, so sweeps replay exactly per seed without an RNG crate
/// in this crate's dependency set.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Accounting of one elastic campaign realisation.
#[derive(Debug, Clone, Copy, Default)]
struct ElasticOutcome {
    wall_s: f64,
    degraded_s: f64,
    shrinks: u64,
    grows: u64,
}

impl ElasticModel {
    /// Cost of one reshard transition (shrink or grow): drain + consensus
    /// plus moving the params and both AdamW moments once across the
    /// reshard bandwidth.
    pub fn reshard_cost_s(&self, workload: &StepWorkload) -> f64 {
        self.consensus_alpha_s + 3.0 * workload.param_bytes() as f64 / self.reshard_bw
    }

    fn node_failure(&self) -> NodeFailureModel {
        NodeFailureModel { node_mtbf_s: self.node_mtbf_hours * 3600.0 }
    }

    /// One seeded realisation of the shrink-and-continue policy.
    ///
    /// Per-step discrete simulation: each step runs at `nodes/active ×`
    /// the full-world step time (strong scaling of the fixed global
    /// batch); a failure inside a step loses the partial step, pays one
    /// reshard, schedules the spare's return, and retries; due spares
    /// rejoin at step boundaries for another reshard. Durable checkpoints
    /// keep being written at their cadence — insurance, not the recovery
    /// path.
    #[allow(clippy::too_many_arguments)]
    fn simulate_elastic(
        &self,
        step_time_s: f64,
        total_steps: usize,
        nodes: usize,
        ckpt_every_steps: usize,
        ckpt_cost_s: f64,
        reshard_cost_s: f64,
        seed: u64,
    ) -> ElasticOutcome {
        assert!(nodes > 0 && total_steps > 0);
        let mtbf_s = self.node_failure().node_mtbf_s;
        let floor = ((nodes as f64 * self.min_world_frac).ceil() as usize).clamp(1, nodes);
        let mut rng = Rng(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) + 1);
        let mut out = ElasticOutcome::default();
        let mut t = 0.0f64;
        let mut active = nodes;
        // return times of spares in flight, earliest first
        let mut repairs: Vec<f64> = Vec::new();
        let mut step = 0usize;
        while step < total_steps {
            // spares whose wait elapsed rejoin at the step boundary
            while active < nodes && repairs.first().is_some_and(|&r| r <= t) {
                repairs.remove(0);
                active += 1;
                t += reshard_cost_s;
                out.grows += 1;
            }
            // below the floor the job stalls until the next spare returns
            while active < floor {
                let r = repairs.remove(0);
                let stall = (r - t).max(0.0);
                t += stall;
                out.degraded_s += stall;
                active += 1;
                t += reshard_cost_s;
                out.grows += 1;
            }
            let dt = step_time_s * nodes as f64 / active as f64;
            // P(some active node fails inside this step)
            let p_fail = 1.0 - (-dt * active as f64 / mtbf_s).exp();
            if rng.f64() < p_fail {
                // partial step lost; survivors drain, agree, reshard
                let partial = dt * rng.f64();
                t += partial + reshard_cost_s;
                if active < nodes {
                    out.degraded_s += partial + reshard_cost_s;
                }
                active -= 1;
                repairs.push(t + self.spare_wait_s);
                repairs.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
                out.shrinks += 1;
                continue; // retry the step at the smaller world
            }
            t += dt;
            if active < nodes {
                out.degraded_s += dt;
            }
            step += 1;
            if step.is_multiple_of(ckpt_every_steps.max(1)) {
                t += ckpt_cost_s;
            }
        }
        out.wall_s = t;
        out
    }

    /// Price one (MTBF, nodes) cell: both policies on the same failure
    /// environment, averaged over `seeds` realisations. `useful` work is
    /// `total_steps × step_time_s` for both — an optimizer step is equally
    /// useful whichever world executed it.
    #[allow(clippy::too_many_arguments)]
    pub fn expected(
        &self,
        step_time_s: f64,
        total_steps: usize,
        nodes: usize,
        ckpt_every_steps: usize,
        ckpt_cost_s: f64,
        workload: &StepWorkload,
        seeds: u64,
    ) -> ElasticPoint {
        assert!(seeds > 0, "need at least one failure realisation");
        let reshard = self.reshard_cost_s(workload);
        let useful_s = total_steps as f64 * step_time_s;
        let (mut wall, mut degraded, mut shrinks, mut grows) = (0.0, 0.0, 0u64, 0u64);
        let mut restart_wall = 0.0;
        for seed in 0..seeds {
            let e = self.simulate_elastic(
                step_time_s,
                total_steps,
                nodes,
                ckpt_every_steps,
                ckpt_cost_s,
                reshard,
                seed,
            );
            wall += e.wall_s;
            degraded += e.degraded_s;
            shrinks += e.shrinks;
            grows += e.grows;
            // identical environment for the baseline: every failure costs
            // the spare wait plus the restart overhead plus rework
            let r = simulate_campaign(&CampaignConfig {
                step_time_s,
                total_steps,
                ckpt_every_steps,
                ckpt_cost_s,
                restart_cost_s: self.restart_cost_s + self.spare_wait_s,
                nodes,
                failure: self.node_failure(),
                seed,
            });
            restart_wall += r.wall_s;
        }
        let n = seeds as f64;
        ElasticPoint {
            node_mtbf_hours: self.node_mtbf_hours,
            nodes,
            failures: shrinks as f64 / n,
            shrinks: shrinks as f64 / n,
            grows: grows as f64 / n,
            degraded_frac: degraded / wall,
            goodput_elastic: useful_s / (wall / n),
            goodput_restart: useful_s / (restart_wall / n),
        }
    }

    /// Sweep node MTBFs (hours) for one job size; points come back in the
    /// order of `mtbf_hours`.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep(
        &self,
        step_time_s: f64,
        total_steps: usize,
        nodes: usize,
        ckpt_every_steps: usize,
        ckpt_cost_s: f64,
        workload: &StepWorkload,
        mtbf_hours: &[f64],
        seeds: u64,
    ) -> Vec<ElasticPoint> {
        mtbf_hours
            .iter()
            .map(|&h| {
                let m = Self { node_mtbf_hours: h, ..*self };
                m.expected(
                    step_time_s,
                    total_steps,
                    nodes,
                    ckpt_every_steps,
                    ckpt_cost_s,
                    workload,
                    seeds,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::MaeWorkload;
    use geofm_vit::{VitConfig, VitVariant};

    fn workload() -> StepWorkload {
        MaeWorkload::build(&VitConfig::table1(VitVariant::B3), 32, 0.75)
    }

    #[test]
    fn reshard_is_orders_of_magnitude_cheaper_than_restart() {
        let m = ElasticModel::default();
        let cost = m.reshard_cost_s(&workload());
        assert!(cost > m.consensus_alpha_s, "the image move is not free");
        assert!(
            cost * 20.0 < m.restart_cost_s + m.spare_wait_s,
            "reshard ({cost:.1}s) must be far below a restart round trip"
        );
    }

    #[test]
    fn elastic_dominates_restart_at_high_failure_rates() {
        // the figV headline, held at test scale: with nodes failing every
        // few hundred hours a 64-node campaign restarts constantly, while
        // the elastic job absorbs each loss for seconds of reshard
        let m = ElasticModel { node_mtbf_hours: 200.0, ..Default::default() };
        let p = m.expected(10.0, 2_000, 64, 50, 20.0, &workload(), 8);
        assert!(p.shrinks > 1.0, "the environment must actually fail: {p:?}");
        assert!(
            p.goodput_elastic > p.goodput_restart,
            "shrink-and-continue must dominate under frequent failures: {p:?}"
        );
    }

    #[test]
    fn policies_converge_when_failures_are_rare() {
        let m = ElasticModel { node_mtbf_hours: 1e7, ..Default::default() };
        let p = m.expected(10.0, 1_000, 64, 50, 20.0, &workload(), 4);
        assert!(p.shrinks < 0.5, "near-zero failure rate expected: {p:?}");
        let rel = (p.goodput_elastic - p.goodput_restart).abs() / p.goodput_restart;
        assert!(rel < 0.05, "with no failures the policies are the same job: {p:?}");
    }

    #[test]
    fn degradation_and_shrinks_grow_as_mtbf_drops() {
        let m = ElasticModel::default();
        let pts = m.sweep(10.0, 2_000, 64, 50, 20.0, &workload(), &[10_000.0, 500.0, 50.0], 6);
        assert!(pts[0].shrinks <= pts[1].shrinks && pts[1].shrinks < pts[2].shrinks);
        assert!(pts[2].degraded_frac > pts[0].degraded_frac);
        assert!(pts[2].grows <= pts[2].shrinks, "cannot rejoin more spares than departed");
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let m = ElasticModel { node_mtbf_hours: 300.0, ..Default::default() };
        let a = m.expected(10.0, 1_000, 32, 50, 20.0, &workload(), 5);
        let b = m.expected(10.0, 1_000, 32, 50, 20.0, &workload(), 5);
        assert_eq!(a.goodput_elastic.to_bits(), b.goodput_elastic.to_bits());
        assert_eq!(a.goodput_restart.to_bits(), b.goodput_restart.to_bits());
        assert_eq!(a.shrinks.to_bits(), b.shrinks.to_bits());
    }

    #[test]
    fn min_world_floor_stalls_instead_of_vanishing() {
        // an MTBF so low the job keeps shrinking: the floor must hold the
        // world at or above half, waiting for spares instead of running on
        // a sliver (or underflowing)
        let m = ElasticModel {
            node_mtbf_hours: 0.5,
            spare_wait_s: 5_000.0,
            ..Default::default()
        };
        let p = m.expected(10.0, 200, 8, 50, 20.0, &workload(), 3);
        assert!(p.grows > 0.0, "long spare waits at the floor force stall-and-regrow: {p:?}");
        assert!(p.goodput_elastic > 0.0 && p.goodput_elastic.is_finite());
    }
}
