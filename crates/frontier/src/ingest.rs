//! Pricing the fault-tolerant ingest plane at Frontier scale.
//!
//! `geofm-data` implements the defenses mechanically (CRC-verified shard
//! reads, EWMA-timeout hedging, quarantine-and-skip). This module prices
//! them on the machine model, the way [`crate::guard`] prices the SDC
//! guard: a Lustre-like parallel filesystem serves record reads through
//! striped OSTs, per-client bandwidth degrades with **stripe contention**
//! (clients hammering the same OSTs), and a per-read fault rate splits
//! into stalled reads (an OST hiccup holding a read for seconds) and
//! corrupt records (rotten bytes on the wire or at rest).
//!
//! The comparison the `figW` repro binary sweeps:
//!
//! * **Defenses on** — every read pays a CRC pass; a stalled read costs
//!   only the hedge timeout plus a re-read; persistent rot costs bounded
//!   retries and then quarantines the record, shrinking useful records
//!   *linearly* in the fault rate.
//! * **Defenses off** — no overhead, but every stall is served in full,
//!   and a consumed corrupt record poisons its whole global batch: the
//!   probability a step is useful is `(1 − f·corrupt)^batch` — the same
//!   cliff shape the unguarded SDC campaign shows, at the data layer.
//!
//! Achieved ingest-limited throughput is `useful / max(compute, ingest)`
//! — prefetch overlaps ingest with compute, so the slower plane binds.

use crate::engine::execute;
use crate::schedule::build_step;
use crate::sim::SimConfig;

/// Cost model of the striped-shard ingest path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestModel {
    /// OSTs a rank's shards stripe across.
    pub stripe_width: usize,
    /// Sustained per-OST read bandwidth (bytes/s). Orion-class OSTs
    /// sustain ~5 GB/s of streaming reads.
    pub ost_bw: f64,
    /// Bytes per record (one pre-patchified scene).
    pub record_bytes: f64,
    /// Records per global batch (= per ingest step).
    pub batch_records: usize,
    /// Sustained CRC32 throughput of the verification pass (bytes/s);
    /// memory-bound on a GCD — the read is still warm in cache when the
    /// checksum pass runs, so it sustains more than the guard's cold
    /// two-pass hash.
    pub crc_bw: f64,
    /// Wall time an undefended stalled read is held (seconds). Lustre
    /// OST hiccups are observed in the tens of seconds.
    pub stall_s: f64,
    /// Hedge timeout as a multiple of the clean per-record read time
    /// (the `DefenseConfig::timeout_multiplier` analogue).
    pub hedge_timeout_mult: f64,
    /// Re-reads a corrupt record costs before quarantine
    /// (`DefenseConfig::max_retries`).
    pub retries: usize,
    /// Fraction of faults that are stalls (the rest are corruptions).
    pub stall_frac: f64,
}

impl Default for IngestModel {
    fn default() -> Self {
        Self {
            stripe_width: 8,
            ost_bw: 5e9,
            record_bytes: 1.2e6,
            batch_records: 512,
            crc_bw: 1.2e12,
            stall_s: 30.0,
            hedge_timeout_mult: 8.0,
            retries: 2,
            stall_frac: 0.6,
        }
    }
}

/// One cell of the achieved-throughput sweep, defenses on and off side
/// by side.
#[derive(Debug, Clone, Copy)]
pub struct IngestPoint {
    /// Per-read fault probability swept over.
    pub fault_rate: f64,
    /// Clients contending per OST (1 = a rank owns its stripes).
    pub contention: usize,
    /// DES compute step time (seconds) — the bar ingest must clear.
    pub compute_s: f64,
    /// Clean contended read time per step (seconds), defenses aside.
    pub read_s: f64,
    /// Per-step ingest time with defenses (CRC + hedges + retries).
    pub ingest_on_s: f64,
    /// Per-step ingest time without defenses (stalls served in full).
    pub ingest_off_s: f64,
    /// Defense overhead over the clean read at this point.
    pub overhead_frac: f64,
    /// Expected hedged reads per step (defenses on).
    pub hedges: f64,
    /// Fraction of records quarantined (defenses on) — the graceful,
    /// linear degradation path.
    pub quarantined_frac: f64,
    /// Achieved useful steps/s, defenses on.
    pub achieved_on: f64,
    /// Achieved useful steps/s, defenses off — discounted by the
    /// probability the step consumed no corrupt record.
    pub achieved_off: f64,
}

impl IngestModel {
    /// Clean per-record read time under `contention` clients per OST.
    fn record_read_s(&self, contention: usize) -> f64 {
        let agg_bw = self.stripe_width as f64 * self.ost_bw / contention.max(1) as f64;
        self.record_bytes / agg_bw
    }

    /// DES step time for `cfg` on its own machine.
    fn compute_s(&self, cfg: &SimConfig) -> f64 {
        let tasks = build_step(
            &cfg.machine,
            &cfg.workload,
            cfg.strategy,
            cfg.prefetch,
            cfg.limit_all_gathers,
        );
        execute(&tasks).makespan
    }

    /// Price one (fault rate, contention) cell.
    pub fn expected(&self, cfg: &SimConfig, fault_rate: f64, contention: usize) -> IngestPoint {
        assert!((0.0..=1.0).contains(&fault_rate), "fault_rate must be a probability");
        assert!((0.0..=1.0).contains(&self.stall_frac), "stall_frac must be a fraction");
        let rec_s = self.record_read_s(contention);
        let batch = self.batch_records as f64;
        let read_s = batch * rec_s;
        let compute_s = self.compute_s(cfg);

        let p_stall = fault_rate * self.stall_frac;
        let p_corrupt = fault_rate * (1.0 - self.stall_frac);

        // defenses on: CRC every byte; a stall costs the hedge timeout
        // plus the hedged re-read; rot costs bounded retries and then a
        // quarantined (dropped) record
        let crc_s = batch * self.record_bytes / self.crc_bw;
        let hedges = batch * p_stall;
        let hedge_s = hedges * (self.hedge_timeout_mult + 1.0) * rec_s;
        let retry_s = batch * p_corrupt * self.retries as f64 * rec_s;
        let ingest_on_s = read_s + crc_s + hedge_s + retry_s;
        let quarantined_frac = p_corrupt;
        let useful_on = 1.0 - quarantined_frac;

        // defenses off: stalls are served in full, corrupt records are
        // consumed silently — a step is only useful if it ate none
        let ingest_off_s = read_s + batch * p_stall * self.stall_s;
        let useful_off = (1.0 - p_corrupt).powf(batch);

        // prefetch overlaps ingest with compute: the slower plane binds
        let achieved_on = useful_on / ingest_on_s.max(compute_s);
        let achieved_off = useful_off / ingest_off_s.max(compute_s);

        IngestPoint {
            fault_rate,
            contention,
            compute_s,
            read_s,
            ingest_on_s,
            ingest_off_s,
            overhead_frac: (ingest_on_s - read_s) / read_s,
            hedges,
            quarantined_frac,
            achieved_on,
            achieved_off,
        }
    }

    /// Sweep the (fault rate × contention) grid; row-major in `rates`.
    pub fn sweep(
        &self,
        cfg: &SimConfig,
        rates: &[f64],
        contentions: &[usize],
    ) -> Vec<IngestPoint> {
        rates
            .iter()
            .flat_map(|&f| contentions.iter().map(move |&c| (f, c)))
            .map(|(f, c)| self.expected(cfg, f, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::FrontierMachine;
    use crate::workload::MaeWorkload;
    use geofm_fsdp::ShardingStrategy;
    use geofm_vit::{VitConfig, VitVariant};

    fn cfg() -> SimConfig {
        let machine = FrontierMachine::new(8);
        let wl = MaeWorkload::build(&VitConfig::table1(VitVariant::B3), 32, 0.75);
        SimConfig::tuned(machine, ShardingStrategy::FullShard, wl)
    }

    #[test]
    fn defense_overhead_is_small_at_zero_fault_rate() {
        let m = IngestModel::default();
        for contention in [1, 4, 16] {
            let p = m.expected(&cfg(), 0.0, contention);
            assert!(
                p.overhead_frac < 0.05,
                "clean-path defense overhead {:.2}% must stay under 5% (contention {contention})",
                p.overhead_frac * 100.0
            );
            assert!(p.overhead_frac > 0.0, "CRC verification is not free");
            assert!(p.achieved_off >= p.achieved_on, "defenses cannot win with zero faults");
        }
    }

    #[test]
    fn defenses_on_dominates_at_every_nonzero_fault_rate() {
        let m = IngestModel::default();
        let c = cfg();
        for &f in &[1e-4, 1e-3, 5e-3, 1e-2, 5e-2] {
            for contention in [1, 4, 16] {
                let p = m.expected(&c, f, contention);
                assert!(
                    p.achieved_on > p.achieved_off,
                    "defenses must dominate at f={f} contention={contention}: {} vs {}",
                    p.achieved_on,
                    p.achieved_off
                );
            }
        }
    }

    #[test]
    fn contention_degrades_reads_linearly() {
        let m = IngestModel::default();
        let c = cfg();
        let a = m.expected(&c, 0.0, 1);
        let b = m.expected(&c, 0.0, 4);
        assert!((b.read_s / a.read_s - 4.0).abs() < 1e-9, "4× contention = 4× read time");
    }

    #[test]
    fn defended_degradation_is_graceful_not_a_cliff() {
        let m = IngestModel::default();
        let c = cfg();
        let pts: Vec<_> = [0.0, 1e-4, 1e-3, 1e-2].iter().map(|&f| m.expected(&c, f, 4)).collect();
        for w in pts.windows(2) {
            assert!(w[1].achieved_on <= w[0].achieved_on + 1e-12, "monotone in fault rate");
            assert!(
                w[1].achieved_on > 0.25 * w[0].achieved_on,
                "defended goodput cliffed between f={} and f={}",
                w[0].fault_rate,
                w[1].fault_rate
            );
        }
        // while the undefended curve collapses over the same sweep: the
        // defended plane keeps >75% of each step, the undefended one
        // loses >95% of its starting goodput
        let last = pts.last().unwrap();
        assert!(last.achieved_off < 0.05 * pts[0].achieved_off);
        assert!(last.achieved_on > 10.0 * last.achieved_off);
    }

    #[test]
    fn stalls_are_hedged_past_not_waited_out() {
        let m = IngestModel::default();
        let p = m.expected(&cfg(), 1e-3, 4);
        assert!(p.hedges > 0.0);
        // the full stall bill the hedges avoided
        let avoided = p.hedges * m.stall_s;
        assert!(
            p.ingest_off_s - p.ingest_on_s > 0.5 * avoided,
            "hedging must recover most of the stall time"
        );
    }

    #[test]
    fn sweep_is_row_major_over_the_grid() {
        let m = IngestModel::default();
        let pts = m.sweep(&cfg(), &[0.0, 1e-3], &[1, 16]);
        assert_eq!(pts.len(), 4);
        assert_eq!((pts[0].fault_rate, pts[0].contention), (0.0, 1));
        assert_eq!((pts[1].fault_rate, pts[1].contention), (0.0, 16));
        assert_eq!((pts[3].fault_rate, pts[3].contention), (1e-3, 16));
    }
}
