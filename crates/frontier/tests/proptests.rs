//! Property tests for the Frontier simulator: physical sanity invariants
//! that must hold for every configuration.

use geofm_frontier::{simulate, FrontierMachine, MemoryModel, SimConfig, VitWorkload};
use geofm_fsdp::ShardingStrategy;
use geofm_vit::{VitConfig, VitVariant};
use proptest::prelude::*;

fn variants() -> impl Strategy<Value = VitVariant> {
    prop_oneof![
        Just(VitVariant::Base),
        Just(VitVariant::Huge),
        Just(VitVariant::B1),
        Just(VitVariant::B3),
        Just(VitVariant::B5),
    ]
}

fn strategies() -> impl Strategy<Value = ShardingStrategy> {
    prop_oneof![
        Just(ShardingStrategy::NoShard),
        Just(ShardingStrategy::ddp_default()),
        Just(ShardingStrategy::FullShard),
        Just(ShardingStrategy::ShardGradOp),
        Just(ShardingStrategy::Hybrid { shard_size: 1 }),
        Just(ShardingStrategy::Hybrid { shard_size: 2 }),
        Just(ShardingStrategy::Hybrid { shard_size: 8 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Aggregate throughput never decreases when nodes are added, and never
    /// exceeds ideal linear scaling from one node.
    #[test]
    fn weak_scaling_is_sublinear_but_monotone(
        v in variants(),
        s in strategies(),
        nodes_exp in 1u32..6,
    ) {
        let nodes = 1usize << nodes_exp;
        let wl = VitWorkload::build(&VitConfig::table1(v), 32, 224);
        let r_small = simulate(&SimConfig::tuned(FrontierMachine::new(nodes / 2 + (nodes == 1) as usize), s, wl.clone()));
        let r = simulate(&SimConfig::tuned(FrontierMachine::new(nodes), s, wl));
        prop_assert!(r.ips_syn >= r_small.ips_syn * 0.999,
            "{:?}/{}: {} nodes {} ips < {} nodes {} ips",
            v, s.name(), nodes, r.ips_syn, nodes / 2, r_small.ips_syn);
        prop_assert!(r.ips_syn <= r.ips_ideal * 1.001, "cannot beat ideal");
    }

    /// The comm share is a valid fraction and zero-comm ips dominates.
    #[test]
    fn comm_share_is_sane(v in variants(), s in strategies(), nodes_exp in 0u32..7) {
        let nodes = 1usize << nodes_exp;
        let wl = VitWorkload::build(&VitConfig::table1(v), 32, 224);
        let r = simulate(&SimConfig::tuned(FrontierMachine::new(nodes), s, wl));
        prop_assert!((0.0..1.0).contains(&r.comm_share()), "share {}", r.comm_share());
        prop_assert!(r.ips_no_comm >= r.ips_syn * 0.999);
        prop_assert!(r.step_time_real > r.step_time_syn * 0.999);
    }

    /// Memory estimates shrink (weakly) as the hybrid shard group grows.
    #[test]
    fn memory_monotone_in_shard_size(v in variants()) {
        let wl = VitWorkload::build(&VitConfig::table1(v), 32, 224);
        let world = 64;
        let mut last = u64::MAX;
        for k in [1usize, 2, 4, 8] {
            let m = MemoryModel::estimate(&wl, ShardingStrategy::Hybrid { shard_size: k }, world)
                .total();
            prop_assert!(m <= last, "k={} grew memory: {} > {}", k, m, last);
            last = m;
        }
    }

    /// Throughput scales (weakly) with local batch at fixed hardware.
    #[test]
    fn bigger_batches_amortise_overheads(v in variants()) {
        let m = FrontierMachine::new(4);
        let ips = |b: usize| {
            let wl = VitWorkload::build(&VitConfig::table1(v), b, 224);
            simulate(&SimConfig::tuned(m, ShardingStrategy::NoShard, wl)).ips_syn
        };
        prop_assert!(ips(64) >= ips(32) * 0.999);
    }
}
