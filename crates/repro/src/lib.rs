//! # geofm-repro
//!
//! One binary per table/figure of the paper. Each binary prints the
//! reproduced rows/series to stdout (with simple ASCII charts where the
//! paper has a plot) and writes machine-readable CSV/JSON under
//! `results/`, which `EXPERIMENTS.md` references.
//!
//! | binary  | reproduces |
//! |---------|------------|
//! | `table1`| Table I — ViT variants and parameter counts |
//! | `table2`| Table II — dataset splits |
//! | `table3`| Table III — linear-probing top-1 accuracy vs model scale |
//! | `fig1`  | Fig. 1 — MAE ViT-3B weak scaling (real/syn/no-comm/io/ideal) |
//! | `fig2`  | Fig. 2 — ViT-5B sharding × prefetch × limit_all_gathers |
//! | `fig3`  | Fig. 3 — weak scaling ViT-B/H/1B/3B + memory panels |
//! | `fig4`  | Fig. 4 — ViT-5B/15B sharding at scale + memory + power trace |
//! | `fig5`  | Fig. 5 — MAE pretraining loss for the (scaled) model family |
//! | `fig6`  | Fig. 6 — probe accuracy vs epoch per dataset and model |
//! | `figR`  | Resilience — goodput vs checkpoint interval × node count, with the Young/Daly analytic optimum (not in the paper; supports the fault-tolerance analysis in §III) |
//! | `figS`  | Gray failures — ips vs degradation fraction per sharding strategy under degraded-GCD/degraded-link models (not in the paper; quantifies the regime §IV-D assumes away) |
//! | `figT`  | SDC guard — goodput vs silent-corruption rate per strategy, guard on/off (not in the paper; prices the integrity defense of DESIGN.md §11) |
//! | `figU`  | Overlap — exposed-comm share vs nodes per strategy, comm/compute overlap on/off (not in the paper; isolates the mechanism behind Fig. 1's ~22 % anchor, DESIGN.md §12) |
//! | `figV`  | Elastic — goodput of shrink-and-continue vs wait-for-restart across node MTBF and job size (not in the paper; prices the elastic resharding of DESIGN.md §14) |
//! | `figW`  | Ingest — achieved ips vs ingest fault rate × stripe contention, defenses on/off (not in the paper; prices the fault-tolerant ingest plane of DESIGN.md §15) |

use geofm_telemetry::MetricsSnapshot;
use std::fs;
use std::path::{Path, PathBuf};

/// Directory where result artifacts are written.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("GEOFM_RESULTS").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(dir);
    fs::create_dir_all(&p).expect("cannot create results dir");
    p
}

/// Write a CSV file under an explicit directory (created if absent).
pub fn write_csv_to(dir: &Path, name: &str, header: &str, rows: &[String]) -> PathBuf {
    fs::create_dir_all(dir).expect("cannot create results dir");
    let path = dir.join(name);
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    fs::write(&path, body).expect("cannot write csv");
    println!("  -> wrote {}", path.display());
    path
}

/// Write a CSV file under the results dir.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    write_csv_to(&results_dir(), name, header, rows)
}

/// Render a set of named series as a log-x ASCII chart.
///
/// `xs` are shared x positions (e.g. node counts); each series is
/// `(name, values)` with `values.len() == xs.len()` (NaN = missing).
pub fn ascii_chart(title: &str, xs: &[usize], series: &[(String, Vec<f64>)], width: usize) {
    ascii_chart_labeled(title, "x (nodes)", xs, series, width);
}

/// [`ascii_chart`] with a custom x-axis label (e.g. checkpoint interval).
pub fn ascii_chart_labeled(
    title: &str,
    xlabel: &str,
    xs: &[usize],
    series: &[(String, Vec<f64>)],
    width: usize,
) {
    println!("\n  {}", title);
    let max = series
        .iter()
        .flat_map(|(_, v)| v.iter())
        .cloned()
        .filter(|v| v.is_finite())
        .fold(f64::MIN, f64::max);
    if !max.is_finite() || max <= 0.0 {
        println!("  (no data)");
        return;
    }
    for (name, vals) in series {
        print!("  {:>16} |", name);
        for v in vals {
            if v.is_finite() {
                let bar = ((v / max) * width as f64).round() as usize;
                print!("{:>width$}", "*".repeat(bar.max(1)), width = width + 1);
            } else {
                print!("{:>width$}", "-", width = width + 1);
            }
        }
        println!();
    }
    print!("  {:>16} |", xlabel);
    for x in xs {
        print!("{:>width$}", x, width = width + 1);
    }
    println!();
}

/// Parse the shared `--trace-out <path>` CLI flag (also accepts
/// `--trace-out=<path>`). When present, binaries export their telemetry
/// span recorder as Chrome-trace JSON to the given path.
pub fn trace_out_arg() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return args.next().map(PathBuf::from);
        }
        if let Some(v) = a.strip_prefix("--trace-out=") {
            return Some(PathBuf::from(v));
        }
    }
    None
}

/// Append a metrics summary to an existing CSV artifact: a blank separator
/// line, a `metric,value` header, then one row per metric (histograms expand
/// to count/sum/mean/p50/max).
pub fn append_metrics_csv(path: &Path, snapshot: &MetricsSnapshot) {
    use std::io::Write;
    let mut f = fs::OpenOptions::new()
        .append(true)
        .open(path)
        .expect("metrics summary target csv must exist");
    write!(f, "\nmetric,value\n{}", snapshot.to_csv_rows()).expect("cannot append metrics");
    println!("  -> appended metrics summary to {}", path.display());
}

/// Format an images-per-second value compactly.
pub fn fmt_ips(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.0}", v)
    } else if v >= 100.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.2}", v)
    }
}

/// The standard weak-scaling node ladder used by the paper's figures.
pub fn node_ladder(max: usize) -> Vec<usize> {
    [1usize, 2, 4, 8, 16, 32, 64].into_iter().filter(|&n| n <= max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ladder_caps() {
        assert_eq!(node_ladder(8), vec![1, 2, 4, 8]);
        assert_eq!(node_ladder(64).len(), 7);
    }

    #[test]
    fn fmt_ips_ranges() {
        assert_eq!(fmt_ips(1234.6), "1235"); // note: {:.0} rounds half-to-even
        assert_eq!(fmt_ips(123.45), "123.5");
        assert_eq!(fmt_ips(12.345), "12.35");
    }

    fn test_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("geofm-repro-{tag}-{}", std::process::id()))
    }

    #[test]
    fn csv_roundtrip() {
        // explicit directory: no env-var mutation, safe under parallel tests
        let dir = test_dir("csv");
        let p = write_csv_to(&dir, "t.csv", "a,b", &["1,2".into()]);
        let s = std::fs::read_to_string(p).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_summary_appends_to_csv() {
        let dir = test_dir("metrics");
        let p = write_csv_to(&dir, "m.csv", "a,b", &["1,2".into()]);
        let tel = geofm_telemetry::Telemetry::new();
        tel.metrics.counter("comm.all_gather.bytes").inc(640);
        append_metrics_csv(&p, &tel.metrics.snapshot());
        let s = std::fs::read_to_string(&p).unwrap();
        assert!(s.starts_with("a,b\n1,2\n\nmetric,value\n"));
        assert!(s.contains("comm.all_gather.bytes,640\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
