//! Figure 4: ViT-5B and ViT-15B weak scaling under HYBRID_{2,4,8,16}GPUs,
//! FULL_SHARD and SHARD_GRAD_OP, with memory panels and the rocm-smi-style
//! power/utilisation trace at 32 nodes for the 5B model.

use geofm_frontier::{simulate, FrontierMachine, SimConfig, VitWorkload};
use geofm_fsdp::ShardingStrategy;
use geofm_repro::{append_metrics_csv, ascii_chart, fmt_ips, node_ladder, trace_out_arg, write_csv};
use geofm_telemetry::Telemetry;
use geofm_vit::{VitConfig, VitVariant};

fn strategies() -> Vec<ShardingStrategy> {
    vec![
        ShardingStrategy::Hybrid { shard_size: 2 },
        ShardingStrategy::Hybrid { shard_size: 4 },
        ShardingStrategy::Hybrid { shard_size: 8 },
        ShardingStrategy::Hybrid { shard_size: 16 },
        ShardingStrategy::FullShard,
        ShardingStrategy::ShardGradOp,
    ]
}

fn main() {
    println!("FIGURE 4 — large models that do not fit on a single GPU (local batch 32)");
    let tel = Telemetry::new();
    let sims = tel.metrics.counter("fig4.simulations");
    let nodes = node_ladder(64);
    let mut rows = Vec::new();

    for v in [VitVariant::B5, VitVariant::B15] {
        let cfg = VitConfig::table1(v);
        let wl = VitWorkload::build(&cfg, 32, 224);
        println!("\n== {} ==", cfg.name);
        print!("{:>16}", "strategy\\nodes");
        for n in &nodes {
            print!("{:>9}", n);
        }
        println!("{:>10}", "mem[GiB]");
        let mut chart: Vec<(String, Vec<f64>)> = Vec::new();
        for strategy in strategies() {
            print!("{:>16}", strategy.name());
            let mut series = Vec::new();
            let mut mem_at_max = f64::NAN;
            for &n in &nodes {
                let machine = FrontierMachine::new(n);
                let k = strategy.shard_group_size(machine.world());
                let sim = simulate(&SimConfig::tuned(machine, strategy, wl.clone()));
                sims.inc(1);
                // a config is only valid if the model fits and the shard
                // group is not larger than the world
                if !sim.fits || k > machine.world() {
                    print!("{:>9}", "oom");
                    series.push(f64::NAN);
                    rows.push(format!("{},{},{},oom,{:.3}", cfg.name, strategy.name(), n,
                        sim.memory.total_gib()));
                } else {
                    print!("{:>9}", fmt_ips(sim.ips_syn));
                    series.push(sim.ips_syn);
                    mem_at_max = sim.memory.total_gib();
                    rows.push(format!(
                        "{},{},{},{:.2},{:.3}",
                        cfg.name,
                        strategy.name(),
                        n,
                        sim.ips_syn,
                        sim.memory.total_gib()
                    ));
                }
            }
            println!("{:>10.1}", mem_at_max);
            chart.push((strategy.name(), series));
        }
        ascii_chart(&format!("{} images/s", cfg.name), &nodes, &chart, 6);
    }
    let csv_path = write_csv("fig4.csv", "model,strategy,nodes,ips,mem_gib", &rows);

    // power / memory / utilisation trace at 32 nodes for the 5B model
    println!("\n-- rocm-smi-style trace: ViT-5B, 32 nodes --");
    let cfg = VitConfig::table1(VitVariant::B5);
    let wl = VitWorkload::build(&cfg, 32, 224);
    let machine = FrontierMachine::new(32);
    let mut trace_rows = Vec::new();
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>12}",
        "strategy", "ips", "avg power[W]", "avg util[%]", "mem[GiB]"
    );
    for (pid, strategy) in [
        ShardingStrategy::Hybrid { shard_size: 2 },
        ShardingStrategy::FullShard,
        ShardingStrategy::ShardGradOp,
    ]
    .into_iter()
    .enumerate()
    {
        let sim = simulate(&SimConfig::tuned(machine, strategy, wl.clone()));
        sims.inc(1);
        // one virtual-time DES step per strategy, each on its own process
        // track of the exported Chrome trace
        tel.trace.name_process(pid as u64, &format!("vit-5b/{}", strategy.name()));
        sim.record_trace(&tel.trace, pid as u64);
        let trace = sim.power_trace(&machine, 200);
        println!(
            "{:<16} {:>10} {:>12.0} {:>12.0} {:>12.1}",
            strategy.name(),
            fmt_ips(sim.ips_syn),
            trace.mean_power(),
            trace.mean_util(),
            trace.mem_gib
        );
        trace_rows.push(format!(
            "{},{:.2},{:.1},{:.1},{:.2}",
            strategy.name(),
            sim.ips_syn,
            trace.mean_power(),
            trace.mean_util(),
            trace.mem_gib
        ));
    }
    write_csv("fig4_trace.csv", "strategy,ips,avg_power_w,avg_util_pct,mem_gib", &trace_rows);
    append_metrics_csv(&csv_path, &tel.metrics.snapshot());
    if let Some(path) = trace_out_arg() {
        let written = tel.trace.write_json(&path).expect("cannot write trace JSON");
        println!("  -> wrote Chrome trace ({} events) to {}", tel.trace.len(), written.display());
    }

    println!("\nPaper claims reproduced: HYBRID_8/16 outperform HYBRID_2/4 for the 5B model;");
    println!("SHARD_GRAD_OP scales best for the 15B model; SHARD_GRAD_OP memory >> FULL_SHARD;");
    println!("paper's calibration points: 1509 (SHARD_GRAD_OP) vs 1307 (FULL_SHARD) ips at 32 nodes.");
}
