//! Development tool: sweep pretraining hyper-parameters for one tiny model
//! to find settings where the capacity ordering (Fig 5) emerges within the
//! CPU budget. Not part of the paper reproduction itself.

use geofm_core::{pretrain, RecipeConfig};
use geofm_vit::VitConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let model_idx: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(3);
    let lr: f32 = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(2e-3);
    let epochs: usize = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(15);
    let images: usize = args.get(4).and_then(|v| v.parse().ok()).unwrap_or(768);

    let cfg = &VitConfig::tiny_family()[model_idx];
    let rc = RecipeConfig {
        pretrain_images: images,
        pretrain_epochs: epochs,
        pretrain_lr: lr,
        ..RecipeConfig::default()
    };
    println!("{} lr={} epochs={} imgs={}", cfg.name, lr, epochs, images);
    let t0 = std::time::Instant::now();
    let out = pretrain(cfg, &rc);
    print!("eval: ");
    for &(_, l) in &out.eval_curve {
        print!("{:.3} ", l);
    }
    println!("\n[{:.0?}]", t0.elapsed());
}
