//! Figure 6 + Table III: linear-probe top-1/top-5 accuracy vs probe epoch
//! for every (model, dataset) pair; the final-epoch top-1 values are the
//! Table III reproduction.

use geofm_core::{pretrain_cached, probe_dataset, RecipeConfig};
use geofm_data::DatasetKind;
use geofm_repro::write_csv;
use geofm_vit::VitConfig;

/// Per-model row: (model name, per-dataset (kind, top1, top5)).
type ModelRow = (String, Vec<(DatasetKind, f32, f32)>);

fn main() {
    let rc = RecipeConfig::from_env();
    println!(
        "FIGURE 6 / TABLE III — linear probing ({} probe epochs, LARS, frozen encoders)",
        rc.probe_epochs
    );
    let mut curve_rows = Vec::new();
    let mut final_rows = Vec::new();
    let mut table: Vec<ModelRow> = Vec::new();

    for cfg in VitConfig::tiny_family() {
        let t0 = std::time::Instant::now();
        let out = pretrain_cached(&cfg, &rc);
        println!("  pretrained {:<8} in {:.0?}", cfg.name, t0.elapsed());
        let mut per_ds = Vec::new();
        for kind in DatasetKind::all() {
            let probe = probe_dataset(&out.encoder, kind, &rc);
            for p in &probe.curve {
                curve_rows.push(format!(
                    "{},{},{},{:.4},{:.4},{:.4}",
                    cfg.name,
                    kind.name(),
                    p.epoch,
                    p.train_loss,
                    p.top1,
                    p.top5
                ));
            }
            println!(
                "    {:<10} train {:>5} test {:>5}: top1 {:>5.1}%  top5 {:>5.1}%",
                kind.name(),
                probe.train_n,
                probe.test_n,
                probe.final_top1 * 100.0,
                probe.final_top5 * 100.0
            );
            final_rows.push(format!(
                "{},{},{:.4},{:.4}",
                cfg.name,
                kind.name(),
                probe.final_top1,
                probe.final_top5
            ));
            per_ds.push((kind, probe.final_top1, probe.final_top5));
        }
        table.push((cfg.name.clone(), per_ds));
    }
    write_csv("fig6.csv", "model,dataset,epoch,train_loss,top1,top5", &curve_rows);
    write_csv("table3.csv", "model,dataset,top1,top5", &final_rows);

    // Table III view
    println!("\nTABLE III — linear probing top-1 accuracy (%)");
    print!("{:<10}", "Model");
    for kind in DatasetKind::all() {
        print!("{:>12}", kind.name());
    }
    println!();
    for (name, per_ds) in &table {
        print!("{:<10}", name);
        for (_, top1, _) in per_ds {
            print!("{:>11.1}%", top1 * 100.0);
        }
        println!();
    }

    // monotonicity check per dataset
    let mut all_monotone = true;
    for (d, kind) in DatasetKind::all().iter().enumerate() {
        let accs: Vec<f32> = table.iter().map(|(_, p)| p[d].1).collect();
        let monotone = accs.windows(2).all(|w| w[1] >= w[0] - 0.02);
        if !monotone {
            all_monotone = false;
            println!("  note: {} not strictly monotone: {:?}", kind.name(), accs);
        }
    }
    let smallest = &table.first().unwrap().1;
    let largest = &table.last().unwrap().1;
    let gains: Vec<f32> =
        smallest.iter().zip(largest).map(|(s, l)| (l.1 - s.1) * 100.0).collect();
    println!(
        "\nGain largest-vs-smallest model (top-1 points): {:?}",
        gains.iter().map(|g| format!("{:+.1}", g)).collect::<Vec<_>>()
    );
    println!(
        "Paper claim (accuracy grows with scale on all datasets): {}",
        if all_monotone { "REPRODUCED" } else { "PARTIALLY — see EXPERIMENTS.md" }
    );
}
