//! Figure 5: MAE pretraining loss vs steps for the (scaled) model family —
//! larger models reach lower loss.

use geofm_core::{pretrain_cached, RecipeConfig};
use geofm_repro::write_csv;
use geofm_vit::VitConfig;

fn main() {
    let rc = RecipeConfig::from_env();
    println!(
        "FIGURE 5 — MAE pretraining loss (scaled family, {} imgs × {} epochs, mask 75%)",
        rc.pretrain_images, rc.pretrain_epochs
    );
    let mut rows = Vec::new();
    let mut finals = Vec::new();
    for cfg in VitConfig::tiny_family() {
        let t0 = std::time::Instant::now();
        let out = pretrain_cached(&cfg, &rc);
        for &(step, loss) in &out.loss_curve {
            rows.push(format!("{},{},{:.6}", cfg.name, step, loss));
        }
        let final_eval = out.eval_curve.last().map(|&(_, l)| l).unwrap_or(f32::NAN);
        let first_eval = out.eval_curve.first().map(|&(_, l)| l).unwrap_or(f32::NAN);
        println!(
            "  {:<8} ({:>7} params): eval loss {:.4} -> {:.4}   [{:.0?}]",
            cfg.name,
            cfg.param_count(),
            first_eval,
            final_eval,
            t0.elapsed()
        );
        finals.push((cfg.name.clone(), final_eval));
        // sparkline of the eval curve
        print!("   eval: ");
        for &(_, l) in &out.eval_curve {
            print!("{:.3} ", l);
        }
        println!();
    }
    write_csv("fig5.csv", "model,step,loss", &rows);
    let final_rows: Vec<String> =
        finals.iter().map(|(n, l)| format!("{},{:.6}", n, l)).collect();
    write_csv("fig5_final.csv", "model,final_eval_loss", &final_rows);

    let monotone = finals.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-4);
    println!(
        "\nPaper claim (larger model ⇒ lower pretraining loss): {}",
        if monotone { "REPRODUCED" } else { "NOT monotone — see EXPERIMENTS.md discussion" }
    );
}
