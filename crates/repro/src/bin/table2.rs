//! Table II: datasets used for pretraining and linear probing.

use geofm_core::RecipeConfig;
use geofm_data::DatasetKind;
use geofm_repro::write_csv;

fn main() {
    let rc = RecipeConfig::from_env();
    println!("TABLE II — datasets (paper sizes and this reproduction's scaled sizes)");
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "Dataset", "Classes", "Paper train", "Paper test", "Repro train", "Repro test"
    );
    let mut rows = Vec::new();
    // pretraining corpus row
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12} {:>12}   (pretraining corpus)",
        "MillionAID",
        DatasetKind::MillionAid.classes(),
        DatasetKind::MillionAid.paper_pretrain_size().unwrap(),
        "-",
        rc.pretrain_images,
        "-"
    );
    rows.push(format!(
        "MillionAID-pretrain,{},{},,{},",
        DatasetKind::MillionAid.classes(),
        DatasetKind::MillionAid.paper_pretrain_size().unwrap(),
        rc.pretrain_images
    ));
    for kind in DatasetKind::all() {
        let split = kind.paper_split();
        let rt = ((split.train as f64 * rc.probe_scale).round() as usize).max(kind.classes());
        let te =
            (((split.test as f64 * rc.probe_scale).round() as usize).max(kind.classes())).min(rc.max_test);
        println!(
            "{:<12} {:>8} {:>12} {:>12} {:>12} {:>12}   (TR={:.0}%)",
            kind.name(),
            kind.classes(),
            split.train,
            split.test,
            rt,
            te,
            kind.train_ratio() * 100.0
        );
        rows.push(format!(
            "{},{},{},{},{},{}",
            kind.name(),
            kind.classes(),
            split.train,
            split.test,
            rt,
            te
        ));
    }
    write_csv("table2.csv", "dataset,classes,paper_train,paper_test,repro_train,repro_test", &rows);
}
