//! Table III: final linear-probing top-1 accuracy across the four datasets
//! as the model is scaled (the paper's headline +30-point result).
//!
//! This runs the same pretrain→probe pipeline as `fig6` but reports only
//! the final-epoch numbers; `fig6` additionally writes the full curves.

use geofm_core::{pretrain_cached, probe_dataset, RecipeConfig};
use geofm_data::DatasetKind;
use geofm_repro::write_csv;
use geofm_vit::VitConfig;

fn main() {
    let rc = RecipeConfig::from_env();
    println!("TABLE III — linear probing top-1 accuracy vs model scale");
    println!("(pretrain {} imgs × {} epochs; probe {} epochs; splits scaled from Table II)",
        rc.pretrain_images, rc.pretrain_epochs, rc.probe_epochs);

    let mut rows = Vec::new();
    print!("{:<10}{:>10}", "Model", "Params");
    for kind in DatasetKind::all() {
        print!("{:>12}", kind.name());
    }
    println!();

    let mut per_model: Vec<Vec<f32>> = Vec::new();
    for cfg in VitConfig::tiny_family() {
        let out = pretrain_cached(&cfg, &rc);
        print!("{:<10}{:>10}", cfg.name, cfg.param_count());
        let mut accs = Vec::new();
        for kind in DatasetKind::all() {
            let probe = probe_dataset(&out.encoder, kind, &rc);
            print!("{:>11.1}%", probe.final_top1 * 100.0);
            rows.push(format!("{},{},{:.4}", cfg.name, kind.name(), probe.final_top1));
            accs.push(probe.final_top1);
        }
        println!();
        per_model.push(accs);
    }
    write_csv("table3_top1.csv", "model,dataset,top1", &rows);

    let first = per_model.first().unwrap();
    let last = per_model.last().unwrap();
    println!("\nGain largest vs smallest (top-1 points):");
    for (i, kind) in DatasetKind::all().iter().enumerate() {
        println!("  {:<10} {:+.1}", kind.name(), (last[i] - first[i]) * 100.0);
    }
}
