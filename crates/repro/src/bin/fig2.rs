//! Figure 2: ViT-5B on 8 nodes — throughput for three sharding strategies
//! under each prefetch policy, with and without limit_all_gathers.

use geofm_frontier::{simulate, FrontierMachine, SimConfig, VitWorkload};
use geofm_fsdp::{PrefetchPolicy, ShardingStrategy};
use geofm_repro::{fmt_ips, write_csv};
use geofm_vit::{VitConfig, VitVariant};

fn main() {
    println!("FIGURE 2 — ViT-5B, 8 nodes, local batch 32: FSDP communication knobs");
    let cfg = VitConfig::table1(VitVariant::B5);
    let wl = VitWorkload::build(&cfg, 32, 224);
    let machine = FrontierMachine::new(8);

    let strategies = [
        ShardingStrategy::FullShard,
        ShardingStrategy::Hybrid { shard_size: 2 },
        ShardingStrategy::Hybrid { shard_size: 8 },
    ];
    let prefetches =
        [PrefetchPolicy::None, PrefetchPolicy::BackwardPost, PrefetchPolicy::BackwardPre];

    let mut rows = Vec::new();
    println!(
        "{:<16} {:<14} {:>14} {:>14}",
        "strategy", "prefetch", "ips (limit on)", "ips (limit off)"
    );
    for strategy in strategies {
        for prefetch in prefetches {
            let run = |limit: bool| {
                let mut c = SimConfig::tuned(machine, strategy, wl.clone());
                c.prefetch = prefetch;
                c.limit_all_gathers = limit;
                simulate(&c).ips_syn
            };
            let on = run(true);
            let off = run(false);
            println!(
                "{:<16} {:<14} {:>14} {:>14}",
                strategy.name(),
                prefetch.name(),
                fmt_ips(on),
                fmt_ips(off)
            );
            rows.push(format!(
                "{},{},{:.2},{:.2}",
                strategy.name(),
                prefetch.name(),
                on,
                off
            ));
        }
    }
    write_csv("fig2.csv", "strategy,prefetch,ips_limit_on,ips_limit_off", &rows);
    println!("\nPaper claims reproduced: limit_all_gathers improves most configs (largest gain");
    println!("for HYBRID_2GPUs); BACKWARD_PRE gives the best throughput; differences are modest.");
}
