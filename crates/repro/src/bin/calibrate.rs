//! Calibration dashboard: prints every paper-shape target the simulator
//! must hit, so the constants in `machine::Calibration` can be tuned.

use geofm_frontier::{simulate, FrontierMachine, MaeWorkload, SimConfig, VitWorkload};
use geofm_fsdp::ShardingStrategy;
use geofm_vit::{VitConfig, VitVariant};

fn ips(nodes: usize, v: VitVariant, s: ShardingStrategy) -> f64 {
    let wl = VitWorkload::build(&VitConfig::table1(v), 32, 224);
    simulate(&SimConfig::tuned(FrontierMachine::new(nodes), s, wl)).ips_syn
}

fn main() {
    use ShardingStrategy as S;
    println!("== Fig 1 targets (MAE-3B NO_SHARD) ==");
    for nodes in [1, 8, 64] {
        let wl = MaeWorkload::build(&VitConfig::table1(VitVariant::B3), 32, 0.75);
        let r = simulate(&SimConfig::tuned(FrontierMachine::new(nodes), S::NoShard, wl));
        println!(
            "  {:>2} nodes: syn {:>8.1} ips, comm share {:>5.1}% (target 64n ≈ 22%), io/syn {:.1}x",
            nodes,
            r.ips_syn,
            r.comm_share() * 100.0,
            r.ips_io / r.ips_syn
        );
    }

    println!("== Fig 3 orderings (want H1 >= H2 >= NO_SHARD > DDP; FULL_SHARD worst at scale) ==");
    for v in [VitVariant::Base, VitVariant::B3] {
        for nodes in [4, 16, 64] {
            let h1 = ips(nodes, v, S::Hybrid { shard_size: 1 });
            let h2 = ips(nodes, v, S::Hybrid { shard_size: 2 });
            let ns = ips(nodes, v, S::NoShard);
            let ddp = ips(nodes, v, S::ddp_default());
            let fs = ips(nodes, v, S::FullShard);
            println!(
                "  {:?}@{:>2}n: H1 {:>8.0} H2 {:>8.0} NS {:>8.0} DDP {:>8.0} FS {:>8.0}  [{}{}{}{}]",
                v, nodes, h1, h2, ns, ddp, fs,
                if h1 >= h2 { "ok " } else { "H1<H2! " },
                if h2 >= ns * 0.95 { "ok " } else { "H2<NS! " },
                if ns > ddp { "ok " } else { "NS<DDP! " },
                if nodes == 64 && fs < ns { "ok" } else if nodes == 64 { "FS>NS!" } else { "-" },
            );
        }
    }

    println!("== Fig 4: ViT-5B (targets: SGO@32n≈1509, FS@32n≈1307; H8/H16 beat H2/H4 at 64n) ==");
    for nodes in [8, 32, 64] {
        let h2 = ips(nodes, VitVariant::B5, S::Hybrid { shard_size: 2 });
        let h4 = ips(nodes, VitVariant::B5, S::Hybrid { shard_size: 4 });
        let h8 = ips(nodes, VitVariant::B5, S::Hybrid { shard_size: 8 });
        let h16 = ips(nodes, VitVariant::B5, S::Hybrid { shard_size: 16 });
        let fs = ips(nodes, VitVariant::B5, S::FullShard);
        let sgo = ips(nodes, VitVariant::B5, S::ShardGradOp);
        println!(
            "  {:>2}n: H2 {:>7.0} H4 {:>7.0} H8 {:>7.0} H16 {:>7.0} FS {:>7.0} SGO {:>7.0}",
            nodes, h2, h4, h8, h16, fs, sgo
        );
    }

    println!("== Fig 4: ViT-15B (target: SGO scales best) ==");
    for nodes in [8, 32, 64] {
        let h4 = ips(nodes, VitVariant::B15, S::Hybrid { shard_size: 4 });
        let h8 = ips(nodes, VitVariant::B15, S::Hybrid { shard_size: 8 });
        let h16 = ips(nodes, VitVariant::B15, S::Hybrid { shard_size: 16 });
        let fs = ips(nodes, VitVariant::B15, S::FullShard);
        let sgo = ips(nodes, VitVariant::B15, S::ShardGradOp);
        println!(
            "  {:>2}n: H4 {:>7.0} H8 {:>7.0} H16 {:>7.0} FS {:>7.0} SGO {:>7.0}",
            nodes, h4, h8, h16, fs, sgo
        );
    }
}
