//! Figure U: exposed-communication share vs node count per sharding
//! strategy, comm/compute overlap on vs off (MAE ViT-3B, the paper's
//! Figure 1 workload). The "on" curves run the DES with its two
//! independent streams — the schedule FSDP's backward prefetch actually
//! achieves — while "off" serializes every task in issue order, the world
//! where each collective blocks the compute stream.
//!
//! Anchors: §IV-A reports ~22 % of step time lost to communication at
//! 64 nodes for MAE-3B NO_SHARD *with* overlap; the binary hard-fails if
//! the overlap-on share leaves [10 %, 35 %] there, or if overlap-off is
//! not strictly worse at every scale (the whole point of the engine built
//! in `geofm-fsdp::OverlapConfig`).

use geofm_frontier::{simulate, FrontierMachine, MaeWorkload, SimConfig};
use geofm_fsdp::ShardingStrategy;
use geofm_repro::{append_metrics_csv, ascii_chart_labeled, write_csv};
use geofm_telemetry::Telemetry;
use geofm_vit::{VitConfig, VitVariant};

fn main() {
    println!("FIGURE U — exposed-comm share vs nodes, overlap on/off (MAE ViT-3B)");
    let node_counts = [1usize, 2, 4, 8, 16, 32, 64];
    let cfg = VitConfig::table1(VitVariant::B3);
    let wl = MaeWorkload::build(&cfg, 32, 0.75);
    let strategies = [
        ShardingStrategy::NoShard,
        ShardingStrategy::FullShard,
        ShardingStrategy::ShardGradOp,
        ShardingStrategy::Hybrid { shard_size: 8 },
    ];

    let tel = Telemetry::new();
    let mut rows = Vec::new();
    let mut chart = Vec::new();
    let mut anchor_share = None;
    for strategy in strategies {
        println!("\n  {}", strategy.name());
        println!(
            "{:>7} {:>12} {:>12} {:>10} {:>10} {:>8}",
            "nodes", "step_on_s", "step_off_s", "share_on", "share_off", "hidden"
        );
        let mut on_curve = Vec::with_capacity(node_counts.len());
        for nodes in node_counts {
            let machine = FrontierMachine::new(nodes);
            let on = simulate(&SimConfig::tuned(machine, strategy, wl.clone()));
            let off = simulate(&SimConfig::tuned_no_overlap(machine, strategy, wl.clone()));
            let (share_on, share_off) = (on.comm_share(), off.comm_share());
            // fraction of total comm the overlapped schedule hides
            let hidden = if share_off > 0.0 { 1.0 - share_on / share_off } else { 0.0 };
            tel.metrics.counter("figU.points").inc(1);
            println!(
                "{:>7} {:>12.4} {:>12.4} {:>10.3} {:>10.3} {:>7.0}%",
                nodes,
                on.step_time_syn,
                off.step_time_syn,
                share_on,
                share_off,
                hidden * 100.0
            );
            rows.push(format!(
                "{},{},on,{:.6},{:.6},{:.6}",
                strategy.name(),
                nodes,
                on.step_time_syn,
                on.step_time_no_comm,
                share_on
            ));
            rows.push(format!(
                "{},{},off,{:.6},{:.6},{:.6}",
                strategy.name(),
                nodes,
                off.step_time_syn,
                off.step_time_no_comm,
                share_off
            ));
            on_curve.push(share_on * 100.0);
            assert!(
                share_off > share_on,
                "{} at {} nodes: overlap off ({share_off:.3}) must expose strictly more \
                 comm than overlap on ({share_on:.3})",
                strategy.name(),
                nodes
            );
            if strategy == ShardingStrategy::NoShard && nodes == 64 {
                anchor_share = Some(share_on);
            }
        }
        chart.push((format!("{} (on)", strategy.name()), on_curve));
    }
    // one "off" curve for scale reference: NO_SHARD fully serialized
    let off_curve: Vec<f64> = node_counts
        .iter()
        .map(|&nodes| {
            let machine = FrontierMachine::new(nodes);
            simulate(&SimConfig::tuned_no_overlap(machine, ShardingStrategy::NoShard, wl.clone()))
                .comm_share()
                * 100.0
        })
        .collect();
    chart.push(("NO_SHARD (off)".to_string(), off_curve));

    let csv_path =
        write_csv("figU.csv", "strategy,nodes,overlap,step_s,step_no_comm_s,comm_share", &rows);
    append_metrics_csv(&csv_path, &tel.metrics.snapshot());
    ascii_chart_labeled(
        "exposed-comm share (%) vs nodes, overlap on per strategy + NO_SHARD off",
        "nodes",
        node_counts.as_ref(),
        &chart,
        4,
    );

    let anchor = anchor_share.expect("NO_SHARD @ 64 nodes is in the sweep");
    assert!(
        anchor > 0.10 && anchor < 0.35,
        "NO_SHARD overlap-on share at 64 nodes = {anchor:.3}, paper anchor ≈ 0.22"
    );
    println!(
        "\nReading: with overlap on, NO_SHARD exposes {:.0}% of its step to communication at \
         64 nodes — the paper's ~22% §IV-A anchor — and the sharded strategies sit lower \
         because backward-prefetched gathers and double-buffered reduce-scatters hide most \
         of their (larger) comm volume behind backward compute. Turning overlap off \
         serializes the same task DAG: every curve jumps, and the gap between a strategy's \
         on/off curves is exactly the comm the engine hides — the quantity the real \
         rank-thread engine now also reports as overlap.exposed telemetry.",
        anchor * 100.0
    );
}
