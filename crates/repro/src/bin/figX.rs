//! Figure X: serving **goodput and p99 latency vs offered load**,
//! overload defenses on vs off (geofm-serve, closed-loop DES).
//!
//! The paper does not print this figure; it prices the overload-robust
//! inference serving plane (`geofm-serve`: admission control over bounded
//! per-tenant queues, deadline-aware batching that sheds expired work
//! *before* compute, token buckets + circuit breakers, EWMA-hedged
//! straggler duplicates, and a hysteretic degradation ladder) the way
//! `figW` prices the ingest plane. Both curves face identical diurnal
//! traffic, seeded burst storms, slow clients, and worker hangs:
//!
//! * **defenses on** — overflow is rejected at the door with an honest
//!   retry-after, doomed work is shed before it burns backbone time, and
//!   sustained pressure climbs the degradation ladder (tight batches →
//!   cache-only for low priority → shed low at admission);
//! * **defenses off** — the classic naive server: one unbounded FIFO,
//!   every request computed no matter how dead, no hedging. Backlog grows
//!   without bound, head-of-line blocking pushes completions past their
//!   deadlines, and p99 walks off with the queue.
//!
//! The claim CI enforces: at every offered load **at or above capacity**
//! the defended plane strictly dominates on *both* goodput and p99, while
//! costing under 5 % of goodput when lightly loaded.

use geofm_frontier::ServeLoadModel;
use geofm_repro::{append_metrics_csv, ascii_chart_labeled, write_csv};
use geofm_telemetry::Telemetry;

fn main() {
    println!(
        "FIGURE X — serving goodput and p99 vs offered load, defenses on/off \
         (geofm-serve closed-loop DES, diurnal + bursts + hangs)"
    );
    let model = ServeLoadModel::default();
    let loads = [0.3, 0.6, 0.9, 1.0, 1.2, 1.5, 2.0, 3.0];
    println!(
        "  {} tenants (Premium/Standard/Low), {} virtual ms, capacity {:.2} req/ms; \
         burst p={:.2}, hang p={:.2}, seed {}",
        model.tenants,
        model.ticks,
        model.capacity_per_tick(),
        model.burst_prob,
        model.hang_prob,
        model.seed
    );

    let tel = Telemetry::new();
    let points = model.sweep(&loads);
    tel.metrics.counter("figX.sweeps").inc(1);
    // the fault-free light-load control: defenses must be invisible here
    let clean = model.expected_clean(0.3);
    let clean_overhead =
        (clean.goodput_off - clean.goodput_on).max(0.0) / clean.goodput_off.max(1e-12);
    println!(
        "  clean control at 0.3x (no faults): goodput {:.4} defended vs {:.4} naive \
         ({:.2}% overhead)",
        clean.goodput_on,
        clean.goodput_off,
        clean_overhead * 100.0
    );
    println!(
        "\n{:>6} {:>8} {:>8} {:>8} {:>9} {:>9} {:>7} {:>6} {:>6} {:>7} {:>9} {:>9}",
        "load",
        "good_on",
        "good_off",
        "p99_on",
        "p99_off",
        "rej_on%",
        "shed%",
        "hedge",
        "rung",
        "q_on",
        "q_off",
        "submitted"
    );
    let mut rows = Vec::new();
    let mut dominated = true;
    let mut worst_good = f64::INFINITY;
    let mut worst_p99 = f64::INFINITY;
    for p in &points {
        println!(
            "{:>6.1} {:>8.3} {:>8.3} {:>7.1}ms {:>8.1}ms {:>8.1}% {:>5.1}% {:>6} {:>6} {:>7} {:>9} {:>9}",
            p.offered,
            p.goodput_on,
            p.goodput_off,
            p.p99_on_ms,
            p.p99_off_ms,
            p.rejected_on_frac * 100.0,
            p.shed_on_frac * 100.0,
            p.hedges_on,
            p.degrade_peak_on,
            p.queue_max_on,
            p.queue_max_off,
            p.submitted_on
        );
        rows.push(format!(
            "{:.2},{:.6},{:.6},{:.4},{:.4},{:.4},{:.4},{:.6},{:.6},{},{},{},{}",
            p.offered,
            p.goodput_on,
            p.goodput_off,
            p.p99_on_ms,
            p.p99_off_ms,
            p.p50_on_ms,
            p.p50_off_ms,
            p.rejected_on_frac,
            p.shed_on_frac,
            p.hedges_on,
            p.degrade_peak_on,
            p.queue_max_on,
            p.queue_max_off
        ));
        if p.offered >= 1.0 {
            // the CI-enforced claim: strict dominance on BOTH axes at
            // every offered load at or above capacity
            worst_good = worst_good.min(p.goodput_on - p.goodput_off);
            worst_p99 = worst_p99.min(p.p99_off_ms - p.p99_on_ms);
            dominated &= p.goodput_on > p.goodput_off && p.p99_on_ms < p.p99_off_ms;
        }
    }

    let load_labels: Vec<usize> = loads.iter().map(|l| (l * 10.0).round() as usize).collect();
    let csv_path = write_csv(
        "figX.csv",
        "offered,goodput_on,goodput_off,p99_on_ms,p99_off_ms,p50_on_ms,p50_off_ms,\
         rejected_on_frac,shed_on_frac,hedges_on,degrade_peak_on,queue_max_on,queue_max_off",
        &rows,
    );
    append_metrics_csv(&csv_path, &tel.metrics.snapshot());
    ascii_chart_labeled(
        "serving goodput vs offered load (columns left→right = idle→3x overload)",
        "x (offered load ×0.1 of capacity)",
        &load_labels,
        &[
            ("defended".to_string(), points.iter().map(|p| p.goodput_on).collect()),
            ("naive".to_string(), points.iter().map(|p| p.goodput_off).collect()),
        ],
        4,
    );
    assert!(
        dominated,
        "serving defenses must strictly dominate goodput AND p99 at every load >= capacity \
         (worst goodput margin {worst_good:.4}, worst p99 margin {worst_p99:.2} ms)"
    );
    assert!(
        clean_overhead < 0.05,
        "clean light-load defense overhead {:.2}% must stay under 5%",
        clean_overhead * 100.0
    );
    println!(
        "\nReading: lightly loaded, the defended and naive planes are the same server — \
         admission control admits everything and the ladder never leaves Normal, so the \
         defenses cost {:.2}% of goodput. Past capacity the curves tear apart: the naive \
         plane's unbounded queue absorbs the diurnal peak and never drains (deepest \
         backlog {} requests vs a {}-slot bounded queue), so head-of-line blocking turns \
         nearly every completion late — throughput without goodput — and p99 tracks the \
         backlog rather than the service time. The defended plane rejects overflow at the \
         door with an honest retry-after, sheds already-dead work before it reaches the \
         backbone, hedges hung batches, and climbs the degradation ladder under sustained \
         pressure, holding the worst-case dominance margins at {:.3} goodput and {:.1} ms \
         of p99. The argument is the serving twin of figW: overload is not an anomaly to \
         survive but an operating regime to schedule for.",
        clean_overhead * 100.0,
        points.last().map(|p| p.queue_max_off).unwrap_or(0),
        points.first().map(|p| p.queue_max_on).unwrap_or(0),
        if worst_good.is_finite() { worst_good } else { 0.0 },
        if worst_p99.is_finite() { worst_p99 } else { 0.0 },
    );
}
