//! Figure 1: weak scaling of the MAE ViT-3B pretraining workload —
//! real / synthetic / synthetic-no-comm / IO / ideal curves, NO_SHARD,
//! local batch 32, 4 loader workers, 1–64 nodes.

use geofm_frontier::{simulate, FrontierMachine, MaeWorkload, SimConfig};
use geofm_fsdp::ShardingStrategy;
use geofm_repro::{append_metrics_csv, ascii_chart, fmt_ips, node_ladder, trace_out_arg, write_csv};
use geofm_telemetry::Telemetry;
use geofm_vit::{VitConfig, VitVariant};

fn main() {
    println!("FIGURE 1 — MAE ViT-3B weak scaling (NO_SHARD, local batch 32)");
    let cfg = VitConfig::table1(VitVariant::B3);
    let wl = MaeWorkload::build(&cfg, 32, 0.75);
    let nodes = node_ladder(64);

    let mut rows = Vec::new();
    let (mut v_real, mut v_syn, mut v_nocomm, mut v_io, mut v_ideal) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "nodes", "real", "syn", "syn_no_comm", "io", "ideal", "comm%"
    );
    let tel = Telemetry::new();
    for (pid, &n) in nodes.iter().enumerate() {
        let sim = simulate(&SimConfig::tuned(
            FrontierMachine::new(n),
            ShardingStrategy::NoShard,
            wl.clone(),
        ));
        tel.metrics.counter("fig1.simulations").inc(1);
        tel.trace.name_process(pid as u64, &format!("mae-3b/{n}nodes"));
        sim.record_trace(&tel.trace, pid as u64);
        println!(
            "{:>6} {:>10} {:>10} {:>12} {:>10} {:>10} {:>9.1}%",
            n,
            fmt_ips(sim.ips_real),
            fmt_ips(sim.ips_syn),
            fmt_ips(sim.ips_no_comm),
            fmt_ips(sim.ips_io),
            fmt_ips(sim.ips_ideal),
            sim.comm_share() * 100.0
        );
        rows.push(format!(
            "{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.4}",
            n, sim.ips_real, sim.ips_syn, sim.ips_no_comm, sim.ips_io, sim.ips_ideal,
            sim.comm_share()
        ));
        v_real.push(sim.ips_real);
        v_syn.push(sim.ips_syn);
        v_nocomm.push(sim.ips_no_comm);
        v_io.push(sim.ips_io);
        v_ideal.push(sim.ips_ideal);
    }
    let csv_path = write_csv(
        "fig1.csv",
        "nodes,ips_real,ips_syn,ips_syn_no_comm,ips_io,ips_ideal,comm_share",
        &rows,
    );
    append_metrics_csv(&csv_path, &tel.metrics.snapshot());
    if let Some(path) = trace_out_arg() {
        let written = tel.trace.write_json(&path).expect("cannot write trace JSON");
        println!("  -> wrote Chrome trace ({} events) to {}", tel.trace.len(), written.display());
    }
    ascii_chart(
        "images/s (log-ish bars, each column = one node count)",
        &nodes,
        &[
            ("io".into(), v_io),
            ("ideal".into(), v_ideal),
            ("syn no comm".into(), v_nocomm),
            ("syn".into(), v_syn),
            ("real".into(), v_real),
        ],
        6,
    );
    println!("\nPaper claims reproduced: io > syn at every scale; comm share grows to ~22% at 64 nodes.");
}
