//! Table I: ViT model architectures and parameter counts.

use geofm_repro::write_csv;
use geofm_vit::{VitConfig, VitVariant};

fn main() {
    println!("TABLE I — Vision Transformer model architectures");
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>6} {:>12} {:>12} {:>8}",
        "Model", "Width", "Depth", "MLP", "Heads", "Params[M]", "Paper[M]", "RelErr"
    );
    let mut rows = Vec::new();
    for v in VitVariant::all() {
        let cfg = VitConfig::table1(v);
        let ours = cfg.params_m();
        let paper = v.paper_params_m();
        let err = VitConfig::paper_count_rel_err(v);
        let flag = if err > 0.02 { " (paper row inconsistent — see EXPERIMENTS.md)" } else { "" };
        println!(
            "{:<10} {:>6} {:>6} {:>6} {:>6} {:>12} {:>12} {:>7.1}%{}",
            cfg.name,
            cfg.width,
            cfg.depth,
            cfg.mlp,
            cfg.heads,
            ours,
            paper,
            err * 100.0,
            flag
        );
        rows.push(format!(
            "{},{},{},{},{},{},{},{:.4}",
            cfg.name, cfg.width, cfg.depth, cfg.mlp, cfg.heads, ours, paper, err
        ));
    }
    write_csv("table1.csv", "model,width,depth,mlp,heads,params_m,paper_params_m,rel_err", &rows);
}
