//! Figure S: throughput vs gray-degradation fraction per sharding strategy
//! (MAE ViT-3B, 8 nodes / 64 GCDs). Sweeps the per-component probability
//! that a GCD computes 3× slower or a Slingshot link runs at quarter
//! bandwidth, and prices the expected step time with the DES — the gray
//! twin of `figR`'s fail-stop goodput sweep.
//!
//! The paper does not print this figure; it quantifies the regime the
//! paper's §IV-D throughput numbers assume away, and motivates the health
//! monitor + adaptive timeouts in `geofm-fsdp`/`geofm-collectives`.

use geofm_frontier::{FrontierMachine, GrayModel, MaeWorkload, SimConfig};
use geofm_fsdp::ShardingStrategy;
use geofm_repro::{append_metrics_csv, ascii_chart_labeled, write_csv};
use geofm_telemetry::Telemetry;
use geofm_vit::{VitConfig, VitVariant};

fn main() {
    println!("FIGURE S — ips vs gray-degradation fraction per strategy (MAE ViT-3B, 8 nodes)");
    let nodes = 8usize;
    let cfg = VitConfig::table1(VitVariant::B3);
    let wl = MaeWorkload::build(&cfg, 32, 0.75);
    let gray = GrayModel::default();
    let fracs = [0.0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2];
    let strategies = [
        ShardingStrategy::NoShard,
        ShardingStrategy::FullShard,
        ShardingStrategy::ShardGradOp,
        ShardingStrategy::Hybrid { shard_size: 8 },
    ];
    println!(
        "  severity: degraded GCD computes {:.1}x slower, degraded link at 1/{:.1} bandwidth",
        gray.gcd_slowdown, gray.link_derate
    );

    let tel = Telemetry::new();
    let mut rows = Vec::new();
    let mut chart = Vec::new();
    for strategy in strategies {
        let sim_cfg =
            SimConfig::tuned(FrontierMachine::new(nodes), strategy, wl.clone());
        let points = gray.sweep(&sim_cfg, &fracs);
        tel.metrics.counter("figS.sweeps").inc(1);
        println!(
            "\n  {} — fault-free {:.0} ips",
            strategy.name(),
            points[0].ips
        );
        println!(
            "{:>8} {:>11} {:>12} {:>9} {:>9}",
            "frac", "P(slow GCD)", "P(slow link)", "ips", "relative"
        );
        for p in &points {
            println!(
                "{:>8.3} {:>11.3} {:>12.3} {:>9.0} {:>8.1}%",
                p.frac,
                p.p_any_gcd,
                p.p_any_link,
                p.ips,
                p.relative * 100.0
            );
            rows.push(format!(
                "{},{},{:.4},{:.4},{:.4},{:.1},{:.4}",
                strategy.name(),
                p.frac,
                p.p_any_gcd,
                p.p_any_link,
                p.step_time,
                p.ips,
                p.relative
            ));
        }
        chart.push((
            strategy.name().to_string(),
            points.iter().map(|p| p.relative).collect(),
        ));
    }
    let frac_labels: Vec<usize> = fracs.iter().map(|f| (f * 1000.0).round() as usize).collect();
    let csv_path = write_csv(
        "figS.csv",
        "strategy,frac,p_any_gcd,p_any_link,step_time_s,ips,relative",
        &rows,
    );
    append_metrics_csv(&csv_path, &tel.metrics.snapshot());
    ascii_chart_labeled(
        "relative throughput (each column = one degradation fraction)",
        "x (frac x1000)",
        &frac_labels,
        &chart,
        4,
    );
    println!(
        "\nReading: with 64 GCDs, P(some GCD is degraded) = 1-(1-f)^64 saturates fast — \
         by f ≈ 2% nearly every step runs at the straggler's pace, so throughput drops \
         steeply at tiny fractions and then plateaus near the fully-degraded floor \
         (bounded by the 3x compute derate). Strategies whose steps are more \
         communication-bound lose proportionally more to the degraded link."
    );
}
