//! Development tool: diagnose probe accuracy vs pretraining budget,
//! including a random-encoder baseline. Not part of the reproduction.

use geofm_core::{pretrain, probe_dataset, RecipeConfig};
use geofm_data::DatasetKind;
use geofm_tensor::TensorRng;
use geofm_vit::{VitConfig, VitModel};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let model_idx: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(3);
    let epochs: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(12);
    let lr: f32 = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(2e-3);
    let imgs: usize = args.get(4).and_then(|v| v.parse().ok()).unwrap_or(768);
    let cfg = &VitConfig::tiny_family()[model_idx];
    let rc = RecipeConfig {
        pretrain_images: imgs,
        pretrain_lr: lr,
        pretrain_epochs: epochs,
        probe_epochs: 30,
        probe_scale: 0.1,
        max_test: 600,
        ..RecipeConfig::default()
    };

    // random baseline
    let mut rng = TensorRng::seed_from(42);
    let random_encoder = VitModel::new(cfg, &mut rng);
    let pr = probe_dataset(&random_encoder, DatasetKind::Ucm, &rc);
    println!("{} RANDOM encoder: UCM top1 {:.1}%", cfg.name, pr.final_top1 * 100.0);

    let out = pretrain(cfg, &rc);
    println!("eval: {:?}", out.eval_curve.iter().map(|&(_,l)| (l*1000.0).round()/1000.0).collect::<Vec<_>>());
    for kind in [DatasetKind::Ucm, DatasetKind::Aid] {
        let p = probe_dataset(&out.encoder, kind, &rc);
        println!("{} pretrained({} ep): {} top1 {:.1}%", cfg.name, epochs, kind.name(), p.final_top1 * 100.0);
    }
}
