//! Figure 3: weak scaling of ViT-Base/Huge/1B/3B (all fit on one GPU) under
//! DDP, NO_SHARD, HYBRID_1GPU, HYBRID_2GPUs, FULL_SHARD + the per-GPU
//! memory panels.

use geofm_frontier::{simulate, FrontierMachine, MemoryModel, SimConfig, VitWorkload};
use geofm_fsdp::ShardingStrategy;
use geofm_repro::{ascii_chart, fmt_ips, node_ladder, write_csv};
use geofm_vit::{VitConfig, VitVariant};

fn main() {
    println!("FIGURE 3 — weak scaling, models that fit on a single GPU (local batch 32)");
    let variants = [VitVariant::Base, VitVariant::Huge, VitVariant::B1, VitVariant::B3];
    let strategies = [
        ShardingStrategy::ddp_default(),
        ShardingStrategy::NoShard,
        ShardingStrategy::Hybrid { shard_size: 1 },
        ShardingStrategy::Hybrid { shard_size: 2 },
        ShardingStrategy::FullShard,
    ];
    let nodes = node_ladder(64);

    let mut rows = Vec::new();
    for v in variants {
        let cfg = VitConfig::table1(v);
        let wl = VitWorkload::build(&cfg, 32, 224);
        println!("\n== {} ==", cfg.name);
        print!("{:>16}", "strategy\\nodes");
        for n in &nodes {
            print!("{:>9}", n);
        }
        println!("{:>10}", "mem[GiB]");
        let mut chart: Vec<(String, Vec<f64>)> = Vec::new();
        for strategy in strategies {
            print!("{:>16}", strategy.name());
            let mut series = Vec::new();
            for &n in &nodes {
                let sim = simulate(&SimConfig::tuned(FrontierMachine::new(n), strategy, wl.clone()));
                print!("{:>9}", fmt_ips(sim.ips_syn));
                series.push(sim.ips_syn);
                rows.push(format!(
                    "{},{},{},{:.2},{:.3}",
                    cfg.name,
                    strategy.name(),
                    n,
                    sim.ips_syn,
                    sim.memory.total_gib()
                ));
            }
            // memory at the largest scale (FULL_SHARD depends on world size)
            let mem = MemoryModel::estimate(&wl, strategy, FrontierMachine::new(64).world())
                .total_gib();
            println!("{:>10.1}", mem);
            chart.push((strategy.name(), series));
        }
        // ideal line from the fastest single-node configuration
        let best1: f64 = strategies
            .iter()
            .map(|&s| {
                simulate(&SimConfig::tuned(FrontierMachine::new(1), s, wl.clone())).ips_syn
            })
            .fold(f64::MIN, f64::max);
        let ideal: Vec<f64> = nodes.iter().map(|&n| best1 * n as f64).collect();
        chart.push(("ideal".into(), ideal));
        ascii_chart(&format!("{} images/s", cfg.name), &nodes, &chart, 6);
    }
    write_csv("fig3.csv", "model,strategy,nodes,ips,mem_gib", &rows);

    println!("\nPaper claims reproduced: FULL_SHARD flattens earliest for small models;");
    println!("HYBRID_1GPU > HYBRID_2GPUs ~ NO_SHARD > DDP, gap growing with model size;");
    println!("FULL_SHARD memory falls with world size while the others stay constant.");
}
