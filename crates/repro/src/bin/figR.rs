//! Figure R: goodput vs checkpoint interval for a long MAE ViT-3B
//! pretraining campaign under a per-node exponential failure model, swept
//! across node counts. Each sweep prints the simulated optimum next to the
//! Young/Daly analytic optimum `τ* = √(2δM)` so the checkpoint-interval
//! policy can be sanity-checked without running the DES.
//!
//! The paper does not print this figure; it motivates the checkpoint
//! cadence that `geofm-fsdp`'s resilient trainer implements.

use geofm_frontier::{
    interval_ladder, simulate, FaultModel, FrontierMachine, MaeWorkload, SimConfig,
};
use geofm_fsdp::ShardingStrategy;
use geofm_repro::{append_metrics_csv, ascii_chart_labeled, write_csv};
use geofm_telemetry::Telemetry;
use geofm_vit::{VitConfig, VitVariant};

fn main() {
    println!("FIGURE R — goodput vs checkpoint interval (MAE ViT-3B, SHARD_GRAD_OP)");
    let cfg = VitConfig::table1(VitVariant::B3);
    let wl = MaeWorkload::build(&cfg, 32, 0.75);

    // Harsh-environment fault model: early-operations node MTBF (~6 weeks)
    // and a single job's realistic share of Lustre write bandwidth. The
    // per-crate default (`FaultModel::default`) is the steady-state model;
    // this figure uses the regime where the interval choice actually bites.
    let fm = FaultModel { node_mtbf_hours: 1000.0, ckpt_write_bw: 1e11, restart_cost_s: 300.0 };
    let ckpt_cost = fm.checkpoint_cost_s(&wl);
    let total_steps = 50_000;
    let seeds = 8;
    let intervals = interval_ladder(2, 2048);
    let node_counts = [16usize, 64, 256];
    println!(
        "  checkpoint state: {:.1} GiB (params + 2 AdamW moments), write cost {:.2}s",
        wl.param_bytes() as f64 * 3.0 / (1u64 << 30) as f64,
        ckpt_cost
    );

    let tel = Telemetry::new();
    let mut rows = Vec::new();
    let mut chart = Vec::new();
    for &n in &node_counts {
        let sim = simulate(&SimConfig::tuned(
            FrontierMachine::new(n),
            ShardingStrategy::ShardGradOp,
            wl.clone(),
        ));
        let step_time = sim.step_time_real;
        let sweep = fm.sweep(step_time, total_steps, n, ckpt_cost, &intervals, seeds);
        tel.metrics.counter("figR.sweeps").inc(1);
        tel.metrics
            .counter("fault.simulated_failures")
            .inc(sweep.points.iter().map(|p| p.outcome.failures).sum());
        println!(
            "\n  {n} nodes — step {:.2}s, system MTBF {:.1}h, Young/Daly τ* ≈ {} steps, simulated best {} steps",
            step_time,
            sweep.system_mtbf_s / 3600.0,
            sweep.young_daly_steps,
            sweep.best_steps
        );
        println!(
            "{:>12} {:>9} {:>9} {:>8} {:>8} {:>9}",
            "ckpt_every", "goodput", "failures", "ckpt%", "rework%", "restart%"
        );
        for p in &sweep.points {
            let o = &p.outcome;
            println!(
                "{:>12} {:>8.1}% {:>9} {:>7.2}% {:>7.2}% {:>8.2}%",
                p.ckpt_every_steps,
                o.goodput * 100.0,
                o.failures,
                o.ckpt_s / o.wall_s * 100.0,
                o.rework_s / o.wall_s * 100.0,
                o.restart_s / o.wall_s * 100.0
            );
            rows.push(format!(
                "{},{},{:.6},{},{:.1},{:.1},{:.1},{:.1},{},{}",
                n,
                p.ckpt_every_steps,
                o.goodput,
                o.failures,
                o.wall_s,
                o.ckpt_s,
                o.rework_s,
                o.restart_s,
                sweep.young_daly_steps,
                sweep.best_steps
            ));
        }
        chart.push((
            format!("{n} nodes"),
            sweep.points.iter().map(|p| p.outcome.goodput).collect(),
        ));
    }
    let csv_path = write_csv(
        "figR.csv",
        "nodes,ckpt_every_steps,goodput,failures,wall_s,ckpt_s,rework_s,restart_s,young_daly_steps,best_steps",
        &rows,
    );
    append_metrics_csv(&csv_path, &tel.metrics.snapshot());
    ascii_chart_labeled(
        "goodput (each column = one checkpoint interval)",
        "x (ckpt steps)",
        &intervals,
        &chart,
        4,
    );
    println!(
        "\nReading: too-frequent checkpointing pays the write cost every few steps; \
         too-rare loses work to rework after each failure. The simulated optimum \
         tracks the Young/Daly τ* = sqrt(2·δ·MTBF) column within one ladder rung."
    );
}
