//! Figure V: goodput of **elastic shrink-and-continue** vs classic
//! **wait-for-checkpoint-restart** across node MTBF and job size (MAE
//! ViT-3B, FULL_SHARD, 100k-step campaign).
//!
//! The paper does not print this figure; it prices the elastic resharding
//! subsystem (`geofm-fsdp::try_run_elastic` + GEOFMCK3 world-independent
//! checkpoints) the same way `figR` prices checkpoint intervals and `figT`
//! prices the SDC guard. Both policies face the *identical* seeded failure
//! process:
//!
//! * **restart-wait** — every failure stalls the whole job for a spare,
//!   pays re-queue + re-init + checkpoint read-back, and reworks
//!   everything since the last durable checkpoint;
//! * **shrink-and-continue** — survivors drain, agree, reshard in seconds
//!   and keep training at a strong-scaled (slower) world until the spare
//!   rejoins.
//!
//! The claim CI enforces: at high failure rates (node MTBF at or below a
//! few hundred hours) shrink-and-continue **strictly dominates** the
//! restart policy at every job size, and the two converge when failures
//! are rare (the elastic machinery is free insurance).

use geofm_frontier::{
    simulate, ElasticModel, FaultModel, FrontierMachine, MaeWorkload, SimConfig,
};
use geofm_fsdp::ShardingStrategy;
use geofm_repro::{append_metrics_csv, ascii_chart_labeled, write_csv};
use geofm_telemetry::Telemetry;
use geofm_vit::{VitConfig, VitVariant};

fn main() {
    println!(
        "FIGURE V — elastic shrink-and-continue vs wait-for-restart goodput \
         (MAE ViT-3B, FULL_SHARD, 100k steps)"
    );
    let total_steps = 100_000usize;
    let seeds = 16u64;
    let cfg = VitConfig::table1(VitVariant::B3);
    let wl = MaeWorkload::build(&cfg, 32, 0.75);
    let model = ElasticModel::default();
    let fault = FaultModel::default();
    // sweep from "leadership-machine healthy" down to "burn-in / degraded
    // fleet": high failure rate = low MTBF, rightmost columns
    let mtbf_hours = [25_000.0, 5_000.0, 1_000.0, 200.0, 50.0, 10.0];
    let node_counts = [8usize, 64, 512];
    println!(
        "  reshard: consensus {:.0} ms + 3×params at {:.0} GB/s = {:.1} s; \
         spare wait {:.0} s; restart overhead {:.0} s; min world {:.0}%",
        model.consensus_alpha_s * 1e3,
        model.reshard_bw / 1e9,
        model.reshard_cost_s(&wl),
        model.spare_wait_s,
        model.restart_cost_s,
        model.min_world_frac * 100.0
    );

    let tel = Telemetry::new();
    let mut rows = Vec::new();
    let mut chart = Vec::new();
    // dominance margin at the two most hostile MTBFs, per node count
    let mut dominated = true;
    let mut worst_margin = f64::INFINITY;
    for &nodes in &node_counts {
        let sim_cfg = SimConfig::tuned(
            FrontierMachine::new(nodes),
            ShardingStrategy::FullShard,
            wl.clone(),
        );
        let step_time_s = simulate(&sim_cfg).step_time_syn;
        let ckpt_cost_s = fault.checkpoint_cost_s(&wl);
        let ckpt_every = fault.young_daly_steps(ckpt_cost_s, step_time_s, nodes);
        let points =
            model.sweep(step_time_s, total_steps, nodes, ckpt_every, ckpt_cost_s, &wl, &mtbf_hours, seeds);
        tel.metrics.counter("figV.sweeps").inc(1);
        println!(
            "\n  {nodes} nodes — step {step_time_s:.3} s, ckpt {ckpt_cost_s:.1} s every \
             {ckpt_every} steps (Young/Daly)"
        );
        println!(
            "{:>10} {:>9} {:>8} {:>8} {:>10} {:>12} {:>12}",
            "mtbf_h", "shrinks", "grows", "deg%", "degraded", "gp_elastic", "gp_restart"
        );
        for p in &points {
            println!(
                "{:>10.0} {:>9.1} {:>8.1} {:>7.1}% {:>10.3} {:>12.4} {:>12.4}",
                p.node_mtbf_hours,
                p.shrinks,
                p.grows,
                p.degraded_frac * 100.0,
                p.degraded_frac,
                p.goodput_elastic,
                p.goodput_restart
            );
            rows.push(format!(
                "{nodes},{},{:.2},{:.2},{:.6},{:.6},{:.6}",
                p.node_mtbf_hours,
                p.shrinks,
                p.grows,
                p.degraded_frac,
                p.goodput_elastic,
                p.goodput_restart
            ));
        }
        // the CI-enforced claim: strict dominance in the hostile tail
        for p in points.iter().filter(|p| p.node_mtbf_hours <= 200.0) {
            let margin = p.goodput_elastic - p.goodput_restart;
            worst_margin = worst_margin.min(margin);
            dominated &= margin > 0.0;
        }
        chart.push((format!("{nodes}n elastic"), points.iter().map(|p| p.goodput_elastic).collect()));
        chart.push((format!("{nodes}n restart"), points.iter().map(|p| p.goodput_restart).collect()));
    }

    let mtbf_labels: Vec<usize> = mtbf_hours.iter().map(|h| *h as usize).collect();
    let csv_path = write_csv(
        "figV.csv",
        "nodes,node_mtbf_hours,shrinks,grows,degraded_frac,goodput_elastic,goodput_restart",
        &rows,
    );
    append_metrics_csv(&csv_path, &tel.metrics.snapshot());
    ascii_chart_labeled(
        "goodput vs node MTBF (columns left→right = healthier→failure-prone)",
        "x (MTBF h)",
        &mtbf_labels,
        &chart,
        4,
    );
    assert!(
        dominated,
        "shrink-and-continue must strictly dominate restart-wait at high failure rates \
         (worst margin {worst_margin:.4})"
    );
    println!(
        "\nReading: when failures are rare the two policies are the same job — the elastic \
         machinery idles and goodput is set by the checkpoint cadence. As MTBF drops the \
         restart policy pays the spare wait plus re-queue plus rework *per failure*, while \
         the elastic job pays seconds of drain-consensus-reshard and a strong-scaling \
         haircut until the spare rejoins; at 512 nodes and 10 h node MTBF the restart \
         campaign barely progresses while the elastic one keeps the surviving nodes \
         productive (worst-case dominance margin {worst_margin:.3} in goodput). This is the \
         wall-clock argument for world-size-independent checkpoints: recovery becomes a \
         data-movement problem, not a scheduler round trip."
    );
}
