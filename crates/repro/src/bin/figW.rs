//! Figure W: achieved training throughput vs **ingest fault rate** and
//! **stripe contention**, ingest defenses on vs off (MAE ViT-3B,
//! FULL_SHARD, Lustre-like striped shard reads).
//!
//! The paper does not print this figure; it prices the fault-tolerant
//! streaming ingest plane (`geofm-data`: CRC-verified `GEOFMSH1` shards,
//! EWMA-timeout hedged reads, quarantine-and-skip degradation) the way
//! `figT` prices the SDC guard and `figV` prices elastic resharding.
//! Both curves face the identical fault process — a per-read probability
//! split between multi-second OST stalls and corrupt records:
//!
//! * **defenses on** — every byte is CRC-checked, stalls cost only the
//!   hedge timeout plus a re-read, persistent rot costs bounded retries
//!   and a quarantined record (goodput shrinks linearly);
//! * **defenses off** — stalls are served in full and corrupt records
//!   are consumed silently, poisoning their whole global batch — the
//!   `(1 − f)^batch` cliff, at the data layer.
//!
//! The claim CI enforces: defenses-on **strictly dominates** defenses-off
//! at every nonzero fault rate and every contention level, while costing
//! under 5 % of the clean read path when nothing is failing.

use geofm_frontier::{FrontierMachine, IngestModel, MaeWorkload, SimConfig};
use geofm_fsdp::ShardingStrategy;
use geofm_repro::{append_metrics_csv, ascii_chart_labeled, write_csv};
use geofm_telemetry::Telemetry;
use geofm_vit::{VitConfig, VitVariant};

fn main() {
    println!(
        "FIGURE W — achieved ips vs ingest fault rate × stripe contention, \
         defenses on/off (MAE ViT-3B, FULL_SHARD)"
    );
    let cfg = VitConfig::table1(VitVariant::B3);
    let wl = MaeWorkload::build(&cfg, 32, 0.75);
    let sim_cfg = SimConfig::tuned(FrontierMachine::new(8), ShardingStrategy::FullShard, wl);
    let model = IngestModel::default();
    let fault_rates = [0.0, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2];
    let contentions = [1usize, 4, 16];
    println!(
        "  ingest: {}-way stripes at {:.0} GB/s/OST, {:.1} MB records × {} per batch; \
         CRC at {:.0} GB/s; stalls {:.0} s undefended, hedged at {:.0}× EWMA; {} retries",
        model.stripe_width,
        model.ost_bw / 1e9,
        model.record_bytes / 1e6,
        model.batch_records,
        model.crc_bw / 1e9,
        model.stall_s,
        model.hedge_timeout_mult,
        model.retries
    );

    let tel = Telemetry::new();
    let mut rows = Vec::new();
    let mut chart = Vec::new();
    let mut dominated = true;
    let mut worst_margin = f64::INFINITY;
    let mut clean_overhead_max = 0.0f64;
    for &contention in &contentions {
        let points: Vec<_> =
            fault_rates.iter().map(|&f| model.expected(&sim_cfg, f, contention)).collect();
        tel.metrics.counter("figW.sweeps").inc(1);
        println!(
            "\n  contention ×{contention} — clean read {:.3} s/batch, compute {:.3} s/step",
            points[0].read_s, points[0].compute_s
        );
        println!(
            "{:>10} {:>10} {:>10} {:>8} {:>8} {:>12} {:>12}",
            "fault", "ingest_on", "ingest_off", "hedges", "quar%", "ips_on", "ips_off"
        );
        for p in &points {
            println!(
                "{:>10.0e} {:>10.3} {:>10.3} {:>8.2} {:>7.2}% {:>12.4} {:>12.4}",
                p.fault_rate,
                p.ingest_on_s,
                p.ingest_off_s,
                p.hedges,
                p.quarantined_frac * 100.0,
                p.achieved_on,
                p.achieved_off
            );
            rows.push(format!(
                "{contention},{:e},{:.6},{:.6},{:.4},{:.6},{:.6},{:.6}",
                p.fault_rate,
                p.ingest_on_s,
                p.ingest_off_s,
                p.hedges,
                p.quarantined_frac,
                p.achieved_on,
                p.achieved_off
            ));
            if p.fault_rate == 0.0 {
                clean_overhead_max = clean_overhead_max.max(p.overhead_frac);
            } else {
                // the CI-enforced claim: strict dominance at every
                // nonzero fault rate, every contention level
                let margin = p.achieved_on - p.achieved_off;
                worst_margin = worst_margin.min(margin);
                dominated &= margin > 0.0;
            }
        }
        chart.push((
            format!("x{contention} on"),
            points.iter().map(|p| p.achieved_on).collect(),
        ));
        chart.push((
            format!("x{contention} off"),
            points.iter().map(|p| p.achieved_off).collect(),
        ));
    }

    let rate_labels: Vec<usize> =
        fault_rates.iter().map(|f| (f * 1e4).round() as usize).collect();
    let csv_path = write_csv(
        "figW.csv",
        "contention,fault_rate,ingest_on_s,ingest_off_s,hedges,quarantined_frac,achieved_on,achieved_off",
        &rows,
    );
    append_metrics_csv(&csv_path, &tel.metrics.snapshot());
    ascii_chart_labeled(
        "achieved ips vs ingest fault rate (columns left→right = clean→hostile)",
        "x (fault rate ×1e-4)",
        &rate_labels,
        &chart,
        4,
    );
    assert!(
        dominated,
        "ingest defenses must strictly dominate at every nonzero fault rate \
         (worst margin {worst_margin:.4})"
    );
    assert!(
        clean_overhead_max < 0.05,
        "clean-path defense overhead {:.2}% must stay under 5%",
        clean_overhead_max * 100.0
    );
    println!(
        "\nReading: with nothing failing the defenses cost {:.2}% of the read path (one \
         streaming CRC pass), invisible behind prefetch. At any nonzero fault rate the \
         undefended plane loses on both axes at once: every OST stall is served in full \
         (tens of seconds against a hedge timeout of milliseconds) and every consumed \
         corrupt record silently poisons its whole global batch, so useful steps vanish \
         as (1−f)^batch. The defended plane instead degrades linearly — rot is caught by \
         CRC, retried, then quarantined; stragglers are hedged past — keeping the worst-\
         case dominance margin at {:.4} ips. This is the data-layer twin of the SDC-guard \
         argument: at Frontier scale the question is not whether reads fail, but whether \
         a failed read costs a record or a campaign.",
        clean_overhead_max * 100.0,
        worst_margin
    );
}
