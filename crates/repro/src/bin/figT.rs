//! Figure T: goodput vs silent-data-corruption rate per sharding strategy,
//! guard on vs guard off (MAE ViT-3B, 8 nodes / 64 GCDs, 100k-step
//! campaign). Sweeps the per-GCD-per-step SDC probability and prices the
//! checksummed-collective + sentinel + rollback-and-skip guard with the
//! machine model — the SDC twin of `figR` (fail-stop) and `figS` (gray).
//!
//! The paper does not print this figure; it prices the defense the paper's
//! long campaigns implicitly rely on. The claim to check: the guard costs
//! < 5% of step time at zero SDC rate, and under corruption the guarded
//! goodput degrades gracefully while the unguarded curve falls off a cliff
//! (one undetected flip anywhere poisons every weight thereafter).

use geofm_frontier::{FrontierMachine, MaeWorkload, SdcGuardModel, SimConfig};
use geofm_fsdp::ShardingStrategy;
use geofm_repro::{append_metrics_csv, ascii_chart_labeled, write_csv};
use geofm_telemetry::Telemetry;
use geofm_vit::{VitConfig, VitVariant};

fn main() {
    println!("FIGURE T — goodput vs SDC rate, guard on/off (MAE ViT-3B, 8 nodes, 100k steps)");
    let nodes = 8usize;
    let total_steps = 100_000usize;
    let cfg = VitConfig::table1(VitVariant::B3);
    let wl = MaeWorkload::build(&cfg, 32, 0.75);
    let model = SdcGuardModel::default();
    let probs = [0.0, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4];
    let strategies = [
        ShardingStrategy::NoShard,
        ShardingStrategy::FullShard,
        ShardingStrategy::ShardGradOp,
        ShardingStrategy::Hybrid { shard_size: 8 },
    ];
    println!(
        "  guard cost model: CRC at {:.0} GB/s, exchange {:.0} us, snapshot every {} steps",
        model.crc_bw / 1e9,
        model.exchange_alpha_s * 1e6,
        model.snapshot_every
    );

    let tel = Telemetry::new();
    let mut rows = Vec::new();
    let mut chart = Vec::new();
    let mut worst_overhead = 0.0f64;
    for strategy in strategies {
        let sim_cfg = SimConfig::tuned(FrontierMachine::new(nodes), strategy, wl.clone());
        let points = model.sweep(&sim_cfg, total_steps, &probs);
        tel.metrics.counter("figT.sweeps").inc(1);
        worst_overhead = worst_overhead.max(points[0].overhead_frac);
        println!(
            "\n  {} — base step {:.3} s, guard overhead {:.2}%",
            strategy.name(),
            points[0].base_step_s,
            points[0].overhead_frac * 100.0
        );
        println!(
            "{:>10} {:>10} {:>10} {:>12} {:>12}",
            "sdc_prob", "p_step", "incidents", "goodput_on", "goodput_off"
        );
        for p in &points {
            println!(
                "{:>10.1e} {:>10.2e} {:>10.1} {:>12.4} {:>12.2e}",
                p.sdc_prob, p.p_step, p.incidents, p.goodput_on, p.goodput_off
            );
            rows.push(format!(
                "{},{:e},{:e},{:.6},{:.6},{:.6},{:.1},{:.6},{:e}",
                strategy.name(),
                p.sdc_prob,
                p.p_step,
                p.base_step_s,
                p.guard_step_s,
                p.overhead_frac,
                p.incidents,
                p.goodput_on,
                p.goodput_off
            ));
        }
        chart.push((
            format!("{} (on)", strategy.name()),
            points.iter().map(|p| p.goodput_on).collect(),
        ));
    }
    // the unguarded cliff is strategy-independent (pure probability)
    let sim_cfg =
        SimConfig::tuned(FrontierMachine::new(nodes), ShardingStrategy::FullShard, wl.clone());
    chart.push((
        "unguarded".to_string(),
        model.sweep(&sim_cfg, total_steps, &probs).iter().map(|p| p.goodput_off).collect(),
    ));

    let prob_labels: Vec<usize> =
        probs.iter().map(|p| if *p == 0.0 { 0 } else { -(p.log10()) as usize }).collect();
    let csv_path = write_csv(
        "figT.csv",
        "strategy,sdc_prob,p_step,base_step_s,guard_step_s,overhead_frac,incidents,goodput_on,goodput_off",
        &rows,
    );
    append_metrics_csv(&csv_path, &tel.metrics.snapshot());
    ascii_chart_labeled(
        "goodput vs SDC rate (each column = one probability; label = -log10 p)",
        "x (-log10 p)",
        &prob_labels,
        &chart,
        4,
    );
    assert!(
        worst_overhead < 0.05,
        "guard overhead must stay under 5% of step time (worst {:.2}%)",
        worst_overhead * 100.0
    );
    println!(
        "\nReading: at zero SDC rate the guard costs {:.2}% of step time (worst strategy) — \
         two streaming CRC passes over the gradient payload plus a two-float exchange are \
         cheap next to a ViT-3B step. Under corruption the guarded curves bend gracefully \
         (each incident costs one skipped step plus half a snapshot interval of rework), \
         while the unguarded curve collapses: with 64 GCDs a per-rank rate of 1e-7/step \
         already corrupts most 100k-step campaigns. At the paper's 9 408-node scale the \
         crossover moves three orders of magnitude lower still.",
        worst_overhead * 100.0
    );
}
