//! End-to-end fine-tuning of a pretrained encoder (§II "Evaluation
//! protocols": the paper evaluates with linear probing because fine-tuned
//! accuracy on these benchmarks is saturated; the protocol itself is part
//! of the standard FM toolbox, so the library provides it).
//!
//! Implements the standard ViT fine-tuning recipe structure: AdamW over all
//! parameters with **layer-wise learning-rate decay** (earlier blocks get
//! geometrically smaller rates), cosine schedule, and a fresh
//! classification head.

use geofm_nn::{cross_entropy, AdamW, CosineSchedule, Linear, Module, Optimizer};
use geofm_tensor::{Tensor, TensorRng};
use geofm_vit::{mean_pool_tokens, VitModel};

/// Fine-tunes a pretrained encoder + linear head end to end.
pub struct FineTuner {
    /// The (now trainable) encoder.
    pub encoder: VitModel,
    /// Classification head on mean-pooled tokens.
    pub head: Linear,
    optimizer: AdamW,
    schedule: CosineSchedule,
    /// Per-element learning-rate multipliers (layer-wise decay).
    lr_scale: Vec<f32>,
    epoch: usize,
    flat: Vec<f32>,
    grads: Vec<f32>,
}

impl FineTuner {
    /// Wrap a pretrained encoder for fine-tuning on `classes` classes.
    ///
    /// `layer_decay` is the per-block geometric decay of the learning rate
    /// (0.75 is the common ViT fine-tuning default; 1.0 disables it).
    pub fn new(
        mut encoder: VitModel,
        classes: usize,
        base_lr: f32,
        layer_decay: f32,
        total_epochs: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let head = Linear::new(encoder.config.width, classes, rng, "ft.head");
        let depth = encoder.config.depth;

        // layer-wise lr multipliers aligned with the flat layout:
        // embed gets decay^(depth+1), block i gets decay^(depth-i), head 1.0
        let mut lr_scale = Vec::new();
        let unit_counts = encoder.unit_param_counts();
        for (u, &count) in unit_counts.iter().enumerate() {
            let power = if u == 0 {
                depth as i32 + 1 // patch embedding
            } else if u <= depth {
                (depth - (u - 1)) as i32 // blocks
            } else {
                0 // final LN
            };
            let scale = layer_decay.powi(power);
            lr_scale.extend(std::iter::repeat_n(scale, count));
        }
        lr_scale.extend(std::iter::repeat_n(1.0, head.in_features() * classes + classes));

        let total = encoder.num_params() + head.in_features() * classes + classes;
        let mut mask = encoder.decay_mask();
        mask.extend(std::iter::repeat_n(true, head.in_features() * classes));
        mask.extend(std::iter::repeat_n(false, classes));
        let optimizer = AdamW::new(total, 0.05).with_decay_mask(mask);
        let schedule =
            CosineSchedule::new(base_lr, base_lr * 0.01, (total_epochs / 10).max(1), total_epochs.max(1));

        Self {
            encoder,
            head,
            optimizer,
            schedule,
            lr_scale,
            epoch: 0,
            flat: Vec::new(),
            grads: Vec::new(),
        }
    }

    fn pack(&mut self) {
        self.flat.clear();
        let mut enc = Vec::new();
        self.encoder.pack_values(&mut enc);
        self.flat.extend_from_slice(&enc);
        let mut h = Vec::new();
        self.head.pack_values(&mut h);
        self.flat.extend_from_slice(&h);
    }

    fn unpack(&mut self) {
        let enc_n = self.encoder.num_params();
        self.encoder.unpack_values(&self.flat[..enc_n]);
        self.head.unpack_values(&self.flat[enc_n..]);
    }

    fn pack_grads(&mut self) {
        self.grads.clear();
        let mut g = Vec::new();
        self.encoder.pack_grads(&mut g);
        self.grads.extend_from_slice(&g);
        self.head.pack_grads(&mut g);
        self.grads.extend_from_slice(&g);
    }

    /// One fine-tuning epoch over `(images, labels)`; returns mean loss.
    pub fn train_epoch(
        &mut self,
        images: &Tensor,
        labels: &[usize],
        batch_size: usize,
        rng: &mut TensorRng,
    ) -> f32 {
        let n = images.dim(0);
        assert_eq!(labels.len(), n, "label count mismatch");
        let order = rng.permutation(n);
        let lr = self.schedule.lr(self.epoch);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        let mut start = 0;
        while start < n {
            let end = (start + batch_size).min(n);
            let idx = &order[start..end];
            let x = images.gather_rows(idx);
            let y: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();

            self.encoder.zero_grad();
            self.head.zero_grad();
            let enc = self.encoder.forward(&x); // [b, t, w]
            let pooled = mean_pool_tokens(&enc); // [b, w]
            let logits = self.head.forward(&pooled);
            let out = cross_entropy(&logits, &y);

            // backward: head → un-pool (broadcast /t) → encoder
            let dpooled = self.head.backward(&out.dlogits);
            let (b, t, w) = (enc.dim(0), enc.dim(1), enc.dim(2));
            let mut denc = Tensor::zeros(&[b, t, w]);
            let inv_t = 1.0 / t as f32;
            for bi in 0..b {
                let drow = dpooled.row(bi).to_vec();
                for ti in 0..t {
                    let dst = &mut denc.data_mut()[(bi * t + ti) * w..(bi * t + ti + 1) * w];
                    for (d, &g) in dst.iter_mut().zip(&drow) {
                        *d = g * inv_t;
                    }
                }
            }
            self.encoder.backward(&denc);

            self.pack_grads();
            // apply layer-wise decay by scaling gradients (equivalent to
            // per-element lr for AdamW's final update direction magnitude)
            for (g, &s) in self.grads.iter_mut().zip(&self.lr_scale) {
                *g *= s;
            }
            self.pack();
            self.optimizer.step(&mut self.flat, &self.grads, lr);
            self.unpack();

            total += out.loss as f64;
            batches += 1;
            start = end;
        }
        self.epoch += 1;
        (total / batches.max(1) as f64) as f32
    }

    /// Top-1 accuracy on a labelled set.
    pub fn evaluate(&self, images: &Tensor, labels: &[usize]) -> f32 {
        let n = images.dim(0);
        let mut correct = 0usize;
        let mut start = 0;
        while start < n {
            let end = (start + 64).min(n);
            let x = images.rows(start, end);
            let tokens = self.encoder.embed_images_inference(&x);
            let enc = self.encoder.encode_tokens_inference(&tokens);
            let logits = self.head.forward_inference(&mean_pool_tokens(&enc));
            for (i, pred) in logits.argmax_rows().into_iter().enumerate() {
                if pred == labels[start + i] {
                    correct += 1;
                }
            }
            start = end;
        }
        correct as f32 / n as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geofm_vit::VitConfig;

    fn tiny_encoder(rng: &mut TensorRng) -> VitModel {
        let cfg = VitConfig {
            name: "ft".into(),
            width: 16,
            depth: 2,
            mlp: 32,
            heads: 4,
            patch: 4,
            img: 8,
            channels: 1,
        };
        VitModel::new(&cfg, rng)
    }

    /// Two trivially separable classes (bright vs dark images): fine-tuning
    /// must fit them quickly.
    #[test]
    fn fine_tuning_fits_separable_classes() {
        let mut rng = TensorRng::seed_from(1);
        let encoder = tiny_encoder(&mut rng);
        let n = 32;
        let mut images = rng.randn(&[n, 64], 0.2);
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        for (i, &lab) in labels.iter().enumerate() {
            if lab == 1 {
                for v in images.row_mut(i) {
                    *v += 1.5;
                }
            }
        }
        let mut ft = FineTuner::new(encoder, 2, 1e-3, 0.75, 12, &mut rng);
        let acc0 = ft.evaluate(&images, &labels);
        let mut losses = Vec::new();
        for _ in 0..12 {
            losses.push(ft.train_epoch(&images, &labels, 8, &mut rng));
        }
        let acc1 = ft.evaluate(&images, &labels);
        assert!(losses.last().unwrap() < losses.first().unwrap(), "loss must drop: {:?}", losses);
        assert!(acc1 > 0.9, "accuracy {} -> {}", acc0, acc1);
    }

    #[test]
    fn layer_decay_scales_early_layers_down() {
        let mut rng = TensorRng::seed_from(2);
        let encoder = tiny_encoder(&mut rng);
        let ft = FineTuner::new(encoder, 3, 1e-3, 0.5, 10, &mut rng);
        // embed elements (first) must have a smaller multiplier than head (last)
        assert!(ft.lr_scale.first().unwrap() < ft.lr_scale.last().unwrap());
        assert_eq!(*ft.lr_scale.last().unwrap(), 1.0);
        // with decay 0.5 and depth 2: embed = 0.5^3 = 0.125
        assert!((ft.lr_scale[0] - 0.125).abs() < 1e-6);
    }

    #[test]
    fn no_decay_means_uniform_scale() {
        let mut rng = TensorRng::seed_from(3);
        let encoder = tiny_encoder(&mut rng);
        let ft = FineTuner::new(encoder, 3, 1e-3, 1.0, 10, &mut rng);
        assert!(ft.lr_scale.iter().all(|&s| (s - 1.0).abs() < 1e-6));
    }
}
