//! The MAE pretraining loop (paper §V-B: AdamW, base lr 1.5e-4, wd 0.05,
//! cosine schedule with warmup, 75 % masking).

use crate::mask::MaskSampler;
use crate::model::{MaeConfig, MaeModel};
use geofm_nn::{clip_grad_norm, AdamW, CosineSchedule, Module, Optimizer};
use geofm_tensor::{Tensor, TensorRng};

/// Statistics from one pretraining step.
#[derive(Debug, Clone, Copy)]
pub struct PretrainStats {
    /// Step index (0-based).
    pub step: usize,
    /// Masked-MSE loss.
    pub loss: f32,
    /// Learning rate used.
    pub lr: f32,
    /// Pre-clip gradient norm.
    pub grad_norm: f32,
}

/// Single-process MAE pretrainer. The distributed (FSDP) pretrainer lives in
/// `geofm-fsdp` and shares the numerical core through the same model type.
pub struct MaePretrainer {
    /// The model being trained.
    pub model: MaeModel,
    sampler: MaskSampler,
    optimizer: AdamW,
    schedule: CosineSchedule,
    step: usize,
    grad_clip: f32,
    flat: Vec<f32>,
    grads: Vec<f32>,
}

impl MaePretrainer {
    /// Build a pretrainer with the paper's hyper-parameter *ratios*:
    /// AdamW(wd 0.05), cosine schedule with 5 % warmup to `base_lr`.
    pub fn new(config: &MaeConfig, base_lr: f32, total_steps: usize, rng: &mut TensorRng) -> Self {
        let mut model = MaeModel::new(config, rng);
        let n = model.num_params();
        let mask = model.decay_mask();
        let optimizer = AdamW::new(n, 0.05).with_decay_mask(mask);
        let warmup = (total_steps / 20).max(1).min(total_steps);
        let schedule = CosineSchedule::new(base_lr, base_lr * 0.01, warmup, total_steps);
        let sampler = MaskSampler::new(config.encoder.tokens(), config.mask_ratio);
        Self {
            model,
            sampler,
            optimizer,
            schedule,
            step: 0,
            grad_clip: 5.0,
            flat: Vec::with_capacity(n),
            grads: Vec::with_capacity(n),
        }
    }

    /// Current optimizer step count.
    pub fn step_count(&self) -> usize {
        self.step
    }

    /// Run one optimization step on a batch of images `[b, C·H·W]`.
    pub fn step(&mut self, images: &Tensor, rng: &mut TensorRng) -> PretrainStats {
        let plan = self.sampler.sample(images.dim(0), rng);
        self.model.zero_grad();
        let (loss, dpred) = self.model.forward(images, &plan);
        self.model.backward(&dpred);

        self.model.pack_grads(&mut self.grads);
        let grad_norm = clip_grad_norm(&mut self.grads, self.grad_clip);
        let lr = self.schedule.lr(self.step);
        self.model.pack_values(&mut self.flat);
        self.optimizer.step(&mut self.flat, &self.grads, lr);
        self.model.unpack_values(&self.flat);

        let stats = PretrainStats { step: self.step, loss, lr, grad_norm };
        self.step += 1;
        stats
    }

    /// One optimization step over several micro-batches with gradient
    /// accumulation — how the paper reaches its global batch of 2048 from
    /// local batches of 32 when the data-parallel width is insufficient.
    /// Gradients are averaged across micro-batches (each micro-batch's loss
    /// is already a mean, so the accumulated gradient is scaled by
    /// `1/num_micro_batches`), producing the same update as one large batch.
    pub fn step_accumulate(
        &mut self,
        micro_batches: &[Tensor],
        rng: &mut TensorRng,
    ) -> PretrainStats {
        assert!(!micro_batches.is_empty(), "need at least one micro-batch");
        self.model.zero_grad();
        let mut loss_sum = 0.0f64;
        for images in micro_batches {
            let plan = self.sampler.sample(images.dim(0), rng);
            let (loss, dpred) = self.model.forward(images, &plan);
            self.model.backward(&dpred);
            loss_sum += loss as f64;
        }
        let inv = 1.0 / micro_batches.len() as f32;
        self.model.pack_grads(&mut self.grads);
        for g in &mut self.grads {
            *g *= inv;
        }
        let grad_norm = clip_grad_norm(&mut self.grads, self.grad_clip);
        let lr = self.schedule.lr(self.step);
        self.model.pack_values(&mut self.flat);
        self.optimizer.step(&mut self.flat, &self.grads, lr);
        self.model.unpack_values(&self.flat);
        let stats = PretrainStats {
            step: self.step,
            loss: (loss_sum / micro_batches.len() as f64) as f32,
            lr,
            grad_norm,
        };
        self.step += 1;
        stats
    }

    /// Evaluate the masked loss on a batch without updating (fixed seed so
    /// eval curves are comparable across models).
    pub fn eval_loss(&mut self, images: &Tensor, seed: u64) -> f32 {
        let mut rng = TensorRng::seed_from(seed);
        let plan = self.sampler.sample(images.dim(0), &mut rng);
        let (loss, _) = self.model.forward(images, &plan);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geofm_vit::VitConfig;

    fn tiny_cfg() -> MaeConfig {
        let enc = VitConfig {
            name: "pt".into(),
            width: 16,
            depth: 2,
            mlp: 32,
            heads: 4,
            patch: 4,
            img: 8,
            channels: 1,
        };
        MaeConfig { encoder: enc, dec_width: 8, dec_depth: 1, dec_heads: 2, mask_ratio: 0.5 }
    }

    /// Structured images (low-rank) should be learnable: the loss must drop
    /// substantially over a short training run.
    #[test]
    fn loss_decreases_on_structured_data() {
        let cfg = tiny_cfg();
        let mut rng = TensorRng::seed_from(1);
        let mut trainer = MaePretrainer::new(&cfg, 3e-3, 60, &mut rng);
        // simple structured dataset: vertical gradients with random amplitude
        let mut data_rng = TensorRng::seed_from(2);
        let make_batch = |rng: &mut TensorRng| -> Tensor {
            let mut imgs = Tensor::zeros(&[8, 64]);
            for bi in 0..8 {
                let amp = rng.uniform_in(0.5, 2.0);
                for y in 0..8 {
                    for x in 0..8 {
                        imgs.set(&[bi, y * 8 + x], amp * (y as f32 / 7.0 - 0.5));
                    }
                }
            }
            imgs
        };
        let eval_imgs = make_batch(&mut data_rng);
        let first = trainer.eval_loss(&eval_imgs, 99);
        for _ in 0..60 {
            let batch = make_batch(&mut data_rng);
            let s = trainer.step(&batch, &mut data_rng);
            assert!(s.loss.is_finite());
        }
        let last = trainer.eval_loss(&eval_imgs, 99);
        assert!(
            last < first * 0.8,
            "pretraining loss should drop ≥20%: {} -> {}",
            first,
            last
        );
    }

    #[test]
    fn stats_report_schedule() {
        let cfg = tiny_cfg();
        let mut rng = TensorRng::seed_from(3);
        let mut trainer = MaePretrainer::new(&cfg, 1e-3, 100, &mut rng);
        let imgs = rng.randn(&[2, 64], 1.0);
        let s0 = trainer.step(&imgs, &mut rng);
        assert_eq!(s0.step, 0);
        assert!(s0.lr > 0.0 && s0.lr <= 1e-3);
        assert!(s0.grad_norm > 0.0);
        let s1 = trainer.step(&imgs, &mut rng);
        assert_eq!(s1.step, 1);
        assert!(s1.lr >= s0.lr, "warmup should increase lr");
    }

    /// Accumulating K micro-batches must produce (nearly) the same update
    /// as one K-times-larger batch when masking randomness is aligned:
    /// here we verify the weaker but exact property that accumulation over
    /// identical micro-batches equals a single step on one of them.
    #[test]
    fn accumulation_over_identical_micro_batches_matches_single_step() {
        let cfg = tiny_cfg();
        let imgs = {
            let mut rng = TensorRng::seed_from(21);
            rng.randn(&[4, 64], 1.0)
        };
        let run = |accumulate: bool| -> Vec<f32> {
            let mut rng = TensorRng::seed_from(9);
            let mut tr = MaePretrainer::new(&cfg, 1e-3, 10, &mut rng);
            let mut drng = TensorRng::seed_from(10);
            let stats = if accumulate {
                tr.step_accumulate(std::slice::from_ref(&imgs), &mut drng)
            } else {
                tr.step(&imgs, &mut drng)
            };
            assert!(stats.loss.is_finite());
            let mut flat = Vec::new();
            tr.model.pack_values(&mut flat);
            flat
        };
        let single = run(false);
        let accum = run(true);
        let max = single
            .iter()
            .zip(&accum)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max < 1e-6, "single-micro-batch accumulation must equal step: {}", max);
    }

    #[test]
    fn accumulation_averages_losses_and_updates_once() {
        let cfg = tiny_cfg();
        let mut rng = TensorRng::seed_from(31);
        let mut tr = MaePretrainer::new(&cfg, 1e-3, 10, &mut rng);
        let mut drng = TensorRng::seed_from(32);
        let a = drng.randn(&[4, 64], 1.0);
        let b = drng.randn(&[4, 64], 1.0);
        let before = tr.step_count();
        let stats = tr.step_accumulate(&[a, b], &mut drng);
        assert_eq!(tr.step_count(), before + 1, "one optimizer step");
        assert!(stats.loss.is_finite() && stats.grad_norm > 0.0);
    }

    #[test]
    fn deterministic_training_given_seeds() {
        let cfg = tiny_cfg();
        let run = || {
            let mut rng = TensorRng::seed_from(7);
            let mut tr = MaePretrainer::new(&cfg, 1e-3, 10, &mut rng);
            let mut drng = TensorRng::seed_from(8);
            let imgs = drng.randn(&[4, 64], 1.0);
            let mut losses = Vec::new();
            for _ in 0..5 {
                losses.push(tr.step(&imgs, &mut drng).loss);
            }
            losses
        };
        assert_eq!(run(), run());
    }
}
