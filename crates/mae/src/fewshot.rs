//! Few-shot evaluation (the paper's §VI envisioned next step: "few-shot
//! learning to unveil potential properties emerging as we scale").
//!
//! Protocol: sample `k` labelled examples per class ("k-shot"), classify
//! the query set by nearest class-mean in the frozen feature space
//! (the standard prototypical-network evaluation for frozen encoders),
//! averaged over episodes.

use geofm_tensor::{Tensor, TensorRng};

/// Result of a few-shot evaluation.
#[derive(Debug, Clone, Copy)]
pub struct FewShotResult {
    /// Shots per class.
    pub k: usize,
    /// Mean top-1 accuracy over episodes, in [0, 1].
    pub accuracy: f32,
    /// Number of episodes evaluated.
    pub episodes: usize,
}

/// Run `episodes` k-shot episodes over pre-extracted `features`/`labels`.
///
/// Each episode samples `k` support examples per class (classes with fewer
/// than `k + 1` examples are skipped) and classifies every remaining
/// example of the participating classes by nearest class-mean (cosine
/// distance on standardized features works similarly; we use Euclidean on
/// the caller's feature space).
pub fn few_shot_eval(
    features: &Tensor,
    labels: &[usize],
    classes: usize,
    k: usize,
    episodes: usize,
    rng: &mut TensorRng,
) -> FewShotResult {
    assert_eq!(features.dim(0), labels.len(), "feature/label count mismatch");
    assert!(k >= 1, "need at least one shot");
    let d = features.dim(1);

    // index examples by class
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); classes];
    for (i, &c) in labels.iter().enumerate() {
        by_class[c].push(i);
    }

    let mut total_correct = 0usize;
    let mut total_queries = 0usize;
    for _ in 0..episodes {
        // sample support sets
        let mut prototypes: Vec<(usize, Vec<f32>)> = Vec::new();
        let mut support: Vec<Vec<usize>> = vec![Vec::new(); classes];
        for (c, idxs) in by_class.iter().enumerate() {
            if idxs.len() < k + 1 {
                continue;
            }
            let mut pool = idxs.clone();
            rng.shuffle(&mut pool);
            let chosen = &pool[..k];
            support[c] = chosen.to_vec();
            let mut proto = vec![0.0f32; d];
            for &i in chosen {
                for (p, &v) in proto.iter_mut().zip(features.row(i)) {
                    *p += v;
                }
            }
            for p in &mut proto {
                *p /= k as f32;
            }
            prototypes.push((c, proto));
        }
        if prototypes.len() < 2 {
            continue; // not enough classes for a meaningful episode
        }
        // classify queries (all non-support examples of participating classes)
        for (c, idxs) in by_class.iter().enumerate() {
            if support[c].is_empty() {
                continue;
            }
            for &i in idxs {
                if support[c].contains(&i) {
                    continue;
                }
                let row = features.row(i);
                let mut best = (f32::INFINITY, usize::MAX);
                for (pc, proto) in &prototypes {
                    let dist: f32 =
                        row.iter().zip(proto).map(|(a, b)| (a - b) * (a - b)).sum();
                    if dist < best.0 {
                        best = (dist, *pc);
                    }
                }
                if best.1 == c {
                    total_correct += 1;
                }
                total_queries += 1;
            }
        }
    }
    FewShotResult {
        k,
        accuracy: if total_queries == 0 {
            0.0
        } else {
            total_correct as f32 / total_queries as f32
        },
        episodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per_class: usize, classes: usize, spread: f32, rng: &mut TensorRng) -> (Tensor, Vec<usize>) {
        let d = 6;
        let n = n_per_class * classes;
        let mut feats = Tensor::zeros(&[n, d]);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            labels.push(c);
            for j in 0..d {
                let center = if j == c { 3.0 } else { 0.0 };
                feats.set(&[i, j], center + rng.normal() * spread);
            }
        }
        (feats, labels)
    }

    #[test]
    fn separable_blobs_are_easy_even_one_shot() {
        let mut rng = TensorRng::seed_from(1);
        let (feats, labels) = blobs(20, 4, 0.3, &mut rng);
        let r = few_shot_eval(&feats, &labels, 4, 1, 10, &mut rng);
        assert!(r.accuracy > 0.9, "1-shot accuracy {}", r.accuracy);
    }

    #[test]
    fn more_shots_help_on_noisy_blobs() {
        let mut rng = TensorRng::seed_from(2);
        let (feats, labels) = blobs(40, 4, 2.0, &mut rng);
        let r1 = few_shot_eval(&feats, &labels, 4, 1, 30, &mut rng).accuracy;
        let r10 = few_shot_eval(&feats, &labels, 4, 10, 30, &mut rng).accuracy;
        assert!(r10 >= r1, "10-shot {} vs 1-shot {}", r10, r1);
        let _ = r1;
    }

    #[test]
    fn random_features_are_at_chance() {
        let mut rng = TensorRng::seed_from(3);
        let feats = rng.randn(&[120, 6], 1.0);
        let labels: Vec<usize> = (0..120).map(|i| i % 4).collect();
        let r = few_shot_eval(&feats, &labels, 4, 5, 20, &mut rng);
        assert!((r.accuracy - 0.25).abs() < 0.12, "accuracy {}", r.accuracy);
    }

    #[test]
    fn classes_with_too_few_examples_are_skipped() {
        let mut rng = TensorRng::seed_from(4);
        let feats = rng.randn(&[5, 3], 1.0);
        let labels = vec![0, 0, 0, 1, 2]; // classes 1,2 have < k+1 examples for k=2
        let r = few_shot_eval(&feats, &labels, 3, 2, 5, &mut rng);
        // only class 0 qualifies → fewer than 2 prototypes → no episodes
        assert_eq!(r.accuracy, 0.0);
    }
}
