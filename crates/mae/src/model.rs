//! The MAE architecture: ViT encoder on visible tokens + lightweight
//! transformer decoder reconstructing masked patches.

use crate::mask::MaskPlan;
use geofm_nn::{mse_masked, LayerNorm, Linear, Module, Param, ParamVisitor, TransformerBlock};
use geofm_tensor::{Tensor, TensorRng};
use geofm_vit::{VitConfig, VitModel};

/// MAE configuration: encoder config + decoder geometry + mask ratio.
#[derive(Debug, Clone)]
pub struct MaeConfig {
    /// Encoder architecture.
    pub encoder: VitConfig,
    /// Decoder width.
    pub dec_width: usize,
    /// Decoder depth (transformer blocks).
    pub dec_depth: usize,
    /// Decoder heads.
    pub dec_heads: usize,
    /// Fraction of tokens masked (paper: 0.75).
    pub mask_ratio: f32,
}

impl MaeConfig {
    /// The paper's default decoder (8 blocks, width 512, 16 heads) — used
    /// analytically for the big models.
    pub fn paper(encoder: VitConfig) -> Self {
        Self { encoder, dec_width: 512, dec_depth: 8, dec_heads: 16, mask_ratio: 0.75 }
    }

    /// A proportionally scaled decoder for the trainable tiny family:
    /// half the encoder width, two blocks — preserving the "lightweight
    /// decoder" property of the MAE design.
    pub fn tiny(encoder: VitConfig) -> Self {
        let dec_width = (encoder.width / 2).max(16);
        let dec_heads = (encoder.heads / 2).max(2);
        Self { encoder, dec_width, dec_depth: 2, dec_heads, mask_ratio: 0.75 }
    }

    /// Analytic decoder parameter count (embed + mask token + pos + blocks +
    /// final LN + prediction head).
    pub fn decoder_param_count(&self) -> u64 {
        let w = self.encoder.width as u64;
        let dw = self.dec_width as u64;
        let dm = 4 * dw;
        let pd = self.encoder.patch_dim() as u64;
        let t = self.encoder.tokens() as u64;
        let embed = w * dw + dw;
        let mask_tok = dw;
        let pos = t * dw;
        let attn = dw * 3 * dw + 3 * dw + dw * dw + dw;
        let mlp = dw * dm + dm + dm * dw + dw;
        let norms = 2 * (2 * dw);
        let blocks = (self.dec_depth as u64) * (attn + mlp + norms);
        let final_ln = 2 * dw;
        let pred = dw * pd + pd;
        embed + mask_tok + pos + blocks + final_ln + pred
    }

    /// Total MAE parameters (encoder + decoder).
    pub fn param_count(&self) -> u64 {
        self.encoder.param_count() + self.decoder_param_count()
    }
}

/// Cache of one MAE forward pass, consumed by `backward`.
#[derive(Debug)]
struct MaeCache {
    plan: MaskPlan,
    batch: usize,
}

/// The trainable MAE model.
#[derive(Debug)]
pub struct MaeModel {
    /// Configuration.
    pub config: MaeConfig,
    /// ViT encoder.
    pub encoder: VitModel,
    /// Projection from encoder width to decoder width.
    pub decoder_embed: Linear,
    /// Learned token standing in for masked patches.
    pub mask_token: Param,
    /// Decoder positional embedding, `[tokens, dec_width]`.
    pub decoder_pos: Param,
    /// Decoder transformer blocks.
    pub decoder_blocks: Vec<TransformerBlock>,
    /// Decoder final LayerNorm.
    pub decoder_ln: LayerNorm,
    /// Prediction head: decoder width → patch pixels.
    pub pred: Linear,
    cache: Option<MaeCache>,
}

impl MaeModel {
    /// Build with standard init.
    pub fn new(config: &MaeConfig, rng: &mut TensorRng) -> Self {
        let enc_cfg = &config.encoder;
        let encoder = VitModel::new(enc_cfg, rng);
        let name = &enc_cfg.name;
        let decoder_embed =
            Linear::new(enc_cfg.width, config.dec_width, rng, &format!("{name}.dec_embed"));
        let mask_token = Param::new(
            rng.trunc_normal(&[config.dec_width], 0.02),
            false,
            format!("{name}.mask_token"),
        );
        let decoder_pos = Param::new(
            rng.trunc_normal(&[enc_cfg.tokens(), config.dec_width], 0.02),
            false,
            format!("{name}.dec_pos"),
        );
        let decoder_blocks = (0..config.dec_depth)
            .map(|i| {
                TransformerBlock::new(
                    config.dec_width,
                    4 * config.dec_width,
                    config.dec_heads,
                    rng,
                    &format!("{name}.dec_block{i}"),
                )
            })
            .collect();
        let decoder_ln = LayerNorm::new(config.dec_width, &format!("{name}.dec_ln"));
        let pred = Linear::new(config.dec_width, enc_cfg.patch_dim(), rng, &format!("{name}.pred"));
        Self {
            config: config.clone(),
            encoder,
            decoder_embed,
            mask_token,
            decoder_pos,
            decoder_blocks,
            decoder_ln,
            pred,
            cache: None,
        }
    }

    /// One full forward pass: embeds images, drops masked tokens, encodes,
    /// decodes with mask tokens, predicts patches, and evaluates the masked
    /// MSE. Returns `(loss, dpred)` where `dpred` is the loss gradient
    /// w.r.t. the predictions — pass it to [`MaeModel::backward`].
    /// Caches everything backward needs.
    pub fn forward(&mut self, images: &Tensor, plan: &MaskPlan) -> (f32, Tensor) {
        let enc_cfg = &self.config.encoder;
        let b = images.dim(0);
        assert_eq!(plan.batch(), b, "mask plan batch mismatch");
        let t = enc_cfg.tokens();
        let w = enc_cfg.width;
        let dw = self.config.dec_width;

        // targets
        let patches = self.encoder.embed.patchify(images); // [b·t, pd]

        // embed + select visible
        let tokens = self.encoder.embed_images(images); // [b, t, w]
        let flat_tokens = tokens.reshape(&[b * t, w]);
        let vis_global = plan.global_visible();
        let visible = flat_tokens.gather_rows(&vis_global); // [b·v, w]
        let v = plan.visible;
        let visible3 = visible.reshape(&[b, v, w]);

        // encode
        let enc_out = self.encoder.encode_tokens(&visible3); // [b, v, w]

        // decoder embed visible tokens
        let dec_vis = self.decoder_embed.forward(&enc_out.reshape(&[b * v, w])); // [b·v, dw]

        // scatter into full sequence with mask tokens
        let mut dec_tokens = Tensor::zeros(&[b * t, dw]);
        {
            let mt = self.mask_token.value.data();
            let data = dec_tokens.data_mut();
            for row in data.chunks_mut(dw) {
                row.copy_from_slice(mt);
            }
        }
        for (i, &g) in vis_global.iter().enumerate() {
            let src = &dec_vis.data()[i * dw..(i + 1) * dw];
            dec_tokens.data_mut()[g * dw..(g + 1) * dw].copy_from_slice(src);
        }
        // add decoder positional embedding
        {
            let pos = self.decoder_pos.value.data();
            let data = dec_tokens.data_mut();
            for bi in 0..b {
                for ti in 0..t {
                    let row = &mut data[(bi * t + ti) * dw..(bi * t + ti + 1) * dw];
                    for (x, &p) in row.iter_mut().zip(&pos[ti * dw..(ti + 1) * dw]) {
                        *x += p;
                    }
                }
            }
        }

        // decode
        let mut x = dec_tokens.reshape(&[b, t, dw]);
        for blk in &mut self.decoder_blocks {
            x = blk.forward(&x);
        }
        let flat = x.reshape(&[b * t, dw]);
        let normed = self.decoder_ln.forward(&flat);
        let predicted = self.pred.forward(&normed); // [b·t, pd]

        // loss over masked patches only
        let masked_global = plan.global_masked();
        let (loss, dpred) = mse_masked(&predicted, &patches, &masked_global);

        self.cache = Some(MaeCache { plan: plan.clone(), batch: b });
        (loss, dpred)
    }

    /// Backward from the loss gradient returned by `forward`.
    pub fn backward(&mut self, dpred: &Tensor) {
        let cache = self.cache.take().expect("MaeModel::backward before forward");
        let plan = &cache.plan;
        let b = cache.batch;
        let enc_cfg = &self.config.encoder;
        let t = enc_cfg.tokens();
        let w = enc_cfg.width;
        let dw = self.config.dec_width;
        let v = plan.visible;

        // prediction head & decoder stack
        let dnormed = self.pred.backward(dpred);
        let dflat = self.decoder_ln.backward(&dnormed);
        let mut dx = dflat.reshape(&[b, t, dw]);
        for blk in self.decoder_blocks.iter_mut().rev() {
            dx = blk.backward(&dx);
        }
        let ddec_tokens = dx.reshape(&[b * t, dw]);

        // decoder positional grad: sum over batch
        {
            let pg = self.decoder_pos.grad.data_mut();
            let src = ddec_tokens.data();
            for bi in 0..b {
                for ti in 0..t {
                    let row = &src[(bi * t + ti) * dw..(bi * t + ti + 1) * dw];
                    for (g, &vv) in pg[ti * dw..(ti + 1) * dw].iter_mut().zip(row) {
                        *g += vv;
                    }
                }
            }
        }

        // mask-token grad: sum over masked positions
        let masked_global = plan.global_masked();
        {
            let mg = self.mask_token.grad.data_mut();
            for &gidx in &masked_global {
                let row = &ddec_tokens.data()[gidx * dw..(gidx + 1) * dw];
                for (g, &vv) in mg.iter_mut().zip(row) {
                    *g += vv;
                }
            }
        }

        // visible-token gradients flow into the decoder embed + encoder
        let vis_global = plan.global_visible();
        let dvis = ddec_tokens.gather_rows(&vis_global); // [b·v, dw]
        let denc_out = self.decoder_embed.backward(&dvis); // [b·v, w]
        let dvisible = self.encoder.backward_tokens(&denc_out.reshape(&[b, v, w]));

        // scatter visible-token grads back into the full token grid
        let mut dtokens = Tensor::zeros(&[b * t, w]);
        dtokens.scatter_add_rows(&vis_global, &dvisible.reshape(&[b * v, w]));
        self.encoder.embed.backward(&dtokens.reshape(&[b, t, w]));
    }
}

impl Module for MaeModel {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.encoder.visit_params(f);
        self.decoder_embed.visit_params(f);
        f(&mut self.mask_token);
        f(&mut self.decoder_pos);
        for blk in &mut self.decoder_blocks {
            blk.visit_params(f);
        }
        self.decoder_ln.visit_params(f);
        self.pred.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::MaskSampler;

    fn tiny_mae() -> MaeConfig {
        let enc = VitConfig {
            name: "tst".into(),
            width: 16,
            depth: 2,
            mlp: 32,
            heads: 4,
            patch: 4,
            img: 8,
            channels: 3,
        };
        MaeConfig { encoder: enc, dec_width: 8, dec_depth: 1, dec_heads: 2, mask_ratio: 0.5 }
    }

    #[test]
    fn instantiated_params_match_analytic() {
        let cfg = tiny_mae();
        let mut rng = TensorRng::seed_from(1);
        let mut model = MaeModel::new(&cfg, &mut rng);
        assert_eq!(model.num_params() as u64, cfg.param_count());
    }

    #[test]
    fn forward_produces_finite_loss() {
        let cfg = tiny_mae();
        let mut rng = TensorRng::seed_from(2);
        let mut model = MaeModel::new(&cfg, &mut rng);
        let sampler = MaskSampler::new(cfg.encoder.tokens(), cfg.mask_ratio);
        let plan = sampler.sample(2, &mut rng);
        let imgs = rng.randn(&[2, cfg.encoder.channels * 64], 1.0);
        let (loss, dpred) = model.forward(&imgs, &plan);
        assert!(loss.is_finite() && loss > 0.0);
        assert!(!dpred.has_non_finite());
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        let cfg = tiny_mae();
        let mut rng = TensorRng::seed_from(3);
        let mut model = MaeModel::new(&cfg, &mut rng);
        let sampler = MaskSampler::new(cfg.encoder.tokens(), cfg.mask_ratio);
        let plan = sampler.sample(4, &mut rng);
        let imgs = rng.randn(&[4, cfg.encoder.channels * 64], 1.0);

        model.zero_grad();
        let (l0, dpred) = model.forward(&imgs, &plan);
        model.backward(&dpred);
        let mut flat = Vec::new();
        model.pack_values(&mut flat);
        let mut grads = Vec::new();
        model.pack_grads(&mut grads);
        assert!(grads.iter().any(|&g| g.abs() > 0.0));
        for (p, g) in flat.iter_mut().zip(&grads) {
            *p -= 0.05 * g;
        }
        model.unpack_values(&flat);
        let (l1, _) = model.forward(&imgs, &plan);
        assert!(l1 < l0, "loss should drop: {} -> {}", l0, l1);
    }

    #[test]
    fn gradients_flow_to_all_components() {
        let cfg = tiny_mae();
        let mut rng = TensorRng::seed_from(4);
        let mut model = MaeModel::new(&cfg, &mut rng);
        let sampler = MaskSampler::new(cfg.encoder.tokens(), cfg.mask_ratio);
        let plan = sampler.sample(2, &mut rng);
        let imgs = rng.randn(&[2, cfg.encoder.channels * 64], 1.0);
        model.zero_grad();
        let (_, dpred) = model.forward(&imgs, &plan);
        model.backward(&dpred);
        assert!(model.mask_token.grad.l2_norm() > 0.0, "mask token grad");
        assert!(model.decoder_pos.grad.l2_norm() > 0.0, "decoder pos grad");
        assert!(model.pred.weight.grad.l2_norm() > 0.0, "pred grad");
        assert!(model.decoder_embed.weight.grad.l2_norm() > 0.0, "dec embed grad");
        assert!(model.encoder.embed.proj.weight.grad.l2_norm() > 0.0, "patch embed grad");
        assert!(
            model.encoder.blocks[0].attn.qkv.weight.grad.l2_norm() > 0.0,
            "encoder block grad"
        );
    }

    #[test]
    fn whole_model_gradcheck_on_flat_params() {
        // Finite-difference check of d loss / d θ through the ENTIRE MAE
        // (encoder + masking + decoder + masked loss) at a few coordinates.
        let cfg = tiny_mae();
        let mut rng = TensorRng::seed_from(5);
        let mut model = MaeModel::new(&cfg, &mut rng);
        let sampler = MaskSampler::new(cfg.encoder.tokens(), cfg.mask_ratio);
        let plan = sampler.sample(2, &mut rng);
        let imgs = rng.randn(&[2, cfg.encoder.channels * 64], 1.0);

        model.zero_grad();
        let (_, dpred) = model.forward(&imgs, &plan);
        model.backward(&dpred);
        let mut grads = Vec::new();
        model.pack_grads(&mut grads);
        let mut flat = Vec::new();
        model.pack_values(&mut flat);

        let eps = 1e-2f32;
        let n = flat.len();
        for &i in &[0usize, n / 5, n / 2, 3 * n / 4, n - 1] {
            let mut fp = flat.clone();
            fp[i] += eps;
            model.unpack_values(&fp);
            let (lp, _) = model.forward(&imgs, &plan);
            let mut fm = flat.clone();
            fm[i] -= eps;
            model.unpack_values(&fm);
            let (lm, _) = model.forward(&imgs, &plan);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads[i]).abs() < 5e-2_f32.max(0.2 * fd.abs()),
                "θ[{}]: fd {} vs analytic {}",
                i,
                fd,
                grads[i]
            );
        }
    }
}
