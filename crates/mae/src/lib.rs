//! # geofm-mae
//!
//! Masked-autoencoder pretraining and linear-probe evaluation — the paper's
//! §V pipeline.
//!
//! * [`MaeModel`] — ViT encoder on **visible tokens only** + lightweight
//!   transformer decoder reconstructing the masked patches (He et al. 2022,
//!   the architecture the paper pretrains).
//! * [`MaskSampler`] — per-sample random 75 % masking.
//! * [`MaePretrainer`] — AdamW + cosine schedule training loop (base lr
//!   1.5e-4, wd 0.05, mask 75 % per paper §V-B).
//! * [`LinearProbe`] — frozen-encoder linear classification with LARS
//!   (base lr 0.1, no weight decay, per paper §V-C), reporting top-1/top-5.

pub mod fewshot;
pub mod finetune;
pub mod mask;
pub mod model;
pub mod pretrain;
pub mod probe;
pub mod segmentation;

pub use fewshot::{few_shot_eval, FewShotResult};
pub use finetune::FineTuner;
pub use mask::{MaskPlan, MaskSampler};
pub use model::{MaeConfig, MaeModel};
pub use pretrain::{MaePretrainer, PretrainStats};
pub use probe::{paper_lr, LinearProbe, ProbeEpochStats};
pub use segmentation::{patch_labels, SegMetrics, SegProbe};
