//! Semantic-segmentation probing (the paper's §VI other envisioned
//! downstream task).
//!
//! Protocol mirrors linear probing at patch granularity: freeze the
//! encoder, train a linear classifier on **per-token** features to predict
//! each patch's majority semantic label, and report pixel accuracy + mIoU.
//! Ground-truth masks come from the scene generator
//! (`SceneRenderer::render_class_segmented`).

use geofm_nn::{cross_entropy, segments_of, CosineSchedule, Lars, Linear, Module, Optimizer};
use geofm_tensor::{Tensor, TensorRng};
use geofm_vit::VitModel;

/// Segmentation evaluation metrics.
#[derive(Debug, Clone, Copy)]
pub struct SegMetrics {
    /// Patch-level accuracy in [0, 1].
    pub pixel_acc: f32,
    /// Mean intersection-over-union across classes present in the data.
    pub miou: f32,
}

/// Reduce per-pixel masks to per-patch majority labels aligned with the
/// encoder's token grid.
pub fn patch_labels(mask: &[u8], img: usize, patch: usize, num_classes: usize) -> Vec<usize> {
    assert_eq!(mask.len(), img * img, "mask size mismatch");
    let grid = img / patch;
    let mut out = Vec::with_capacity(grid * grid);
    for gy in 0..grid {
        for gx in 0..grid {
            let mut counts = vec![0usize; num_classes];
            for py in 0..patch {
                for px in 0..patch {
                    let v = mask[(gy * patch + py) * img + gx * patch + px] as usize;
                    counts[v.min(num_classes - 1)] += 1;
                }
            }
            let best = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap_or(0);
            out.push(best);
        }
    }
    out
}

/// A linear per-token segmentation head over a frozen encoder.
pub struct SegProbe {
    head: Linear,
    optimizer: Lars,
    schedule: CosineSchedule,
    num_classes: usize,
    epoch: usize,
    flat: Vec<f32>,
    grads: Vec<f32>,
}

impl SegProbe {
    /// New probe over `width`-dimensional token features and
    /// `num_classes` semantic classes.
    pub fn new(
        width: usize,
        num_classes: usize,
        base_lr: f32,
        total_epochs: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let mut head = Linear::new(width, num_classes, rng, "seg.head");
        let segments = segments_of(&mut head);
        let optimizer = Lars::new(segments, 0.0);
        let schedule =
            CosineSchedule::new(base_lr, 0.0, (total_epochs / 10).max(1), total_epochs.max(1));
        Self { head, optimizer, schedule, num_classes, epoch: 0, flat: Vec::new(), grads: Vec::new() }
    }

    /// Extract frozen per-token features: `[n, C·H·W]` → `[n·T, width]`.
    pub fn token_features(encoder: &VitModel, images: &Tensor) -> Tensor {
        let tokens = encoder.embed_images_inference(images);
        let enc = encoder.encode_tokens_inference(&tokens);
        let (b, t, w) = (enc.dim(0), enc.dim(1), enc.dim(2));
        enc.reshape(&[b * t, w])
    }

    /// One training epoch over token features + flat per-token labels.
    pub fn train_epoch(
        &mut self,
        feats: &Tensor,
        labels: &[usize],
        batch: usize,
        rng: &mut TensorRng,
    ) -> f32 {
        let n = feats.dim(0);
        assert_eq!(labels.len(), n, "token label count mismatch");
        let order = rng.permutation(n);
        let lr = self.schedule.lr(self.epoch);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        let mut start = 0;
        while start < n {
            let end = (start + batch).min(n);
            let idx = &order[start..end];
            let x = feats.gather_rows(idx);
            let y: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
            self.head.zero_grad();
            let logits = self.head.forward(&x);
            let out = cross_entropy(&logits, &y);
            let _ = self.head.backward(&out.dlogits);
            self.head.pack_grads(&mut self.grads);
            self.head.pack_values(&mut self.flat);
            self.optimizer.step(&mut self.flat, &self.grads, lr);
            self.head.unpack_values(&self.flat);
            total += out.loss as f64;
            batches += 1;
            start = end;
        }
        self.epoch += 1;
        (total / batches.max(1) as f64) as f32
    }

    /// Evaluate pixel accuracy and mIoU over token features + labels.
    pub fn evaluate(&self, feats: &Tensor, labels: &[usize]) -> SegMetrics {
        let logits = self.head.forward_inference(feats);
        let preds = logits.argmax_rows();
        let c = self.num_classes;
        let mut intersection = vec![0usize; c];
        let mut union = vec![0usize; c];
        let mut correct = 0usize;
        for (&p, &t) in preds.iter().zip(labels) {
            if p == t {
                correct += 1;
                intersection[t] += 1;
                union[t] += 1;
            } else {
                union[t] += 1;
                union[p] += 1;
            }
        }
        let mut iou_sum = 0.0f32;
        let mut present = 0usize;
        for k in 0..c {
            if union[k] > 0 {
                iou_sum += intersection[k] as f32 / union[k] as f32;
                present += 1;
            }
        }
        SegMetrics {
            pixel_acc: correct as f32 / labels.len().max(1) as f32,
            miou: if present == 0 { 0.0 } else { iou_sum / present as f32 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geofm_data::SceneRenderer;
    use geofm_vit::VitConfig;

    #[test]
    fn patch_labels_majority_vote() {
        // 4×4 image, 2×2 patches: top-left patch has 3 pixels of class 1
        let mut mask = vec![0u8; 16];
        mask[0] = 1;
        mask[1] = 1;
        mask[4] = 1;
        let labels = patch_labels(&mask, 4, 2, 3);
        assert_eq!(labels, vec![1, 0, 0, 0]);
    }

    #[test]
    fn generator_masks_align_with_layouts() {
        let r = SceneRenderer::new(24, 3, 7);
        let (imgs, masks) = r.render_class_segmented(0, 2, 0);
        assert_eq!(imgs.shape(), &[2, 3 * 24 * 24]);
        assert_eq!(masks.len(), 2);
        assert_eq!(masks[0].len(), 24 * 24);
        // foreground and background both present, labels within range
        let distinct: std::collections::HashSet<u8> = masks[0].iter().cloned().collect();
        assert!(distinct.len() >= 2, "mask must have structure: {:?}", distinct);
        assert!(masks[0].iter().all(|&v| v <= 5));
    }

    /// End-to-end: segment synthetic scenes with a frozen random encoder —
    /// the probe must beat the majority-class baseline.
    #[test]
    fn seg_probe_beats_majority_baseline() {
        let cfg = VitConfig {
            name: "seg".into(),
            width: 32,
            depth: 2,
            mlp: 64,
            heads: 4,
            patch: 6,
            img: 24,
            channels: 3,
        };
        let mut rng = TensorRng::seed_from(1);
        let encoder = VitModel::new(&cfg, &mut rng);
        let r = SceneRenderer::new(cfg.img, cfg.channels, 7);
        let num_classes = 6;

        let collect = |offset: u64, per_class: usize| {
            let mut feats: Option<Tensor> = None;
            let mut labels: Vec<usize> = Vec::new();
            for class in 0..4 {
                let (imgs, masks) = r.render_class_segmented(class, per_class, offset);
                let f = SegProbe::token_features(&encoder, &imgs);
                feats = Some(match feats.take() {
                    None => f,
                    Some(prev) => {
                        let mut data = prev.into_vec();
                        data.extend_from_slice(f.data());
                        let rows = data.len() / cfg.width;
                        Tensor::from_vec(&[rows, cfg.width], data)
                    }
                });
                for m in &masks {
                    labels.extend(patch_labels(m, cfg.img, cfg.patch, num_classes));
                }
            }
            (feats.unwrap(), labels)
        };
        let (mut train_f, train_l) = collect(0, 8);
        let (mut test_f, test_l) = collect(10_000, 4);
        // standardize token features (same affine-free BN as classification probing)
        let (mean, std) = crate::probe::LinearProbe::feature_stats(&train_f);
        crate::probe::LinearProbe::standardize(&mut train_f, &mean, &std);
        crate::probe::LinearProbe::standardize(&mut test_f, &mean, &std);

        // majority baseline
        let mut counts = vec![0usize; num_classes];
        for &l in &train_l {
            counts[l] += 1;
        }
        let majority = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        let baseline =
            test_l.iter().filter(|&&l| l == majority).count() as f32 / test_l.len() as f32;

        let mut probe = SegProbe::new(cfg.width, num_classes, 6.0, 30, &mut rng);
        for _ in 0..30 {
            probe.train_epoch(&train_f, &train_l, 64, &mut rng);
        }
        let m = probe.evaluate(&test_f, &test_l);
        assert!(
            m.pixel_acc > baseline + 0.05,
            "probe {:.3} must beat majority {:.3}",
            m.pixel_acc,
            baseline
        );
        assert!(m.miou > 0.0 && m.miou <= 1.0);
    }

    #[test]
    fn perfect_predictions_have_unit_metrics() {
        let mut rng = TensorRng::seed_from(3);
        let mut probe = SegProbe::new(4, 3, 1.0, 5, &mut rng);
        // craft a head that classifies one-hot features perfectly
        probe.head.weight.value = Tensor::from_vec(
            &[3, 4],
            vec![10., 0., 0., 0., 0., 10., 0., 0., 0., 0., 10., 0.],
        );
        let feats = Tensor::from_vec(&[3, 4], vec![1., 0., 0., 0., 0., 1., 0., 0., 0., 0., 1., 0.]);
        let m = probe.evaluate(&feats, &[0, 1, 2]);
        assert_eq!(m.pixel_acc, 1.0);
        assert_eq!(m.miou, 1.0);
    }
}
