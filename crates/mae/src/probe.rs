//! Linear probing: freeze the pretrained encoder, train a linear classifier
//! on its features with LARS (paper §V-C: base lr 0.1, no weight decay,
//! 100 epochs), report top-1/top-5 accuracy.

use geofm_nn::{cross_entropy, segments_of, CosineSchedule, Lars, Linear, Module, Optimizer};
use geofm_tensor::{Tensor, TensorRng};
use geofm_vit::VitModel;

/// Per-epoch statistics from probe training.
#[derive(Debug, Clone, Copy)]
pub struct ProbeEpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Top-1 accuracy on the evaluation set, in [0, 1].
    pub top1: f32,
    /// Top-5 accuracy on the evaluation set, in [0, 1].
    pub top5: f32,
}

/// A linear classifier over frozen encoder features.
pub struct LinearProbe {
    /// The classification head.
    pub head: Linear,
    optimizer: Lars,
    schedule: CosineSchedule,
    classes: usize,
    epoch: usize,
    flat: Vec<f32>,
    grads: Vec<f32>,
}

/// The MAE-paper learning-rate convention: effective lr = base_lr · batch/256.
///
/// The paper probes with base lr 0.1 at global batch 256–1024 over ~500k
/// optimizer steps; our scaled-down datasets see far fewer steps, so the
/// experiment harness passes a larger effective lr (same LARS + cosine
/// structure) — recorded in EXPERIMENTS.md.
pub fn paper_lr(base_lr: f32, global_batch: usize) -> f32 {
    base_lr * global_batch as f32 / 256.0
}

impl LinearProbe {
    /// New probe over `feat_dim`-dimensional features and `classes` classes.
    /// `base_lr` here is the *effective* peak learning rate (see [`paper_lr`]).
    pub fn new(
        feat_dim: usize,
        classes: usize,
        base_lr: f32,
        total_epochs: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let mut head = Linear::new(feat_dim, classes, rng, "probe.head");
        let segments = segments_of(&mut head);
        // paper: LARS, no weight decay for linear probing
        let optimizer = Lars::new(segments, 0.0);
        let schedule = CosineSchedule::new(base_lr, 0.0, total_epochs / 10, total_epochs.max(1));
        Self {
            head,
            optimizer,
            schedule,
            classes,
            epoch: 0,
            flat: Vec::new(),
            grads: Vec::new(),
        }
    }

    /// Per-dimension standardization statistics computed on the probe
    /// training features — the MAE paper's "BatchNorm without affine before
    /// the linear classifier" (§linear probing), which makes probing robust
    /// to the feature scale of differently sized pretrained encoders.
    pub fn feature_stats(train_feats: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let (n, d) = (train_feats.dim(0), train_feats.dim(1));
        let mut mean = vec![0.0f32; d];
        for i in 0..n {
            for (m, &v) in mean.iter_mut().zip(train_feats.row(i)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n.max(1) as f32;
        }
        let mut var = vec![0.0f32; d];
        for i in 0..n {
            for ((s, &v), &m) in var.iter_mut().zip(train_feats.row(i)).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std: Vec<f32> =
            var.iter().map(|s| (s / n.max(1) as f32 + 1e-6).sqrt()).collect();
        (mean, std)
    }

    /// Standardize features in place using [`LinearProbe::feature_stats`].
    pub fn standardize(feats: &mut Tensor, mean: &[f32], std: &[f32]) {
        let d = feats.dim(1);
        assert_eq!(mean.len(), d, "stats width mismatch");
        for row in feats.data_mut().chunks_mut(d) {
            for ((v, &m), &s) in row.iter_mut().zip(mean).zip(std) {
                *v = (*v - m) / s;
            }
        }
    }

    /// Extract frozen mean-pooled features for a whole dataset, in chunks.
    /// `images: [n, C·H·W]` → `[n, width]`.
    pub fn extract_features(encoder: &VitModel, images: &Tensor, chunk: usize) -> Tensor {
        Self::extract_with(images, chunk, encoder.config.width, |batch| {
            encoder.features_inference(batch)
        })
    }

    /// Extract frozen mean+std pooled features (`[n, 2·width]`) — the
    /// second-order texture descriptor (see
    /// `VitModel::features_moments_inference`).
    pub fn extract_moment_features(encoder: &VitModel, images: &Tensor, chunk: usize) -> Tensor {
        Self::extract_with(images, chunk, 2 * encoder.config.width, |batch| {
            encoder.features_moments_inference(batch)
        })
    }

    fn extract_with(
        images: &Tensor,
        chunk: usize,
        width: usize,
        f: impl Fn(&Tensor) -> Tensor,
    ) -> Tensor {
        let n = images.dim(0);
        let mut feats = Tensor::zeros(&[n, width]);
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let batch = images.rows(start, end);
            let out = f(&batch);
            feats.data_mut()[start * width..end * width].copy_from_slice(out.data());
            start = end;
        }
        feats
    }

    /// Train for one epoch on pre-extracted features; returns mean loss.
    pub fn train_epoch(
        &mut self,
        feats: &Tensor,
        labels: &[usize],
        batch_size: usize,
        rng: &mut TensorRng,
    ) -> f32 {
        let n = feats.dim(0);
        assert_eq!(labels.len(), n, "label count mismatch");
        let order = rng.permutation(n);
        let lr = self.schedule.lr(self.epoch);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        let mut start = 0;
        while start < n {
            let end = (start + batch_size).min(n);
            let idx = &order[start..end];
            let x = feats.gather_rows(idx);
            let y: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();

            self.head.zero_grad();
            let logits = self.head.forward(&x);
            let out = cross_entropy(&logits, &y);
            let _ = self.head.backward(&out.dlogits);

            self.head.pack_grads(&mut self.grads);
            self.head.pack_values(&mut self.flat);
            self.optimizer.step(&mut self.flat, &self.grads, lr);
            self.head.unpack_values(&self.flat);

            total += out.loss as f64;
            batches += 1;
            start = end;
        }
        self.epoch += 1;
        (total / batches.max(1) as f64) as f32
    }

    /// Evaluate top-1/top-5 accuracy on pre-extracted features.
    pub fn evaluate(&self, feats: &Tensor, labels: &[usize]) -> (f32, f32) {
        let n = feats.dim(0);
        assert_eq!(labels.len(), n, "label count mismatch");
        let logits = self.head.forward_inference(feats);
        let k = 5.min(self.classes);
        let topk = logits.topk_rows(k);
        let mut hit1 = 0usize;
        let mut hit5 = 0usize;
        for (i, &label) in labels.iter().enumerate() {
            if topk[i][0] == label {
                hit1 += 1;
            }
            if topk[i].contains(&label) {
                hit5 += 1;
            }
        }
        (hit1 as f32 / n as f32, hit5 as f32 / n as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable 3-class blobs: the probe must reach near-perfect
    /// accuracy quickly.
    #[test]
    fn learns_separable_blobs() {
        let mut rng = TensorRng::seed_from(1);
        let n = 150;
        let d = 8;
        let mut feats = Tensor::zeros(&[n, d]);
        let mut labels = vec![0usize; n];
        for (i, lab) in labels.iter_mut().enumerate() {
            let c = i % 3;
            *lab = c;
            for j in 0..d {
                let center = if j == c { 4.0 } else { 0.0 };
                feats.set(&[i, j], center + rng.normal() * 0.5);
            }
        }
        let mut probe = LinearProbe::new(d, 3, 10.0, 30, &mut rng);
        for _ in 0..30 {
            probe.train_epoch(&feats, &labels, 32, &mut rng);
        }
        let (top1, top5) = probe.evaluate(&feats, &labels);
        assert!(top1 > 0.95, "top1 {}", top1);
        assert!((top5 - 1.0).abs() < 1e-6, "top5 with 3 classes is trivially 1");
    }

    #[test]
    fn top5_geq_top1() {
        let mut rng = TensorRng::seed_from(2);
        let feats = rng.randn(&[50, 6], 1.0);
        let labels: Vec<usize> = (0..50).map(|i| i % 10).collect();
        let probe = LinearProbe::new(6, 10, 0.1, 10, &mut rng);
        let (t1, t5) = probe.evaluate(&feats, &labels);
        assert!(t5 >= t1);
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let mut rng = TensorRng::seed_from(3);
        let n = 120;
        let d = 10;
        let mut feats = rng.randn(&[n, d], 1.0);
        let labels: Vec<usize> = (0..n).map(|i| i % 4).collect();
        // inject signal
        for (i, &c) in labels.iter().enumerate() {
            let v = feats.at(&[i, c]) + 3.0;
            feats.set(&[i, c], v);
        }
        let mut probe = LinearProbe::new(d, 4, 0.1, 20, &mut rng);
        let first = probe.train_epoch(&feats, &labels, 16, &mut rng);
        let mut last = first;
        for _ in 0..19 {
            last = probe.train_epoch(&feats, &labels, 16, &mut rng);
        }
        assert!(last < first, "loss {} -> {}", first, last);
    }

    #[test]
    fn standardization_produces_zero_mean_unit_std() {
        let mut rng = TensorRng::seed_from(5);
        let mut feats = rng.randn(&[50, 6], 3.0);
        // shift one dimension to a weird scale
        for i in 0..50 {
            let v = feats.at(&[i, 2]) * 100.0 + 7.0;
            feats.set(&[i, 2], v);
        }
        let (mean, std) = LinearProbe::feature_stats(&feats);
        LinearProbe::standardize(&mut feats, &mean, &std);
        let (m2, s2) = LinearProbe::feature_stats(&feats);
        for d in 0..6 {
            assert!(m2[d].abs() < 1e-4, "dim {} mean {}", d, m2[d]);
            assert!((s2[d] - 1.0).abs() < 1e-3, "dim {} std {}", d, s2[d]);
        }
    }

    #[test]
    fn standardization_uses_train_stats_for_test() {
        let mut rng = TensorRng::seed_from(6);
        let train = rng.randn(&[40, 4], 2.0);
        let mut test = rng.randn(&[10, 4], 2.0);
        let (mean, std) = LinearProbe::feature_stats(&train);
        let before = test.clone();
        LinearProbe::standardize(&mut test, &mean, &std);
        // invertible: test*std + mean == before
        for i in 0..10 {
            for d in 0..4 {
                let rec = test.at(&[i, d]) * std[d] + mean[d];
                assert!((rec - before.at(&[i, d])).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn feature_extraction_matches_direct_inference() {
        use geofm_vit::VitConfig;
        let cfg = VitConfig {
            name: "fx".into(),
            width: 16,
            depth: 1,
            mlp: 32,
            heads: 4,
            patch: 4,
            img: 8,
            channels: 1,
        };
        let mut rng = TensorRng::seed_from(4);
        let encoder = VitModel::new(&cfg, &mut rng);
        let imgs = rng.randn(&[5, 64], 1.0);
        let chunked = LinearProbe::extract_features(&encoder, &imgs, 2);
        let direct = encoder.features_inference(&imgs);
        assert!(chunked.max_abs_diff(&direct) < 1e-5);
    }
}
