//! Per-sample random masking for MAE pretraining.

use geofm_tensor::TensorRng;

/// The mask for one batch: which token goes where, per sample.
#[derive(Debug, Clone)]
pub struct MaskPlan {
    /// Tokens per image.
    pub tokens: usize,
    /// Visible tokens per image (identical across the batch so tensors stay
    /// rectangular, as in the reference MAE implementation).
    pub visible: usize,
    /// For each sample, the visible token indices (ascending).
    pub visible_idx: Vec<Vec<usize>>,
    /// For each sample, the masked token indices (ascending).
    pub masked_idx: Vec<Vec<usize>>,
}

impl MaskPlan {
    /// Batch size.
    pub fn batch(&self) -> usize {
        self.visible_idx.len()
    }

    /// Global row indices (into a `[b·tokens, ·]` buffer) of visible tokens.
    pub fn global_visible(&self) -> Vec<usize> {
        self.global(&self.visible_idx)
    }

    /// Global row indices of masked tokens.
    pub fn global_masked(&self) -> Vec<usize> {
        self.global(&self.masked_idx)
    }

    fn global(&self, per_sample: &[Vec<usize>]) -> Vec<usize> {
        let mut out = Vec::with_capacity(per_sample.iter().map(Vec::len).sum());
        for (bi, idxs) in per_sample.iter().enumerate() {
            out.extend(idxs.iter().map(|&t| bi * self.tokens + t));
        }
        out
    }
}

/// Samples [`MaskPlan`]s at a fixed mask ratio.
#[derive(Debug, Clone, Copy)]
pub struct MaskSampler {
    tokens: usize,
    mask_ratio: f32,
}

impl MaskSampler {
    /// New sampler for `tokens` tokens at `mask_ratio` (e.g. 0.75).
    ///
    /// # Panics
    /// Panics unless `0 < mask_ratio < 1` leaves at least one visible and
    /// one masked token.
    pub fn new(tokens: usize, mask_ratio: f32) -> Self {
        assert!(tokens >= 2, "need at least 2 tokens to mask");
        assert!((0.0..1.0).contains(&mask_ratio), "mask ratio must be in [0,1)");
        let visible = Self::visible_count(tokens, mask_ratio);
        assert!(visible >= 1 && visible < tokens, "mask ratio leaves no work");
        Self { tokens, mask_ratio }
    }

    fn visible_count(tokens: usize, mask_ratio: f32) -> usize {
        (((tokens as f32) * (1.0 - mask_ratio)).round() as usize).clamp(1, tokens - 1)
    }

    /// Visible tokens per image under this sampler.
    pub fn visible(&self) -> usize {
        Self::visible_count(self.tokens, self.mask_ratio)
    }

    /// Sample a fresh plan for a batch.
    pub fn sample(&self, batch: usize, rng: &mut TensorRng) -> MaskPlan {
        let visible = self.visible();
        let mut visible_idx = Vec::with_capacity(batch);
        let mut masked_idx = Vec::with_capacity(batch);
        for _ in 0..batch {
            let perm = rng.permutation(self.tokens);
            let mut vis: Vec<usize> = perm[..visible].to_vec();
            let mut msk: Vec<usize> = perm[visible..].to_vec();
            vis.sort_unstable();
            msk.sort_unstable();
            visible_idx.push(vis);
            masked_idx.push(msk);
        }
        MaskPlan { tokens: self.tokens, visible, visible_idx, masked_idx }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_partition_is_exact() {
        let s = MaskSampler::new(16, 0.75);
        let mut rng = TensorRng::seed_from(1);
        let plan = s.sample(3, &mut rng);
        assert_eq!(plan.visible, 4);
        for bi in 0..3 {
            let mut all: Vec<usize> =
                plan.visible_idx[bi].iter().chain(plan.masked_idx[bi].iter()).cloned().collect();
            all.sort_unstable();
            assert_eq!(all, (0..16).collect::<Vec<_>>());
        }
    }

    #[test]
    fn masks_differ_across_samples() {
        let s = MaskSampler::new(64, 0.75);
        let mut rng = TensorRng::seed_from(2);
        let plan = s.sample(2, &mut rng);
        assert_ne!(plan.visible_idx[0], plan.visible_idx[1]);
    }

    #[test]
    fn global_indices_offset_by_sample() {
        let s = MaskSampler::new(4, 0.5);
        let mut rng = TensorRng::seed_from(3);
        let plan = s.sample(2, &mut rng);
        let gv = plan.global_visible();
        assert_eq!(gv.len(), 4);
        assert!(gv[..2].iter().all(|&i| i < 4));
        assert!(gv[2..].iter().all(|&i| (4..8).contains(&i)));
    }

    #[test]
    fn deterministic_given_seed() {
        let s = MaskSampler::new(16, 0.75);
        let mut r1 = TensorRng::seed_from(9);
        let mut r2 = TensorRng::seed_from(9);
        assert_eq!(s.sample(2, &mut r1).visible_idx, s.sample(2, &mut r2).visible_idx);
    }

    #[test]
    #[should_panic(expected = "mask ratio")]
    fn rejects_ratio_one() {
        let _ = MaskSampler::new(16, 1.0);
    }

    #[test]
    fn visible_count_rounds() {
        assert_eq!(MaskSampler::new(64, 0.75).visible(), 16);
        assert_eq!(MaskSampler::new(10, 0.75).visible(), 3); // 2.5 → 3... round(2.5)=3? banker's: 2.5_f32.round()=3
    }
}
