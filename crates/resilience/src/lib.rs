//! # geofm-resilience
//!
//! Failure handling for the geofm stack. The paper's pretraining campaigns
//! span hundreds of Frontier nodes, where node loss is routine; its
//! companion OReole-FM report names fault tolerance and checkpoint/restart
//! as the operational core of billion-parameter pretraining. This crate is
//! the substrate the rest of the workspace builds its fault paths on:
//!
//! * [`FaultPlan`] — a deterministic, seedable schedule of injected faults
//!   (rank crash at step *k*, slow-rank straggler delay, checkpoint-write
//!   crash mid-buffer). The same plan drives both the real threaded engine
//!   (`geofm-fsdp`) and the Frontier campaign simulator, so a failure
//!   scenario can be rehearsed in simulation and then replayed for real.
//! * [`StepCheckpoint`] — a crash-safe, versioned step-level checkpoint
//!   (per-rank parameter shards + AdamW state + step counter), written
//!   tmp-file → fsync → rename with a CRC32 footer so a torn write can
//!   never be loaded. [`atomic_write`] and [`crc32`] are exported for other
//!   checkpoint formats (`geofm-core` uses them for encoder checkpoints).
//! * [`mtbf`] — per-node exponential failure model, restart/rework cost
//!   accounting ([`simulate_campaign`]) and the analytic Young/Daly optimal
//!   checkpoint interval — the machinery behind the `figR` repro binary's
//!   "what checkpoint interval maximises goodput at N nodes?" sweep.
//! * [`FailureReport`] — the structured failure description the trainer
//!   returns instead of deadlocking or double-panicking.

#![warn(missing_docs)]

pub mod ckpt;
pub mod fault;
pub mod mtbf;

pub use ckpt::{atomic_write, crc32, RankSlot, StepCheckpoint};
pub use fault::{FaultKind, FaultMix, FaultPlan};
pub use mtbf::{
    simulate_campaign, simulate_campaign_with_plan, young_daly_interval, CampaignConfig,
    CampaignOutcome, NodeFailureModel,
};

/// One rank's failure within an attempt of a distributed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankFailure {
    /// Global rank that failed (or observed the failure).
    pub rank: usize,
    /// Step at which the failure surfaced.
    pub step: usize,
    /// Human-readable cause ("injected rank crash", panic payload,
    /// "peer rank lost: timeout", …).
    pub cause: String,
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} failed at step {}: {}", self.rank, self.step, self.cause)
    }
}

/// One persistently slow rank as observed by the health monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerInfo {
    /// Global rank flagged as a straggler.
    pub rank: usize,
    /// Its step-time EWMA divided by the healthy-median EWMA (≥ 1).
    pub slowdown: f64,
    /// Its mean observed step time in milliseconds.
    pub mean_step_ms: f64,
}

/// Health-monitor summary of gray degradation observed during a run: who
/// was persistently slow, by how much, and the goodput lost to waiting on
/// them. Attached to both successful runs (`DistReport`) and failures
/// ([`FailureReport`]) — gray failures degrade without necessarily killing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradedReport {
    /// Ranks flagged past the straggler threshold, worst first.
    pub stragglers: Vec<StragglerInfo>,
    /// Median per-rank mean step time in milliseconds (the healthy pace).
    pub median_step_ms: f64,
    /// Fraction of ideal throughput lost to the slowest rank:
    /// `1 − median_total / max_total` over per-rank cumulative step time.
    pub goodput_lost: f64,
}

impl std::fmt::Display for DegradedReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "degradation: {} straggler(s), median step {:.2} ms, goodput lost {:.1}%",
            self.stragglers.len(),
            self.median_step_ms,
            self.goodput_lost * 100.0
        )?;
        for s in &self.stragglers {
            writeln!(
                f,
                "  rank {} running {:.2}x slower (mean step {:.2} ms)",
                s.rank, s.slowdown, s.mean_step_ms
            )?;
        }
        Ok(())
    }
}

/// Structured report returned when a distributed run cannot complete within
/// its restart budget. Every surviving rank contributes what it observed,
/// so the report distinguishes the root-cause rank (panic / injected crash)
/// from collateral `RankLost` observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureReport {
    /// Restart attempts consumed (0 = first attempt failed with no budget).
    pub restarts_used: usize,
    /// Step checkpoint the final attempt resumed from, if any.
    pub resumed_from_step: Option<u64>,
    /// Per-rank failures observed in the final attempt.
    pub failures: Vec<RankFailure>,
    /// Gray-degradation summary from the health monitor, if it observed
    /// any steps before the run died.
    pub degraded: Option<DegradedReport>,
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "distributed run failed after {} restart(s){}:",
            self.restarts_used,
            match self.resumed_from_step {
                Some(s) => format!(" (last attempt resumed from step {s})"),
                None => String::new(),
            }
        )?;
        for fail in &self.failures {
            writeln!(f, "  {fail}")?;
        }
        if let Some(d) = &self.degraded {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_report_display_lists_ranks() {
        let r = FailureReport {
            restarts_used: 2,
            resumed_from_step: Some(6),
            failures: vec![RankFailure { rank: 1, step: 7, cause: "injected".into() }],
            degraded: None,
        };
        let s = r.to_string();
        assert!(s.contains("2 restart"));
        assert!(s.contains("resumed from step 6"));
        assert!(s.contains("rank 1 failed at step 7"));
    }

    #[test]
    fn degraded_report_display_lists_stragglers() {
        let d = DegradedReport {
            stragglers: vec![StragglerInfo { rank: 3, slowdown: 2.7, mean_step_ms: 54.0 }],
            median_step_ms: 20.0,
            goodput_lost: 0.63,
        };
        let s = d.to_string();
        assert!(s.contains("1 straggler"));
        assert!(s.contains("rank 3 running 2.70x slower"));
        assert!(s.contains("63.0%"));
    }
}
