//! # geofm-resilience
//!
//! Failure handling for the geofm stack. The paper's pretraining campaigns
//! span hundreds of Frontier nodes, where node loss is routine; its
//! companion OReole-FM report names fault tolerance and checkpoint/restart
//! as the operational core of billion-parameter pretraining. This crate is
//! the substrate the rest of the workspace builds its fault paths on:
//!
//! * [`FaultPlan`] — a deterministic, seedable schedule of injected faults
//!   (rank crash at step *k*, slow-rank straggler delay, checkpoint-write
//!   crash mid-buffer). The same plan drives both the real threaded engine
//!   (`geofm-fsdp`) and the Frontier campaign simulator, so a failure
//!   scenario can be rehearsed in simulation and then replayed for real.
//! * [`StepCheckpoint`] — a crash-safe, versioned step-level checkpoint
//!   (per-rank parameter shards + AdamW state + step counter), written
//!   tmp-file → fsync → rename with a CRC32 footer so a torn write can
//!   never be loaded. [`atomic_write`] and [`crc32`] are exported for other
//!   checkpoint formats (`geofm-core` uses them for encoder checkpoints).
//! * [`mtbf`] — per-node exponential failure model, restart/rework cost
//!   accounting ([`simulate_campaign`]) and the analytic Young/Daly optimal
//!   checkpoint interval — the machinery behind the `figR` repro binary's
//!   "what checkpoint interval maximises goodput at N nodes?" sweep.
//! * [`FailureReport`] — the structured failure description the trainer
//!   returns instead of deadlocking or double-panicking.
//! * [`GuardReport`] — the integrity-guard summary (sentinel trips,
//!   checksum trips, rollbacks, skipped steps, wasted re-executed work)
//!   attached to both successful runs and failures by the
//!   silent-data-corruption defense in `geofm-fsdp`.
//! * [`DataReport`] / [`RecordId`] — the streaming-ingest summary (reads,
//!   retries, hedged reads, quarantined records) attached by `geofm-data`'s
//!   fault-tolerant shard loader. It lives here for the same reason the
//!   failure types do: both the data plane and the trainer must see it.
//!
//! [`crc32`] is the workspace's one table-driven CRC32 implementation,
//! shared by the step checkpoints here, the encoder checkpoints in
//! `geofm-core`, and the checksummed collectives in `geofm-collectives`.
//! (It lives here rather than in `geofm-core` because `geofm-core` sits at
//! the top of the crate graph — hosting it there would cycle.)

#![warn(missing_docs)]

pub mod ckpt;
pub mod elastic;
pub mod fault;
pub mod mtbf;

pub use ckpt::{atomic_write, crc32, crc32_update, RankSlot, StepCheckpoint};
pub use elastic::{CkptError, ElasticCheckpoint};
pub use fault::{FaultKind, FaultMix, FaultPlan};
pub use mtbf::{
    simulate_campaign, simulate_campaign_with_plan, young_daly_interval, CampaignConfig,
    CampaignOutcome, NodeFailureModel,
};

/// One rank's failure within an attempt of a distributed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankFailure {
    /// Global rank that failed (or observed the failure).
    pub rank: usize,
    /// Step at which the failure surfaced.
    pub step: usize,
    /// Human-readable cause ("injected rank crash", panic payload,
    /// "peer rank lost: timeout", …).
    pub cause: String,
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} failed at step {}: {}", self.rank, self.step, self.cause)
    }
}

/// One persistently slow rank as observed by the health monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerInfo {
    /// Global rank flagged as a straggler.
    pub rank: usize,
    /// Its step-time EWMA divided by the healthy-median EWMA (≥ 1).
    pub slowdown: f64,
    /// Its mean observed step time in milliseconds.
    pub mean_step_ms: f64,
}

/// Health-monitor summary of gray degradation observed during a run: who
/// was persistently slow, by how much, and the goodput lost to waiting on
/// them. Attached to both successful runs (`DistReport`) and failures
/// ([`FailureReport`]) — gray failures degrade without necessarily killing.
#[must_use = "a degraded-run report describes lost goodput and should be inspected or logged"]
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradedReport {
    /// Ranks flagged past the straggler threshold, worst first.
    pub stragglers: Vec<StragglerInfo>,
    /// Median per-rank mean step time in milliseconds (the healthy pace).
    pub median_step_ms: f64,
    /// Fraction of ideal throughput lost to the slowest rank:
    /// `1 − median_total / max_total` over per-rank cumulative step time.
    pub goodput_lost: f64,
}

impl std::fmt::Display for DegradedReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "degradation: {} straggler(s), median step {:.2} ms, goodput lost {:.1}%",
            self.stragglers.len(),
            self.median_step_ms,
            self.goodput_lost * 100.0
        )?;
        for s in &self.stragglers {
            writeln!(
                f,
                "  rank {} running {:.2}x slower (mean step {:.2} ms)",
                s.rank, s.slowdown, s.mean_step_ms
            )?;
        }
        Ok(())
    }
}

/// Structured report returned when a distributed run cannot complete within
/// its restart budget. Every surviving rank contributes what it observed,
/// so the report distinguishes the root-cause rank (panic / injected crash)
/// from collateral `RankLost` observations.
#[must_use = "a failure report explains why the run died and should be inspected or logged"]
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureReport {
    /// Restart attempts consumed (0 = first attempt failed with no budget).
    pub restarts_used: usize,
    /// Step checkpoint the final attempt resumed from, if any.
    pub resumed_from_step: Option<u64>,
    /// Per-rank failures observed in the final attempt.
    pub failures: Vec<RankFailure>,
    /// Gray-degradation summary from the health monitor, if it observed
    /// any steps before the run died. Boxed (like `guard` and `data`) to
    /// keep the `Err` variant of `try_*` results small.
    pub degraded: Option<Box<DegradedReport>>,
    /// Integrity-guard summary (sentinel/checksum trips, rollbacks), if
    /// the guard was enabled and observed anything before the run died.
    /// Boxed to keep the `Err` variant of `try_*` results small.
    pub guard: Option<Box<GuardReport>>,
    /// Elastic reshard transitions performed before the run died (empty
    /// unless elastic mode shrank or re-grew the world).
    pub reshards: Vec<ReshardSummary>,
    /// Ingest-plane summary (reads, retries, hedges, quarantines), if the
    /// run was fed by a streaming shard store. Boxed to keep the `Err`
    /// variant of `try_*` results small.
    pub data: Option<Box<DataReport>>,
}

/// One record's identity within a sharded corpus: `(shard, record)`.
///
/// Ordered shard-major so quarantine sets sort into corpus order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// Shard index within the corpus.
    pub shard: usize,
    /// Record index within the shard.
    pub record: usize,
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.shard, self.record)
    }
}

/// Summary of what the streaming ingest plane did during a run: reads
/// served, defenses exercised (retries, hedges) and records given up on
/// (quarantined). Attached to both successful runs (`DistReport`) and
/// failures ([`FailureReport`]).
///
/// The degradation contract mirrors the guard's: a run that quarantined
/// records is bit-identical to a clean run told to skip the same records
/// up front, so `quarantined` *is* the recovery transcript.
#[must_use = "a data report accounts for skipped records and should be inspected or logged"]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataReport {
    /// Records successfully decoded and fed to training.
    pub records_read: u64,
    /// Payload bytes of those records.
    pub bytes_read: u64,
    /// Reads retried after a checksum mismatch.
    pub retries: u64,
    /// Hedged second reads dispatched after a read overran its EWMA
    /// timeout.
    pub hedges: u64,
    /// Hedged reads that beat the original straggling read.
    pub hedge_wins: u64,
    /// Records permanently given up on (persistent checksum failures or
    /// records of lost shards), ascending. Their batch slots were dropped.
    pub quarantined: Vec<RecordId>,
    /// Shards found missing or truncated, ascending; all their affected
    /// records appear in `quarantined`.
    pub quarantined_shards: Vec<usize>,
    /// Batch rows dropped because their record was quarantined (counts
    /// every affected step, not distinct records).
    pub dropped_rows: u64,
    /// Times the consumer found the prefetch queue empty and had to wait.
    pub prefetch_stalls: u64,
    /// High-watermark of `data.wait.ns`: the longest a rank waited on the
    /// prefetcher for one batch, in nanoseconds. Distinguishes input-bound
    /// steps from compute stragglers in health output.
    pub wait_ns_max: u64,
    /// High-watermark of the `data.queue_depth` gauge across the run.
    pub queue_depth_max: i64,
}

impl std::fmt::Display for DataReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "ingest: {} record(s) read, {} retry(ies), {} hedge(s) ({} won), \
             {} record(s) quarantined across {} bad shard(s), {} row(s) dropped",
            self.records_read,
            self.retries,
            self.hedges,
            self.hedge_wins,
            self.quarantined.len(),
            self.quarantined_shards.len(),
            self.dropped_rows
        )?;
        write!(
            f,
            "  prefetch: {} stall(s), max wait {:.2} ms, max queue depth {}",
            self.prefetch_stalls,
            self.wait_ns_max as f64 / 1e6,
            self.queue_depth_max
        )
    }
}

/// One elastic world transition, as recorded on reports. The full reshard
/// payload (checkpoint, strategy) lives on the trainer's `ReshardReport`;
/// this is the light-weight summary attached to [`FailureReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReshardSummary {
    /// Step the new world resumed from.
    pub step: u64,
    /// World size before the transition.
    pub from_world: usize,
    /// World size after the transition.
    pub to_world: usize,
}

impl std::fmt::Display for ReshardSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "resharded {} -> {} ranks at step {} ({})",
            self.from_world,
            self.to_world,
            self.step,
            if self.to_world < self.from_world { "shrink" } else { "grow" }
        )
    }
}

/// Summary of what the silent-data-corruption guard did during a run:
/// how often it tripped, why, and what the trips cost. Attached to both
/// successful runs (`DistReport`) and failures ([`FailureReport`]).
///
/// The guard's contract is that every trip is *globally agreed* (all ranks
/// take the identical rollback decision from identical inputs), so one
/// report describes the whole world, not one rank's view.
#[must_use = "a guard report records corruption detections and should be inspected or logged"]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GuardReport {
    /// Total guard trips (checksum + sentinel).
    pub trips: usize,
    /// Trips raised by the collective checksum layer (detected bit flips).
    pub checksum_trips: usize,
    /// Trips raised by the numerical sentinel (NaN/Inf or robust-z spike).
    pub sentinel_trips: usize,
    /// Rollback-and-skip recoveries performed (= `trips` unless the
    /// rollback budget ran out mid-recovery).
    pub rollbacks: usize,
    /// Steps skipped after rollback, ascending. Their loss entries are the
    /// canonical `f32::NAN` placeholder and no update was applied.
    pub skipped_steps: Vec<usize>,
    /// Steps of work discarded or re-executed across all rollbacks (the
    /// wasted-work cost of recovery, in steps).
    pub wasted_steps: usize,
}

impl std::fmt::Display for GuardReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "guard: {} trip(s) ({} checksum, {} sentinel), {} rollback(s), \
             {} step(s) skipped {:?}, {} step(s) of work wasted",
            self.trips,
            self.checksum_trips,
            self.sentinel_trips,
            self.rollbacks,
            self.skipped_steps.len(),
            self.skipped_steps,
            self.wasted_steps
        )
    }
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "distributed run failed after {} restart(s){}:",
            self.restarts_used,
            match self.resumed_from_step {
                Some(s) => format!(" (last attempt resumed from step {s})"),
                None => String::new(),
            }
        )?;
        for fail in &self.failures {
            writeln!(f, "  {fail}")?;
        }
        for r in &self.reshards {
            writeln!(f, "  {r}")?;
        }
        if let Some(d) = &self.degraded {
            write!(f, "{d}")?;
        }
        if let Some(g) = &self.guard {
            writeln!(f, "{g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_report_display_lists_ranks() {
        let r = FailureReport {
            restarts_used: 2,
            resumed_from_step: Some(6),
            failures: vec![RankFailure { rank: 1, step: 7, cause: "injected".into() }],
            degraded: None,
            guard: None,
            reshards: vec![ReshardSummary { step: 4, from_world: 4, to_world: 3 }],
            data: None,
        };
        let s = r.to_string();
        assert!(s.contains("2 restart"));
        assert!(s.contains("resumed from step 6"));
        assert!(s.contains("rank 1 failed at step 7"));
        assert!(s.contains("resharded 4 -> 3 ranks at step 4 (shrink)"));
    }

    #[test]
    fn guard_report_display_summarises_trips() {
        let g = GuardReport {
            trips: 3,
            checksum_trips: 2,
            sentinel_trips: 1,
            rollbacks: 3,
            skipped_steps: vec![4, 9, 11],
            wasted_steps: 5,
        };
        let s = g.to_string();
        assert!(s.contains("3 trip(s)"));
        assert!(s.contains("2 checksum"));
        assert!(s.contains("1 sentinel"));
        assert!(s.contains("[4, 9, 11]"));
        assert!(s.contains("5 step(s) of work wasted"));
    }

    #[test]
    fn data_report_display_summarises_ingest() {
        let d = DataReport {
            records_read: 480,
            bytes_read: 30720,
            retries: 3,
            hedges: 2,
            hedge_wins: 1,
            quarantined: vec![RecordId { shard: 1, record: 7 }, RecordId { shard: 2, record: 0 }],
            quarantined_shards: vec![2],
            dropped_rows: 5,
            prefetch_stalls: 4,
            wait_ns_max: 1_500_000,
            queue_depth_max: 2,
        };
        let s = d.to_string();
        assert!(s.contains("480 record(s) read"));
        assert!(s.contains("3 retry(ies)"));
        assert!(s.contains("2 hedge(s) (1 won)"));
        assert!(s.contains("2 record(s) quarantined across 1 bad shard(s)"));
        assert!(s.contains("5 row(s) dropped"));
        assert!(s.contains("max wait 1.50 ms"));
    }

    #[test]
    fn record_ids_sort_shard_major() {
        let mut v = vec![
            RecordId { shard: 2, record: 0 },
            RecordId { shard: 0, record: 9 },
            RecordId { shard: 0, record: 1 },
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                RecordId { shard: 0, record: 1 },
                RecordId { shard: 0, record: 9 },
                RecordId { shard: 2, record: 0 },
            ]
        );
        assert_eq!(RecordId { shard: 3, record: 4 }.to_string(), "3/4");
    }

    #[test]
    fn degraded_report_display_lists_stragglers() {
        let d = DegradedReport {
            stragglers: vec![StragglerInfo { rank: 3, slowdown: 2.7, mean_step_ms: 54.0 }],
            median_step_ms: 20.0,
            goodput_lost: 0.63,
        };
        let s = d.to_string();
        assert!(s.contains("1 straggler"));
        assert!(s.contains("rank 3 running 2.70x slower"));
        assert!(s.contains("63.0%"));
    }
}
