//! MTBF, goodput and checkpoint-interval modeling.
//!
//! The classic question for a campaign on a failure-prone machine: given a
//! per-node MTBF, a checkpoint cost δ and a restart cost R, what checkpoint
//! interval τ maximises *goodput* (useful work / wall time)? Young's
//! first-order answer — refined by Daly — is `τ* ≈ √(2 δ M)` for system
//! MTBF `M`. [`simulate_campaign`] cross-checks the analytic optimum with a
//! discrete event simulation that draws node failures from a per-node
//! exponential model and accounts checkpoint, rework and restart costs
//! explicitly; the `figR` repro binary sweeps it across node counts.

use crate::fault::{FaultKind, FaultPlan};
use rand::{Rng, SeedableRng};

/// Per-node exponential (memoryless) failure model.
#[derive(Debug, Clone, Copy)]
pub struct NodeFailureModel {
    /// Mean time between failures of a single node, in seconds.
    pub node_mtbf_s: f64,
}

impl NodeFailureModel {
    /// System MTBF of an `nodes`-node job: failures of independent
    /// exponential nodes superpose into an exponential with summed rate,
    /// so the job-level MTBF is `node_mtbf / nodes`.
    pub fn system_mtbf(&self, nodes: usize) -> f64 {
        assert!(nodes > 0, "job needs at least one node");
        self.node_mtbf_s / nodes as f64
    }

    /// Draw the time until the next job-interrupting failure (seconds).
    pub fn sample_interarrival(&self, nodes: usize, rng: &mut rand::rngs::StdRng) -> f64 {
        let mtbf = self.system_mtbf(nodes);
        if !mtbf.is_finite() {
            return f64::INFINITY;
        }
        // inverse-CDF of Exp(1/mtbf); 1-u in (0,1] avoids ln(0)
        let u: f64 = rng.gen();
        -(1.0 - u).ln() * mtbf
    }
}

/// Young/Daly first-order optimal checkpoint interval (seconds of work
/// between checkpoints) for checkpoint cost `ckpt_cost_s` and system MTBF
/// `system_mtbf_s`: `τ* = √(2 δ M)`.
pub fn young_daly_interval(ckpt_cost_s: f64, system_mtbf_s: f64) -> f64 {
    (2.0 * ckpt_cost_s * system_mtbf_s).sqrt()
}

/// One campaign configuration for the failure simulator.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Duration of one training step (seconds).
    pub step_time_s: f64,
    /// Steps the campaign must complete.
    pub total_steps: usize,
    /// Steps between checkpoints (0 = never checkpoint).
    pub ckpt_every_steps: usize,
    /// Cost of writing one checkpoint (seconds, blocking).
    pub ckpt_cost_s: f64,
    /// Cost of a restart: re-scheduling, re-init, checkpoint read (seconds).
    pub restart_cost_s: f64,
    /// Nodes in the job.
    pub nodes: usize,
    /// Per-node failure model.
    pub failure: NodeFailureModel,
    /// RNG seed for the failure process (deterministic per seed).
    pub seed: u64,
}

/// Accounting of one simulated campaign.
#[derive(Debug, Clone, Copy, Default)]
pub struct CampaignOutcome {
    /// Total wall-clock time to finish all steps (seconds).
    pub wall_s: f64,
    /// Time spent on steps that *counted* (total_steps × step time).
    pub useful_s: f64,
    /// Time spent writing checkpoints.
    pub ckpt_s: f64,
    /// Time lost to failures: partially executed work plus re-executed
    /// steps that had not reached a checkpoint.
    pub rework_s: f64,
    /// Time spent in restart overhead.
    pub restart_s: f64,
    /// Failures endured.
    pub failures: u64,
    /// `useful_s / wall_s` — the goodput fraction in (0, 1].
    pub goodput: f64,
}

/// Simulate a checkpointed campaign under exponential node failures.
///
/// Steps execute sequentially; after every `ckpt_every_steps` completed
/// steps a blocking checkpoint of cost `ckpt_cost_s` is written. When a
/// failure lands anywhere inside a step or checkpoint write, the campaign
/// pays `restart_cost_s` and resumes from the last *completed* checkpoint
/// (work since then is reworked). Deterministic per `cfg.seed`.
pub fn simulate_campaign(cfg: &CampaignConfig) -> CampaignOutcome {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut next_failure = cfg.failure.sample_interarrival(cfg.nodes, &mut rng);
    run_campaign(
        cfg,
        |_, _| 0.0,
        |_, window_start, window_end| {
            if next_failure < window_end {
                // Failures strike *running* jobs: the clock is suspended
                // while the job is down, so the next arrival is sampled
                // from the end of the restart (the standard Young/Daly
                // assumption). Without this the failure clock falls ever
                // further behind wall time whenever `restart_cost_s`
                // exceeds the system MTBF and the simulation livelocks
                // instead of pricing that regime.
                let t = next_failure.max(window_start);
                next_failure =
                    t + cfg.restart_cost_s + cfg.failure.sample_interarrival(cfg.nodes, &mut rng);
                Some(t)
            } else {
                None
            }
        },
    )
}

/// Simulate a campaign whose failures and stragglers come from a
/// deterministic [`FaultPlan`] instead of the stochastic model — the same
/// plan the real threaded trainer accepts, so a failure drill can be
/// priced in simulation before it is rehearsed on real rank threads.
/// `RankCrash { step, .. }` kills the job the first time the campaign
/// executes `step`; `SlowRank` delays inflate that step's duration (the
/// straggler holds every peer at the collective); `CheckpointCrash { step }`
/// fails the job during the checkpoint write after `step`.
pub fn simulate_campaign_with_plan(cfg: &CampaignConfig, plan: &FaultPlan) -> CampaignOutcome {
    let events = plan.events();
    // one-shot crash schedule, kept local so sweeping doesn't consume `plan`
    let mut crash_steps: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            FaultKind::RankCrash { step, .. } | FaultKind::CheckpointCrash { step } => Some(*step),
            _ => None,
        })
        .collect();
    crash_steps.sort_unstable();
    crash_steps.reverse(); // pop() yields earliest first

    run_campaign(
        cfg,
        |step, _| {
            events
                .iter()
                .filter_map(|e| match e {
                    FaultKind::SlowRank { step: s, delay_ms, .. } if *s == step => Some(*delay_ms),
                    _ => None,
                })
                .max()
                .unwrap_or(0) as f64
                / 1e3
        },
        |step, window_start, window_end| {
            // fire when the step a crash is armed for (or an earlier one
            // skipped by checkpoint-resume granularity) executes
            if crash_steps.last().is_some_and(|&s| s <= step) {
                crash_steps.pop();
                Some((window_start + (window_end - window_start) * 0.5).max(window_start))
            } else {
                None
            }
        },
    )
}

/// Core campaign loop shared by the stochastic and plan-driven simulators.
///
/// * `extra_step_delay(step, wall)` — straggler seconds added to that step.
/// * `fails_during(step, window_start, window_end)` — whether a failure
///   interrupts the execution window of `step` (step + any checkpoint
///   write), returning its absolute time.
fn run_campaign(
    cfg: &CampaignConfig,
    mut extra_step_delay: impl FnMut(usize, f64) -> f64,
    mut fails_during: impl FnMut(usize, f64, f64) -> Option<f64>,
) -> CampaignOutcome {
    assert!(cfg.step_time_s > 0.0, "step time must be positive");
    assert!(cfg.total_steps > 0, "campaign must have steps");
    let mut out = CampaignOutcome::default();
    let mut wall = 0.0f64;
    let mut completed = 0usize; // steps finished in the current attempt
    let mut durable = 0usize; // steps captured by the last checkpoint

    while completed < cfg.total_steps {
        let step_cost = cfg.step_time_s + extra_step_delay(completed, wall);
        let ckpt_due =
            cfg.ckpt_every_steps > 0 && (completed + 1).is_multiple_of(cfg.ckpt_every_steps);
        let ckpt_cost = if ckpt_due { cfg.ckpt_cost_s } else { 0.0 };
        let window_end = wall + step_cost + ckpt_cost;

        if let Some(t) = fails_during(completed, wall, window_end) {
            let t = t.clamp(wall, window_end);
            out.failures += 1;
            // everything since the last durable checkpoint is lost
            out.rework_s += (completed - durable) as f64 * cfg.step_time_s + (t - wall);
            out.restart_s += cfg.restart_cost_s;
            wall = t + cfg.restart_cost_s;
            completed = durable;
            continue;
        }

        wall = window_end;
        out.ckpt_s += ckpt_cost;
        completed += 1;
        if ckpt_due {
            durable = completed;
        }
    }

    out.wall_s = wall;
    out.useful_s = cfg.total_steps as f64 * cfg.step_time_s;
    out.goodput = if wall > 0.0 { out.useful_s / wall } else { 1.0 };
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn base_cfg() -> CampaignConfig {
        CampaignConfig {
            step_time_s: 1.0,
            total_steps: 1000,
            ckpt_every_steps: 50,
            ckpt_cost_s: 5.0,
            restart_cost_s: 30.0,
            nodes: 64,
            failure: NodeFailureModel { node_mtbf_s: 3600.0 * 24.0 * 365.0 },
            seed: 42,
        }
    }

    #[test]
    fn system_mtbf_scales_inversely_with_nodes() {
        let m = NodeFailureModel { node_mtbf_s: 1000.0 };
        assert_eq!(m.system_mtbf(1), 1000.0);
        assert_eq!(m.system_mtbf(10), 100.0);
    }

    #[test]
    fn young_daly_matches_formula() {
        let tau = young_daly_interval(5.0, 1000.0);
        assert!((tau - 100.0).abs() < 1e-9);
    }

    #[test]
    fn restart_cost_above_system_mtbf_terminates_and_prices_the_collapse() {
        // regression: with restarts costing more than the system MTBF the
        // failure clock used to fall behind wall time forever and the
        // simulation livelocked. It must terminate and report goodput near
        // zero — the regime where elastic shrink-and-continue wins.
        let mut cfg = base_cfg();
        cfg.total_steps = 2000;
        cfg.failure.node_mtbf_s = 360.0 * 64.0; // system MTBF = 6 min
        cfg.restart_cost_s = 3600.0; // each restart outlives the MTBF tenfold
        let out = simulate_campaign(&cfg);
        assert!(out.failures > 0, "this environment must fail");
        assert!(out.wall_s.is_finite());
        assert!(out.goodput < 0.5, "constant restarting cannot be productive: {}", out.goodput);
    }

    #[test]
    fn no_failures_goodput_is_only_checkpoint_overhead() {
        let mut cfg = base_cfg();
        cfg.failure.node_mtbf_s = f64::INFINITY;
        let out = simulate_campaign(&cfg);
        assert_eq!(out.failures, 0);
        let ckpts = 1000 / 50; // checkpoint after every 50th step
        let expect_wall = 1000.0 + ckpts as f64 * 5.0;
        assert!((out.wall_s - expect_wall).abs() < 1e-6, "wall {}", out.wall_s);
        assert!(out.goodput > 0.9 && out.goodput < 1.0);
        assert_eq!(out.rework_s, 0.0);
    }

    #[test]
    fn failures_reduce_goodput_and_are_deterministic() {
        let mut cfg = base_cfg();
        cfg.failure.node_mtbf_s = 3600.0 * 100.0; // system MTBF ≈ 5625 s
        let a = simulate_campaign(&cfg);
        let b = simulate_campaign(&cfg);
        assert_eq!(a.failures, b.failures, "same seed, same failures");
        assert!((a.wall_s - b.wall_s).abs() < 1e-9);
        cfg.failure.node_mtbf_s = f64::INFINITY;
        let clean = simulate_campaign(&cfg);
        assert!(a.goodput <= clean.goodput);
    }

    #[test]
    fn never_checkpointing_is_worse_under_failures() {
        let mut cfg = base_cfg();
        cfg.total_steps = 2000;
        cfg.failure.node_mtbf_s = 3600.0 * 20.0; // system MTBF ≈ 1125 s
        let mean_wall = |cfg: &mut CampaignConfig| {
            let mut sum = 0.0;
            for seed in 0..10 {
                cfg.seed = seed;
                sum += simulate_campaign(cfg).wall_s;
            }
            sum / 10.0
        };
        cfg.ckpt_every_steps = 20;
        let with = mean_wall(&mut cfg);
        cfg.ckpt_every_steps = 0;
        let without = mean_wall(&mut cfg);
        assert!(with < without, "checkpointed {} vs un-checkpointed {}", with, without);
    }

    #[test]
    fn plan_driven_campaign_counts_injected_faults() {
        let mut cfg = base_cfg();
        cfg.total_steps = 100;
        cfg.ckpt_every_steps = 10;
        let plan = FaultPlan::none().with_rank_crash(3, 25).with_rank_crash(1, 60);
        let out = simulate_campaign_with_plan(&cfg, &plan);
        assert_eq!(out.failures, 2);
        // crash at step 25 reworks steps 20..25; crash at 60 reworks nothing
        // completed yet beyond the checkpoint at 60
        assert!(out.rework_s > 0.0);
        let clean = simulate_campaign_with_plan(&cfg, &FaultPlan::none());
        assert_eq!(clean.failures, 0);
        assert!(out.wall_s > clean.wall_s);
        // straggler adds exactly its delay to the clean campaign
        let straggled = simulate_campaign_with_plan(
            &cfg,
            &FaultPlan::none().with_slow_rank(0, 5, Duration::from_millis(2500)),
        );
        assert!((straggled.wall_s - clean.wall_s - 2.5).abs() < 1e-6);
    }

    #[test]
    fn plan_crash_fires_once_despite_reexecution() {
        let mut cfg = base_cfg();
        cfg.total_steps = 30;
        cfg.ckpt_every_steps = 10;
        // crash at step 15: resume from 10, re-execute 10..15 without crashing
        let out = simulate_campaign_with_plan(&cfg, &FaultPlan::none().with_rank_crash(0, 15));
        assert_eq!(out.failures, 1);
        assert!(out.wall_s.is_finite());
    }

    #[test]
    fn goodput_curve_peaks_near_young_daly() {
        // sweep intervals; the best simulated interval should sit within an
        // order of magnitude of the analytic optimum (the curve is flat
        // near τ*)
        let mut cfg = base_cfg();
        cfg.total_steps = 4000;
        cfg.ckpt_cost_s = 4.0;
        cfg.restart_cost_s = 20.0;
        cfg.failure.node_mtbf_s = 3600.0 * 200.0; // system MTBF 11250 s
        let mtbf = cfg.failure.system_mtbf(cfg.nodes);
        let tau_star = young_daly_interval(cfg.ckpt_cost_s, mtbf); // seconds
        let star_steps = (tau_star / cfg.step_time_s).round() as usize;
        let mut best = (0usize, 0.0f64);
        for &interval in &[1usize, 3, 10, 30, 100, 300, 1000, 3000] {
            cfg.ckpt_every_steps = interval;
            // average over a few seeds to tame variance
            let mut g = 0.0;
            for seed in 0..8 {
                cfg.seed = seed;
                g += simulate_campaign(&cfg).goodput;
            }
            g /= 8.0;
            if g > best.1 {
                best = (interval, g);
            }
        }
        let ratio = best.0 as f64 / star_steps.max(1) as f64;
        assert!(
            (0.1..=10.0).contains(&ratio),
            "best interval {} vs Young/Daly {} (ratio {:.2})",
            best.0,
            star_steps,
            ratio
        );
    }
}
