//! Crash-safe step checkpoints.
//!
//! Format (version 1, little-endian):
//!
//! ```text
//! GEOFMSC1 | u64 payload_len | payload | u32 crc32(payload)
//! payload := u64 step | u64 world
//!          | world × ( u64 n_params | n_params × f32 params
//!                    | n_params × f32 adam_m | n_params × f32 adam_v
//!                    | u64 adam_t
//!                    | u64 n_losses | n_losses × f32 losses )
//! ```
//!
//! Writes go through [`atomic_write`]: the full buffer is written to a
//! `.tmp` sibling, fsynced, then renamed over the destination. A crash at
//! any point leaves either the previous checkpoint intact or a stray
//! `.tmp` that is never read — the visible file is always complete. The
//! CRC32 footer additionally rejects bit rot and torn writes on
//! filesystems without atomic rename.

use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 8] = b"GEOFMSC1";

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the checksum `cksum`/zlib compute.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, bytes)
}

/// Streaming CRC32 step: fold `bytes` into running state `crc`.
///
/// Start from `0xFFFF_FFFF`, feed the data in any batching, and finish
/// with a bitwise NOT — `!crc32_update(0xFFFF_FFFF, b) == crc32(b)`.
/// Exported so callers hashing non-contiguous data (the checksummed
/// collectives hash f32 payloads in stack batches) reuse this table
/// instead of growing a second CRC implementation.
pub fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// Write `bytes` to `path` crash-safely: `.tmp` sibling → fsync → rename.
///
/// Concurrent writers to the same path are serialised by the filesystem's
/// rename atomicity: readers see either the old or the new complete file,
/// never a mixture.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// One rank's contribution to a step checkpoint.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankSlot {
    /// The rank's owned parameter shards (concatenated across units).
    pub params: Vec<f32>,
    /// AdamW first-moment state, aligned with `params`.
    pub adam_m: Vec<f32>,
    /// AdamW second-moment state, aligned with `params`.
    pub adam_v: Vec<f32>,
    /// AdamW step counter.
    pub adam_t: u64,
    /// The rank's local per-step losses for completed steps.
    pub losses: Vec<f32>,
}

/// A versioned step-level checkpoint of a distributed run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepCheckpoint {
    /// Number of fully completed steps (the run resumes at this step index).
    pub step: u64,
    /// Per-rank state, indexed by global rank; `len()` is the world size.
    pub ranks: Vec<RankSlot>,
}

impl StepCheckpoint {
    /// Serialise to the on-disk format (header + payload + CRC footer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&self.step.to_le_bytes());
        payload.extend_from_slice(&(self.ranks.len() as u64).to_le_bytes());
        for slot in &self.ranks {
            debug_assert_eq!(slot.params.len(), slot.adam_m.len());
            debug_assert_eq!(slot.params.len(), slot.adam_v.len());
            payload.extend_from_slice(&(slot.params.len() as u64).to_le_bytes());
            for series in [&slot.params, &slot.adam_m, &slot.adam_v] {
                for v in series.iter() {
                    payload.extend_from_slice(&v.to_le_bytes());
                }
            }
            payload.extend_from_slice(&slot.adam_t.to_le_bytes());
            payload.extend_from_slice(&(slot.losses.len() as u64).to_le_bytes());
            for v in &slot.losses {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        let mut out = Vec::with_capacity(20 + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out
    }

    /// Parse and validate; `None` on any corruption (bad magic, short file,
    /// length mismatch, CRC mismatch, inconsistent sections). Never panics.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 20 || &bytes[..8] != MAGIC {
            return None;
        }
        let payload_len = u64::from_le_bytes(bytes[8..16].try_into().ok()?) as usize;
        if bytes.len() != 16 + payload_len + 4 {
            return None;
        }
        let payload = &bytes[16..16 + payload_len];
        let stored_crc = u32::from_le_bytes(bytes[16 + payload_len..].try_into().ok()?);
        if crc32(payload) != stored_crc {
            return None;
        }

        let mut off = 0usize;
        let take = |off: &mut usize, n: usize| -> Option<&[u8]> {
            let s = payload.get(*off..*off + n)?;
            *off += n;
            Some(s)
        };
        let read_u64 =
            |off: &mut usize| -> Option<u64> { Some(u64::from_le_bytes(take(off, 8)?.try_into().ok()?)) };
        let read_f32s = |off: &mut usize, n: usize| -> Option<Vec<f32>> {
            let raw = take(off, n.checked_mul(4)?)?;
            Some(raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect())
        };

        let step = read_u64(&mut off)?;
        let world = read_u64(&mut off)? as usize;
        // each rank section is ≥ 24 bytes; reject absurd counts up front
        if world == 0 || world > payload_len / 24 + 1 {
            return None;
        }
        let mut ranks = Vec::with_capacity(world);
        for _ in 0..world {
            let n = read_u64(&mut off)? as usize;
            let params = read_f32s(&mut off, n)?;
            let adam_m = read_f32s(&mut off, n)?;
            let adam_v = read_f32s(&mut off, n)?;
            let adam_t = read_u64(&mut off)?;
            let n_losses = read_u64(&mut off)? as usize;
            let losses = read_f32s(&mut off, n_losses)?;
            ranks.push(RankSlot { params, adam_m, adam_v, adam_t, losses });
        }
        if off != payload.len() {
            return None; // trailing garbage protected by CRC, but be strict
        }
        Some(Self { step, ranks })
    }

    /// Crash-safe save (see module docs).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        atomic_write(path, &self.to_bytes())
    }

    /// Load and validate; `None` if the file is missing or corrupt.
    pub fn load(path: &Path) -> Option<Self> {
        Self::from_bytes(&std::fs::read(path).ok()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StepCheckpoint {
        StepCheckpoint {
            step: 12,
            ranks: vec![
                RankSlot {
                    params: vec![1.0, -2.5, 3.25],
                    adam_m: vec![0.1, 0.2, 0.3],
                    adam_v: vec![0.01, 0.02, 0.03],
                    adam_t: 12,
                    losses: vec![9.0, 8.5],
                },
                RankSlot {
                    params: vec![4.0, 5.0, 6.0],
                    adam_m: vec![0.4, 0.5, 0.6],
                    adam_v: vec![0.04, 0.05, 0.06],
                    adam_t: 12,
                    losses: vec![9.1, 8.6],
                },
            ],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // standard test vector: CRC32("123456789") = 0xCBF43926
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_update_streams_to_the_same_digest() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0, 1, 7, 20, data.len()] {
            let (a, b) = data.split_at(split);
            let streamed = !crc32_update(crc32_update(0xFFFF_FFFF, a), b);
            assert_eq!(streamed, crc32(data), "split at {split}");
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let back = StepCheckpoint::from_bytes(&bytes).expect("must parse");
        assert_eq!(ck, back);
    }

    #[test]
    fn save_load_roundtrip_atomic() {
        let dir = std::env::temp_dir().join("geofm-resilience-ckpt-rt");
        let path = dir.join("latest.ckpt");
        let ck = sample();
        ck.save(&path).unwrap();
        assert_eq!(StepCheckpoint::load(&path), Some(ck.clone()));
        // overwrite with a newer one; no tmp residue should be loadable
        let mut ck2 = ck.clone();
        ck2.step = 24;
        ck2.save(&path).unwrap();
        assert_eq!(StepCheckpoint::load(&path).unwrap().step, 24);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_anywhere_is_rejected() {
        let bytes = sample().to_bytes();
        // every prefix length, including section boundaries, must fail to parse
        for cut in 0..bytes.len() {
            assert!(
                StepCheckpoint::from_bytes(&bytes[..cut]).is_none(),
                "truncation at byte {cut} must be rejected"
            );
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let bytes = sample().to_bytes();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                StepCheckpoint::from_bytes(&bad).is_none(),
                "bit flip at byte {pos} must be rejected"
            );
        }
    }

    #[test]
    fn stale_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[..8].copy_from_slice(b"GEOFMSC0");
        assert!(StepCheckpoint::from_bytes(&bytes).is_none());
    }

    #[test]
    fn missing_file_is_none() {
        assert!(StepCheckpoint::load(Path::new("/nonexistent/geofm.ckpt")).is_none());
    }
}
