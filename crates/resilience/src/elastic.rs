//! World-size-independent elastic checkpoints (format `GEOFMCK3`).
//!
//! The step checkpoints of [`crate::ckpt`] store *per-rank shards*: a file
//! written by a world of N ranks can only be resumed by a world of exactly
//! N ranks. That coupling is what makes a permanently lost rank fatal — the
//! surviving N−1 ranks hold a perfectly good model but no checkpoint they
//! can read. `GEOFMCK3` breaks the coupling by storing the **global**
//! (unsharded, unpadded) state plus the layout needed to re-derive any
//! sharding:
//!
//! ```text
//! GEOFMCK3 | u64 payload_len | payload | u32 crc32(payload)
//! payload := u64 step | u64 world_written | u64 shard_n_written
//!          | u64 adam_t
//!          | u64 n_units | n_units × u64 unit_sizes
//!          | u64 n_params | n_params × f32 params
//!          | n_params × f32 adam_m | n_params × f32 adam_v
//!          | u64 n_losses | n_losses × f32 mean_losses
//! ```
//!
//! `world_written` / `shard_n_written` are *provenance*, not constraints: a
//! reader at any world size rebuilds its own `FlatLayout` from `unit_sizes`
//! and extracts its shards from the global buffers. Padding is **not**
//! stored — it is a function of the shard-group size, so it must be
//! re-derived by the reader, never trusted from disk.
//!
//! Unlike the `Option`-returning legacy readers, every failure here is a
//! structured [`CkptError`] so callers (and the corruption test suite) can
//! distinguish truncation from bit rot from a stale format version. A
//! `GEOFMSC1` or `GEOFMCK2` file fed to this reader is reported as
//! [`CkptError::LegacyFormat`] rather than a generic bad-magic error, so
//! upgrade paths can be explicit.

use crate::ckpt::{atomic_write, crc32};
use std::path::Path;

const MAGIC: &[u8; 8] = b"GEOFMCK3";

/// Magics of older workspace formats, reported as [`CkptError::LegacyFormat`].
const LEGACY_MAGICS: [&[u8; 8]; 3] = [b"GEOFMSC1", b"GEOFMCK2", b"GEOFMCK1"];

/// Structured parse/IO failure for elastic checkpoints. Never a panic:
/// every malformed input maps to exactly one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The file ends before the structure it promises (`needed` more bytes
    /// than the `have` available at the failing section).
    Truncated {
        /// Bytes present.
        have: usize,
        /// Bytes the header/section demanded.
        needed: usize,
    },
    /// The first 8 bytes are not a known checkpoint magic.
    BadMagic {
        /// The bytes found (lossy, for diagnostics).
        found: [u8; 8],
    },
    /// The magic belongs to an older workspace format that must be
    /// migrated, not silently reinterpreted.
    LegacyFormat {
        /// The legacy magic as a string (e.g. `"GEOFMSC1"`).
        magic: &'static str,
    },
    /// The CRC32 footer does not match the payload (bit rot / torn write).
    BadCrc {
        /// CRC stored in the footer.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// Internally inconsistent sections (e.g. a length field that
    /// overflows the payload, zero units, trailing bytes).
    Malformed(&'static str),
    /// The checkpoint parses but does not describe this model: its
    /// `unit_sizes` differ from the live model's.
    LayoutMismatch {
        /// Units recorded in the checkpoint.
        ckpt_units: Vec<usize>,
        /// Units of the live model.
        model_units: Vec<usize>,
    },
    /// Filesystem error (missing file, permission, short read).
    Io(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { have, needed } => {
                write!(f, "truncated checkpoint: have {have} bytes, need {needed}")
            }
            Self::BadMagic { found } => {
                write!(f, "bad checkpoint magic {:?}", String::from_utf8_lossy(found))
            }
            Self::LegacyFormat { magic } => {
                write!(f, "legacy checkpoint format {magic} (expected GEOFMCK3)")
            }
            Self::BadCrc { stored, computed } => {
                write!(f, "checkpoint CRC mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            Self::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            Self::LayoutMismatch { ckpt_units, model_units } => {
                write!(f, "checkpoint layout {ckpt_units:?} does not match model {model_units:?}")
            }
            Self::Io(e) => write!(f, "checkpoint io error: {e}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// A world-size-independent training checkpoint: global parameter and
/// AdamW moment buffers plus the unit layout and (informational) shard-map
/// provenance. Readable at any world size.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ElasticCheckpoint {
    /// Number of fully completed steps (the run resumes at this index).
    pub step: u64,
    /// World size of the writer — provenance only, never a read constraint.
    pub world_written: u64,
    /// Shard-group size of the writer — provenance only.
    pub shard_n_written: u64,
    /// AdamW step counter (global; identical on every rank by SPMD).
    pub adam_t: u64,
    /// Per-unit parameter counts — the global flat layout. A reader builds
    /// `FlatLayout::new(&unit_sizes, its_own_shard_n)` and extracts shards.
    pub unit_sizes: Vec<usize>,
    /// Global unpadded flat parameters (length = sum of `unit_sizes`).
    pub params: Vec<f32>,
    /// Global AdamW first moments, aligned with `params`.
    pub adam_m: Vec<f32>,
    /// Global AdamW second moments, aligned with `params`.
    pub adam_v: Vec<f32>,
    /// World-mean loss per completed step (length = `step`; guard-skipped
    /// steps carry the canonical NaN placeholder).
    pub mean_losses: Vec<f32>,
}

impl ElasticCheckpoint {
    /// Serialise to the on-disk format (header + payload + CRC footer).
    pub fn to_bytes(&self) -> Vec<u8> {
        debug_assert_eq!(self.params.len(), self.adam_m.len());
        debug_assert_eq!(self.params.len(), self.adam_v.len());
        let mut payload = Vec::new();
        for v in [self.step, self.world_written, self.shard_n_written, self.adam_t] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        payload.extend_from_slice(&(self.unit_sizes.len() as u64).to_le_bytes());
        for &u in &self.unit_sizes {
            payload.extend_from_slice(&(u as u64).to_le_bytes());
        }
        payload.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for series in [&self.params, &self.adam_m, &self.adam_v] {
            for v in series.iter() {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        payload.extend_from_slice(&(self.mean_losses.len() as u64).to_le_bytes());
        for v in &self.mean_losses {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        let mut out = Vec::with_capacity(20 + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out
    }

    /// Parse and validate. Every malformed input is a [`CkptError`]; this
    /// never panics, whatever the bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        if bytes.len() < 8 {
            return Err(CkptError::Truncated { have: bytes.len(), needed: 8 });
        }
        if &bytes[..8] != MAGIC {
            for legacy in LEGACY_MAGICS {
                if &bytes[..8] == legacy {
                    // `legacy` is a 'static ASCII literal, so this never fails
                    let magic = std::str::from_utf8(legacy).unwrap_or("legacy");
                    return Err(CkptError::LegacyFormat { magic });
                }
            }
            let mut found = [0u8; 8];
            found.copy_from_slice(&bytes[..8]);
            return Err(CkptError::BadMagic { found });
        }
        if bytes.len() < 20 {
            return Err(CkptError::Truncated { have: bytes.len(), needed: 20 });
        }
        let payload_len =
            u64::from_le_bytes(bytes[8..16].try_into().expect("fixed 8-byte slice")) as usize;
        let total = match payload_len.checked_add(20) {
            Some(t) => t,
            None => return Err(CkptError::Malformed("payload length overflows")),
        };
        if bytes.len() < total {
            return Err(CkptError::Truncated { have: bytes.len(), needed: total });
        }
        if bytes.len() > total {
            return Err(CkptError::Malformed("trailing bytes after CRC footer"));
        }
        let payload = &bytes[16..16 + payload_len];
        let stored =
            u32::from_le_bytes(bytes[16 + payload_len..].try_into().expect("fixed 4-byte slice"));
        let computed = crc32(payload);
        if stored != computed {
            return Err(CkptError::BadCrc { stored, computed });
        }

        let mut off = 0usize;
        let take = |off: &mut usize, n: usize| -> Result<&[u8], CkptError> {
            let end = off
                .checked_add(n)
                .ok_or(CkptError::Malformed("section length overflows"))?;
            let s = payload
                .get(*off..end)
                .ok_or(CkptError::Truncated { have: payload.len() - *off, needed: n })?;
            *off = end;
            Ok(s)
        };
        let read_u64 = |off: &mut usize| -> Result<u64, CkptError> {
            Ok(u64::from_le_bytes(take(off, 8)?.try_into().expect("fixed 8-byte slice")))
        };
        let read_f32s = |off: &mut usize, n: usize| -> Result<Vec<f32>, CkptError> {
            let raw = take(off, n.checked_mul(4).ok_or(CkptError::Malformed("f32 count overflows"))?)?;
            Ok(raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect())
        };

        let step = read_u64(&mut off)?;
        let world_written = read_u64(&mut off)?;
        let shard_n_written = read_u64(&mut off)?;
        let adam_t = read_u64(&mut off)?;
        let n_units = read_u64(&mut off)? as usize;
        if n_units == 0 {
            return Err(CkptError::Malformed("zero units"));
        }
        if n_units > payload_len / 8 {
            return Err(CkptError::Malformed("unit count exceeds payload"));
        }
        let mut unit_sizes = Vec::with_capacity(n_units);
        let mut unit_total = 0usize;
        for _ in 0..n_units {
            let u = read_u64(&mut off)? as usize;
            unit_total = unit_total
                .checked_add(u)
                .ok_or(CkptError::Malformed("unit sizes overflow"))?;
            unit_sizes.push(u);
        }
        let n_params = read_u64(&mut off)? as usize;
        if n_params != unit_total {
            return Err(CkptError::Malformed("parameter count disagrees with unit sizes"));
        }
        let params = read_f32s(&mut off, n_params)?;
        let adam_m = read_f32s(&mut off, n_params)?;
        let adam_v = read_f32s(&mut off, n_params)?;
        let n_losses = read_u64(&mut off)? as usize;
        let mean_losses = read_f32s(&mut off, n_losses)?;
        if off != payload.len() {
            return Err(CkptError::Malformed("payload bytes left over"));
        }
        Ok(Self {
            step,
            world_written,
            shard_n_written,
            adam_t,
            unit_sizes,
            params,
            adam_m,
            adam_v,
            mean_losses,
        })
    }

    /// Check that this checkpoint describes a model with `model_units`.
    /// [`CkptError::LayoutMismatch`] is the structured "wrong model /
    /// wrong world of units" verdict the trainer surfaces on resume.
    pub fn validate_units(&self, model_units: &[usize]) -> Result<(), CkptError> {
        if self.unit_sizes != model_units {
            return Err(CkptError::LayoutMismatch {
                ckpt_units: self.unit_sizes.clone(),
                model_units: model_units.to_vec(),
            });
        }
        Ok(())
    }

    /// Crash-safe save (`.tmp` sibling → fsync → rename, like the legacy
    /// formats).
    pub fn save(&self, path: &Path) -> Result<(), CkptError> {
        atomic_write(path, &self.to_bytes()).map_err(|e| CkptError::Io(e.to_string()))
    }

    /// Load and validate from disk.
    pub fn load(path: &Path) -> Result<Self, CkptError> {
        let bytes = std::fs::read(path).map_err(|e| CkptError::Io(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ElasticCheckpoint {
        ElasticCheckpoint {
            step: 5,
            world_written: 4,
            shard_n_written: 2,
            adam_t: 5,
            unit_sizes: vec![10, 7],
            params: (0..17).map(|i| i as f32 * 0.5).collect(),
            adam_m: (0..17).map(|i| i as f32 * 0.01).collect(),
            adam_v: (0..17).map(|i| i as f32 * 0.001).collect(),
            mean_losses: vec![3.0, 2.5, f32::NAN, 2.0, 1.75],
        }
    }

    fn bits(ck: &ElasticCheckpoint) -> Vec<u32> {
        ck.params
            .iter()
            .chain(&ck.adam_m)
            .chain(&ck.adam_v)
            .chain(&ck.mean_losses)
            .map(|v| v.to_bits())
            .collect()
    }

    #[test]
    fn roundtrip_is_bit_exact_including_nan_losses() {
        let ck = sample();
        let back = ElasticCheckpoint::from_bytes(&ck.to_bytes()).expect("must parse");
        assert_eq!(bits(&ck), bits(&back));
        assert_eq!(back.step, 5);
        assert_eq!(back.unit_sizes, vec![10, 7]);
        assert_eq!(back.world_written, 4);
        assert_eq!(back.shard_n_written, 2);
    }

    #[test]
    fn truncation_anywhere_is_a_structured_error() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            match ElasticCheckpoint::from_bytes(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("truncation at byte {cut} must be rejected"),
            }
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let bytes = sample().to_bytes();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x20;
            assert!(
                ElasticCheckpoint::from_bytes(&bad).is_err(),
                "bit flip at byte {pos} must be rejected"
            );
        }
    }

    #[test]
    fn legacy_magics_are_named() {
        let mut bytes = sample().to_bytes();
        bytes[..8].copy_from_slice(b"GEOFMSC1");
        assert_eq!(
            ElasticCheckpoint::from_bytes(&bytes),
            Err(CkptError::LegacyFormat { magic: "GEOFMSC1" })
        );
        bytes[..8].copy_from_slice(b"GEOFMCK2");
        assert_eq!(
            ElasticCheckpoint::from_bytes(&bytes),
            Err(CkptError::LegacyFormat { magic: "GEOFMCK2" })
        );
    }

    #[test]
    fn garbage_magic_is_bad_magic() {
        assert!(matches!(
            ElasticCheckpoint::from_bytes(b"NOTACKPT-and-the-rest"),
            Err(CkptError::BadMagic { .. })
        ));
        assert!(matches!(
            ElasticCheckpoint::from_bytes(b"abc"),
            Err(CkptError::Truncated { .. })
        ));
    }

    #[test]
    fn layout_mismatch_is_structured() {
        let ck = sample();
        assert!(ck.validate_units(&[10, 7]).is_ok());
        assert!(matches!(
            ck.validate_units(&[10, 8]),
            Err(CkptError::LayoutMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.extend_from_slice(&[0xAB; 7]);
        assert_eq!(
            ElasticCheckpoint::from_bytes(&bytes),
            Err(CkptError::Malformed("trailing bytes after CRC footer"))
        );
    }

    #[test]
    fn save_load_roundtrip_and_missing_file_is_io() {
        let dir = std::env::temp_dir().join("geofm-elastic-ckpt-rt");
        let path = dir.join("elastic.ckpt");
        let ck = sample();
        ck.save(&path).unwrap();
        let back = ElasticCheckpoint::load(&path).unwrap();
        assert_eq!(bits(&ck), bits(&back));
        assert!(!path.with_extension("tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
        assert!(matches!(ElasticCheckpoint::load(&path), Err(CkptError::Io(_))));
    }
}
