//! Deterministic fault injection plans.
//!
//! A [`FaultPlan`] is a fixed schedule of faults decided before a run
//! starts — either constructed explicitly (regression tests) or sampled
//! from a seed (fuzz-style campaigns). Plans are shared across rank
//! threads behind an `Arc`; crash-type events are *one-shot* (interior
//! atomic "fired" flags) so a crash injected at step *k* fires on the
//! first attempt only and the post-restart attempt runs through.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Rank `rank` dies at the top of step `step` (before its compute).
    RankCrash {
        /// Global rank that crashes.
        rank: usize,
        /// Step index at which it crashes.
        step: usize,
    },
    /// Rank `rank` stalls for `delay_ms` before step `step` — an OS-noise /
    /// slow-NIC straggler. Repeatable: it also fires on re-execution after
    /// a restart (the slow node stays slow).
    SlowRank {
        /// Global rank that straggles.
        rank: usize,
        /// Step index at which it straggles.
        step: usize,
        /// Injected delay in milliseconds.
        delay_ms: u64,
    },
    /// The checkpoint writer crashes mid-buffer while persisting the
    /// checkpoint taken after step `step` (a torn write: partial tmp file,
    /// no rename).
    CheckpointCrash {
        /// Step index whose checkpoint write is interrupted.
        step: usize,
    },
}

#[derive(Debug)]
struct Event {
    kind: FaultKind,
    fired: AtomicBool,
}

/// A deterministic schedule of faults for one run.
#[derive(Debug, Default)]
pub struct FaultPlan {
    events: Vec<Event>,
}

impl FaultPlan {
    /// The empty plan: nothing ever fails.
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a [`FaultKind::RankCrash`].
    pub fn with_rank_crash(mut self, rank: usize, step: usize) -> Self {
        self.push(FaultKind::RankCrash { rank, step });
        self
    }

    /// Add a [`FaultKind::SlowRank`].
    pub fn with_slow_rank(mut self, rank: usize, step: usize, delay: Duration) -> Self {
        self.push(FaultKind::SlowRank { rank, step, delay_ms: delay.as_millis() as u64 });
        self
    }

    /// Add a [`FaultKind::CheckpointCrash`].
    pub fn with_checkpoint_crash(mut self, step: usize) -> Self {
        self.push(FaultKind::CheckpointCrash { step });
        self
    }

    /// Sample a random plan: each (rank, step) cell crashes independently
    /// with probability `crash_prob`. Deterministic per seed.
    pub fn seeded(seed: u64, world: usize, steps: usize, crash_prob: f64) -> Self {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut plan = Self::none();
        for step in 0..steps {
            for rank in 0..world {
                if rng.gen::<f64>() < crash_prob {
                    plan.push(FaultKind::RankCrash { rank, step });
                }
            }
        }
        plan
    }

    fn push(&mut self, kind: FaultKind) {
        self.events.push(Event { kind, fired: AtomicBool::new(false) });
    }

    /// Whether the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All scheduled fault kinds (for the simulator, which keeps its own
    /// fired-state so simulated sweeps don't consume the plan).
    pub fn events(&self) -> Vec<FaultKind> {
        self.events.iter().map(|e| e.kind).collect()
    }

    /// One-shot: returns `true` the first time rank `rank` reaches a step
    /// with a scheduled crash, `false` on re-execution after restart.
    pub fn take_crash(&self, rank: usize, step: usize) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::RankCrash { rank: r, step: s } if r == rank && s == step)
                && !e.fired.swap(true, Ordering::AcqRel)
        })
    }

    /// Total straggler delay injected for `(rank, step)` (repeatable).
    pub fn slow_delay(&self, rank: usize, step: usize) -> Option<Duration> {
        let ms: u64 = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::SlowRank { rank: r, step: s, delay_ms } if r == rank && s == step => {
                    Some(delay_ms)
                }
                _ => None,
            })
            .sum();
        (ms > 0).then(|| Duration::from_millis(ms))
    }

    /// One-shot: whether the checkpoint written after `step` should crash
    /// mid-buffer.
    pub fn take_checkpoint_crash(&self, step: usize) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::CheckpointCrash { step: s } if s == step)
                && !e.fired.swap(true, Ordering::AcqRel)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_fires_exactly_once() {
        let plan = FaultPlan::none().with_rank_crash(1, 3);
        assert!(!plan.take_crash(0, 3));
        assert!(!plan.take_crash(1, 2));
        assert!(plan.take_crash(1, 3));
        assert!(!plan.take_crash(1, 3), "crash must be one-shot");
    }

    #[test]
    fn straggler_is_repeatable_and_sums() {
        let plan = FaultPlan::none()
            .with_slow_rank(2, 5, Duration::from_millis(10))
            .with_slow_rank(2, 5, Duration::from_millis(5));
        assert_eq!(plan.slow_delay(2, 5), Some(Duration::from_millis(15)));
        assert_eq!(plan.slow_delay(2, 5), Some(Duration::from_millis(15)));
        assert_eq!(plan.slow_delay(2, 4), None);
    }

    #[test]
    fn checkpoint_crash_is_one_shot() {
        let plan = FaultPlan::none().with_checkpoint_crash(4);
        assert!(!plan.take_checkpoint_crash(3));
        assert!(plan.take_checkpoint_crash(4));
        assert!(!plan.take_checkpoint_crash(4));
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(7, 8, 100, 0.05);
        let b = FaultPlan::seeded(7, 8, 100, 0.05);
        assert_eq!(a.events(), b.events());
        assert!(!a.is_empty(), "p=0.05 over 800 cells should schedule something");
        let c = FaultPlan::seeded(8, 8, 100, 0.05);
        assert_ne!(a.events(), c.events(), "different seeds give different plans");
    }
}
