//! Deterministic fault injection plans.
//!
//! A [`FaultPlan`] is a fixed schedule of faults decided before a run
//! starts — either constructed explicitly (regression tests) or sampled
//! from a seed (fuzz-style campaigns). Plans are shared across rank
//! threads behind an `Arc`; crash-type events are *one-shot* (interior
//! atomic "fired" flags) so a crash injected at step *k* fires on the
//! first attempt only and the post-restart attempt runs through.
//!
//! Two fault regimes are modelled:
//!
//! * **fail-stop** — [`FaultKind::RankCrash`], [`FaultKind::CheckpointCrash`]:
//!   the component dies and stays dead for the attempt.
//! * **gray** — [`FaultKind::SlowRank`] (one step of OS-noise delay),
//!   [`FaultKind::DegradedRank`] / [`FaultKind::DegradedLink`] (a GCD or
//!   Slingshot link that is *persistently* slower from some step onward),
//!   and [`FaultKind::HangRank`] (a collective participant that stops
//!   responding without dying — the classic RCCL hang). Gray faults are
//!   repeatable across restart attempts, except the hang, which is
//!   one-shot: the whole point of hang recovery is that the re-spawned
//!   world runs through.
//! * **corruption** — [`FaultKind::BitFlipGrad`] (one flipped
//!   mantissa/exponent bit in a rank's reduce contribution — a silent
//!   data corruption event) and [`FaultKind::PoisonLoss`] (a rank's local
//!   loss comes back NaN — the loss-spike/instability regime OReole-FM
//!   reports at billion-parameter scale). Both are one-shot transient
//!   upsets: after a guard rollback (or an elastic restart) the
//!   re-executed step runs clean, which is exactly what makes
//!   rollback-and-skip recovery deterministic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Rank `rank` dies at the top of step `step` (before its compute).
    RankCrash {
        /// Global rank that crashes.
        rank: usize,
        /// Step index at which it crashes.
        step: usize,
    },
    /// Rank `rank` stalls for `delay_ms` before step `step` — an OS-noise /
    /// slow-NIC straggler. Repeatable: it also fires on re-execution after
    /// a restart (the slow node stays slow).
    SlowRank {
        /// Global rank that straggles.
        rank: usize,
        /// Step index at which it straggles.
        step: usize,
        /// Injected delay in milliseconds.
        delay_ms: u64,
    },
    /// The checkpoint writer crashes mid-buffer while persisting the
    /// checkpoint taken after step `step` (a torn write: partial tmp file,
    /// no rename).
    CheckpointCrash {
        /// Step index whose checkpoint write is interrupted.
        step: usize,
    },
    /// Rank `rank` becomes *persistently* slow from step `from_step`
    /// onward: its per-step compute takes `slowdown_permille / 1000` times
    /// as long (a thermally-throttled or half-broken GCD). Repeatable
    /// across restarts — a degraded device stays degraded.
    DegradedRank {
        /// Global rank that degrades.
        rank: usize,
        /// First step affected (every later step is too).
        from_step: usize,
        /// Multiplicative slowdown × 1000 (2500 = 2.5× slower). Stored in
        /// fixed point so the plan stays `Eq`/hashable and byte-stable.
        slowdown_permille: u32,
    },
    /// The network link serving rank `rank` degrades from step `from_step`
    /// onward: every collective this rank participates in takes
    /// `slowdown_permille / 1000` times as long (a flapping or
    /// lane-degraded Slingshot link). Repeatable across restarts.
    DegradedLink {
        /// Global rank behind the degraded link.
        rank: usize,
        /// First step affected (every later step is too).
        from_step: usize,
        /// Multiplicative collective slowdown × 1000.
        slowdown_permille: u32,
    },
    /// Rank `rank` stops responding at the top of step `step` without
    /// dying: it never enters the step's collectives, so without timeout
    /// detection the world would deadlock. One-shot, like a crash — the
    /// post-restart attempt runs through.
    HangRank {
        /// Global rank that hangs.
        rank: usize,
        /// Step index at which it hangs.
        step: usize,
    },
    /// Silent data corruption: one bit of rank `rank`'s gradient-reduce
    /// contribution at step `step` is flipped in flight. `bit` indexes the
    /// flipped bit within one f32 (0–22 mantissa, 23–30 exponent — never
    /// the sign bit, matching the single-event-upset literature); the
    /// corrupted element is chosen deterministically from `bit` by the
    /// collective layer. One-shot: the transient upset does not recur when
    /// the step is re-executed after a rollback.
    BitFlipGrad {
        /// Global rank whose contribution is corrupted.
        rank: usize,
        /// Step index of the corrupted reduce.
        step: usize,
        /// Bit index within the corrupted f32 element (0..=30).
        bit: u32,
    },
    /// Numerical instability: rank `rank`'s local loss at step `step`
    /// comes back NaN (overflow in the loss reduction, a diverging batch).
    /// One-shot, like the bit flip — the re-executed step is clean.
    PoisonLoss {
        /// Global rank whose local loss is poisoned.
        rank: usize,
        /// Step index of the poisoned loss.
        step: usize,
    },
    /// Rank `rank` is lost **permanently** at the top of step `step`: the
    /// node is gone and no replacement exists, so a plain same-world
    /// restart cannot bring it back. An elastic trainer responds by
    /// shrinking the world to the survivors; a non-elastic trainer can only
    /// treat it as a crash. One-shot (the departure happens once).
    RankLeave {
        /// Global rank that leaves for good.
        rank: usize,
        /// Step index at which it departs.
        step: usize,
    },
    /// A spare node becomes available at the top of step `step`: a world
    /// previously shrunk by [`FaultKind::RankLeave`] may re-grow by one
    /// rank. One-shot; ignored when the world is already at full size.
    SpareRejoin {
        /// Step index at which the spare arrives.
        step: usize,
    },
    /// Record `record` of shard `shard` is rotten *on disk*: every read
    /// returns bytes whose CRC does not match. Persistent — retries fail
    /// too, so a defended reader must quarantine the record.
    CorruptRecord {
        /// Shard index holding the rotten record.
        shard: usize,
        /// Record index within the shard.
        record: usize,
    },
    /// One read of record `record` in shard `shard` comes back corrupted
    /// (a transient RPC/DMA upset); the on-disk bytes are fine. One-shot:
    /// the retry succeeds, which is what the retry path is for.
    FlakyRead {
        /// Shard index of the flaky read.
        shard: usize,
        /// Record index within the shard.
        record: usize,
    },
    /// Shard `shard` is missing entirely (an OST went away, a file was
    /// never staged). Persistent — every record of the shard is
    /// unreadable for the whole run.
    MissingShard {
        /// Missing shard index.
        shard: usize,
    },
    /// Shard `shard` was truncated: only the first `keep_records` records
    /// survive; reads past the cut fail. Persistent.
    TruncatedShard {
        /// Truncated shard index.
        shard: usize,
        /// Number of leading records still readable.
        keep_records: usize,
    },
    /// Every read touching shard `shard` takes an extra `delay_ms` — a
    /// contended or degraded OST stripe. Persistent and repeatable.
    SlowShard {
        /// Slow shard index.
        shard: usize,
        /// Extra per-read latency in milliseconds.
        delay_ms: u64,
    },
    /// One read of record `record` in shard `shard` stalls for `stall_ms`
    /// before completing — the classic straggling-OST read a hedged
    /// second request races past. One-shot.
    StalledRead {
        /// Shard index of the stalled read.
        shard: usize,
        /// Record index within the shard.
        record: usize,
        /// Stall duration in milliseconds.
        stall_ms: u64,
    },
    /// Tenant `tenant` fires a traffic burst at serve tick `tick`: `extra`
    /// requests beyond its base rate arrive at once (a retry storm, a
    /// batch-job kickoff, a viral tile). Repeatable — the burst is a
    /// property of the offered load, not of any one server attempt.
    TenantBurst {
        /// Bursting tenant index.
        tenant: usize,
        /// Serve tick at which the burst lands.
        tick: usize,
        /// Extra requests injected on top of the base rate.
        extra: usize,
    },
    /// Tenant `tenant`'s client is slow at serve tick `tick`: every
    /// request it issues that tick is delivered `delay_ms` late (a
    /// congested last mile, a slow uploader holding the request body).
    /// Repeatable — a slow client stays slow for the tick.
    SlowClient {
        /// Tenant behind the slow client.
        tenant: usize,
        /// Serve tick whose requests are delayed.
        tick: usize,
        /// Delivery delay in milliseconds.
        delay_ms: u64,
    },
    /// The worker executing serve batch `batch` (by dispatch sequence
    /// number) hangs mid-inference without dying — the serving twin of
    /// [`FaultKind::HangRank`]. One-shot: the hedged duplicate execution
    /// runs clean, which is what makes hedging a defense rather than a
    /// retry loop.
    WorkerHang {
        /// Dispatch sequence number of the affected batch.
        batch: usize,
    },
}

#[derive(Debug)]
struct Event {
    kind: FaultKind,
    fired: AtomicBool,
}

/// A deterministic schedule of faults for one run.
#[derive(Debug, Default)]
pub struct FaultPlan {
    events: Vec<Event>,
}

/// Per-kind sampling probabilities for [`FaultPlan::seeded`] — the knobs of
/// a randomized chaos campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMix {
    /// Per-(rank, step) crash probability.
    pub crash_prob: f64,
    /// Per-(rank, step) one-step straggler probability.
    pub straggler_prob: f64,
    /// Straggler delay range in milliseconds (uniform, inclusive lo, exclusive hi).
    pub straggler_ms: (u64, u64),
    /// Per-rank probability of becoming a persistently degraded GCD.
    pub degraded_rank_prob: f64,
    /// Per-rank probability of sitting behind a persistently degraded link.
    pub degraded_link_prob: f64,
    /// Degraded slowdown range ×1000 (uniform; applied to both kinds).
    pub slowdown_permille: (u32, u32),
    /// Per-(rank, step) hang probability.
    pub hang_prob: f64,
    /// Per-step torn-checkpoint-write probability.
    pub ckpt_crash_prob: f64,
    /// Per-(rank, step) probability of a silent bit flip in the rank's
    /// reduce contribution ([`FaultKind::BitFlipGrad`]).
    pub bitflip_prob: f64,
    /// Per-(rank, step) probability of a NaN local loss
    /// ([`FaultKind::PoisonLoss`]).
    pub poison_prob: f64,
    /// Per-(rank, step) probability of a *permanent* rank departure
    /// ([`FaultKind::RankLeave`]).
    pub leave_prob: f64,
    /// Per-step probability of a spare node arriving
    /// ([`FaultKind::SpareRejoin`]).
    pub rejoin_prob: f64,
    /// Per-record probability of persistent on-disk rot
    /// ([`FaultKind::CorruptRecord`]). Only consumed by
    /// [`FaultPlan::seeded_with_io`].
    pub io_corrupt_prob: f64,
    /// Per-record probability of a one-shot transient corrupted read
    /// ([`FaultKind::FlakyRead`]).
    pub io_flaky_prob: f64,
    /// Per-record probability of a one-shot stalled read
    /// ([`FaultKind::StalledRead`]).
    pub io_stall_prob: f64,
    /// Stall duration range in milliseconds (uniform, half-open).
    pub io_stall_ms: (u64, u64),
    /// Per-shard probability of the shard being missing entirely
    /// ([`FaultKind::MissingShard`]).
    pub io_missing_prob: f64,
    /// Per-shard probability of truncation ([`FaultKind::TruncatedShard`];
    /// the cut point is uniform over the shard's records).
    pub io_truncate_prob: f64,
    /// Per-shard probability of a persistently slow stripe
    /// ([`FaultKind::SlowShard`]).
    pub io_slow_prob: f64,
    /// Slow-shard per-read delay range in milliseconds (uniform, half-open).
    pub io_slow_ms: (u64, u64),
    /// Per-(tenant, tick) probability of a traffic burst
    /// ([`FaultKind::TenantBurst`]). Only consumed by
    /// [`FaultPlan::seeded_with_serve`].
    pub serve_burst_prob: f64,
    /// Burst size range in extra requests (uniform, half-open).
    pub serve_burst_extra: (usize, usize),
    /// Per-(tenant, tick) probability of a slow client
    /// ([`FaultKind::SlowClient`]).
    pub serve_slow_client_prob: f64,
    /// Slow-client delivery delay range in milliseconds (uniform, half-open).
    pub serve_slow_ms: (u64, u64),
    /// Per-batch-slot probability of a worker hang mid-inference
    /// ([`FaultKind::WorkerHang`]).
    pub serve_hang_prob: f64,
}

impl FaultMix {
    /// Only fail-stop crashes, at probability `p` per (rank, step) cell —
    /// the PR-2 sampling behaviour.
    pub fn crashes_only(p: f64) -> Self {
        Self {
            crash_prob: p,
            straggler_prob: 0.0,
            straggler_ms: (1, 2),
            degraded_rank_prob: 0.0,
            degraded_link_prob: 0.0,
            slowdown_permille: (1500, 4000),
            hang_prob: 0.0,
            ckpt_crash_prob: 0.0,
            bitflip_prob: 0.0,
            poison_prob: 0.0,
            leave_prob: 0.0,
            rejoin_prob: 0.0,
            io_corrupt_prob: 0.0,
            io_flaky_prob: 0.0,
            io_stall_prob: 0.0,
            io_stall_ms: (20, 60),
            io_missing_prob: 0.0,
            io_truncate_prob: 0.0,
            io_slow_prob: 0.0,
            io_slow_ms: (1, 5),
            serve_burst_prob: 0.0,
            serve_burst_extra: (4, 32),
            serve_slow_client_prob: 0.0,
            serve_slow_ms: (5, 40),
            serve_hang_prob: 0.0,
        }
    }

    /// Only corruption faults (bit flips and poisoned losses), each at
    /// probability `p` per (rank, step) cell — the SDC-sweep mix driven by
    /// `tests/sdc.rs`.
    pub fn corruption_only(p: f64) -> Self {
        Self { bitflip_prob: p, poison_prob: p, ..Self::crashes_only(0.0) }
    }

    /// Only ingest-plane I/O faults: per-record rot/flaky/stall at
    /// probability `p_record`, per-shard missing/truncate/slow at
    /// probability `p_shard` — the mix driven by `tests/ingest_chaos.rs`.
    pub fn io_only(p_record: f64, p_shard: f64) -> Self {
        Self {
            io_corrupt_prob: p_record,
            io_flaky_prob: p_record,
            io_stall_prob: p_record,
            io_missing_prob: p_shard,
            io_truncate_prob: p_shard,
            io_slow_prob: p_shard,
            ..Self::crashes_only(0.0)
        }
    }

    /// Only serving-plane faults: per-(tenant, tick) bursts and slow
    /// clients at `p_traffic`, per-batch worker hangs at `p_hang` — the
    /// mix driven by `tests/serve_chaos.rs`.
    pub fn serve_only(p_traffic: f64, p_hang: f64) -> Self {
        Self {
            serve_burst_prob: p_traffic,
            serve_slow_client_prob: p_traffic,
            serve_hang_prob: p_hang,
            ..Self::crashes_only(0.0)
        }
    }
}

impl FaultPlan {
    /// The empty plan: nothing ever fails.
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a [`FaultKind::RankCrash`].
    pub fn with_rank_crash(mut self, rank: usize, step: usize) -> Self {
        self.push(FaultKind::RankCrash { rank, step });
        self
    }

    /// Add a [`FaultKind::SlowRank`].
    pub fn with_slow_rank(mut self, rank: usize, step: usize, delay: Duration) -> Self {
        self.push(FaultKind::SlowRank { rank, step, delay_ms: delay.as_millis() as u64 });
        self
    }

    /// Add a [`FaultKind::CheckpointCrash`].
    pub fn with_checkpoint_crash(mut self, step: usize) -> Self {
        self.push(FaultKind::CheckpointCrash { step });
        self
    }

    /// Add a [`FaultKind::DegradedRank`]: `rank` runs `slowdown`× slower
    /// from `from_step` onward.
    pub fn with_degraded_rank(mut self, rank: usize, from_step: usize, slowdown: f64) -> Self {
        self.push(FaultKind::DegradedRank {
            rank,
            from_step,
            slowdown_permille: (slowdown * 1000.0).round() as u32,
        });
        self
    }

    /// Add a [`FaultKind::DegradedLink`]: `rank`'s collectives run
    /// `slowdown`× slower from `from_step` onward.
    pub fn with_degraded_link(mut self, rank: usize, from_step: usize, slowdown: f64) -> Self {
        self.push(FaultKind::DegradedLink {
            rank,
            from_step,
            slowdown_permille: (slowdown * 1000.0).round() as u32,
        });
        self
    }

    /// Add a [`FaultKind::HangRank`].
    pub fn with_hang_rank(mut self, rank: usize, step: usize) -> Self {
        self.push(FaultKind::HangRank { rank, step });
        self
    }

    /// Add a [`FaultKind::BitFlipGrad`]: flip bit `bit` (0..=30) of one
    /// element of `rank`'s reduce contribution at `step`.
    pub fn with_bitflip_grad(mut self, rank: usize, step: usize, bit: u32) -> Self {
        assert!(bit <= 30, "bit must index a mantissa/exponent bit (0..=30)");
        self.push(FaultKind::BitFlipGrad { rank, step, bit });
        self
    }

    /// Add a [`FaultKind::PoisonLoss`]: `rank`'s local loss at `step` is NaN.
    pub fn with_poison_loss(mut self, rank: usize, step: usize) -> Self {
        self.push(FaultKind::PoisonLoss { rank, step });
        self
    }

    /// Add a [`FaultKind::RankLeave`]: `rank` departs permanently at `step`.
    pub fn with_rank_leave(mut self, rank: usize, step: usize) -> Self {
        self.push(FaultKind::RankLeave { rank, step });
        self
    }

    /// Add a [`FaultKind::SpareRejoin`]: a spare arrives at `step`.
    pub fn with_spare_rejoin(mut self, step: usize) -> Self {
        self.push(FaultKind::SpareRejoin { step });
        self
    }

    /// Add a [`FaultKind::CorruptRecord`]: `(shard, record)` is rotten on
    /// disk for the whole run.
    pub fn with_corrupt_record(mut self, shard: usize, record: usize) -> Self {
        self.push(FaultKind::CorruptRecord { shard, record });
        self
    }

    /// Add a [`FaultKind::FlakyRead`]: the first read of `(shard, record)`
    /// comes back corrupted; retries are clean.
    pub fn with_flaky_read(mut self, shard: usize, record: usize) -> Self {
        self.push(FaultKind::FlakyRead { shard, record });
        self
    }

    /// Add a [`FaultKind::MissingShard`].
    pub fn with_missing_shard(mut self, shard: usize) -> Self {
        self.push(FaultKind::MissingShard { shard });
        self
    }

    /// Add a [`FaultKind::TruncatedShard`]: only the first `keep_records`
    /// records of `shard` survive.
    pub fn with_truncated_shard(mut self, shard: usize, keep_records: usize) -> Self {
        self.push(FaultKind::TruncatedShard { shard, keep_records });
        self
    }

    /// Add a [`FaultKind::SlowShard`]: every read of `shard` takes an
    /// extra `delay`.
    pub fn with_slow_shard(mut self, shard: usize, delay: Duration) -> Self {
        self.push(FaultKind::SlowShard { shard, delay_ms: delay.as_millis() as u64 });
        self
    }

    /// Add a [`FaultKind::StalledRead`]: the first read of
    /// `(shard, record)` stalls for `stall` before completing.
    pub fn with_stalled_read(mut self, shard: usize, record: usize, stall: Duration) -> Self {
        self.push(FaultKind::StalledRead { shard, record, stall_ms: stall.as_millis() as u64 });
        self
    }

    /// Add a [`FaultKind::TenantBurst`]: `extra` requests from `tenant`
    /// land on top of the base rate at serve tick `tick`.
    pub fn with_tenant_burst(mut self, tenant: usize, tick: usize, extra: usize) -> Self {
        self.push(FaultKind::TenantBurst { tenant, tick, extra });
        self
    }

    /// Add a [`FaultKind::SlowClient`]: `tenant`'s requests issued at
    /// serve tick `tick` are delivered `delay` late.
    pub fn with_slow_client(mut self, tenant: usize, tick: usize, delay: Duration) -> Self {
        self.push(FaultKind::SlowClient { tenant, tick, delay_ms: delay.as_millis() as u64 });
        self
    }

    /// Add a [`FaultKind::WorkerHang`]: the primary execution of serve
    /// batch `batch` hangs mid-inference (the hedge runs clean).
    pub fn with_worker_hang(mut self, batch: usize) -> Self {
        self.push(FaultKind::WorkerHang { batch });
        self
    }

    /// Sample a random plan from `mix`. Deterministic per seed.
    ///
    /// Sampling distribution (one `StdRng` stream, fixed draw order, so the
    /// same seed always yields byte-identical plans):
    ///
    /// 1. for each step (ascending), for each rank (ascending): one
    ///    Bernoulli draw per cell-level kind in the fixed order *crash*,
    ///    *straggler*, *hang*, *bitflip*, *poison*; a straggler's delay is
    ///    uniform in `straggler_ms` (half-open) and a bit flip's bit index
    ///    is uniform in `0..31` (mantissa/exponent bits only);
    /// 2. for each step (ascending): a Bernoulli `ckpt_crash_prob` draw;
    /// 3. for each rank (ascending): Bernoulli `degraded_rank_prob` then
    ///    `degraded_link_prob`; each hit draws `from_step` uniform in
    ///    `[0, steps)` and a slowdown uniform in `slowdown_permille`
    ///    (half-open);
    /// 4. for each step (ascending), for each rank (ascending): one
    ///    Bernoulli `leave_prob` draw; then for each step (ascending): one
    ///    Bernoulli `rejoin_prob` draw. These elastic streams sit *after*
    ///    every older stream so pre-elastic mixes sample byte-identical
    ///    plans.
    ///
    /// Every draw is consumed unconditionally *only when its governing
    /// probability is non-zero*, so mixes that zero a kind skip its stream
    /// without perturbing the remaining kinds' draws relative to plans
    /// sampled with the same non-zero probabilities.
    pub fn seeded(seed: u64, world: usize, steps: usize, mix: &FaultMix) -> Self {
        Self::seeded_with_io(seed, world, steps, 0, 0, mix)
    }

    /// [`FaultPlan::seeded`] extended with ingest-plane I/O fault streams
    /// over a corpus of `shards` shards × `records_per_shard` records.
    ///
    /// The I/O streams draw *after* every older stream (after the rejoin
    /// stream), in the fixed order: per record (shard ascending, record
    /// ascending) *corrupt*, *flaky*, *stall*; then per shard (ascending)
    /// *missing*, *truncate*, *slow*. As with every other kind, a stream
    /// whose governing probability is zero consumes no draws — so plans
    /// sampled by pre-ingest mixes stay byte-identical, and
    /// [`FaultPlan::seeded`] is exactly `seeded_with_io` over zero shards.
    pub fn seeded_with_io(
        seed: u64,
        world: usize,
        steps: usize,
        shards: usize,
        records_per_shard: usize,
        mix: &FaultMix,
    ) -> Self {
        Self::seeded_with_serve(seed, world, steps, shards, records_per_shard, 0, 0, mix)
    }

    /// [`FaultPlan::seeded_with_io`] extended with serving-plane fault
    /// streams over `tenants` tenants × `ticks` traffic ticks.
    ///
    /// The serve streams draw *after* every older stream (after the
    /// per-shard I/O draws), in the fixed order: per (tick ascending,
    /// tenant ascending) *burst* then *slow client*; then per batch slot
    /// (tick ascending) *worker hang*. A stream whose governing
    /// probability is zero consumes no draws, so plans sampled by
    /// pre-serve mixes stay byte-identical and `seeded_with_io` is
    /// exactly `seeded_with_serve` over zero tenants/ticks.
    #[allow(clippy::too_many_arguments)]
    pub fn seeded_with_serve(
        seed: u64,
        world: usize,
        steps: usize,
        shards: usize,
        records_per_shard: usize,
        tenants: usize,
        ticks: usize,
        mix: &FaultMix,
    ) -> Self {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut plan = Self::none();
        for step in 0..steps {
            for rank in 0..world {
                if mix.crash_prob > 0.0 && rng.gen::<f64>() < mix.crash_prob {
                    plan.push(FaultKind::RankCrash { rank, step });
                }
                if mix.straggler_prob > 0.0 && rng.gen::<f64>() < mix.straggler_prob {
                    let delay_ms = rng.gen_range(mix.straggler_ms.0..mix.straggler_ms.1.max(mix.straggler_ms.0 + 1));
                    plan.push(FaultKind::SlowRank { rank, step, delay_ms });
                }
                if mix.hang_prob > 0.0 && rng.gen::<f64>() < mix.hang_prob {
                    plan.push(FaultKind::HangRank { rank, step });
                }
                if mix.bitflip_prob > 0.0 && rng.gen::<f64>() < mix.bitflip_prob {
                    let bit = rng.gen_range(0..31u32);
                    plan.push(FaultKind::BitFlipGrad { rank, step, bit });
                }
                if mix.poison_prob > 0.0 && rng.gen::<f64>() < mix.poison_prob {
                    plan.push(FaultKind::PoisonLoss { rank, step });
                }
            }
        }
        for step in 0..steps {
            if mix.ckpt_crash_prob > 0.0 && rng.gen::<f64>() < mix.ckpt_crash_prob {
                plan.push(FaultKind::CheckpointCrash { step });
            }
        }
        let (lo, hi) = mix.slowdown_permille;
        let hi = hi.max(lo + 1);
        for rank in 0..world {
            if mix.degraded_rank_prob > 0.0 && rng.gen::<f64>() < mix.degraded_rank_prob {
                let from_step = rng.gen_range(0..steps.max(1));
                let slowdown_permille = rng.gen_range(lo..hi);
                plan.push(FaultKind::DegradedRank { rank, from_step, slowdown_permille });
            }
            if mix.degraded_link_prob > 0.0 && rng.gen::<f64>() < mix.degraded_link_prob {
                let from_step = rng.gen_range(0..steps.max(1));
                let slowdown_permille = rng.gen_range(lo..hi);
                plan.push(FaultKind::DegradedLink { rank, from_step, slowdown_permille });
            }
        }
        for step in 0..steps {
            for rank in 0..world {
                if mix.leave_prob > 0.0 && rng.gen::<f64>() < mix.leave_prob {
                    plan.push(FaultKind::RankLeave { rank, step });
                }
            }
        }
        for step in 0..steps {
            if mix.rejoin_prob > 0.0 && rng.gen::<f64>() < mix.rejoin_prob {
                plan.push(FaultKind::SpareRejoin { step });
            }
        }
        for shard in 0..shards {
            for record in 0..records_per_shard {
                if mix.io_corrupt_prob > 0.0 && rng.gen::<f64>() < mix.io_corrupt_prob {
                    plan.push(FaultKind::CorruptRecord { shard, record });
                }
                if mix.io_flaky_prob > 0.0 && rng.gen::<f64>() < mix.io_flaky_prob {
                    plan.push(FaultKind::FlakyRead { shard, record });
                }
                if mix.io_stall_prob > 0.0 && rng.gen::<f64>() < mix.io_stall_prob {
                    let (lo, hi) = mix.io_stall_ms;
                    let stall_ms = rng.gen_range(lo..hi.max(lo + 1));
                    plan.push(FaultKind::StalledRead { shard, record, stall_ms });
                }
            }
        }
        for shard in 0..shards {
            if mix.io_missing_prob > 0.0 && rng.gen::<f64>() < mix.io_missing_prob {
                plan.push(FaultKind::MissingShard { shard });
            }
            if mix.io_truncate_prob > 0.0 && rng.gen::<f64>() < mix.io_truncate_prob {
                let keep_records = rng.gen_range(0..records_per_shard.max(1));
                plan.push(FaultKind::TruncatedShard { shard, keep_records });
            }
            if mix.io_slow_prob > 0.0 && rng.gen::<f64>() < mix.io_slow_prob {
                let (lo, hi) = mix.io_slow_ms;
                let delay_ms = rng.gen_range(lo..hi.max(lo + 1));
                plan.push(FaultKind::SlowShard { shard, delay_ms });
            }
        }
        for tick in 0..ticks {
            for tenant in 0..tenants {
                if mix.serve_burst_prob > 0.0 && rng.gen::<f64>() < mix.serve_burst_prob {
                    let (lo, hi) = mix.serve_burst_extra;
                    let extra = rng.gen_range(lo..hi.max(lo + 1));
                    plan.push(FaultKind::TenantBurst { tenant, tick, extra });
                }
                if mix.serve_slow_client_prob > 0.0
                    && rng.gen::<f64>() < mix.serve_slow_client_prob
                {
                    let (lo, hi) = mix.serve_slow_ms;
                    let delay_ms = rng.gen_range(lo..hi.max(lo + 1));
                    plan.push(FaultKind::SlowClient { tenant, tick, delay_ms });
                }
            }
        }
        for batch in 0..ticks {
            if mix.serve_hang_prob > 0.0 && rng.gen::<f64>() < mix.serve_hang_prob {
                plan.push(FaultKind::WorkerHang { batch });
            }
        }
        plan
    }

    fn push(&mut self, kind: FaultKind) {
        self.events.push(Event { kind, fired: AtomicBool::new(false) });
    }

    /// Whether the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All scheduled fault kinds (for the simulator, which keeps its own
    /// fired-state so simulated sweeps don't consume the plan).
    pub fn events(&self) -> Vec<FaultKind> {
        self.events.iter().map(|e| e.kind).collect()
    }

    /// One-shot: returns `true` the first time rank `rank` reaches a step
    /// with a scheduled crash, `false` on re-execution after restart.
    pub fn take_crash(&self, rank: usize, step: usize) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::RankCrash { rank: r, step: s } if r == rank && s == step)
                && !e.fired.swap(true, Ordering::AcqRel)
        })
    }

    /// One-shot: returns `true` the first time rank `rank` reaches a step
    /// with a scheduled hang, `false` on re-execution after restart.
    pub fn take_hang(&self, rank: usize, step: usize) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::HangRank { rank: r, step: s } if r == rank && s == step)
                && !e.fired.swap(true, Ordering::AcqRel)
        })
    }

    /// Total straggler delay injected for `(rank, step)` (repeatable).
    pub fn slow_delay(&self, rank: usize, step: usize) -> Option<Duration> {
        let ms: u64 = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::SlowRank { rank: r, step: s, delay_ms } if r == rank && s == step => {
                    Some(delay_ms)
                }
                _ => None,
            })
            .sum();
        (ms > 0).then(|| Duration::from_millis(ms))
    }

    /// Persistent compute slowdown factor active for `(rank, step)`, if
    /// any: the largest [`FaultKind::DegradedRank`] slowdown whose
    /// `from_step` has been reached. Repeatable — degraded hardware stays
    /// degraded across restart attempts.
    pub fn degraded_slowdown(&self, rank: usize, step: usize) -> Option<f64> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::DegradedRank { rank: r, from_step, slowdown_permille }
                    if r == rank && step >= from_step =>
                {
                    Some(slowdown_permille)
                }
                _ => None,
            })
            .max()
            .map(|p| p as f64 / 1000.0)
    }

    /// Persistent collective slowdown factor active for `(rank, step)`, if
    /// any: the largest [`FaultKind::DegradedLink`] slowdown whose
    /// `from_step` has been reached. Repeatable.
    pub fn link_slowdown(&self, rank: usize, step: usize) -> Option<f64> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::DegradedLink { rank: r, from_step, slowdown_permille }
                    if r == rank && step >= from_step =>
                {
                    Some(slowdown_permille)
                }
                _ => None,
            })
            .max()
            .map(|p| p as f64 / 1000.0)
    }

    /// One-shot: the bit index to flip in rank `rank`'s reduce
    /// contribution at `step`, the first time that cell is reached.
    /// Returns `None` on re-execution after a rollback or restart — the
    /// transient upset does not recur, so recovery runs clean.
    pub fn take_bitflip(&self, rank: usize, step: usize) -> Option<u32> {
        self.events.iter().find_map(|e| match e.kind {
            FaultKind::BitFlipGrad { rank: r, step: s, bit } if r == rank && s == step => {
                (!e.fired.swap(true, Ordering::AcqRel)).then_some(bit)
            }
            _ => None,
        })
    }

    /// One-shot: returns `true` the first time rank `rank` reaches a step
    /// with a scheduled loss poisoning, `false` on re-execution.
    pub fn take_poison(&self, rank: usize, step: usize) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::PoisonLoss { rank: r, step: s } if r == rank && s == step)
                && !e.fired.swap(true, Ordering::AcqRel)
        })
    }

    /// One-shot: whether the checkpoint written after `step` should crash
    /// mid-buffer.
    pub fn take_checkpoint_crash(&self, step: usize) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::CheckpointCrash { step: s } if s == step)
                && !e.fired.swap(true, Ordering::AcqRel)
        })
    }

    /// One-shot: returns `true` the first time rank `rank` reaches a step
    /// with a scheduled permanent departure, `false` on re-execution. The
    /// departure itself is remembered forever — see
    /// [`FaultPlan::has_left`].
    pub fn take_leave(&self, rank: usize, step: usize) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::RankLeave { rank: r, step: s } if r == rank && s == step)
                && !e.fired.swap(true, Ordering::AcqRel)
        })
    }

    /// Whether rank `rank` has *already* departed permanently (a
    /// [`FaultKind::RankLeave`] for it fired). Unlike the one-shot takes
    /// this is a repeatable query: permanence is the whole point.
    pub fn has_left(&self, rank: usize) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::RankLeave { rank: r, .. } if r == rank)
                && e.fired.load(Ordering::Acquire)
        })
    }

    /// One-shot: returns `true` the first time *any* rank reaches `step`
    /// with a scheduled spare arrival. Exactly one caller observes the
    /// arrival (atomic swap), which is what lets one rank trigger the
    /// re-grow on behalf of the world.
    pub fn take_rejoin(&self, step: usize) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::SpareRejoin { step: s } if s == step)
                && !e.fired.swap(true, Ordering::AcqRel)
        })
    }

    /// Whether `(shard, record)` is persistently rotten on disk
    /// ([`FaultKind::CorruptRecord`]). Repeatable — retries read the same
    /// rotten bytes.
    pub fn io_corrupt(&self, shard: usize, record: usize) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::CorruptRecord { shard: sh, record: r }
                if sh == shard && r == record)
        })
    }

    /// One-shot: returns `true` the first time `(shard, record)` is read
    /// with a scheduled flaky read; the retry (and every later read) is
    /// clean.
    pub fn take_io_flaky(&self, shard: usize, record: usize) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::FlakyRead { shard: sh, record: r }
                if sh == shard && r == record)
                && !e.fired.swap(true, Ordering::AcqRel)
        })
    }

    /// Whether shard `shard` is missing entirely (repeatable).
    pub fn io_missing(&self, shard: usize) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::MissingShard { shard: sh } if sh == shard))
    }

    /// If shard `shard` is truncated, the number of leading records still
    /// readable — the *smallest* cut when several truncations overlap.
    /// Repeatable.
    pub fn io_truncated(&self, shard: usize) -> Option<usize> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::TruncatedShard { shard: sh, keep_records } if sh == shard => {
                    Some(keep_records)
                }
                _ => None,
            })
            .min()
    }

    /// Extra per-read latency for shard `shard`, if any — the largest
    /// scheduled delay when several overlap. Repeatable: a contended
    /// stripe stays contended.
    pub fn io_slow(&self, shard: usize) -> Option<Duration> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::SlowShard { shard: sh, delay_ms } if sh == shard => Some(delay_ms),
                _ => None,
            })
            .max()
            .map(Duration::from_millis)
    }

    /// One-shot: the stall duration for the first read of
    /// `(shard, record)` with a scheduled stall; `None` afterwards — the
    /// hedged or retried read completes at normal speed.
    pub fn take_io_stall(&self, shard: usize, record: usize) -> Option<Duration> {
        self.events.iter().find_map(|e| match e.kind {
            FaultKind::StalledRead { shard: sh, record: r, stall_ms }
                if sh == shard && r == record =>
            {
                (!e.fired.swap(true, Ordering::AcqRel)).then(|| Duration::from_millis(stall_ms))
            }
            _ => None,
        })
    }

    /// Extra requests tenant `tenant` fires at serve tick `tick` on top
    /// of its base rate (summed over overlapping bursts). Repeatable —
    /// offered load does not depend on how often the server asks.
    pub fn burst_extra(&self, tenant: usize, tick: usize) -> usize {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::TenantBurst { tenant: t, tick: k, extra } if t == tenant && k == tick => {
                    Some(extra)
                }
                _ => None,
            })
            .sum()
    }

    /// Delivery delay for requests tenant `tenant` issues at serve tick
    /// `tick`, if its client is slow then — the largest delay when
    /// several overlap. Repeatable.
    pub fn client_delay(&self, tenant: usize, tick: usize) -> Option<Duration> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::SlowClient { tenant: t, tick: k, delay_ms } if t == tenant && k == tick => {
                    Some(delay_ms)
                }
                _ => None,
            })
            .max()
            .map(Duration::from_millis)
    }

    /// One-shot: returns `true` the first time serve batch `batch` is
    /// dispatched with a scheduled worker hang; the hedged duplicate (and
    /// any re-dispatch) runs clean.
    pub fn take_worker_hang(&self, batch: usize) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::WorkerHang { batch: b } if b == batch)
                && !e.fired.swap(true, Ordering::AcqRel)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_fires_exactly_once() {
        let plan = FaultPlan::none().with_rank_crash(1, 3);
        assert!(!plan.take_crash(0, 3));
        assert!(!plan.take_crash(1, 2));
        assert!(plan.take_crash(1, 3));
        assert!(!plan.take_crash(1, 3), "crash must be one-shot");
    }

    #[test]
    fn hang_fires_exactly_once() {
        let plan = FaultPlan::none().with_hang_rank(2, 1);
        assert!(!plan.take_hang(2, 0));
        assert!(plan.take_hang(2, 1));
        assert!(!plan.take_hang(2, 1), "hang must be one-shot so restarts run through");
    }

    #[test]
    fn straggler_is_repeatable_and_sums() {
        let plan = FaultPlan::none()
            .with_slow_rank(2, 5, Duration::from_millis(10))
            .with_slow_rank(2, 5, Duration::from_millis(5));
        assert_eq!(plan.slow_delay(2, 5), Some(Duration::from_millis(15)));
        assert_eq!(plan.slow_delay(2, 5), Some(Duration::from_millis(15)));
        assert_eq!(plan.slow_delay(2, 4), None);
    }

    #[test]
    fn degraded_rank_is_persistent_from_step() {
        let plan = FaultPlan::none().with_degraded_rank(1, 3, 2.5);
        assert_eq!(plan.degraded_slowdown(1, 2), None);
        assert_eq!(plan.degraded_slowdown(1, 3), Some(2.5));
        assert_eq!(plan.degraded_slowdown(1, 100), Some(2.5), "degradation persists");
        assert_eq!(plan.degraded_slowdown(0, 3), None);
        // repeatable: querying does not consume
        assert_eq!(plan.degraded_slowdown(1, 3), Some(2.5));
    }

    #[test]
    fn overlapping_degradations_take_the_worst() {
        let plan = FaultPlan::none()
            .with_degraded_rank(0, 0, 1.5)
            .with_degraded_rank(0, 2, 4.0);
        assert_eq!(plan.degraded_slowdown(0, 1), Some(1.5));
        assert_eq!(plan.degraded_slowdown(0, 2), Some(4.0));
    }

    #[test]
    fn degraded_link_is_persistent_and_separate_from_rank() {
        let plan = FaultPlan::none().with_degraded_link(3, 1, 3.0);
        assert_eq!(plan.link_slowdown(3, 0), None);
        assert_eq!(plan.link_slowdown(3, 1), Some(3.0));
        assert_eq!(plan.link_slowdown(3, 9), Some(3.0));
        assert_eq!(plan.degraded_slowdown(3, 1), None, "link fault must not slow compute");
    }

    #[test]
    fn checkpoint_crash_is_one_shot() {
        let plan = FaultPlan::none().with_checkpoint_crash(4);
        assert!(!plan.take_checkpoint_crash(3));
        assert!(plan.take_checkpoint_crash(4));
        assert!(!plan.take_checkpoint_crash(4));
    }

    fn full_mix() -> FaultMix {
        FaultMix {
            crash_prob: 0.03,
            straggler_prob: 0.05,
            straggler_ms: (1, 20),
            degraded_rank_prob: 0.3,
            degraded_link_prob: 0.3,
            slowdown_permille: (1500, 4000),
            hang_prob: 0.02,
            ckpt_crash_prob: 0.1,
            bitflip_prob: 0.03,
            poison_prob: 0.03,
            leave_prob: 0.02,
            rejoin_prob: 0.05,
            ..FaultMix::crashes_only(0.0)
        }
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(7, 8, 100, &full_mix());
        let b = FaultPlan::seeded(7, 8, 100, &full_mix());
        assert_eq!(a.events(), b.events(), "same seed must give the same plan");
        assert!(!a.is_empty(), "this mix over 800 cells should schedule something");
        let c = FaultPlan::seeded(8, 8, 100, &full_mix());
        assert_ne!(a.events(), c.events(), "different seeds give different plans");
    }

    #[test]
    fn seeded_samples_every_gray_kind() {
        // over enough seeds, every kind must appear at least once
        let mut seen = [false; 10];
        for seed in 0..40 {
            for k in FaultPlan::seeded(seed, 8, 50, &full_mix()).events() {
                let i = match k {
                    FaultKind::RankCrash { .. } => 0,
                    FaultKind::SlowRank { .. } => 1,
                    FaultKind::CheckpointCrash { .. } => 2,
                    FaultKind::DegradedRank { .. } => 3,
                    FaultKind::DegradedLink { .. } => 4,
                    FaultKind::HangRank { .. } => 5,
                    FaultKind::BitFlipGrad { .. } => 6,
                    FaultKind::PoisonLoss { .. } => 7,
                    FaultKind::RankLeave { .. } => 8,
                    FaultKind::SpareRejoin { .. } => 9,
                    _ => continue,
                };
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "kinds sampled: {seen:?}");
    }

    #[test]
    fn crashes_only_mix_matches_legacy_sampling() {
        let plan = FaultPlan::seeded(7, 8, 100, &FaultMix::crashes_only(0.05));
        assert!(!plan.is_empty());
        assert!(plan
            .events()
            .iter()
            .all(|k| matches!(k, FaultKind::RankCrash { .. })));
    }

    #[test]
    fn bitflip_fires_exactly_once_with_its_bit() {
        let plan = FaultPlan::none().with_bitflip_grad(1, 3, 17);
        assert_eq!(plan.take_bitflip(0, 3), None);
        assert_eq!(plan.take_bitflip(1, 2), None);
        assert_eq!(plan.take_bitflip(1, 3), Some(17));
        assert_eq!(plan.take_bitflip(1, 3), None, "bit flip must be one-shot");
    }

    #[test]
    fn poison_loss_fires_exactly_once() {
        let plan = FaultPlan::none().with_poison_loss(2, 1);
        assert!(!plan.take_poison(2, 0));
        assert!(plan.take_poison(2, 1));
        assert!(!plan.take_poison(2, 1), "poison must be one-shot so re-execution is clean");
    }

    #[test]
    fn corruption_only_mix_samples_only_corruption_kinds() {
        let plan = FaultPlan::seeded(11, 8, 100, &FaultMix::corruption_only(0.05));
        assert!(!plan.is_empty());
        assert!(plan.events().iter().all(|k| matches!(
            k,
            FaultKind::BitFlipGrad { .. } | FaultKind::PoisonLoss { .. }
        )));
    }

    #[test]
    fn seeded_bitflip_bits_avoid_the_sign_bit() {
        for seed in 0..20 {
            for k in FaultPlan::seeded(seed, 8, 50, &FaultMix::corruption_only(0.1)).events() {
                if let FaultKind::BitFlipGrad { bit, .. } = k {
                    assert!(bit <= 30, "bit {bit} would hit the sign bit");
                }
            }
        }
    }

    #[test]
    fn zeroed_corruption_probs_leave_legacy_draws_unchanged() {
        // PR-3 plans (no corruption kinds in the mix) must sample the
        // exact same schedules now that the draw order has grown two
        // optional tail draws per cell.
        let legacy = FaultMix { bitflip_prob: 0.0, poison_prob: 0.0, ..full_mix() };
        let a = FaultPlan::seeded(7, 8, 100, &legacy);
        let b = FaultPlan::seeded(7, 8, 100, &legacy);
        assert_eq!(a.events(), b.events());
        assert!(a.events().iter().all(|k| !matches!(
            k,
            FaultKind::BitFlipGrad { .. } | FaultKind::PoisonLoss { .. }
        )));
    }

    #[test]
    fn rank_leave_fires_once_but_departure_is_remembered() {
        let plan = FaultPlan::none().with_rank_leave(2, 3);
        assert!(!plan.has_left(2), "not departed before the event fires");
        assert!(!plan.take_leave(2, 2));
        assert!(plan.take_leave(2, 3));
        assert!(!plan.take_leave(2, 3), "departure event is one-shot");
        assert!(plan.has_left(2), "but the departure itself is permanent");
        assert!(!plan.has_left(1));
    }

    #[test]
    fn spare_rejoin_is_observed_by_exactly_one_caller() {
        let plan = FaultPlan::none().with_spare_rejoin(4);
        assert!(!plan.take_rejoin(3));
        assert!(plan.take_rejoin(4));
        assert!(!plan.take_rejoin(4), "only one rank may observe the arrival");
    }

    #[test]
    fn elastic_draws_only_append_to_legacy_plans() {
        // The elastic streams sit after every pre-existing draw stream, so
        // turning them on must leave the legacy prefix of the sampled plan
        // byte-identical — only new events may appear, and only at the end.
        let legacy = FaultMix { leave_prob: 0.0, rejoin_prob: 0.0, ..full_mix() };
        for seed in 0..10 {
            let base = FaultPlan::seeded(seed, 8, 50, &legacy).events();
            let grown = FaultPlan::seeded(seed, 8, 50, &full_mix()).events();
            assert!(grown.len() >= base.len());
            assert_eq!(&grown[..base.len()], &base[..], "seed {seed}: legacy prefix perturbed");
            assert!(grown[base.len()..].iter().all(|k| matches!(
                k,
                FaultKind::RankLeave { .. } | FaultKind::SpareRejoin { .. }
            )));
        }
    }

    #[test]
    fn corrupt_record_is_persistent_flaky_read_is_one_shot() {
        let plan = FaultPlan::none().with_corrupt_record(2, 5).with_flaky_read(1, 3);
        assert!(plan.io_corrupt(2, 5));
        assert!(plan.io_corrupt(2, 5), "on-disk rot must survive retries");
        assert!(!plan.io_corrupt(2, 4));
        assert!(!plan.take_io_flaky(1, 2));
        assert!(plan.take_io_flaky(1, 3));
        assert!(!plan.take_io_flaky(1, 3), "flaky read must heal on retry");
    }

    #[test]
    fn missing_and_truncated_shards_are_repeatable() {
        let plan = FaultPlan::none()
            .with_missing_shard(4)
            .with_truncated_shard(2, 7)
            .with_truncated_shard(2, 3);
        assert!(plan.io_missing(4));
        assert!(plan.io_missing(4));
        assert!(!plan.io_missing(3));
        assert_eq!(plan.io_truncated(2), Some(3), "overlapping cuts take the smallest");
        assert_eq!(plan.io_truncated(0), None);
    }

    #[test]
    fn slow_shard_is_repeatable_stalled_read_is_one_shot() {
        let plan = FaultPlan::none()
            .with_slow_shard(1, Duration::from_millis(4))
            .with_stalled_read(0, 9, Duration::from_millis(80));
        assert_eq!(plan.io_slow(1), Some(Duration::from_millis(4)));
        assert_eq!(plan.io_slow(1), Some(Duration::from_millis(4)));
        assert_eq!(plan.io_slow(0), None);
        assert_eq!(plan.take_io_stall(0, 9), Some(Duration::from_millis(80)));
        assert_eq!(plan.take_io_stall(0, 9), None, "hedge target must not stall twice");
    }

    fn io_mix() -> FaultMix {
        FaultMix {
            io_corrupt_prob: 0.05,
            io_flaky_prob: 0.05,
            io_stall_prob: 0.05,
            io_missing_prob: 0.1,
            io_truncate_prob: 0.1,
            io_slow_prob: 0.2,
            ..full_mix()
        }
    }

    #[test]
    fn seeded_with_io_samples_every_io_kind_deterministically() {
        let a = FaultPlan::seeded_with_io(7, 8, 50, 16, 32, &io_mix());
        let b = FaultPlan::seeded_with_io(7, 8, 50, 16, 32, &io_mix());
        assert_eq!(a.events(), b.events());
        let mut seen = [false; 6];
        for seed in 0..20 {
            for k in FaultPlan::seeded_with_io(seed, 8, 50, 16, 32, &io_mix()).events() {
                match k {
                    FaultKind::CorruptRecord { .. } => seen[0] = true,
                    FaultKind::FlakyRead { .. } => seen[1] = true,
                    FaultKind::StalledRead { .. } => seen[2] = true,
                    FaultKind::MissingShard { .. } => seen[3] = true,
                    FaultKind::TruncatedShard { .. } => seen[4] = true,
                    FaultKind::SlowShard { .. } => seen[5] = true,
                    _ => {}
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "io kinds sampled: {seen:?}");
    }

    #[test]
    fn io_draws_only_append_to_legacy_plans() {
        // The I/O streams sit after every pre-existing stream, so turning
        // them on must leave the legacy prefix byte-identical — only new
        // I/O events may appear, and only at the end. `seeded` itself is
        // `seeded_with_io` over zero shards.
        for seed in 0..10 {
            let base = FaultPlan::seeded(seed, 8, 50, &full_mix()).events();
            let grown = FaultPlan::seeded_with_io(seed, 8, 50, 16, 32, &io_mix()).events();
            assert!(grown.len() >= base.len());
            assert_eq!(&grown[..base.len()], &base[..], "seed {seed}: legacy prefix perturbed");
            assert!(grown[base.len()..].iter().all(|k| matches!(
                k,
                FaultKind::CorruptRecord { .. }
                    | FaultKind::FlakyRead { .. }
                    | FaultKind::StalledRead { .. }
                    | FaultKind::MissingShard { .. }
                    | FaultKind::TruncatedShard { .. }
                    | FaultKind::SlowShard { .. }
            )));
        }
    }

    #[test]
    fn seeded_io_events_are_in_range() {
        let mix = io_mix();
        for seed in 0..10 {
            for k in FaultPlan::seeded_with_io(seed, 4, 20, 8, 16, &mix).events() {
                match k {
                    FaultKind::CorruptRecord { shard, record }
                    | FaultKind::FlakyRead { shard, record }
                    | FaultKind::StalledRead { shard, record, .. } => {
                        assert!(shard < 8 && record < 16);
                    }
                    FaultKind::TruncatedShard { shard, keep_records } => {
                        assert!(shard < 8 && keep_records < 16);
                    }
                    FaultKind::MissingShard { shard } | FaultKind::SlowShard { shard, .. } => {
                        assert!(shard < 8);
                    }
                    _ => {}
                }
                if let FaultKind::StalledRead { stall_ms, .. } = k {
                    assert!((mix.io_stall_ms.0..mix.io_stall_ms.1).contains(&stall_ms));
                }
                if let FaultKind::SlowShard { delay_ms, .. } = k {
                    assert!((mix.io_slow_ms.0..mix.io_slow_ms.1).contains(&delay_ms));
                }
            }
        }
    }

    #[test]
    fn io_only_mix_samples_only_io_kinds() {
        let plan = FaultPlan::seeded_with_io(3, 4, 20, 8, 32, &FaultMix::io_only(0.05, 0.1));
        assert!(!plan.is_empty());
        assert!(plan.events().iter().all(|k| matches!(
            k,
            FaultKind::CorruptRecord { .. }
                | FaultKind::FlakyRead { .. }
                | FaultKind::StalledRead { .. }
                | FaultKind::MissingShard { .. }
                | FaultKind::TruncatedShard { .. }
                | FaultKind::SlowShard { .. }
        )));
    }

    #[test]
    fn burst_and_slow_client_are_repeatable_worker_hang_is_one_shot() {
        let plan = FaultPlan::none()
            .with_tenant_burst(1, 4, 10)
            .with_tenant_burst(1, 4, 5)
            .with_slow_client(0, 2, Duration::from_millis(30))
            .with_worker_hang(7);
        assert_eq!(plan.burst_extra(1, 4), 15, "overlapping bursts sum");
        assert_eq!(plan.burst_extra(1, 4), 15, "offered load must not be consumed");
        assert_eq!(plan.burst_extra(0, 4), 0);
        assert_eq!(plan.client_delay(0, 2), Some(Duration::from_millis(30)));
        assert_eq!(plan.client_delay(0, 2), Some(Duration::from_millis(30)));
        assert_eq!(plan.client_delay(0, 3), None);
        assert!(!plan.take_worker_hang(6));
        assert!(plan.take_worker_hang(7));
        assert!(!plan.take_worker_hang(7), "hedged re-execution must run clean");
    }

    fn serve_mix() -> FaultMix {
        FaultMix {
            serve_burst_prob: 0.05,
            serve_slow_client_prob: 0.05,
            serve_hang_prob: 0.05,
            ..io_mix()
        }
    }

    #[test]
    fn seeded_with_serve_samples_every_serve_kind_deterministically() {
        let a = FaultPlan::seeded_with_serve(7, 8, 50, 16, 32, 4, 64, &serve_mix());
        let b = FaultPlan::seeded_with_serve(7, 8, 50, 16, 32, 4, 64, &serve_mix());
        assert_eq!(a.events(), b.events());
        let mut seen = [false; 3];
        for seed in 0..20 {
            for k in
                FaultPlan::seeded_with_serve(seed, 8, 50, 16, 32, 4, 64, &serve_mix()).events()
            {
                match k {
                    FaultKind::TenantBurst { .. } => seen[0] = true,
                    FaultKind::SlowClient { .. } => seen[1] = true,
                    FaultKind::WorkerHang { .. } => seen[2] = true,
                    _ => {}
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "serve kinds sampled: {seen:?}");
    }

    #[test]
    fn serve_draws_only_append_to_legacy_plans() {
        // The serve streams sit after every pre-existing stream, so turning
        // them on must leave the legacy prefix byte-identical — only new
        // serve events may appear, and only at the end. `seeded_with_io`
        // itself is `seeded_with_serve` over zero tenants/ticks.
        for seed in 0..10 {
            let base = FaultPlan::seeded_with_io(seed, 8, 50, 16, 32, &io_mix()).events();
            let grown =
                FaultPlan::seeded_with_serve(seed, 8, 50, 16, 32, 4, 64, &serve_mix()).events();
            assert!(grown.len() >= base.len());
            assert_eq!(&grown[..base.len()], &base[..], "seed {seed}: legacy prefix perturbed");
            assert!(grown[base.len()..].iter().all(|k| matches!(
                k,
                FaultKind::TenantBurst { .. }
                    | FaultKind::SlowClient { .. }
                    | FaultKind::WorkerHang { .. }
            )));
        }
    }

    #[test]
    fn seeded_serve_events_are_in_range() {
        let mix = serve_mix();
        for seed in 0..10 {
            for k in FaultPlan::seeded_with_serve(seed, 4, 20, 8, 16, 3, 40, &mix).events() {
                match k {
                    FaultKind::TenantBurst { tenant, tick, extra } => {
                        assert!(tenant < 3 && tick < 40);
                        assert!((mix.serve_burst_extra.0..mix.serve_burst_extra.1).contains(&extra));
                    }
                    FaultKind::SlowClient { tenant, tick, delay_ms } => {
                        assert!(tenant < 3 && tick < 40);
                        assert!((mix.serve_slow_ms.0..mix.serve_slow_ms.1).contains(&delay_ms));
                    }
                    FaultKind::WorkerHang { batch } => assert!(batch < 40),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn serve_only_mix_samples_only_serve_kinds() {
        let plan =
            FaultPlan::seeded_with_serve(3, 4, 20, 8, 32, 4, 64, &FaultMix::serve_only(0.05, 0.05));
        assert!(!plan.is_empty());
        assert!(plan.events().iter().all(|k| matches!(
            k,
            FaultKind::TenantBurst { .. } | FaultKind::SlowClient { .. } | FaultKind::WorkerHang { .. }
        )));
    }

    #[test]
    fn seeded_degraded_events_are_in_range() {
        let mix = full_mix();
        for seed in 0..20 {
            for k in FaultPlan::seeded(seed, 8, 50, &mix).events() {
                match k {
                    FaultKind::DegradedRank { from_step, slowdown_permille, .. }
                    | FaultKind::DegradedLink { from_step, slowdown_permille, .. } => {
                        assert!(from_step < 50);
                        assert!(
                            (mix.slowdown_permille.0..mix.slowdown_permille.1)
                                .contains(&slowdown_permille)
                        );
                    }
                    FaultKind::SlowRank { delay_ms, .. } => {
                        assert!((mix.straggler_ms.0..mix.straggler_ms.1).contains(&delay_ms));
                    }
                    _ => {}
                }
            }
        }
    }
}
