//! # geofm-vit
//!
//! Vision Transformer configurations and the encoder model.
//!
//! Two families of configurations live here:
//!
//! * the **paper family** ([`VitConfig::table1`]) — the exact six variants of
//!   Table I (ViT-Base … ViT-15B). These are used *analytically*: parameter
//!   counts, FLOPs and memory footprints feed the Frontier simulator in
//!   `geofm-frontier`. They are never instantiated as real weight tensors
//!   (15 B f32 parameters would be 59 GB).
//! * the **tiny family** ([`VitConfig::tiny_family`]) — four scaled-down
//!   variants with the same monotone capacity ordering, which are actually
//!   trained by `geofm-mae` / `geofm-core` to reproduce the downstream-
//!   evaluation experiments (Figures 5–6, Table III).

pub mod config;
pub mod flops;
pub mod model;

pub use config::{VitConfig, VitVariant};
pub use flops::{FlopsBreakdown, MaeFlops};
pub use model::{mean_pool_tokens, VitModel};
