//! Analytic FLOPs estimation for ViT and MAE workloads.
//!
//! These estimates drive the compute-time model of the Frontier simulator.
//! Counting convention: one multiply-accumulate = 2 FLOPs; LayerNorm, GELU
//! and softmax are included with their (small) elementwise costs.

use crate::config::VitConfig;

/// FLOPs breakdown for one image through a ViT encoder.
#[derive(Debug, Clone, Copy)]
pub struct FlopsBreakdown {
    /// Forward FLOPs per image.
    pub forward: f64,
    /// Backward FLOPs per image (≈ 2× forward for matmul-dominated nets).
    pub backward: f64,
}

impl FlopsBreakdown {
    /// Forward + backward.
    pub fn train_total(&self) -> f64 {
        self.forward + self.backward
    }
}

/// Encoder FLOPs for `tokens` tokens through `cfg`'s blocks
/// (patch-embedding projection included when `with_embed`).
pub fn encoder_flops(cfg: &VitConfig, tokens: usize, with_embed: bool) -> f64 {
    let t = tokens as f64;
    let w = cfg.width as f64;
    let m = cfg.mlp as f64;
    let d = cfg.depth as f64;

    // per block, per token:
    let qkv = 2.0 * w * 3.0 * w;
    let scores = 2.0 * t * w; // q·kᵀ over all keys
    let context = 2.0 * t * w; // probs·v
    let proj = 2.0 * w * w;
    let mlp = 2.0 * w * m * 2.0;
    let softmax = 5.0 * t; // exp + normalise
    let norms = 2.0 * 8.0 * w; // two LayerNorms
    let per_token_block = qkv + scores + context + proj + mlp + softmax + norms;

    let mut total = d * t * per_token_block;
    if with_embed {
        total += t * 2.0 * (cfg.patch_dim() as f64) * w;
    }
    total
}

/// Forward/backward FLOPs per image for plain supervised ViT training
/// (the Figure 2–4 workload: full token grid).
pub fn vit_flops(cfg: &VitConfig) -> FlopsBreakdown {
    let fwd = encoder_flops(cfg, cfg.tokens(), true);
    FlopsBreakdown { forward: fwd, backward: 2.0 * fwd }
}

/// FLOPs for the MAE pretraining workload: encoder on visible tokens only,
/// lightweight decoder on the full token grid (the Figure 1 workload).
#[derive(Debug, Clone, Copy)]
pub struct MaeFlops {
    /// Encoder part (visible tokens only).
    pub encoder: FlopsBreakdown,
    /// Decoder part (all tokens, decoder geometry).
    pub decoder: FlopsBreakdown,
}

impl MaeFlops {
    /// Compute for the given encoder config, mask ratio, and the paper's
    /// default decoder (8 blocks, width 512, same head-dim class).
    pub fn new(cfg: &VitConfig, mask_ratio: f64) -> Self {
        assert!((0.0..1.0).contains(&mask_ratio), "mask ratio must be in [0,1)");
        let visible = ((cfg.tokens() as f64) * (1.0 - mask_ratio)).round() as usize;
        let enc_fwd = encoder_flops(cfg, visible.max(1), true);

        let dec_cfg = VitConfig {
            name: format!("{}-maedec", cfg.name),
            width: 512.min(cfg.width * 4), // tiny models scale the decoder down
            depth: 8.min(cfg.depth * 2),
            mlp: 4 * 512.min(cfg.width * 4),
            heads: 16.min(cfg.heads * 2),
            ..cfg.clone()
        };
        let dec_fwd = encoder_flops(&dec_cfg, cfg.tokens(), false)
            + (cfg.tokens() as f64) * 2.0 * (dec_cfg.width as f64) * (cfg.patch_dim() as f64);

        Self {
            encoder: FlopsBreakdown { forward: enc_fwd, backward: 2.0 * enc_fwd },
            decoder: FlopsBreakdown { forward: dec_fwd, backward: 2.0 * dec_fwd },
        }
    }

    /// Total train-step FLOPs per image.
    pub fn train_total(&self) -> f64 {
        self.encoder.train_total() + self.decoder.train_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VitVariant;

    #[test]
    fn flops_scale_superlinearly_with_width() {
        let base = vit_flops(&VitConfig::table1(VitVariant::Base));
        let b3 = vit_flops(&VitConfig::table1(VitVariant::B3));
        // 3B has ~35× the params of Base; FLOPs/img must grow by a large factor
        let ratio = b3.forward / base.forward;
        assert!(ratio > 15.0, "ratio {}", ratio);
    }

    #[test]
    fn rule_of_thumb_6_params_tokens() {
        // For matmul-dominated transformers, fwd+bwd ≈ 6·P·T FLOPs (ignoring
        // attention quadratic term). Check we are within 2× of that.
        let cfg = VitConfig::table1(VitVariant::B1);
        let f = vit_flops(&cfg);
        // compare against block params only (embeddings don't multiply tokens)
        let rule = 6.0 * (cfg.block_params() as f64 * cfg.depth as f64) * cfg.tokens() as f64;
        let ratio = f.train_total() / rule;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {}", ratio);
    }

    #[test]
    fn mae_encoder_cheaper_than_full_grid() {
        let cfg = VitConfig::table1(VitVariant::B3);
        let full = vit_flops(&cfg);
        let mae = MaeFlops::new(&cfg, 0.75);
        // encoder on 25% tokens should be well under half the full cost
        assert!(mae.encoder.forward < 0.5 * full.forward);
    }

    #[test]
    fn mae_decoder_is_small_fraction_for_large_encoders() {
        // The MAE paper: decoder < 10% of FLOPs per token vs ViT-L; for our
        // 3B encoder the decoder share of the total must be modest (<30%).
        let cfg = VitConfig::table1(VitVariant::B3);
        let mae = MaeFlops::new(&cfg, 0.75);
        let share = mae.decoder.train_total() / mae.train_total();
        assert!(share < 0.3, "decoder share {}", share);
    }

    #[test]
    fn backward_is_twice_forward() {
        let f = vit_flops(&VitConfig::table1(VitVariant::Huge));
        assert!((f.backward - 2.0 * f.forward).abs() < 1e-6 * f.forward);
    }

    #[test]
    #[should_panic(expected = "mask ratio")]
    fn mae_rejects_bad_mask_ratio() {
        let _ = MaeFlops::new(&VitConfig::table1(VitVariant::Base), 1.5);
    }
}
