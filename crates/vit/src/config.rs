//! ViT architecture configurations (paper Table I + the trainable tiny family).


/// The named architecture variants studied in the paper (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VitVariant {
    /// 87 M parameters, width 768, depth 12.
    Base,
    /// 635 M parameters, width 1280, depth 32.
    Huge,
    /// 914 M parameters, width 1536, depth 32.
    B1,
    /// 3 067 M parameters, width 2816, depth 32.
    B3,
    /// width 1792, depth 56 (see note on the paper's 5349 M figure).
    B5,
    /// 14 720 M parameters, width 5040, depth 48.
    B15,
}

impl VitVariant {
    /// All Table I variants in ascending size order.
    pub fn all() -> [VitVariant; 6] {
        [Self::Base, Self::Huge, Self::B1, Self::B3, Self::B5, Self::B15]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Base => "ViT-Base",
            Self::Huge => "ViT-Huge",
            Self::B1 => "ViT-1B",
            Self::B3 => "ViT-3B",
            Self::B5 => "ViT-5B",
            Self::B15 => "ViT-15B",
        }
    }

    /// Parameter count in millions as printed in Table I of the paper.
    pub fn paper_params_m(&self) -> u64 {
        match self {
            Self::Base => 87,
            Self::Huge => 635,
            Self::B1 => 914,
            Self::B3 => 3067,
            Self::B5 => 5349,
            Self::B15 => 14720,
        }
    }
}

/// A complete ViT encoder configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VitConfig {
    /// Human-readable name (e.g. "ViT-3B" or "T-1B").
    pub name: String,
    /// Embedding width.
    pub width: usize,
    /// Number of transformer encoder blocks.
    pub depth: usize,
    /// Hidden width of the MLP inside each block.
    pub mlp: usize,
    /// Attention heads per block.
    pub heads: usize,
    /// Patch edge length in pixels.
    pub patch: usize,
    /// Input image edge length in pixels.
    pub img: usize,
    /// Input channels.
    pub channels: usize,
}

impl VitConfig {
    /// The exact Table I configuration for a paper variant.
    ///
    /// Following the paper: ViT-Base uses 16×16 patches; ViT-Huge and all
    /// billion-scale models use 14×14 patches. Pretraining images are
    /// 512×512 RGB (paper §V-B). 512 is not divisible by 14; like common
    /// implementations we truncate the grid (`tokens = ⌊img/patch⌋²`).
    pub fn table1(variant: VitVariant) -> Self {
        let (width, depth, mlp, heads, patch) = match variant {
            VitVariant::Base => (768, 12, 3072, 12, 16),
            VitVariant::Huge => (1280, 32, 5120, 16, 14),
            VitVariant::B1 => (1536, 32, 6144, 16, 14),
            VitVariant::B3 => (2816, 32, 11264, 32, 14),
            VitVariant::B5 => (1792, 56, 15360, 16, 14),
            VitVariant::B15 => (5040, 48, 20160, 48, 14),
        };
        Self {
            name: variant.name().to_string(),
            width,
            depth,
            mlp,
            heads,
            patch,
            img: 512,
            channels: 3,
        }
    }

    /// The trainable tiny family mirroring the capacity ordering of
    /// Base → Huge → 1B → 3B at CPU scale (48×48 RGB, 6×6 patches,
    /// 64 tokens — the same token-grid structure as the paper's workload).
    pub fn tiny_family() -> Vec<Self> {
        let mk = |name: &str, width: usize, depth: usize, heads: usize| Self {
            name: name.to_string(),
            width,
            depth,
            mlp: width * 4,
            heads,
            patch: 6,
            img: 48,
            channels: 3,
        };
        vec![
            mk("T-Base", 32, 2, 4),
            mk("T-Huge", 48, 3, 6),
            mk("T-1B", 64, 4, 8),
            mk("T-3B", 96, 5, 8),
        ]
    }

    /// Token-grid edge (`⌊img/patch⌋`).
    pub fn grid(&self) -> usize {
        self.img / self.patch
    }

    /// Tokens per image.
    pub fn tokens(&self) -> usize {
        self.grid() * self.grid()
    }

    /// Flattened patch length.
    pub fn patch_dim(&self) -> usize {
        self.patch * self.patch * self.channels
    }

    /// Parameters in one encoder block:
    /// attention (fused QKV + output projection) + MLP + two LayerNorms.
    pub fn block_params(&self) -> u64 {
        let w = self.width as u64;
        let m = self.mlp as u64;
        let attn = w * 3 * w + 3 * w + w * w + w;
        let mlp = w * m + m + m * w + w;
        let norms = 2 * (2 * w);
        attn + mlp + norms
    }

    /// Total encoder parameters: patch embedding + positional embedding +
    /// blocks + final LayerNorm. Computed analytically (no allocation), so
    /// it works for the 15 B configuration.
    pub fn param_count(&self) -> u64 {
        let w = self.width as u64;
        let embed = (self.patch_dim() as u64) * w + w;
        let pos = (self.tokens() as u64) * w;
        embed + pos + (self.depth as u64) * self.block_params() + 2 * w
    }

    /// Parameter count in millions (rounded).
    pub fn params_m(&self) -> u64 {
        (self.param_count() + 500_000) / 1_000_000
    }

    /// Bytes to store the parameters in f32.
    pub fn param_bytes(&self) -> u64 {
        self.param_count() * 4
    }

    /// Relative error of the analytic count against the paper's Table I
    /// figure, for paper variants.
    pub fn paper_count_rel_err(variant: VitVariant) -> f64 {
        let cfg = Self::table1(variant);
        let ours = cfg.param_count() as f64;
        let paper = variant.paper_params_m() as f64 * 1e6;
        (ours - paper).abs() / paper
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Analytic counts must reproduce Table I. The ViT-5B row of the paper
    /// is internally inconsistent (width 1792 × depth 56 × MLP 15360 yields
    /// ≈3.8 B by any standard ViT counting, not 5 349 M); we document the
    /// discrepancy in EXPERIMENTS.md and exempt it here.
    #[test]
    fn table1_counts_match_paper_within_2_percent() {
        for v in VitVariant::all() {
            if v == VitVariant::B5 {
                continue;
            }
            let err = VitConfig::paper_count_rel_err(v);
            assert!(
                err < 0.02,
                "{}: computed {}M vs paper {}M (err {:.3})",
                v.name(),
                VitConfig::table1(v).params_m(),
                v.paper_params_m(),
                err
            );
        }
    }

    #[test]
    fn vit_5b_row_is_flagged_inconsistent() {
        // Guard: if this ever starts matching, the exemption above is stale.
        let err = VitConfig::paper_count_rel_err(VitVariant::B5);
        assert!(err > 0.2, "ViT-5B unexpectedly matches paper: err {}", err);
        // ...but the config must still be in the multi-billion range.
        let p = VitConfig::table1(VitVariant::B5).param_count();
        assert!(p > 3_000_000_000 && p < 6_000_000_000);
    }

    #[test]
    fn param_counts_are_monotone_in_paper_order_except_5b() {
        let sizes: Vec<u64> = [VitVariant::Base, VitVariant::Huge, VitVariant::B1, VitVariant::B3]
            .iter()
            .map(|&v| VitConfig::table1(v).param_count())
            .collect();
        for w in sizes.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(
            VitConfig::table1(VitVariant::B15).param_count()
                > VitConfig::table1(VitVariant::B5).param_count()
        );
    }

    #[test]
    fn base_tokens_512_image() {
        let cfg = VitConfig::table1(VitVariant::Base);
        assert_eq!(cfg.tokens(), 32 * 32);
        let huge = VitConfig::table1(VitVariant::Huge);
        assert_eq!(huge.tokens(), 36 * 36); // ⌊512/14⌋ = 36
    }

    #[test]
    fn tiny_family_is_monotone_and_divisible() {
        let fam = VitConfig::tiny_family();
        assert_eq!(fam.len(), 4);
        for w in fam.windows(2) {
            assert!(w[0].param_count() < w[1].param_count());
        }
        for cfg in &fam {
            assert_eq!(cfg.width % cfg.heads, 0, "{}: heads must divide width", cfg.name);
            assert_eq!(cfg.img % cfg.patch, 0, "{}: patch must divide img", cfg.name);
        }
    }

    #[test]
    fn param_bytes_matches_memory_discussion() {
        // Paper §IV-C: ViT-3B needs >60 GB unsharded *training* state.
        // Raw f32 parameters alone are ~12 GB; with grads + AdamW moments
        // (4x) that is ~49 GB before activations, consistent with >60 GB.
        let cfg = VitConfig::table1(VitVariant::B3);
        let gb = cfg.param_bytes() as f64 / (1u64 << 30) as f64;
        assert!(gb > 10.0 && gb < 14.0, "3B params = {:.1} GiB", gb);
    }
}
