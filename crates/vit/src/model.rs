//! The trainable ViT encoder model.

use crate::config::VitConfig;
use geofm_nn::{LayerNorm, Module, ParamVisitor, PatchEmbed, TransformerBlock};
use geofm_tensor::{Tensor, TensorRng};

/// A ViT encoder: patch embedding → transformer blocks → final LayerNorm.
///
/// The model exposes a *token-level* API (`encode_tokens` /
/// `backward_tokens`) in addition to the image-level one, because MAE
/// pretraining runs the encoder on the **visible subset** of tokens only.
#[derive(Debug, Clone)]
pub struct VitModel {
    /// Architecture description.
    pub config: VitConfig,
    /// Patch + positional embedding stem.
    pub embed: PatchEmbed,
    /// Encoder blocks.
    pub blocks: Vec<TransformerBlock>,
    /// Final LayerNorm.
    pub final_ln: LayerNorm,
}

impl VitModel {
    /// Build a model with ViT-standard initialisation from `rng`.
    pub fn new(config: &VitConfig, rng: &mut TensorRng) -> Self {
        let embed = PatchEmbed::new(
            config.img,
            config.patch,
            config.channels,
            config.width,
            rng,
            &format!("{}.embed", config.name),
        );
        let blocks = (0..config.depth)
            .map(|i| {
                TransformerBlock::new(
                    config.width,
                    config.mlp,
                    config.heads,
                    rng,
                    &format!("{}.block{}", config.name, i),
                )
            })
            .collect();
        let final_ln = LayerNorm::new(config.width, &format!("{}.ln", config.name));
        Self { config: config.clone(), embed, blocks, final_ln }
    }

    /// Embed images into the token sequence (`[b, C·H·W]` → `[b, T, W]`).
    pub fn embed_images(&mut self, images: &Tensor) -> Tensor {
        self.embed.forward(images)
    }

    /// Inference-only embedding.
    pub fn embed_images_inference(&self, images: &Tensor) -> Tensor {
        self.embed.forward_inference(images)
    }

    /// Run the encoder blocks + final LN over a token sequence
    /// (`[b, t, W]` → `[b, t, W]`), caching for backward.
    pub fn encode_tokens(&mut self, tokens: &Tensor) -> Tensor {
        let mut x = tokens.clone();
        for blk in &mut self.blocks {
            x = blk.forward(&x);
        }
        let (b, t, w) = (x.dim(0), x.dim(1), x.dim(2));
        let flat = x.reshape(&[b * t, w]);
        self.final_ln.forward(&flat).reshape(&[b, t, w])
    }

    /// Inference-only encoding.
    pub fn encode_tokens_inference(&self, tokens: &Tensor) -> Tensor {
        let mut x = tokens.clone();
        for blk in &self.blocks {
            x = blk.forward_inference(&x);
        }
        let (b, t, w) = (x.dim(0), x.dim(1), x.dim(2));
        let flat = x.reshape(&[b * t, w]);
        self.final_ln.forward_inference(&flat).reshape(&[b, t, w])
    }

    /// Activation-checkpointed encoding: each block stores only its input
    /// and recomputes activations during backward (rematerialization).
    /// Peak activation memory drops from O(depth · per-block-activations)
    /// to O(depth · token-buffer) — the trade the paper's 64 GB-per-GPU
    /// memory budget relies on (see `geofm-frontier`'s memory model).
    pub fn encode_tokens_checkpointed(&mut self, tokens: &Tensor) -> Tensor {
        let mut x = tokens.clone();
        for blk in &mut self.blocks {
            x = blk.forward_checkpointed(&x);
        }
        let (b, t, w) = (x.dim(0), x.dim(1), x.dim(2));
        let flat = x.reshape(&[b * t, w]);
        self.final_ln.forward(&flat).reshape(&[b, t, w])
    }

    /// Backward counterpart of [`VitModel::encode_tokens_checkpointed`].
    pub fn backward_tokens_checkpointed(&mut self, dy: &Tensor) -> Tensor {
        let (b, t, w) = (dy.dim(0), dy.dim(1), dy.dim(2));
        let flat = dy.clone().reshape(&[b * t, w]);
        let mut dx = self.final_ln.backward(&flat).reshape(&[b, t, w]);
        for blk in self.blocks.iter_mut().rev() {
            dx = blk.backward_checkpointed(&dx);
        }
        dx
    }

    /// Backward through final LN and blocks; returns gradient w.r.t. the
    /// token sequence passed to [`VitModel::encode_tokens`].
    pub fn backward_tokens(&mut self, dy: &Tensor) -> Tensor {
        let (b, t, w) = (dy.dim(0), dy.dim(1), dy.dim(2));
        let flat = dy.clone().reshape(&[b * t, w]);
        let mut dx = self.final_ln.backward(&flat).reshape(&[b, t, w]);
        for blk in self.blocks.iter_mut().rev() {
            dx = blk.backward(&dx);
        }
        dx
    }

    /// Full forward: images → encoded tokens (cached for backward).
    pub fn forward(&mut self, images: &Tensor) -> Tensor {
        let tokens = self.embed_images(images);
        self.encode_tokens(&tokens)
    }

    /// Full backward: token gradients → parameter gradients (images are
    /// leaves, so nothing is returned).
    pub fn backward(&mut self, dy: &Tensor) {
        let dtokens = self.backward_tokens(dy);
        self.embed.backward(&dtokens);
    }

    /// Mean-pooled features for linear probing: `[b, C·H·W]` → `[b, W]`.
    pub fn features_inference(&self, images: &Tensor) -> Tensor {
        let tokens = self.embed_images_inference(images);
        let enc = self.encode_tokens_inference(&tokens);
        mean_pool_tokens(&enc)
    }

    /// First- and second-moment pooled features: `[b, C·H·W]` → `[b, 2W]`
    /// (`[mean_pool ‖ std_pool]` over the token axis).
    ///
    /// Texture-defined scene classes (orientation × frequency — most of
    /// remote sensing) produce *phase-varying* token features whose mean
    /// cancels across the grid; the per-dimension standard deviation over
    /// tokens retains that energy. This is the classic second-order texture
    /// descriptor, applied to the frozen encoder's token field.
    pub fn features_moments_inference(&self, images: &Tensor) -> Tensor {
        let tokens = self.embed_images_inference(images);
        let enc = self.encode_tokens_inference(&tokens);
        let (b, t, w) = (enc.dim(0), enc.dim(1), enc.dim(2));
        let mean = mean_pool_tokens(&enc);
        let mut out = Tensor::zeros(&[b, 2 * w]);
        let src = enc.data();
        for bi in 0..b {
            let mrow = mean.row(bi);
            let orow = out.row_mut(bi);
            orow[..w].copy_from_slice(mrow);
            for ti in 0..t {
                let row = &src[(bi * t + ti) * w..(bi * t + ti + 1) * w];
                for (j, &v) in row.iter().enumerate() {
                    let d = v - mrow[j];
                    orow[w + j] += d * d;
                }
            }
            for j in 0..w {
                orow[w + j] = (orow[w + j] / t as f32).sqrt();
            }
        }
        out
    }

    /// Parameter counts per FSDP unit: `[embed, block₀ … block_d, final_ln]`.
    ///
    /// This layout is the contract with `geofm-fsdp`'s flat-parameter
    /// sharding and with the Frontier simulator's communication schedule.
    pub fn unit_param_counts(&mut self) -> Vec<usize> {
        let mut counts = vec![self.embed.num_params()];
        for blk in &mut self.blocks {
            counts.push(blk.num_params());
        }
        counts.push(self.final_ln.num_params());
        counts
    }
}

/// Average a token sequence over the token axis: `[b, t, w]` → `[b, w]`.
pub fn mean_pool_tokens(tokens: &Tensor) -> Tensor {
    let (b, t, w) = (tokens.dim(0), tokens.dim(1), tokens.dim(2));
    let mut out = Tensor::zeros(&[b, w]);
    let src = tokens.data();
    let inv_t = 1.0 / t as f32;
    for bi in 0..b {
        let orow = out.row_mut(bi);
        for ti in 0..t {
            let row = &src[(bi * t + ti) * w..(bi * t + ti + 1) * w];
            for (o, &v) in orow.iter_mut().zip(row) {
                *o += v * inv_t;
            }
        }
    }
    out
}

impl Module for VitModel {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.embed.visit_params(f);
        for blk in &mut self.blocks {
            blk.visit_params(f);
        }
        self.final_ln.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VitConfig;

    fn tiny() -> VitConfig {
        VitConfig {
            name: "test".into(),
            width: 16,
            depth: 2,
            mlp: 32,
            heads: 4,
            patch: 4,
            img: 8,
            channels: 3,
        }
    }

    #[test]
    fn instantiated_params_match_analytic_count() {
        let cfg = tiny();
        let mut rng = TensorRng::seed_from(1);
        let mut model = VitModel::new(&cfg, &mut rng);
        assert_eq!(model.num_params() as u64, cfg.param_count());
    }

    #[test]
    fn tiny_family_instantiated_matches_analytic() {
        for cfg in VitConfig::tiny_family() {
            let mut rng = TensorRng::seed_from(2);
            let mut model = VitModel::new(&cfg, &mut rng);
            assert_eq!(model.num_params() as u64, cfg.param_count(), "{}", cfg.name);
        }
    }

    #[test]
    fn forward_shapes() {
        let cfg = tiny();
        let mut rng = TensorRng::seed_from(3);
        let mut model = VitModel::new(&cfg, &mut rng);
        let imgs = rng.randn(&[2, cfg.channels * cfg.img * cfg.img], 1.0);
        let enc = model.forward(&imgs);
        assert_eq!(enc.shape(), &[2, cfg.tokens(), cfg.width]);
        let feats = model.features_inference(&imgs);
        assert_eq!(feats.shape(), &[2, cfg.width]);
        assert!(!feats.has_non_finite());
    }

    #[test]
    fn unit_param_counts_sum_to_total() {
        let cfg = tiny();
        let mut rng = TensorRng::seed_from(4);
        let mut model = VitModel::new(&cfg, &mut rng);
        let units = model.unit_param_counts();
        assert_eq!(units.len(), cfg.depth + 2);
        assert_eq!(units.iter().sum::<usize>() as u64, cfg.param_count());
    }

    #[test]
    fn moment_features_have_double_width_and_match_mean() {
        let cfg = tiny();
        let mut rng = TensorRng::seed_from(21);
        let model = VitModel::new(&cfg, &mut rng);
        let imgs = rng.randn(&[3, cfg.channels * cfg.img * cfg.img], 1.0);
        let mean = model.features_inference(&imgs);
        let moments = model.features_moments_inference(&imgs);
        assert_eq!(moments.shape(), &[3, 2 * cfg.width]);
        // first half equals the mean pooling
        for b in 0..3 {
            for j in 0..cfg.width {
                assert!((moments.at(&[b, j]) - mean.at(&[b, j])).abs() < 1e-5);
            }
            // std half is non-negative
            for j in cfg.width..2 * cfg.width {
                assert!(moments.at(&[b, j]) >= 0.0);
            }
        }
    }

    #[test]
    fn moment_std_is_zero_for_constant_tokens() {
        // if all tokens were identical the std half would vanish; approximate
        // by checking the computation directly on a hand-made token field
        let t = Tensor::from_vec(&[1, 2, 2], vec![3., 5., 3., 5.]);
        let mean = mean_pool_tokens(&t);
        assert_eq!(mean.data(), &[3., 5.]);
    }

    #[test]
    fn mean_pool_averages() {
        let t = Tensor::from_vec(&[1, 2, 2], vec![1., 2., 3., 4.]);
        let p = mean_pool_tokens(&t);
        assert_eq!(p.data(), &[2., 3.]);
    }

    #[test]
    fn end_to_end_gradients_flow() {
        // One training step reduces a simple loss: L = Σ enc ⊙ target.
        let cfg = tiny();
        let mut rng = TensorRng::seed_from(5);
        let mut model = VitModel::new(&cfg, &mut rng);
        let imgs = rng.randn(&[2, cfg.channels * cfg.img * cfg.img], 1.0);
        let target = rng.randn(&[2, cfg.tokens(), cfg.width], 1.0);

        let loss_of = |m: &mut VitModel| -> f32 {
            let enc = m.forward(&imgs);
            enc.data().iter().zip(target.data()).map(|(a, b)| a * b).sum()
        };

        let before = loss_of(&mut model);
        model.zero_grad();
        let _ = model.forward(&imgs);
        model.backward(&target); // dL/denc = target
        // gradient-descent step over the flat parameters
        let mut flat = Vec::new();
        model.pack_values(&mut flat);
        let mut grads = Vec::new();
        model.pack_grads(&mut grads);
        assert!(grads.iter().any(|&g| g != 0.0), "gradients must be non-zero");
        for (p, g) in flat.iter_mut().zip(&grads) {
            *p -= 1e-3 * g;
        }
        model.unpack_values(&flat);
        let after = loss_of(&mut model);
        assert!(after < before, "loss should decrease: {} -> {}", before, after);
    }

    #[test]
    fn checkpointed_encoding_matches_regular() {
        let cfg = tiny();
        let mut rng = TensorRng::seed_from(31);
        let mut regular = VitModel::new(&cfg, &mut rng);
        let mut ckpt = regular.clone();
        let tokens = rng.randn(&[2, cfg.tokens(), cfg.width], 1.0);
        let dy = rng.randn(&[2, cfg.tokens(), cfg.width], 1.0);

        let y1 = regular.encode_tokens(&tokens);
        let d1 = regular.backward_tokens(&dy);
        let y2 = ckpt.encode_tokens_checkpointed(&tokens);
        let d2 = ckpt.backward_tokens_checkpointed(&dy);
        assert!(y1.max_abs_diff(&y2) < 1e-5);
        assert!(d1.max_abs_diff(&d2) < 1e-5);
        let (mut g1, mut g2) = (Vec::new(), Vec::new());
        regular.pack_grads(&mut g1);
        ckpt.pack_grads(&mut g2);
        let max = g1.iter().zip(&g2).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(max < 1e-5, "param grads diff {}", max);
    }

    #[test]
    fn deterministic_construction() {
        let cfg = tiny();
        let mut r1 = TensorRng::seed_from(77);
        let mut r2 = TensorRng::seed_from(77);
        let mut m1 = VitModel::new(&cfg, &mut r1);
        let mut m2 = VitModel::new(&cfg, &mut r2);
        let (mut f1, mut f2) = (Vec::new(), Vec::new());
        m1.pack_values(&mut f1);
        m2.pack_values(&mut f2);
        assert_eq!(f1, f2);
    }
}
