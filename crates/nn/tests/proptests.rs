//! Property tests for layers and optimizers: randomized finite-difference
//! gradient checks and optimizer convergence on random convex problems.

use geofm_nn::{AdamW, CosineSchedule, Linear, Optimizer, Sgd};
use geofm_tensor::TensorRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Linear-layer weight gradients match central finite differences at a
    /// random coordinate, for random shapes and inputs.
    #[test]
    fn linear_gradcheck_random(
        n_in in 1usize..6,
        n_out in 1usize..6,
        batch in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let mut layer = Linear::new(n_in, n_out, &mut rng, "p");
        let x = rng.randn(&[batch, n_in], 1.0);
        let dy = rng.randn(&[batch, n_out], 1.0);
        let _ = layer.forward(&x);
        let _ = layer.backward(&dy);

        let coord = (seed as usize) % (n_in * n_out);
        let loss = |l: &Linear| -> f32 {
            l.forward_inference(&x).data().iter().zip(dy.data()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-2f32;
        let mut lp = layer.clone();
        lp.weight.value.data_mut()[coord] += eps;
        let mut lm = layer.clone();
        lm.weight.value.data_mut()[coord] -= eps;
        let fd = (loss(&lp) - loss(&lm)) / (2.0 * eps);
        let an = layer.weight.grad.data()[coord];
        prop_assert!((fd - an).abs() < 5e-2, "fd {} vs analytic {}", fd, an);
    }

    /// AdamW minimises random positive-definite diagonal quadratics.
    #[test]
    fn adamw_minimises_random_quadratics(
        dim in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let scales: Vec<f32> = (0..dim).map(|_| rng.uniform_in(0.2, 3.0)).collect();
        let mut p: Vec<f32> = (0..dim).map(|_| rng.uniform_in(-4.0, 4.0)).collect();
        let start_norm: f32 = p.iter().map(|v| v * v).sum::<f32>().sqrt();
        let mut opt = AdamW::new(dim, 0.0);
        for _ in 0..800 {
            let g: Vec<f32> = p.iter().zip(&scales).map(|(v, s)| s * v).collect();
            opt.step(&mut p, &g, 0.03);
        }
        let end_norm: f32 = p.iter().map(|v| v * v).sum::<f32>().sqrt();
        prop_assert!(end_norm < 0.15 * start_norm + 0.05,
            "‖p‖ {} -> {}", start_norm, end_norm);
    }

    /// SGD with momentum also converges on the same family.
    #[test]
    fn sgd_minimises_random_quadratics(dim in 1usize..8, seed in 0u64..10_000) {
        let mut rng = TensorRng::seed_from(seed);
        let scales: Vec<f32> = (0..dim).map(|_| rng.uniform_in(0.2, 2.0)).collect();
        let mut p: Vec<f32> = (0..dim).map(|_| rng.uniform_in(-3.0, 3.0)).collect();
        let start: f32 = p.iter().map(|v| v * v).sum();
        let mut opt = Sgd::new(dim, 0.9);
        for _ in 0..400 {
            let g: Vec<f32> = p.iter().zip(&scales).map(|(v, s)| s * v).collect();
            opt.step(&mut p, &g, 0.02);
        }
        let end: f32 = p.iter().map(|v| v * v).sum();
        prop_assert!(end < 0.1 * start + 1e-3, "{} -> {}", start, end);
    }

    /// Cosine schedules stay within [min_lr, base_lr] everywhere.
    #[test]
    fn schedule_is_bounded(
        base in 1e-5f32..1.0,
        frac_min in 0.0f32..0.99,
        warmup in 0usize..50,
        total_extra in 1usize..200,
        probe in 0usize..400,
    ) {
        let min_lr = base * frac_min;
        let total = warmup + total_extra;
        let s = CosineSchedule::new(base, min_lr, warmup, total);
        let lr = s.lr(probe);
        prop_assert!(lr <= base * 1.0001, "lr {} > base {}", lr, base);
        prop_assert!(lr >= 0.0);
        if probe >= total {
            prop_assert!((lr - min_lr).abs() < 1e-7);
        }
    }
}
