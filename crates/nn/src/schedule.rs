//! Learning-rate schedules: linear warmup followed by cosine decay, the
//! schedule used for both MAE pretraining and linear probing in the paper.

/// Cosine-decay schedule with linear warmup.
#[derive(Debug, Clone, Copy)]
pub struct CosineSchedule {
    base_lr: f32,
    min_lr: f32,
    warmup_steps: usize,
    total_steps: usize,
}

impl CosineSchedule {
    /// New schedule.
    ///
    /// # Panics
    /// Panics if `warmup_steps > total_steps` or `total_steps == 0`.
    pub fn new(base_lr: f32, min_lr: f32, warmup_steps: usize, total_steps: usize) -> Self {
        assert!(total_steps > 0, "total_steps must be positive");
        assert!(warmup_steps <= total_steps, "warmup longer than schedule");
        Self { base_lr, min_lr, warmup_steps, total_steps }
    }

    /// Learning rate at `step` (0-based). Steps beyond `total_steps` hold
    /// at `min_lr`.
    pub fn lr(&self, step: usize) -> f32 {
        if self.warmup_steps > 0 && step < self.warmup_steps {
            return self.base_lr * (step as f32 + 1.0) / self.warmup_steps as f32;
        }
        if step >= self.total_steps {
            return self.min_lr;
        }
        let progress = (step - self.warmup_steps) as f32
            / (self.total_steps - self.warmup_steps).max(1) as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
        self.min_lr + (self.base_lr - self.min_lr) * cos
    }

    /// The configured peak learning rate.
    pub fn base_lr(&self) -> f32 {
        self.base_lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_ramps_linearly() {
        let s = CosineSchedule::new(1.0, 0.0, 10, 100);
        assert!((s.lr(0) - 0.1).abs() < 1e-6);
        assert!((s.lr(4) - 0.5).abs() < 1e-6);
        assert!((s.lr(9) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn peak_at_end_of_warmup_then_decays() {
        let s = CosineSchedule::new(1.0, 0.0, 10, 110);
        let peak = s.lr(10);
        assert!((peak - 1.0).abs() < 1e-5);
        assert!(s.lr(60) < peak);
        assert!(s.lr(100) < s.lr(60));
    }

    #[test]
    fn ends_at_min_lr() {
        let s = CosineSchedule::new(1.0, 0.05, 0, 50);
        assert!((s.lr(50) - 0.05).abs() < 1e-6);
        assert!((s.lr(500) - 0.05).abs() < 1e-6);
    }

    #[test]
    fn monotone_decay_after_warmup() {
        let s = CosineSchedule::new(0.1, 0.0, 5, 60);
        let mut last = s.lr(5);
        for step in 6..60 {
            let cur = s.lr(step);
            assert!(cur <= last + 1e-9, "not monotone at {}", step);
            last = cur;
        }
    }

    #[test]
    fn no_warmup_starts_at_base() {
        let s = CosineSchedule::new(0.2, 0.0, 0, 10);
        assert!((s.lr(0) - 0.2).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "warmup longer")]
    fn rejects_bad_warmup() {
        let _ = CosineSchedule::new(1.0, 0.0, 20, 10);
    }
}
