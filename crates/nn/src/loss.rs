//! Loss functions: softmax cross-entropy for classification and the MAE
//! masked, per-patch-normalised MSE.

use geofm_tensor::Tensor;

/// Output of [`cross_entropy`]: mean loss plus the gradient w.r.t. logits.
#[derive(Debug, Clone)]
pub struct CrossEntropyOutput {
    /// Mean negative log-likelihood over the batch.
    pub loss: f32,
    /// `d loss / d logits`, shape `[n, classes]` (already divided by `n`).
    pub dlogits: Tensor,
    /// Softmax probabilities (useful for metrics).
    pub probs: Tensor,
}

/// Softmax cross-entropy for `logits: [n, classes]` and integer `labels`.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> CrossEntropyOutput {
    assert_eq!(logits.ndim(), 2, "cross_entropy expects [n, classes]");
    let (n, c) = (logits.dim(0), logits.dim(1));
    assert_eq!(labels.len(), n, "cross_entropy: {} labels for {} rows", labels.len(), n);
    let mut probs = logits.clone();
    probs.softmax_rows_inplace();
    let mut loss = 0.0f64;
    let mut dlogits = probs.clone();
    let inv_n = 1.0 / n as f32;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < c, "label {} out of range ({} classes)", label, c);
        let p = probs.at(&[i, label]).max(1e-12);
        loss -= (p as f64).ln();
        let row = dlogits.row_mut(i);
        row[label] -= 1.0;
        for v in row.iter_mut() {
            *v *= inv_n;
        }
    }
    CrossEntropyOutput { loss: (loss / n as f64) as f32, dlogits, probs }
}

/// MAE reconstruction loss: MSE between predicted and target patches,
/// averaged **only over masked patches**, with per-patch pixel normalisation
/// of the target (as in the MAE paper, §"simple implementation").
///
/// * `pred`   — `[num_patches, patch_dim]` decoder outputs (all patches).
/// * `target` — `[num_patches, patch_dim]` raw patch pixels.
/// * `masked` — indices (into rows) of masked patches.
///
/// Returns `(loss, dpred)`; `dpred` is zero on visible patches.
pub fn mse_masked(pred: &Tensor, target: &Tensor, masked: &[usize]) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse_masked: shape mismatch");
    assert_eq!(pred.ndim(), 2, "mse_masked expects 2-D patch tensors");
    let d = pred.dim(1);
    let mut dpred = Tensor::zeros(pred.shape());
    if masked.is_empty() {
        return (0.0, dpred);
    }
    let mut loss = 0.0f64;
    let denom = (masked.len() * d) as f32;
    for &m in masked {
        let trow = target.row(m);
        // per-patch normalisation of the target
        let mean = trow.iter().sum::<f32>() / d as f32;
        let var = trow.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let rstd = 1.0 / (var + 1e-6).sqrt();
        let prow = pred.row(m);
        let start = m * d;
        for j in 0..d {
            let t_norm = (trow[j] - mean) * rstd;
            let diff = prow[j] - t_norm;
            loss += (diff as f64) * (diff as f64);
            dpred.data_mut()[start + j] = 2.0 * diff / denom;
        }
    }
    ((loss / denom as f64) as f32, dpred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geofm_tensor::TensorRng;

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let logits = Tensor::from_vec(&[2, 3], vec![100., 0., 0., 0., 100., 0.]);
        let out = cross_entropy(&logits, &[0, 1]);
        assert!(out.loss < 1e-4);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Tensor::zeros(&[4, 8]);
        let out = cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((out.loss - (8.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let mut rng = TensorRng::seed_from(1);
        let logits = rng.randn(&[3, 4], 1.0);
        let labels = [2usize, 0, 3];
        let out = cross_entropy(&logits, &labels);
        let eps = 1e-2f32;
        for i in 0..12 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let fd = (cross_entropy(&lp, &labels).loss - cross_entropy(&lm, &labels).loss)
                / (2.0 * eps);
            let an = out.dlogits.data()[i];
            assert!((fd - an).abs() < 1e-3, "dlogits[{}]: fd {} vs {}", i, fd, an);
        }
    }

    #[test]
    fn cross_entropy_grad_rows_sum_to_zero() {
        let mut rng = TensorRng::seed_from(2);
        let logits = rng.randn(&[5, 7], 2.0);
        let out = cross_entropy(&logits, &[0, 1, 2, 3, 4]);
        for r in 0..5 {
            let s: f32 = out.dlogits.row(r).iter().sum();
            assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn mse_masked_ignores_visible_patches() {
        let mut rng = TensorRng::seed_from(3);
        let pred = rng.randn(&[4, 6], 1.0);
        let target = rng.randn(&[4, 6], 1.0);
        let (_, dpred) = mse_masked(&pred, &target, &[1, 3]);
        assert!(dpred.row(0).iter().all(|&v| v == 0.0));
        assert!(dpred.row(2).iter().all(|&v| v == 0.0));
        assert!(dpred.row(1).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn mse_masked_zero_when_pred_equals_normalised_target() {
        let mut rng = TensorRng::seed_from(4);
        let target = rng.randn(&[3, 8], 2.0);
        // construct pred = normalised target
        let mut pred = Tensor::zeros(&[3, 8]);
        for r in 0..3 {
            let trow = target.row(r);
            let mean = trow.iter().sum::<f32>() / 8.0;
            let var = trow.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            let rstd = 1.0 / (var + 1e-6).sqrt();
            for (j, &t) in trow.iter().enumerate() {
                pred.set(&[r, j], (t - mean) * rstd);
            }
        }
        let (loss, _) = mse_masked(&pred, &target, &[0, 1, 2]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn mse_masked_gradient_matches_finite_difference() {
        let mut rng = TensorRng::seed_from(5);
        let pred = rng.randn(&[3, 4], 1.0);
        let target = rng.randn(&[3, 4], 1.0);
        let masked = [0usize, 2];
        let (_, dpred) = mse_masked(&pred, &target, &masked);
        let eps = 1e-2f32;
        for i in 0..12 {
            let mut pp = pred.clone();
            pp.data_mut()[i] += eps;
            let mut pm = pred.clone();
            pm.data_mut()[i] -= eps;
            let fd = (mse_masked(&pp, &target, &masked).0 - mse_masked(&pm, &target, &masked).0)
                / (2.0 * eps);
            let an = dpred.data()[i];
            assert!((fd - an).abs() < 1e-3, "dpred[{}]: fd {} vs {}", i, fd, an);
        }
    }

    #[test]
    fn mse_masked_empty_mask_is_zero() {
        let pred = Tensor::ones(&[2, 3]);
        let target = Tensor::zeros(&[2, 3]);
        let (loss, dpred) = mse_masked(&pred, &target, &[]);
        assert_eq!(loss, 0.0);
        assert!(dpred.data().iter().all(|&v| v == 0.0));
    }
}
