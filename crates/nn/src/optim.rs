//! Optimizers operating on **flat parameter buffers**.
//!
//! Working on flat `&mut [f32]` slices (rather than per-layer tensors) is
//! what lets `geofm-fsdp` shard optimizer state: a rank that owns elements
//! `[lo, hi)` of a unit's flat parameter simply constructs its optimizer
//! over that range. Per-parameter metadata (weight-decay eligibility, layer
//! boundaries for LARS trust ratios) is carried as index masks/segments with
//! the same flat layout.

use crate::param::Module;

/// A contiguous run of the flat buffer belonging to one parameter tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Start offset in the flat buffer.
    pub start: usize,
    /// Length in elements.
    pub len: usize,
    /// Whether weight decay applies to this tensor.
    pub decay: bool,
}

/// Compute the flat [`Segment`] layout of a module (deterministic order).
pub fn segments_of(module: &mut dyn Module) -> Vec<Segment> {
    let mut segs = Vec::new();
    let mut off = 0;
    module.visit_params(&mut |p| {
        segs.push(Segment { start: off, len: p.numel(), decay: p.decay });
        off += p.numel();
    });
    segs
}

/// Common interface: apply one update step to a flat parameter buffer.
pub trait Optimizer {
    /// `params[i] ← update(params[i], grads[i])` at learning rate `lr`.
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32);
}

/// Plain SGD with optional momentum (reference optimizer for tests).
#[derive(Debug, Clone)]
pub struct Sgd {
    momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// New SGD over a buffer of `len` elements.
    pub fn new(len: usize, momentum: f32) -> Self {
        Self { momentum, velocity: vec![0.0; len] }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), self.velocity.len(), "Sgd: buffer length changed");
        assert_eq!(params.len(), grads.len(), "Sgd: grads length mismatch");
        if self.momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= lr * g;
            }
        } else {
            for ((p, &g), v) in params.iter_mut().zip(grads).zip(self.velocity.iter_mut()) {
                *v = self.momentum * *v + g;
                *p -= lr * *v;
            }
        }
    }
}

/// AdamW (decoupled weight decay), the paper's pretraining optimizer
/// (base lr 1.5e-4, β = (0.9, 0.95) as in MAE, wd 0.05).
#[derive(Debug, Clone)]
pub struct AdamW {
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    /// Per-element decay eligibility (None ⇒ decay everything).
    decay_mask: Option<Vec<bool>>,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl AdamW {
    /// New AdamW over a buffer of `len` elements with MAE-style betas.
    pub fn new(len: usize, weight_decay: f32) -> Self {
        Self {
            beta1: 0.9,
            beta2: 0.95,
            eps: 1e-8,
            weight_decay,
            decay_mask: None,
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
        }
    }

    /// Restrict weight decay to elements where the mask is `true`
    /// (weights yes; biases/norms/embeddings no).
    pub fn with_decay_mask(mut self, mask: Vec<bool>) -> Self {
        assert_eq!(mask.len(), self.m.len(), "AdamW: mask length mismatch");
        self.decay_mask = Some(mask);
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Snapshot the optimizer state (moments + step counter) for
    /// checkpointing. The decay mask and hyper-parameters are *not* part of
    /// the state — they are reconstructed from the model config on restart.
    pub fn export_state(&self) -> AdamWState {
        AdamWState { m: self.m.clone(), v: self.v.clone(), t: self.t }
    }

    /// Restore state captured by [`AdamW::export_state`]. Exact (bit-level)
    /// restoration: a run resumed from this state takes identical steps to
    /// one that never stopped.
    ///
    /// # Panics
    /// Panics if the state's buffer length differs from this optimizer's.
    pub fn load_state(&mut self, state: AdamWState) {
        assert_eq!(state.m.len(), self.m.len(), "AdamW: state length mismatch");
        assert_eq!(state.v.len(), self.v.len(), "AdamW: state length mismatch");
        self.m = state.m;
        self.v = state.v;
        self.t = state.t;
    }

    /// Textbook scalar update — the reference the fused
    /// [`Optimizer::step`] is differentially tested against
    /// (`tests/kernel_differential.rs` asserts bit-identical trajectories).
    pub fn step_reference(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), self.m.len(), "AdamW: buffer length changed");
        assert_eq!(params.len(), grads.len(), "AdamW: grads length mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            let decay = match &self.decay_mask {
                Some(mask) => mask[i],
                None => true,
            };
            if decay && self.weight_decay > 0.0 {
                params[i] -= lr * self.weight_decay * params[i];
            }
            params[i] -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

/// Checkpointable AdamW state: first/second moments and the step counter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdamWState {
    /// First-moment estimates, aligned with the parameter buffer.
    pub m: Vec<f32>,
    /// Second-moment estimates, aligned with the parameter buffer.
    pub v: Vec<f32>,
    /// Steps taken so far (drives bias correction).
    pub t: u64,
}

impl Optimizer for AdamW {
    /// Fused update: one pass over `params`/`grads`/`m`/`v` with zipped
    /// iterators (no per-access bounds checks) and the decay branch hoisted
    /// out of the loop. Every per-element operation — the moment updates,
    /// the `m/b1t` and `v/b2t` divisions, the `(lr·wd)·p` decay and the
    /// `(lr·mhat)/(√vhat+ε)` step — runs in exactly the order of
    /// [`AdamW::step_reference`], so the trajectories are bit-identical
    /// (including denormals, zero grads and NaN propagation).
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), self.m.len(), "AdamW: buffer length changed");
        assert_eq!(params.len(), grads.len(), "AdamW: grads length mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let (b1, b2) = (self.beta1, self.beta2);
        // hoisted constants: `1 - β` and `lr·wd` are pure functions of the
        // hyper-parameters, so hoisting reproduces the reference's
        // left-associated products bit for bit
        let (omb1, omb2) = (1.0 - b1, 1.0 - b2);
        let eps = self.eps;
        let lrwd = lr * self.weight_decay;
        let fused = |p: &mut f32, g: f32, m: &mut f32, v: &mut f32, decay: bool| {
            *m = b1 * *m + omb1 * g;
            *v = b2 * *v + omb2 * g * g;
            let mhat = *m / b1t;
            let vhat = *v / b2t;
            if decay {
                *p -= lrwd * *p;
            }
            *p -= lr * mhat / (vhat.sqrt() + eps);
        };
        let rows = params.iter_mut().zip(grads).zip(self.m.iter_mut()).zip(self.v.iter_mut());
        if self.weight_decay <= 0.0 {
            for (((p, &g), m), v) in rows {
                fused(p, g, m, v, false);
            }
        } else {
            match &self.decay_mask {
                None => {
                    for (((p, &g), m), v) in rows {
                        fused(p, g, m, v, true);
                    }
                }
                Some(mask) => {
                    for ((((p, &g), m), v), &decay) in rows.zip(mask.iter()) {
                        fused(p, g, m, v, decay);
                    }
                }
            }
        }
    }
}

/// LARS (You et al., 2017): layer-wise adaptive rate scaling with momentum —
/// the paper's linear-probing optimizer (base lr 0.1, no weight decay).
///
/// The trust ratio is computed per [`Segment`], i.e. per parameter tensor.
#[derive(Debug, Clone)]
pub struct Lars {
    momentum: f32,
    weight_decay: f32,
    trust_coefficient: f32,
    segments: Vec<Segment>,
    velocity: Vec<f32>,
}

impl Lars {
    /// New LARS over a flat buffer described by `segments`.
    ///
    /// # Panics
    /// Panics if segments are not contiguous from zero.
    pub fn new(segments: Vec<Segment>, weight_decay: f32) -> Self {
        let mut expect = 0;
        for s in &segments {
            assert_eq!(s.start, expect, "Lars: segments must be contiguous");
            expect += s.len;
        }
        Self {
            momentum: 0.9,
            weight_decay,
            trust_coefficient: 0.001,
            velocity: vec![0.0; expect],
            segments,
        }
    }
}

impl Optimizer for Lars {
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), self.velocity.len(), "Lars: buffer length changed");
        assert_eq!(params.len(), grads.len(), "Lars: grads length mismatch");
        for seg in &self.segments {
            let r = seg.start..seg.start + seg.len;
            let p = &mut params[r.clone()];
            let g = &grads[r.clone()];
            let v = &mut self.velocity[r];
            let p_norm = p.iter().map(|x| (*x as f64) * (*x as f64)).sum::<f64>().sqrt() as f32;
            let g_norm = g.iter().map(|x| (*x as f64) * (*x as f64)).sum::<f64>().sqrt() as f32;
            let wd = if seg.decay { self.weight_decay } else { 0.0 };
            let denom = g_norm + wd * p_norm;
            let trust = if p_norm > 0.0 && denom > 0.0 {
                self.trust_coefficient * p_norm / denom
            } else {
                1.0
            };
            let local_lr = lr * trust;
            for i in 0..p.len() {
                let update = g[i] + wd * p[i];
                v[i] = self.momentum * v[i] + local_lr * update;
                p[i] -= v[i];
            }
        }
    }
}

/// Scale `grad` in place so its global L2 norm is at most `max_norm`;
/// returns the pre-clip norm. This is the standard pre-optimizer clip.
pub fn clip_grad_norm(grad: &mut [f32], max_norm: f32) -> f32 {
    let norm = grad.iter().map(|g| (*g as f64) * (*g as f64)).sum::<f64>().sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grad.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_descends_quadratic() {
        // minimise f(p) = 0.5 p², grad = p
        let mut p = vec![10.0f32];
        let mut opt = Sgd::new(1, 0.0);
        for _ in 0..100 {
            let g = vec![p[0]];
            opt.step(&mut p, &g, 0.1);
        }
        assert!(p[0].abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let run = |mom: f32| {
            let mut p = vec![10.0f32];
            let mut opt = Sgd::new(1, mom);
            for _ in 0..30 {
                let g = vec![p[0]];
                opt.step(&mut p, &g, 0.01);
            }
            p[0]
        };
        assert!(run(0.9).abs() < run(0.0).abs());
    }

    #[test]
    fn adamw_descends_quadratic() {
        let mut p = vec![5.0f32, -3.0];
        let mut opt = AdamW::new(2, 0.0);
        for _ in 0..600 {
            let g = vec![p[0], p[1]];
            opt.step(&mut p, &g, 0.05);
        }
        assert!(p[0].abs() < 1e-2 && p[1].abs() < 1e-2, "p = {:?}", p);
    }

    #[test]
    fn adamw_weight_decay_shrinks_params_without_grad() {
        let mut p = vec![1.0f32];
        let mut opt = AdamW::new(1, 0.1);
        for _ in 0..10 {
            opt.step(&mut p, &[0.0], 0.1);
        }
        assert!(p[0] < 1.0 && p[0] > 0.8, "p = {:?}", p);
    }

    #[test]
    fn adamw_decay_mask_protects_elements() {
        let mut p = vec![1.0f32, 1.0];
        let mut opt = AdamW::new(2, 0.1).with_decay_mask(vec![true, false]);
        for _ in 0..10 {
            opt.step(&mut p, &[0.0, 0.0], 0.1);
        }
        assert!(p[0] < 1.0);
        assert_eq!(p[1], 1.0);
    }

    #[test]
    fn adamw_state_roundtrip_is_bit_identical() {
        // optimizer A runs 20 steps straight; optimizer B runs 10, is
        // checkpointed/restored, then runs 10 more — trajectories must be
        // bit-identical, which is what crash-safe resume relies on.
        let grads: Vec<Vec<f32>> = (0..20).map(|i| vec![(i as f32).sin(), 0.7 - i as f32]).collect();
        let mut pa = vec![1.0f32, -2.0];
        let mut oa = AdamW::new(2, 0.05);
        for g in &grads {
            oa.step(&mut pa, g, 1e-3);
        }

        let mut pb = vec![1.0f32, -2.0];
        let mut ob = AdamW::new(2, 0.05);
        for g in &grads[..10] {
            ob.step(&mut pb, g, 1e-3);
        }
        let saved = ob.export_state();
        let mut oc = AdamW::new(2, 0.05);
        oc.load_state(saved);
        assert_eq!(oc.steps(), 10);
        for g in &grads[10..] {
            oc.step(&mut pb, g, 1e-3);
        }
        assert_eq!(pa, pb, "resumed trajectory must be bit-identical");
    }

    #[test]
    #[should_panic(expected = "state length mismatch")]
    fn adamw_rejects_wrong_length_state() {
        let mut o = AdamW::new(3, 0.0);
        o.load_state(AdamWState { m: vec![0.0; 2], v: vec![0.0; 2], t: 1 });
    }

    #[test]
    fn adamw_step_size_is_bounded_by_lr() {
        // Adam's |update| ≤ lr / (1-β1) roughly; for one step it's ≈ lr.
        let mut p = vec![0.0f32];
        let mut opt = AdamW::new(1, 0.0);
        opt.step(&mut p, &[1000.0], 0.01);
        assert!(p[0].abs() < 0.05, "p = {:?}", p);
    }

    #[test]
    fn lars_descends_quadratic() {
        let segs = vec![Segment { start: 0, len: 2, decay: true }];
        let mut p = vec![4.0f32, -2.0];
        let mut opt = Lars::new(segs, 0.0);
        for _ in 0..3000 {
            let g = vec![p[0], p[1]];
            opt.step(&mut p, &g, 1.0);
        }
        assert!(p[0].abs() < 0.1 && p[1].abs() < 0.1, "p = {:?}", p);
    }

    #[test]
    fn lars_trust_ratio_scales_with_param_norm() {
        // two segments with the same gradient but different param norms:
        // the bigger-norm segment takes a bigger absolute step.
        let segs = vec![
            Segment { start: 0, len: 1, decay: false },
            Segment { start: 1, len: 1, decay: false },
        ];
        let mut p = vec![10.0f32, 0.1];
        let before = p.clone();
        let mut opt = Lars::new(segs, 0.0);
        opt.step(&mut p, &[1.0, 1.0], 1.0);
        let step0 = (before[0] - p[0]).abs();
        let step1 = (before[1] - p[1]).abs();
        assert!(step0 > step1, "steps: {} vs {}", step0, step1);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn lars_rejects_gappy_segments() {
        let _ = Lars::new(vec![Segment { start: 1, len: 2, decay: true }], 0.0);
    }

    #[test]
    fn clip_grad_norm_caps_norm() {
        let mut g = vec![3.0f32, 4.0]; // norm 5
        let pre = clip_grad_norm(&mut g, 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        let post = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_noop_below_threshold() {
        let mut g = vec![0.3f32, 0.4];
        clip_grad_norm(&mut g, 1.0);
        assert_eq!(g, vec![0.3, 0.4]);
    }

    #[test]
    fn segments_of_matches_module_layout() {
        use crate::linear::Linear;
        use geofm_tensor::TensorRng;
        let mut rng = TensorRng::seed_from(1);
        let mut layer = Linear::new(3, 2, &mut rng, "t");
        let segs = segments_of(&mut layer);
        assert_eq!(
            segs,
            vec![
                Segment { start: 0, len: 6, decay: true },
                Segment { start: 6, len: 2, decay: false }
            ]
        );
    }
}
