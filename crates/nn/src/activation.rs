//! GELU activation (tanh approximation) with explicit backward.

use geofm_tensor::Tensor;

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_C: f32 = 0.044_715;

#[inline]
fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + GELU_C * x * x * x)).tanh())
}

#[inline]
fn gelu_grad_scalar(x: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (x + GELU_C * x * x * x);
    let t = u.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_C * x * x)
}

/// Stateless-weights GELU layer; caches its input for the backward pass.
#[derive(Debug, Clone, Default)]
pub struct Gelu {
    cache_x: Option<Tensor>,
}

impl Gelu {
    /// New GELU layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass; caches the input.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cache_x = Some(x.clone());
        x.map(gelu_scalar)
    }

    /// Inference-only forward (no caching).
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        x.map(gelu_scalar)
    }

    /// Backward pass: `dx = dy ⊙ gelu'(x)`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("Gelu::backward before forward");
        assert_eq!(x.shape(), dy.shape(), "Gelu::backward shape mismatch");
        let mut dx = x.map(gelu_grad_scalar);
        dx.mul_assign(dy);
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geofm_tensor::TensorRng;

    #[test]
    fn known_values() {
        assert!((gelu_scalar(0.0)).abs() < 1e-7);
        // gelu(x) → x for large positive x, → 0 for large negative x
        assert!((gelu_scalar(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu_scalar(-10.0).abs() < 1e-4);
        // gelu(1) ≈ 0.8412 (tanh approximation)
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = TensorRng::seed_from(5);
        let x = rng.randn(&[40], 1.5);
        let eps = 1e-3f32;
        for i in 0..40 {
            let xi = x.data()[i];
            let fd = (gelu_scalar(xi + eps) - gelu_scalar(xi - eps)) / (2.0 * eps);
            let an = gelu_grad_scalar(xi);
            assert!((fd - an).abs() < 1e-3, "x={}: fd {} vs analytic {}", xi, fd, an);
        }
    }

    #[test]
    fn layer_backward_chains_upstream() {
        let mut rng = TensorRng::seed_from(6);
        let x = rng.randn(&[3, 4], 1.0);
        let dy = rng.randn(&[3, 4], 1.0);
        let mut g = Gelu::new();
        g.forward(&x);
        let dx = g.backward(&dy);
        for i in 0..12 {
            let expect = gelu_grad_scalar(x.data()[i]) * dy.data()[i];
            assert!((dx.data()[i] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn monotone_for_positive_inputs() {
        let mut last = gelu_scalar(0.0);
        for i in 1..100 {
            let v = gelu_scalar(i as f32 * 0.1);
            assert!(v > last);
            last = v;
        }
    }
}
