//! Trainable parameters and the module-visitation protocol used by the
//! optimizers and by `geofm-fsdp`'s flat-parameter packing.

use geofm_tensor::Tensor;

/// A trainable parameter: value tensor + accumulated gradient + metadata.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Whether weight decay applies (true for weights, false for biases,
    /// norm scales/offsets and embeddings, following common ViT practice).
    pub decay: bool,
    /// Stable name for debugging and checkpointing.
    pub name: String,
}

impl Param {
    /// Wrap a value tensor as a parameter with a zeroed gradient.
    pub fn new(value: Tensor, decay: bool, name: impl Into<String>) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { value, grad, decay, name: name.into() }
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Reset the gradient to zero.
    pub fn zero_grad(&mut self) {
        for g in self.grad.data_mut() {
            *g = 0.0;
        }
    }
}

/// Closure alias for walking a module's parameters in a stable order.
pub type ParamVisitor<'a> = dyn FnMut(&mut Param) + 'a;

/// Anything that owns parameters.
///
/// The **visitation order must be deterministic** — it defines the layout of
/// the flat buffer `geofm-fsdp` shards, so every rank must see the same
/// order.
pub trait Module {
    /// Visit every parameter exactly once, in a stable order.
    fn visit_params(&mut self, f: &mut ParamVisitor);

    /// Total number of trainable scalars.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }

    /// Zero all gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Copy all parameter values into a flat buffer (FSDP pack).
    fn pack_values(&mut self, out: &mut Vec<f32>) {
        out.clear();
        self.visit_params(&mut |p| out.extend_from_slice(p.value.data()));
    }

    /// Copy all gradients into a flat buffer.
    fn pack_grads(&mut self, out: &mut Vec<f32>) {
        out.clear();
        self.visit_params(&mut |p| out.extend_from_slice(p.grad.data()));
    }

    /// Load all parameter values from a flat buffer (FSDP unpack).
    ///
    /// # Panics
    /// Panics if `src` is shorter than the module's parameter count.
    fn unpack_values(&mut self, src: &[f32]) {
        let mut off = 0;
        self.visit_params(&mut |p| {
            let n = p.numel();
            p.value.data_mut().copy_from_slice(&src[off..off + n]);
            off += n;
        });
    }

    /// Per-element weight-decay mask aligned with the flat layout.
    fn decay_mask(&mut self) -> Vec<bool> {
        let mut mask = Vec::new();
        self.visit_params(&mut |p| {
            mask.extend(std::iter::repeat_n(p.decay, p.numel()));
        });
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        a: Param,
        b: Param,
    }

    impl Module for Toy {
        fn visit_params(&mut self, f: &mut ParamVisitor) {
            f(&mut self.a);
            f(&mut self.b);
        }
    }

    fn toy() -> Toy {
        Toy {
            a: Param::new(Tensor::from_vec(&[2], vec![1., 2.]), true, "a"),
            b: Param::new(Tensor::from_vec(&[3], vec![3., 4., 5.]), false, "b"),
        }
    }

    #[test]
    fn num_params_counts_all() {
        assert_eq!(toy().num_params(), 5);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut m = toy();
        let mut buf = Vec::new();
        m.pack_values(&mut buf);
        assert_eq!(buf, vec![1., 2., 3., 4., 5.]);
        let newvals = vec![9., 8., 7., 6., 5.];
        m.unpack_values(&newvals);
        let mut buf2 = Vec::new();
        m.pack_values(&mut buf2);
        assert_eq!(buf2, newvals);
    }

    #[test]
    fn zero_grad_clears() {
        let mut m = toy();
        m.a.grad.data_mut()[0] = 3.0;
        m.zero_grad();
        let mut g = Vec::new();
        m.pack_grads(&mut g);
        assert!(g.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn decay_mask_layout() {
        let mut m = toy();
        assert_eq!(m.decay_mask(), vec![true, true, false, false, false]);
    }
}
