//! Transformer MLP and the pre-LN encoder block.

use crate::activation::Gelu;
use crate::attention::MultiHeadAttention;
use crate::linear::Linear;
use crate::norm::LayerNorm;
use crate::param::{Module, ParamVisitor};
use geofm_tensor::{Tensor, TensorRng};

/// Two-layer MLP with GELU: `width → mlp_width → width`.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Expansion projection.
    pub fc1: Linear,
    /// Contraction projection.
    pub fc2: Linear,
    act: Gelu,
}

impl Mlp {
    /// New MLP.
    pub fn new(width: usize, mlp_width: usize, rng: &mut TensorRng, name: &str) -> Self {
        Self {
            fc1: Linear::new(width, mlp_width, rng, &format!("{name}.fc1")),
            fc2: Linear::new(mlp_width, width, rng, &format!("{name}.fc2")),
            act: Gelu::new(),
        }
    }

    /// Forward for `x: [n, width]`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let h = self.fc1.forward(x);
        let a = self.act.forward(&h);
        self.fc2.forward(&a)
    }

    /// Inference-only forward.
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        let h = self.fc1.forward_inference(x);
        let a = self.act.forward_inference(&h);
        self.fc2.forward_inference(&a)
    }

    /// Backward; returns `dx`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let da = self.fc2.backward(dy);
        let dh = self.act.backward(&da);
        self.fc1.backward(&dh)
    }
}

impl Module for Mlp {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }
}

/// Pre-LN transformer encoder block:
/// `x + Attn(LN₁(x))` then `· + MLP(LN₂(·))`.
///
/// This is the unit `geofm-fsdp` wraps (one FSDP "unit" per block), so its
/// parameter visitation order defines a flat-param layout.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    /// Pre-attention LayerNorm.
    pub ln1: LayerNorm,
    /// Self-attention.
    pub attn: MultiHeadAttention,
    /// Pre-MLP LayerNorm.
    pub ln2: LayerNorm,
    /// Feed-forward network.
    pub mlp: Mlp,
    width: usize,
    /// Input saved by [`TransformerBlock::forward_checkpointed`].
    ckpt_input: Option<Tensor>,
}

impl TransformerBlock {
    /// New block.
    pub fn new(width: usize, mlp_width: usize, heads: usize, rng: &mut TensorRng, name: &str) -> Self {
        Self {
            ln1: LayerNorm::new(width, &format!("{name}.ln1")),
            attn: MultiHeadAttention::new(width, heads, rng, &format!("{name}.attn")),
            ln2: LayerNorm::new(width, &format!("{name}.ln2")),
            mlp: Mlp::new(width, mlp_width, rng, &format!("{name}.mlp")),
            width,
            ckpt_input: None,
        }
    }

    /// Forward for `x: [b, t, width]`, caching for backward.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let (b, t, w) = (x.dim(0), x.dim(1), x.dim(2));
        assert_eq!(w, self.width, "block width mismatch");
        let flat = x.clone().reshape(&[b * t, w]);
        let n1 = self.ln1.forward(&flat).reshape(&[b, t, w]);
        let attn_out = self.attn.forward(&n1);
        let mut h = x.clone();
        h.add_assign(&attn_out);
        let hflat = h.clone().reshape(&[b * t, w]);
        let n2 = self.ln2.forward(&hflat);
        let mlp_out = self.mlp.forward(&n2).reshape(&[b, t, w]);
        let mut y = h;
        y.add_assign(&mlp_out);
        y
    }

    /// Inference-only forward.
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        let (b, t, w) = (x.dim(0), x.dim(1), x.dim(2));
        let flat = x.clone().reshape(&[b * t, w]);
        let n1 = self.ln1.forward_inference(&flat).reshape(&[b, t, w]);
        let attn_out = self.attn.forward_inference(&n1);
        let mut h = x.clone();
        h.add_assign(&attn_out);
        let hflat = h.clone().reshape(&[b * t, w]);
        let n2 = self.ln2.forward_inference(&hflat);
        let mlp_out = self.mlp.forward_inference(&n2).reshape(&[b, t, w]);
        let mut y = h;
        y.add_assign(&mlp_out);
        y
    }

    /// Activation-checkpointed forward: saves only the block *input* and
    /// runs a cache-free forward. The backward pass recomputes the forward
    /// to rebuild activations (rematerialization) — the memory/compute
    /// trade the paper's ViT-3B-in-64 GB configuration relies on, at the
    /// cost of one extra forward per block in backward.
    pub fn forward_checkpointed(&mut self, x: &Tensor) -> Tensor {
        self.ckpt_input = Some(x.clone());
        self.forward_inference(x)
    }

    /// Backward counterpart of [`TransformerBlock::forward_checkpointed`]:
    /// recompute, then backpropagate.
    pub fn backward_checkpointed(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .ckpt_input
            .take()
            .expect("backward_checkpointed before forward_checkpointed");
        let _ = self.forward(&x); // rebuild caches
        self.backward(dy)
    }

    /// Backward; returns `dx: [b, t, width]`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (b, t, w) = (dy.dim(0), dy.dim(1), dy.dim(2));
        // y = h + mlp(ln2(h)); dh = dy + ln2ᵀ(mlpᵀ(dy))
        let dmlp = self.mlp.backward(&dy.clone().reshape(&[b * t, w]));
        let dh_from_mlp = self.ln2.backward(&dmlp);
        let mut dh = dy.clone();
        dh.add_assign(&dh_from_mlp.reshape(&[b, t, w]));
        // h = x + attn(ln1(x)); dx = dh + ln1ᵀ(attnᵀ(dh))
        let dattn = self.attn.backward(&dh);
        let dx_from_attn = self.ln1.backward(&dattn.reshape(&[b * t, w]));
        let mut dx = dh;
        dx.add_assign(&dx_from_attn.reshape(&[b, t, w]));
        dx
    }
}

impl Module for TransformerBlock {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.ln1.visit_params(f);
        self.attn.visit_params(f);
        self.ln2.visit_params(f);
        self.mlp.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_gradcheck() {
        let mut rng = TensorRng::seed_from(10);
        let mut mlp = Mlp::new(4, 8, &mut rng, "t");
        let x = rng.randn(&[3, 4], 1.0);
        let dy = rng.randn(&[3, 4], 1.0);
        mlp.forward(&x);
        let dx = mlp.backward(&dy);
        let loss = |m: &Mlp, xin: &Tensor| -> f32 {
            m.forward_inference(xin).data().iter().zip(dy.data()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-2f32;
        for i in [0usize, 5, 11] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&mlp, &xp) - loss(&mlp, &xm)) / (2.0 * eps);
            assert!((fd - dx.data()[i]).abs() < 3e-2, "dx[{}]: {} vs {}", i, fd, dx.data()[i]);
        }
        for i in [0usize, 9, 31] {
            let mut mp = mlp.clone();
            mp.fc1.weight.value.data_mut()[i] += eps;
            let mut mm = mlp.clone();
            mm.fc1.weight.value.data_mut()[i] -= eps;
            let fd = (loss(&mp, &x) - loss(&mm, &x)) / (2.0 * eps);
            let an = mlp.fc1.weight.grad.data()[i];
            assert!((fd - an).abs() < 3e-2, "dW1[{}]: {} vs {}", i, fd, an);
        }
    }

    #[test]
    fn block_forward_shape_and_residual() {
        let mut rng = TensorRng::seed_from(11);
        let mut blk = TransformerBlock::new(8, 16, 2, &mut rng, "t");
        let x = rng.randn(&[2, 4, 8], 1.0);
        let y = blk.forward(&x);
        assert_eq!(y.shape(), &[2, 4, 8]);
        // with near-zero init weights the block is approximately identity + noise;
        // output must stay correlated with input (residual path).
        let diff = y.sub(&x);
        assert!(diff.l2_norm() < x.l2_norm(), "residual path should dominate at init");
    }

    #[test]
    fn block_gradcheck() {
        let mut rng = TensorRng::seed_from(12);
        let mut blk = TransformerBlock::new(4, 8, 2, &mut rng, "t");
        let x = rng.randn(&[1, 3, 4], 0.7);
        let dy = rng.randn(&[1, 3, 4], 1.0);
        blk.forward(&x);
        let dx = blk.backward(&dy);
        let loss = |b: &TransformerBlock, xin: &Tensor| -> f32 {
            b.forward_inference(xin).data().iter().zip(dy.data()).map(|(p, q)| p * q).sum()
        };
        let eps = 1e-2f32;
        for i in 0..12 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&blk, &xp) - loss(&blk, &xm)) / (2.0 * eps);
            assert!(
                (fd - dx.data()[i]).abs() < 6e-2,
                "dx[{}]: fd {} vs analytic {}",
                i,
                fd,
                dx.data()[i]
            );
        }
    }

    #[test]
    fn block_param_count() {
        let mut rng = TensorRng::seed_from(13);
        let w = 8;
        let m = 16;
        let mut blk = TransformerBlock::new(w, m, 2, &mut rng, "t");
        let expect = 2 * w // ln1
            + (w * 3 * w + 3 * w) + (w * w + w) // attn
            + 2 * w // ln2
            + (w * m + m) + (m * w + w); // mlp
        assert_eq!(blk.num_params(), expect);
    }

    #[test]
    fn checkpointed_path_matches_regular_gradients() {
        let mut rng = TensorRng::seed_from(15);
        let x = rng.randn(&[2, 3, 8], 1.0);
        let dy = rng.randn(&[2, 3, 8], 1.0);

        let mut regular = TransformerBlock::new(8, 16, 2, &mut rng, "t");
        let mut ckpt = regular.clone();

        let y1 = regular.forward(&x);
        let dx1 = regular.backward(&dy);
        let y2 = ckpt.forward_checkpointed(&x);
        let dx2 = ckpt.backward_checkpointed(&dy);

        assert!(y1.max_abs_diff(&y2) < 1e-5, "outputs must match");
        assert!(dx1.max_abs_diff(&dx2) < 1e-5, "input grads must match");
        let (mut g1, mut g2) = (Vec::new(), Vec::new());
        regular.pack_grads(&mut g1);
        ckpt.pack_grads(&mut g2);
        let max = g1.iter().zip(&g2).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(max < 1e-5, "param grads must match (max diff {})", max);
    }

    #[test]
    #[should_panic(expected = "before forward_checkpointed")]
    fn checkpointed_backward_requires_forward() {
        let mut rng = TensorRng::seed_from(16);
        let mut blk = TransformerBlock::new(8, 16, 2, &mut rng, "t");
        let _ = blk.backward_checkpointed(&Tensor::zeros(&[1, 2, 8]));
    }

    #[test]
    fn training_and_inference_forward_agree() {
        let mut rng = TensorRng::seed_from(14);
        let mut blk = TransformerBlock::new(8, 16, 2, &mut rng, "t");
        let x = rng.randn(&[2, 3, 8], 1.0);
        let y1 = blk.forward(&x);
        let y2 = blk.forward_inference(&x);
        assert!(y1.max_abs_diff(&y2) < 1e-5);
    }
}
