//! Multi-head self-attention with explicit backward.

use crate::linear::Linear;
use crate::param::{Module, ParamVisitor};
use crate::{merge_heads, split_heads};
use geofm_tensor::{bmm, bmm_a_bt, bmm_at_b, Tensor, TensorRng};

/// Multi-head self-attention: fused QKV projection, scaled dot-product
/// attention per head, output projection.
///
/// Input/output shape is `[batch, tokens, width]`.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    /// Fused projection producing `[q|k|v]`, width → 3·width.
    pub qkv: Linear,
    /// Output projection, width → width.
    pub proj: Linear,
    width: usize,
    heads: usize,
    scale: f32,
    cache: Option<AttnCache>,
}

#[derive(Debug, Clone)]
struct AttnCache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Softmax probabilities, `[b*heads, t, t]`.
    probs: Tensor,
    batch: usize,
    tokens: usize,
}

impl MultiHeadAttention {
    /// New attention layer of the given width and head count.
    ///
    /// # Panics
    /// Panics unless `width % heads == 0`.
    pub fn new(width: usize, heads: usize, rng: &mut TensorRng, name: &str) -> Self {
        assert_eq!(width % heads, 0, "attention width {} not divisible by {} heads", width, heads);
        let head_dim = width / heads;
        Self {
            qkv: Linear::new(width, 3 * width, rng, &format!("{name}.qkv")),
            proj: Linear::new(width, width, rng, &format!("{name}.proj")),
            width,
            heads,
            scale: 1.0 / (head_dim as f32).sqrt(),
            cache: None,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    fn split_qkv(&self, qkv: &Tensor, b: usize, t: usize) -> (Tensor, Tensor, Tensor) {
        // qkv: [b*t, 3*width] → three [b, t, width] tensors
        let w = self.width;
        let mut q = Tensor::zeros(&[b, t, w]);
        let mut k = Tensor::zeros(&[b, t, w]);
        let mut v = Tensor::zeros(&[b, t, w]);
        let src = qkv.data();
        for r in 0..b * t {
            let row = &src[r * 3 * w..(r + 1) * 3 * w];
            q.data_mut()[r * w..(r + 1) * w].copy_from_slice(&row[0..w]);
            k.data_mut()[r * w..(r + 1) * w].copy_from_slice(&row[w..2 * w]);
            v.data_mut()[r * w..(r + 1) * w].copy_from_slice(&row[2 * w..3 * w]);
        }
        (q, k, v)
    }

    fn fuse_dqkv(&self, dq: &Tensor, dk: &Tensor, dv: &Tensor, b: usize, t: usize) -> Tensor {
        let w = self.width;
        let mut dqkv = Tensor::zeros(&[b * t, 3 * w]);
        let dst = dqkv.data_mut();
        for r in 0..b * t {
            let row = &mut dst[r * 3 * w..(r + 1) * 3 * w];
            row[0..w].copy_from_slice(&dq.data()[r * w..(r + 1) * w]);
            row[w..2 * w].copy_from_slice(&dk.data()[r * w..(r + 1) * w]);
            row[2 * w..3 * w].copy_from_slice(&dv.data()[r * w..(r + 1) * w]);
        }
        dqkv
    }

    fn attention_forward(&self, x: &Tensor, cache: bool) -> (Tensor, Option<AttnCache>) {
        assert_eq!(x.ndim(), 3, "attention expects [batch, tokens, width]");
        let (b, t, w) = (x.dim(0), x.dim(1), x.dim(2));
        assert_eq!(w, self.width, "attention width mismatch");
        let flat = x.clone().reshape(&[b * t, w]);
        let qkv = if cache {
            // we need qkv's linear cache for backward; but self is &self here,
            // so the caching variant goes through forward() below.
            unreachable!("internal: cached path handled in forward()")
        } else {
            self.qkv.forward_inference(&flat)
        };
        let (q3, k3, v3) = self.split_qkv(&qkv, b, t);
        let q = split_heads(&q3, self.heads);
        let k = split_heads(&k3, self.heads);
        let v = split_heads(&v3, self.heads);
        let (out, _probs) = self.core(&q, &k, &v, b, t);
        let y = self.proj.forward_inference(&out.clone().reshape(&[b * t, w]));
        (y.reshape(&[b, t, w]), None)
    }

    /// Scaled-dot-product core: returns merged `[b*t, w]` context and probs.
    fn core(&self, q: &Tensor, k: &Tensor, v: &Tensor, b: usize, t: usize) -> (Tensor, Tensor) {
        let mut scores = bmm_a_bt(q, k); // [b*h, t, t]
        scores.scale_assign(self.scale);
        let bh = b * self.heads;
        let mut probs = scores.reshape(&[bh * t, t]);
        probs.softmax_rows_inplace();
        let probs = probs.reshape(&[bh, t, t]);
        let ctx = bmm(&probs, v); // [b*h, t, hd]
        let merged = merge_heads(&ctx, self.heads).reshape(&[b * t, self.width]);
        (merged, probs)
    }

    /// Forward pass with caching for backward. `x: [b, t, w]`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.ndim(), 3, "attention expects [batch, tokens, width]");
        let (b, t, w) = (x.dim(0), x.dim(1), x.dim(2));
        assert_eq!(w, self.width, "attention width mismatch");
        let flat = x.clone().reshape(&[b * t, w]);
        let qkv = self.qkv.forward(&flat);
        let (q3, k3, v3) = self.split_qkv(&qkv, b, t);
        let q = split_heads(&q3, self.heads);
        let k = split_heads(&k3, self.heads);
        let v = split_heads(&v3, self.heads);
        let (merged, probs) = self.core(&q, &k, &v, b, t);
        let y = self.proj.forward(&merged);
        self.cache = Some(AttnCache { q, k, v, probs, batch: b, tokens: t });
        y.reshape(&[b, t, w])
    }

    /// Inference-only forward (no caching).
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        self.attention_forward(x, false).0
    }

    /// Backward pass; returns `dx: [b, t, w]`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let c = self.cache.take().expect("MultiHeadAttention::backward before forward");
        let (b, t, w) = (c.batch, c.tokens, self.width);
        assert_eq!(dy.shape(), &[b, t, w], "attention backward shape mismatch");

        // proj backward
        let dmerged = self.proj.backward(&dy.clone().reshape(&[b * t, w]));
        let dctx = split_heads(&dmerged.reshape(&[b, t, w]), self.heads); // [b*h, t, hd]

        // ctx = probs · v
        let dprobs = bmm_a_bt(&dctx, &c.v); // [b*h, t, t]
        let dv = bmm_at_b(&c.probs, &dctx); // [b*h, t, hd]

        // softmax backward (row-wise over last dim)
        let bh = b * self.heads;
        let probs2 = c.probs.clone().reshape(&[bh * t, t]);
        let dprobs2 = dprobs.reshape(&[bh * t, t]);
        let dscores = probs2.softmax_rows_backward(&dprobs2).reshape(&[bh, t, t]);

        // scores = scale · q · kᵀ
        let mut dq = bmm(&dscores, &c.k); // [b*h, t, hd]
        dq.scale_assign(self.scale);
        let mut dk = bmm_at_b(&dscores, &c.q); // [b*h, t, hd]
        dk.scale_assign(self.scale);

        // merge heads back and fuse into dqkv
        let dq3 = merge_heads(&dq, self.heads).reshape(&[b * t, w]);
        let dk3 = merge_heads(&dk, self.heads).reshape(&[b * t, w]);
        let dv3 = merge_heads(&dv, self.heads).reshape(&[b * t, w]);
        let dqkv = self.fuse_dqkv(&dq3, &dk3, &dv3, b, t);

        let dx = self.qkv.backward(&dqkv);
        dx.reshape(&[b, t, w])
    }
}

impl Module for MultiHeadAttention {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.qkv.visit_params(f);
        self.proj.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let mut rng = TensorRng::seed_from(1);
        let mut attn = MultiHeadAttention::new(8, 2, &mut rng, "t");
        let x = rng.randn(&[2, 5, 8], 1.0);
        let y = attn.forward(&x);
        assert_eq!(y.shape(), &[2, 5, 8]);
        assert!(!y.has_non_finite());
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut rng = TensorRng::seed_from(2);
        let mut attn = MultiHeadAttention::new(8, 4, &mut rng, "t");
        let x = rng.randn(&[1, 6, 8], 1.0);
        let y1 = attn.forward(&x);
        let y2 = attn.forward_inference(&x);
        assert!(y1.max_abs_diff(&y2) < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = TensorRng::seed_from(3);
        let mut attn = MultiHeadAttention::new(4, 2, &mut rng, "t");
        let x = rng.randn(&[2, 3, 4], 0.8);
        let dy = rng.randn(&[2, 3, 4], 1.0);

        attn.forward(&x);
        let dx = attn.backward(&dy);

        let loss = |a: &MultiHeadAttention, xin: &Tensor| -> f32 {
            let y = a.forward_inference(xin);
            y.data().iter().zip(dy.data()).map(|(p, q)| p * q).sum()
        };
        let eps = 1e-2f32;
        // input gradient
        for i in [0usize, 5, 13, 23] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&attn, &xp) - loss(&attn, &xm)) / (2.0 * eps);
            assert!(
                (fd - dx.data()[i]).abs() < 5e-2,
                "dx[{}]: fd {} vs analytic {}",
                i,
                fd,
                dx.data()[i]
            );
        }
        // qkv weight gradient, a few entries
        for i in [0usize, 17, 40] {
            let mut ap = attn.clone();
            ap.qkv.weight.value.data_mut()[i] += eps;
            let mut am = attn.clone();
            am.qkv.weight.value.data_mut()[i] -= eps;
            let fd = (loss(&ap, &x) - loss(&am, &x)) / (2.0 * eps);
            let an = attn.qkv.weight.grad.data()[i];
            assert!((fd - an).abs() < 5e-2, "dWqkv[{}]: fd {} vs analytic {}", i, fd, an);
        }
        // proj weight gradient
        for i in [0usize, 7, 15] {
            let mut ap = attn.clone();
            ap.proj.weight.value.data_mut()[i] += eps;
            let mut am = attn.clone();
            am.proj.weight.value.data_mut()[i] -= eps;
            let fd = (loss(&ap, &x) - loss(&am, &x)) / (2.0 * eps);
            let an = attn.proj.weight.grad.data()[i];
            assert!((fd - an).abs() < 5e-2, "dWproj[{}]: fd {} vs analytic {}", i, fd, an);
        }
    }

    #[test]
    fn permutation_equivariance() {
        // Self-attention without a mask is equivariant to token permutation.
        let mut rng = TensorRng::seed_from(9);
        let attn = MultiHeadAttention::new(8, 2, &mut rng, "t");
        let x = rng.randn(&[1, 4, 8], 1.0);
        let y = attn.forward_inference(&x);
        // swap tokens 1 and 2
        let mut xp = x.clone();
        for j in 0..8 {
            let a = x.at(&[0, 1, j]);
            let b = x.at(&[0, 2, j]);
            xp.set(&[0, 1, j], b);
            xp.set(&[0, 2, j], a);
        }
        let yp = attn.forward_inference(&xp);
        for j in 0..8 {
            assert!((y.at(&[0, 1, j]) - yp.at(&[0, 2, j])).abs() < 1e-4);
            assert!((y.at(&[0, 2, j]) - yp.at(&[0, 1, j])).abs() < 1e-4);
        }
    }

    #[test]
    fn param_count() {
        let mut rng = TensorRng::seed_from(4);
        let mut attn = MultiHeadAttention::new(16, 4, &mut rng, "t");
        // qkv: 16·48 + 48 ; proj: 16·16 + 16
        assert_eq!(attn.num_params(), 16 * 48 + 48 + 16 * 16 + 16);
    }
}
