//! Patch embedding: image → token sequence via a linear projection of
//! flattened non-overlapping patches (the ViT stem).

use crate::linear::Linear;
use crate::param::{Module, Param, ParamVisitor};
use geofm_tensor::{Tensor, TensorRng};

/// Non-overlapping patchification + linear projection + learned positional
/// embedding.
///
/// Input images are `[b, channels·img·img]` flattened row-major
/// (channel-major: all of channel 0, then channel 1, ...). Output is
/// `[b, tokens, width]` with `tokens = (img/patch)²`.
#[derive(Debug, Clone)]
pub struct PatchEmbed {
    /// Linear projection `patch²·channels → width`.
    pub proj: Linear,
    /// Learned positional embedding, `[tokens, width]`.
    pub pos: Param,
    img: usize,
    patch: usize,
    channels: usize,
    width: usize,
    cache_b: usize,
}

impl PatchEmbed {
    /// New patch embedding.
    ///
    /// # Panics
    /// Panics unless `img % patch == 0`.
    pub fn new(
        img: usize,
        patch: usize,
        channels: usize,
        width: usize,
        rng: &mut TensorRng,
        name: &str,
    ) -> Self {
        assert_eq!(img % patch, 0, "image size {} not divisible by patch {}", img, patch);
        let tokens = (img / patch) * (img / patch);
        let proj = Linear::new(patch * patch * channels, width, rng, &format!("{name}.proj"));
        let pos = Param::new(rng.trunc_normal(&[tokens, width], 0.02), false, format!("{name}.pos"));
        Self { proj, pos, img, patch, channels, width, cache_b: 0 }
    }

    /// Tokens per image.
    pub fn tokens(&self) -> usize {
        (self.img / self.patch) * (self.img / self.patch)
    }

    /// Patch pixel dimension.
    pub fn patch(&self) -> usize {
        self.patch
    }

    /// Flattened patch length (`patch²·channels`).
    pub fn patch_dim(&self) -> usize {
        self.patch * self.patch * self.channels
    }

    /// Extract flattened patches: `[b, C·H·W]` → `[b·tokens, patch²·C]`.
    ///
    /// Patch pixel order is `(channel, py, px)` row-major, matching
    /// [`PatchEmbed::patchify`]'s inverse [`PatchEmbed::unpatchify`].
    pub fn patchify(&self, images: &Tensor) -> Tensor {
        let b = images.dim(0);
        let (img, p, c) = (self.img, self.patch, self.channels);
        assert_eq!(images.dim(1), c * img * img, "image buffer size mismatch");
        let grid = img / p;
        let pd = self.patch_dim();
        let mut out = Tensor::zeros(&[b * grid * grid, pd]);
        let src = images.data();
        let dst = out.data_mut();
        for bi in 0..b {
            let ibase = bi * c * img * img;
            for gy in 0..grid {
                for gx in 0..grid {
                    let tok = bi * grid * grid + gy * grid + gx;
                    let trow = &mut dst[tok * pd..(tok + 1) * pd];
                    for ch in 0..c {
                        for py in 0..p {
                            let src_off = ibase + ch * img * img + (gy * p + py) * img + gx * p;
                            let dst_off = ch * p * p + py * p;
                            trow[dst_off..dst_off + p].copy_from_slice(&src[src_off..src_off + p]);
                        }
                    }
                }
            }
        }
        out
    }

    /// Inverse of [`PatchEmbed::patchify`]: `[b·tokens, patch²·C]` → `[b, C·H·W]`.
    pub fn unpatchify(&self, patches: &Tensor, b: usize) -> Tensor {
        let (img, p, c) = (self.img, self.patch, self.channels);
        let grid = img / p;
        let pd = self.patch_dim();
        assert_eq!(patches.dim(0), b * grid * grid, "patch count mismatch");
        assert_eq!(patches.dim(1), pd, "patch width mismatch");
        let mut out = Tensor::zeros(&[b, c * img * img]);
        let src = patches.data();
        let dst = out.data_mut();
        for bi in 0..b {
            let ibase = bi * c * img * img;
            for gy in 0..grid {
                for gx in 0..grid {
                    let tok = bi * grid * grid + gy * grid + gx;
                    let trow = &src[tok * pd..(tok + 1) * pd];
                    for ch in 0..c {
                        for py in 0..p {
                            let dst_off = ibase + ch * img * img + (gy * p + py) * img + gx * p;
                            let src_off = ch * p * p + py * p;
                            dst[dst_off..dst_off + p].copy_from_slice(&trow[src_off..src_off + p]);
                        }
                    }
                }
            }
        }
        out
    }

    /// Forward: `[b, C·H·W]` images → `[b, tokens, width]` tokens (cached).
    pub fn forward(&mut self, images: &Tensor) -> Tensor {
        let b = images.dim(0);
        let patches = self.patchify(images);
        let mut tok = self.proj.forward(&patches); // [b·tokens, width]
        self.add_pos(&mut tok, b);
        self.cache_b = b;
        tok.reshape(&[b, self.tokens(), self.width])
    }

    /// Inference-only forward.
    pub fn forward_inference(&self, images: &Tensor) -> Tensor {
        let b = images.dim(0);
        let patches = self.patchify(images);
        let mut tok = self.proj.forward_inference(&patches);
        self.add_pos(&mut tok, b);
        tok.reshape(&[b, self.tokens(), self.width])
    }

    fn add_pos(&self, tok: &mut Tensor, b: usize) {
        let t = self.tokens();
        let w = self.width;
        let pos = self.pos.value.data();
        let data = tok.data_mut();
        for bi in 0..b {
            for ti in 0..t {
                let row = &mut data[(bi * t + ti) * w..(bi * t + ti + 1) * w];
                for (v, &pv) in row.iter_mut().zip(&pos[ti * w..(ti + 1) * w]) {
                    *v += pv;
                }
            }
        }
    }

    /// Backward from `dy: [b, tokens, width]`; accumulates projection and
    /// positional-embedding grads. (Input gradients are not needed — images
    /// are leaves.)
    pub fn backward(&mut self, dy: &Tensor) {
        let (b, t, w) = (dy.dim(0), dy.dim(1), dy.dim(2));
        assert_eq!(b, self.cache_b, "PatchEmbed::backward batch mismatch");
        assert_eq!(t, self.tokens(), "PatchEmbed::backward token mismatch");
        // positional grad: sum over batch
        {
            let pg = self.pos.grad.data_mut();
            let src = dy.data();
            for bi in 0..b {
                for ti in 0..t {
                    let row = &src[(bi * t + ti) * w..(bi * t + ti + 1) * w];
                    for (g, &v) in pg[ti * w..(ti + 1) * w].iter_mut().zip(row) {
                        *g += v;
                    }
                }
            }
        }
        let flat = dy.clone().reshape(&[b * t, w]);
        let _ = self.proj.backward(&flat);
    }
}

impl Module for PatchEmbed {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        self.proj.visit_params(f);
        f(&mut self.pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patchify_unpatchify_roundtrip() {
        let mut rng = TensorRng::seed_from(1);
        let pe = PatchEmbed::new(8, 4, 3, 16, &mut rng, "t");
        let imgs = rng.randn(&[2, 3 * 8 * 8], 1.0);
        let patches = pe.patchify(&imgs);
        assert_eq!(patches.shape(), &[2 * 4, 4 * 4 * 3]);
        let back = pe.unpatchify(&patches, 2);
        assert!(back.max_abs_diff(&imgs) < 1e-7);
    }

    #[test]
    fn patchify_places_pixels() {
        // 1 channel, 4x4 image, 2x2 patches: top-left patch holds pixels (0,1,4,5)
        let mut rng = TensorRng::seed_from(2);
        let pe = PatchEmbed::new(4, 2, 1, 8, &mut rng, "t");
        let imgs = Tensor::from_vec(&[1, 16], (0..16).map(|v| v as f32).collect());
        let patches = pe.patchify(&imgs);
        assert_eq!(patches.row(0), &[0., 1., 4., 5.]);
        assert_eq!(patches.row(1), &[2., 3., 6., 7.]);
        assert_eq!(patches.row(3), &[10., 11., 14., 15.]);
    }

    #[test]
    fn forward_shape_and_positional_effect() {
        let mut rng = TensorRng::seed_from(3);
        let mut pe = PatchEmbed::new(8, 4, 3, 16, &mut rng, "t");
        let imgs = rng.randn(&[2, 3 * 8 * 8], 1.0);
        let y = pe.forward(&imgs);
        assert_eq!(y.shape(), &[2, 4, 16]);
        // zero positional embedding changes the output
        let mut pe2 = pe.clone();
        pe2.pos.value = Tensor::zeros(pe2.pos.value.shape());
        let y2 = pe2.forward_inference(&imgs);
        assert!(y.max_abs_diff(&y2) > 1e-4);
    }

    #[test]
    fn pos_grad_accumulates_over_batch() {
        let mut rng = TensorRng::seed_from(4);
        let mut pe = PatchEmbed::new(4, 2, 1, 4, &mut rng, "t");
        let imgs = rng.randn(&[3, 16], 1.0);
        pe.forward(&imgs);
        let dy = Tensor::ones(&[3, 4, 4]);
        pe.backward(&dy);
        // each pos element receives gradient 1 from each of the 3 batch items
        assert!(pe.pos.grad.data().iter().all(|&g| (g - 3.0).abs() < 1e-6));
    }

    #[test]
    fn proj_grad_via_finite_difference() {
        let mut rng = TensorRng::seed_from(5);
        let mut pe = PatchEmbed::new(4, 2, 1, 3, &mut rng, "t");
        let imgs = rng.randn(&[2, 16], 1.0);
        let dy = rng.randn(&[2, 4, 3], 1.0);
        pe.forward(&imgs);
        pe.backward(&dy);
        let loss = |p: &PatchEmbed| -> f32 {
            p.forward_inference(&imgs).data().iter().zip(dy.data()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-2f32;
        for i in [0usize, 3, 7] {
            let mut pp = pe.clone();
            pp.proj.weight.value.data_mut()[i] += eps;
            let mut pm = pe.clone();
            pm.proj.weight.value.data_mut()[i] -= eps;
            let fd = (loss(&pp) - loss(&pm)) / (2.0 * eps);
            let an = pe.proj.weight.grad.data()[i];
            assert!((fd - an).abs() < 3e-2, "dWproj[{}]: fd {} vs {}", i, fd, an);
        }
    }
}
