//! # geofm-nn
//!
//! Neural-network building blocks with **explicit forward/backward passes**,
//! plus the optimizers and schedules used by the paper's recipe (AdamW for
//! MAE pretraining, LARS for linear probing, cosine decay with warmup).
//!
//! There is no autograd tape. Every layer owns its [`Param`]s (value + grad),
//! caches whatever activations its backward pass needs during `forward`, and
//! exposes `backward(dy) -> dx`. This mirrors how a sharded trainer thinks
//! about a model: a sequence of *units*, each with a flat parameter buffer
//! that communication can be scheduled around — exactly the structure
//! `geofm-fsdp` exploits.
//!
//! Gradient correctness of every layer is verified against central finite
//! differences in the test suite.

pub mod activation;
pub mod attention;
pub mod block;
pub mod embed;
pub mod linear;
pub mod loss;
pub mod norm;
pub mod optim;
pub mod param;
pub mod schedule;

pub use activation::Gelu;
pub use attention::MultiHeadAttention;
pub use block::{Mlp, TransformerBlock};
pub use embed::PatchEmbed;
pub use linear::Linear;
pub use loss::{cross_entropy, mse_masked, CrossEntropyOutput};
pub use norm::LayerNorm;
pub use optim::{clip_grad_norm, segments_of, AdamW, AdamWState, Lars, Optimizer, Segment, Sgd};
pub use param::{Module, Param, ParamVisitor};
pub use schedule::CosineSchedule;

/// Split `[B, T, D]` activations into `[B*heads, T, D/heads]` head-major
/// layout for batched attention.
pub fn split_heads(x: &geofm_tensor::Tensor, heads: usize) -> geofm_tensor::Tensor {
    let (b, t, d) = (x.dim(0), x.dim(1), x.dim(2));
    assert_eq!(d % heads, 0, "split_heads: width {} not divisible by {} heads", d, heads);
    let hd = d / heads;
    let mut out = geofm_tensor::Tensor::zeros(&[b * heads, t, hd]);
    let src = x.data();
    let dst = out.data_mut();
    for bi in 0..b {
        for ti in 0..t {
            let row = &src[(bi * t + ti) * d..(bi * t + ti + 1) * d];
            for h in 0..heads {
                let o = ((bi * heads + h) * t + ti) * hd;
                dst[o..o + hd].copy_from_slice(&row[h * hd..(h + 1) * hd]);
            }
        }
    }
    out
}

/// Inverse of [`split_heads`]: `[B*heads, T, D/heads]` → `[B, T, D]`.
pub fn merge_heads(x: &geofm_tensor::Tensor, heads: usize) -> geofm_tensor::Tensor {
    let (bh, t, hd) = (x.dim(0), x.dim(1), x.dim(2));
    assert_eq!(bh % heads, 0, "merge_heads: batch dim {} not divisible by {}", bh, heads);
    let b = bh / heads;
    let d = hd * heads;
    let mut out = geofm_tensor::Tensor::zeros(&[b, t, d]);
    let src = x.data();
    let dst = out.data_mut();
    for bi in 0..b {
        for ti in 0..t {
            let row = &mut dst[(bi * t + ti) * d..(bi * t + ti + 1) * d];
            for h in 0..heads {
                let i = ((bi * heads + h) * t + ti) * hd;
                row[h * hd..(h + 1) * hd].copy_from_slice(&src[i..i + hd]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geofm_tensor::TensorRng;

    #[test]
    fn split_merge_heads_roundtrip() {
        let mut rng = TensorRng::seed_from(1);
        let x = rng.randn(&[2, 3, 8], 1.0);
        let split = split_heads(&x, 4);
        assert_eq!(split.shape(), &[8, 3, 2]);
        let merged = merge_heads(&split, 4);
        assert_eq!(merged, x);
    }

    #[test]
    fn split_heads_places_values() {
        // batch 1, 1 token, width 4, 2 heads: row [a b c d] → head0 [a b], head1 [c d]
        let x = geofm_tensor::Tensor::from_vec(&[1, 1, 4], vec![1., 2., 3., 4.]);
        let s = split_heads(&x, 2);
        assert_eq!(s.data(), &[1., 2., 3., 4.]);
        assert_eq!(s.shape(), &[2, 1, 2]);
    }
}
