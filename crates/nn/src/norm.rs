//! Layer normalisation with affine transform and explicit backward.

use crate::param::{Module, Param, ParamVisitor};
use geofm_tensor::Tensor;
use rayon::prelude::*;

/// LayerNorm over the last dimension of a `[n, d]` input, with learned
/// scale `γ` and offset `β`.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale, `[d]`, initialised to 1.
    pub gamma: Param,
    /// Offset, `[d]`, initialised to 0.
    pub beta: Param,
    dim: usize,
    eps: f32,
    /// Cached normalised input `x̂` and per-row reciprocal std from `forward`.
    cache: Option<(Tensor, Vec<f32>)>,
}

impl LayerNorm {
    /// New LayerNorm over width `dim` (ε = 1e-6, the ViT default).
    pub fn new(dim: usize, name: &str) -> Self {
        Self {
            gamma: Param::new(Tensor::ones(&[dim]), false, format!("{name}.gamma")),
            beta: Param::new(Tensor::zeros(&[dim]), false, format!("{name}.beta")),
            dim,
            eps: 1e-6,
            cache: None,
        }
    }

    /// Normalised width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn normalize(&self, x: &Tensor) -> (Tensor, Vec<f32>) {
        assert_eq!(x.ndim(), 2, "LayerNorm expects 2-D input");
        assert_eq!(x.dim(1), self.dim, "LayerNorm width mismatch");
        let d = self.dim;
        let n = x.dim(0);
        let mut xhat = Tensor::zeros(&[n, d]);
        let mut rstd = vec![0.0f32; n];
        let eps = self.eps;
        xhat.data_mut()
            .par_chunks_mut(d)
            .zip(x.data().par_chunks(d))
            .zip(rstd.par_iter_mut())
            .for_each(|((out, row), rs)| {
                let mean = row.iter().sum::<f32>() / d as f32;
                let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
                let r = 1.0 / (var + eps).sqrt();
                *rs = r;
                for (o, &v) in out.iter_mut().zip(row) {
                    *o = (v - mean) * r;
                }
            });
        (xhat, rstd)
    }

    fn affine(&self, xhat: &Tensor) -> Tensor {
        let d = self.dim;
        let mut y = xhat.clone();
        let g = self.gamma.value.data();
        let b = self.beta.value.data();
        y.data_mut().par_chunks_mut(d).for_each(|row| {
            for ((v, &gv), &bv) in row.iter_mut().zip(g).zip(b) {
                *v = *v * gv + bv;
            }
        });
        y
    }

    /// Forward pass with caching for backward.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let (xhat, rstd) = self.normalize(x);
        let y = self.affine(&xhat);
        self.cache = Some((xhat, rstd));
        y
    }

    /// Inference-only forward (no caching).
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        let (xhat, _) = self.normalize(x);
        self.affine(&xhat)
    }

    /// Backward pass: accumulates `dγ`, `dβ`, returns `dx`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (xhat, rstd) = self.cache.take().expect("LayerNorm::backward before forward");
        let d = self.dim;
        let n = dy.dim(0);
        assert_eq!(dy.shape(), xhat.shape(), "LayerNorm::backward shape mismatch");

        // Parameter gradients: dγ = Σ_rows dy ⊙ x̂ ; dβ = Σ_rows dy.
        {
            let dg = self.gamma.grad.data_mut();
            for (dyr, xr) in dy.data().chunks(d).zip(xhat.data().chunks(d)) {
                for ((g, &dv), &xv) in dg.iter_mut().zip(dyr).zip(xr) {
                    *g += dv * xv;
                }
            }
            let db = self.beta.grad.data_mut();
            for dyr in dy.data().chunks(d) {
                for (b, &dv) in db.iter_mut().zip(dyr) {
                    *b += dv;
                }
            }
        }

        // Input gradient (standard LayerNorm backward):
        // dx = rstd/d * ( d·g⊙dy − Σ(g⊙dy) − x̂·Σ(g⊙dy⊙x̂) )
        let mut dx = Tensor::zeros(&[n, d]);
        let g = self.gamma.value.data();
        dx.data_mut()
            .par_chunks_mut(d)
            .zip(dy.data().par_chunks(d))
            .zip(xhat.data().par_chunks(d))
            .zip(rstd.par_iter())
            .for_each(|(((dxr, dyr), xr), &rs)| {
                let mut sum_gdy = 0.0f32;
                let mut sum_gdyx = 0.0f32;
                for ((&dv, &gv), &xv) in dyr.iter().zip(g).zip(xr) {
                    let gd = gv * dv;
                    sum_gdy += gd;
                    sum_gdyx += gd * xv;
                }
                let inv_d = 1.0 / d as f32;
                for (((dxv, &dv), &gv), &xv) in dxr.iter_mut().zip(dyr).zip(g).zip(xr) {
                    let gd = gv * dv;
                    *dxv = rs * (gd - inv_d * sum_gdy - xv * inv_d * sum_gdyx);
                }
            });
        dx
    }
}

impl Module for LayerNorm {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geofm_tensor::TensorRng;

    #[test]
    fn output_rows_are_normalised_when_identity_affine() {
        let mut rng = TensorRng::seed_from(1);
        let mut ln = LayerNorm::new(16, "t");
        let x = rng.randn(&[4, 16], 3.0);
        let y = ln.forward(&x);
        for r in 0..4 {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4, "row {} mean {}", r, mean);
            assert!((var - 1.0).abs() < 1e-3, "row {} var {}", r, var);
        }
    }

    #[test]
    fn affine_applies_gamma_beta() {
        let mut ln = LayerNorm::new(2, "t");
        ln.gamma.value = Tensor::from_vec(&[2], vec![2.0, 3.0]);
        ln.beta.value = Tensor::from_vec(&[2], vec![10.0, 20.0]);
        let y = ln.forward(&Tensor::from_vec(&[1, 2], vec![-1.0, 1.0]));
        // x̂ = [-1, 1] (up to eps), so y ≈ [10-2, 20+3]
        assert!((y.data()[0] - 8.0).abs() < 1e-2);
        assert!((y.data()[1] - 23.0).abs() < 1e-2);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = TensorRng::seed_from(7);
        let mut ln = LayerNorm::new(6, "t");
        ln.gamma.value = rng.rand_uniform(&[6], 0.5, 1.5);
        ln.beta.value = rng.randn(&[6], 0.2);
        let x = rng.randn(&[3, 6], 1.0);
        let dy = rng.randn(&[3, 6], 1.0);

        ln.forward(&x);
        let dx = ln.backward(&dy);

        let loss = |l: &LayerNorm, xin: &Tensor| -> f32 {
            let y = l.forward_inference(xin);
            y.data().iter().zip(dy.data()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-2f32;
        for i in [0usize, 5, 11, 17] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&ln, &xp) - loss(&ln, &xm)) / (2.0 * eps);
            assert!((fd - dx.data()[i]).abs() < 3e-2, "dx[{}]: fd {} vs {}", i, fd, dx.data()[i]);
        }
        for i in 0..6 {
            let mut lp = ln.clone();
            lp.gamma.value.data_mut()[i] += eps;
            let mut lm = ln.clone();
            lm.gamma.value.data_mut()[i] -= eps;
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
            let an = ln.gamma.grad.data()[i];
            assert!((fd - an).abs() < 3e-2, "dγ[{}]: fd {} vs {}", i, fd, an);
        }
        for i in 0..6 {
            let mut lp = ln.clone();
            lp.beta.value.data_mut()[i] += eps;
            let mut lm = ln.clone();
            lm.beta.value.data_mut()[i] -= eps;
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
            let an = ln.beta.grad.data()[i];
            assert!((fd - an).abs() < 3e-2, "dβ[{}]: fd {} vs {}", i, fd, an);
        }
    }

    #[test]
    fn constant_rows_do_not_blow_up() {
        let mut ln = LayerNorm::new(4, "t");
        let y = ln.forward(&Tensor::full(&[2, 4], 5.0));
        assert!(!y.has_non_finite());
    }
}
