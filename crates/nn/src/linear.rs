//! Fully-connected layer with explicit backward.

use crate::param::{Module, Param, ParamVisitor};
use geofm_tensor::{matmul, matmul_a_bt, matmul_at_b, Tensor, TensorRng};

/// `y = x · Wᵀ + b` with `W: [out, in]` (PyTorch layout), `b: [out]`.
///
/// `forward` accepts `[n, in]` and caches the input for `backward`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix, `[out_features, in_features]`.
    pub weight: Param,
    /// Bias vector, `[out_features]`.
    pub bias: Param,
    in_features: usize,
    out_features: usize,
    cache_x: Option<Tensor>,
}

impl Linear {
    /// Construct with Xavier-uniform weights (the MAE reference init, which
    /// scales correctly across layer widths) and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut TensorRng, name: &str) -> Self {
        let weight = Param::new(
            rng.xavier_uniform(out_features, in_features),
            true,
            format!("{name}.weight"),
        );
        let bias = Param::new(Tensor::zeros(&[out_features]), false, format!("{name}.bias"));
        Self { weight, bias, in_features, out_features, cache_x: None }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Forward pass for `x: [n, in]` → `[n, out]`; caches `x`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.ndim(), 2, "Linear::forward expects 2-D input");
        assert_eq!(x.dim(1), self.in_features, "Linear::forward width mismatch");
        // y = x · Wᵀ : [n,in]·[out,in]ᵀ — the fused kernel avoids a transpose.
        let mut y = matmul_a_bt(x, &self.weight.value);
        y.add_row_vector(&self.bias.value);
        self.cache_x = Some(x.clone());
        y
    }

    /// Inference-only forward: does not cache (no backward possible after).
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        let mut y = matmul_a_bt(x, &self.weight.value);
        y.add_row_vector(&self.bias.value);
        y
    }

    /// Backward pass: accumulates `dW`, `db` and returns `dx`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("Linear::backward called before forward");
        assert_eq!(dy.dim(0), x.dim(0), "Linear::backward batch mismatch");
        assert_eq!(dy.dim(1), self.out_features, "Linear::backward width mismatch");
        // dW = dYᵀ · X : [out,n]·[n,in]
        let dw = matmul_at_b(dy, &x);
        self.weight.grad.add_assign(&dw);
        self.bias.grad.add_assign(&dy.sum_rows());
        // dX = dY · W : [n,out]·[out,in]
        matmul(dy, &self.weight.value)
    }
}

impl Module for Linear {
    fn visit_params(&mut self, f: &mut ParamVisitor) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check of dloss/dθ for loss = Σ y ⊙ dy.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = TensorRng::seed_from(42);
        let mut layer = Linear::new(4, 3, &mut rng, "t");
        // make bias non-zero so its gradient is exercised from a generic point
        layer.bias.value = rng.randn(&[3], 0.1);
        let x = rng.randn(&[5, 4], 1.0);
        let dy = rng.randn(&[5, 3], 1.0);

        let _y = layer.forward(&x);
        let dx = layer.backward(&dy);

        let eps = 1e-2f32;
        let loss = |l: &Linear, xin: &Tensor| -> f32 {
            let y = l.forward_inference(xin);
            y.data().iter().zip(dy.data()).map(|(a, b)| a * b).sum()
        };

        // weight grads
        for i in [0usize, 5, 11] {
            let mut lp = layer.clone();
            lp.weight.value.data_mut()[i] += eps;
            let mut lm = layer.clone();
            lm.weight.value.data_mut()[i] -= eps;
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
            let an = layer.weight.grad.data()[i];
            assert!((fd - an).abs() < 2e-2, "dW[{}]: fd {} vs analytic {}", i, fd, an);
        }
        // bias grads
        for i in 0..3 {
            let mut lp = layer.clone();
            lp.bias.value.data_mut()[i] += eps;
            let mut lm = layer.clone();
            lm.bias.value.data_mut()[i] -= eps;
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
            let an = layer.bias.grad.data()[i];
            assert!((fd - an).abs() < 2e-2, "db[{}]: fd {} vs analytic {}", i, fd, an);
        }
        // input grads
        for i in [0usize, 7, 19] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps);
            let an = dx.data()[i];
            assert!((fd - an).abs() < 2e-2, "dx[{}]: fd {} vs analytic {}", i, fd, an);
        }
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = TensorRng::seed_from(1);
        let mut layer = Linear::new(2, 3, &mut rng, "t");
        layer.weight.value = Tensor::zeros(&[3, 2]);
        layer.bias.value = Tensor::from_vec(&[3], vec![1., 2., 3.]);
        let y = layer.forward(&Tensor::zeros(&[4, 2]));
        assert_eq!(y.shape(), &[4, 3]);
        assert_eq!(y.row(2), &[1., 2., 3.]);
    }

    #[test]
    fn grads_accumulate_across_backwards() {
        let mut rng = TensorRng::seed_from(2);
        let mut layer = Linear::new(2, 2, &mut rng, "t");
        let x = rng.randn(&[3, 2], 1.0);
        let dy = rng.randn(&[3, 2], 1.0);
        layer.forward(&x);
        layer.backward(&dy);
        let g1 = layer.weight.grad.clone();
        layer.forward(&x);
        layer.backward(&dy);
        assert!(layer.weight.grad.max_abs_diff(&g1.scale(2.0)) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_requires_forward() {
        let mut rng = TensorRng::seed_from(3);
        let mut layer = Linear::new(2, 2, &mut rng, "t");
        layer.backward(&Tensor::zeros(&[1, 2]));
    }

    #[test]
    fn module_param_count() {
        let mut rng = TensorRng::seed_from(4);
        let mut layer = Linear::new(8, 16, &mut rng, "t");
        assert_eq!(layer.num_params(), 8 * 16 + 16);
    }
}
