//! Structured, comparable end-of-run report for the serving plane.
//!
//! The report is the serving twin of the trainer's "structured report,
//! never hang" contract: every run — healthy, overloaded, or chaotic —
//! terminates in a [`ServeReport`] whose counters obey the conservation
//! law and which derives `PartialEq`, so `tests/serve_chaos.rs` can pin
//! bit-identical replay under a pinned seed by comparing whole reports.

use crate::degrade::{DegradeLevel, DegradeTransition};
use crate::request::RejectReason;
use std::collections::BTreeMap;

/// Per-tenant terminal accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantReport {
    /// Requests submitted by this tenant.
    pub submitted: u64,
    /// Requests admitted past the door.
    pub admitted: u64,
    /// Rejections by reason.
    pub rejected: BTreeMap<RejectReason, u64>,
    /// Completions within deadline (goodput).
    pub completed_in_deadline: u64,
    /// Completions past deadline (throughput but not goodput).
    pub completed_late: u64,
    /// Cache-served completions.
    pub from_cache: u64,
    /// Stale-cache completions (degraded service).
    pub stale_served: u64,
    /// Shed in queue at deadline expiry.
    pub shed_deadline: u64,
    /// Shed on cache miss under cache-only degradation.
    pub shed_cache_miss: u64,
    /// Shed at shutdown drain.
    pub shed_shutdown: u64,
    /// Deepest the tenant's bounded queue ever got.
    pub queue_depth_max: usize,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
}

impl TenantReport {
    /// Total rejections across reasons.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.values().sum()
    }

    /// Total completions (in-deadline + late).
    pub fn completed_total(&self) -> u64 {
        self.completed_in_deadline + self.completed_late
    }

    /// Total sheds across causes.
    pub fn shed_total(&self) -> u64 {
        self.shed_deadline + self.shed_cache_miss + self.shed_shutdown
    }
}

/// Whole-run report (see module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeReport {
    /// Per-tenant accounting, keyed by tenant id (BTreeMap for
    /// deterministic iteration and `PartialEq`).
    pub tenants: BTreeMap<usize, TenantReport>,
    /// Batches executed on the backbone.
    pub batches: u64,
    /// Requests served per batch, summed (for mean batch size).
    pub batched_requests: u64,
    /// Hedged (duplicate) batch executions launched.
    pub hedges_launched: u64,
    /// Hedges whose duplicate finished first.
    pub hedge_wins: u64,
    /// Embedding-cache hits / misses / evictions / invalidations.
    pub cache: CacheReport,
    /// Every degradation-ladder transition, in order.
    pub degrade_transitions: Vec<DegradeTransition>,
    /// Highest rung reached.
    pub degrade_peak: DegradeLevel,
    /// Exact completion latencies (in-deadline *and* late), nanoseconds,
    /// sorted — late completions must inflate p99, that is the naive
    /// server's failure signature. Percentiles are exact, not bucketed.
    pub latencies_ns: Vec<u64>,
}

/// Cache counters snapshot for the report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheReport {
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Capacity evictions.
    pub evictions: u64,
    /// Generation invalidations.
    pub invalidations: u64,
}

impl ServeReport {
    /// Sum of a per-tenant field across tenants.
    fn sum(&self, f: impl Fn(&TenantReport) -> u64) -> u64 {
        self.tenants.values().map(f).sum()
    }

    /// Total submitted across tenants.
    pub fn submitted(&self) -> u64 {
        self.sum(|t| t.submitted)
    }

    /// Total admitted across tenants.
    pub fn admitted(&self) -> u64 {
        self.sum(|t| t.admitted)
    }

    /// Total rejected across tenants and reasons.
    pub fn rejected(&self) -> u64 {
        self.sum(|t| t.rejected_total())
    }

    /// Total completions.
    pub fn completed(&self) -> u64 {
        self.sum(|t| t.completed_total())
    }

    /// Goodput: completions that met their deadline.
    pub fn goodput(&self) -> u64 {
        self.sum(|t| t.completed_in_deadline)
    }

    /// Total sheds.
    pub fn shed(&self) -> u64 {
        self.sum(|t| t.shed_total())
    }

    /// Exact percentile over completion latencies (`q` in [0,1]);
    /// `None` when nothing completed.
    pub fn latency_percentile(&self, q: f64) -> Option<u64> {
        if self.latencies_ns.is_empty() {
            return None;
        }
        let idx = ((self.latencies_ns.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(self.latencies_ns[idx])
    }

    /// Check the conservation law; returns the violations (empty = holds).
    ///
    /// For every tenant: `submitted == admitted + rejected` and
    /// `admitted == completed + shed`. A request that vanished or was
    /// double-counted shows up here, which is how the chaos suite proves
    /// "zero unaccounted requests".
    pub fn conservation_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for (id, t) in &self.tenants {
            if t.submitted != t.admitted + t.rejected_total() {
                v.push(format!(
                    "tenant {id}: submitted {} != admitted {} + rejected {}",
                    t.submitted,
                    t.admitted,
                    t.rejected_total()
                ));
            }
            if t.admitted != t.completed_total() + t.shed_total() {
                v.push(format!(
                    "tenant {id}: admitted {} != completed {} + shed {}",
                    t.admitted,
                    t.completed_total(),
                    t.shed_total()
                ));
            }
        }
        v
    }

    /// Panic with the violation list unless the conservation law holds.
    pub fn assert_conservation(&self) {
        let v = self.conservation_violations();
        assert!(v.is_empty(), "request conservation violated: {v:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(submitted: u64, admitted: u64, done: u64, shed: u64) -> TenantReport {
        let mut t = TenantReport { submitted, admitted, ..Default::default() };
        t.completed_in_deadline = done;
        t.shed_deadline = shed;
        if submitted > admitted {
            t.rejected.insert(RejectReason::QueueFull, submitted - admitted);
        }
        t
    }

    #[test]
    fn conservation_holds_for_balanced_books() {
        let mut r = ServeReport::default();
        r.tenants.insert(0, tenant(10, 7, 5, 2));
        r.tenants.insert(1, tenant(4, 4, 4, 0));
        assert!(r.conservation_violations().is_empty());
        assert_eq!(r.submitted(), 14);
        assert_eq!(r.goodput(), 9);
        r.assert_conservation();
    }

    #[test]
    fn conservation_catches_lost_requests() {
        let mut r = ServeReport::default();
        let mut t = tenant(10, 7, 5, 2);
        t.shed_deadline = 1; // one admitted request unaccounted for
        r.tenants.insert(0, t);
        let v = r.conservation_violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("admitted 7 != completed 5 + shed 1"), "{v:?}");
    }

    #[test]
    fn percentiles_are_exact_on_sorted_latencies() {
        let r = ServeReport { latencies_ns: (1..=100).collect(), ..Default::default() };
        assert_eq!(r.latency_percentile(0.0), Some(1));
        assert_eq!(r.latency_percentile(0.5), Some(51));
        assert_eq!(r.latency_percentile(0.99), Some(99));
        assert_eq!(r.latency_percentile(1.0), Some(100));
        assert_eq!(ServeReport::default().latency_percentile(0.5), None);
    }

    #[test]
    fn reports_compare_by_value_for_replay_pinning() {
        let mut a = ServeReport::default();
        a.tenants.insert(0, tenant(3, 3, 3, 0));
        let b = a.clone();
        assert_eq!(a, b);
        a.tenants.get_mut(&0).unwrap().from_cache += 1;
        assert_ne!(a, b, "any drift must break equality");
    }
}
