//! Per-tenant overload defenses: bounded queues, token buckets, circuit
//! breakers.
//!
//! Each tenant owns a **bounded** request queue (admission control turns
//! overflow into `Rejected { QueueFull, retry_after }`, never unbounded
//! growth), a token bucket capping its sustained request rate, and a
//! circuit breaker that fast-fails a tenant whose requests keep dying at
//! their deadlines — queueing doomed work behind a breaker would only
//! steal capacity from tenants whose deadlines are still winnable.
//!
//! Everything here is driven by explicit `now_ns` timestamps, so the same
//! state machines run identically under the real-threaded plane
//! ([`crate::plane`]) and the deterministic virtual-time harness
//! ([`crate::sim`]).

use crate::request::{Priority, Request};
use std::collections::VecDeque;

/// Static per-tenant policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantConfig {
    /// Service class.
    pub priority: Priority,
    /// Bounded queue capacity; a submit beyond it is rejected.
    pub queue_capacity: usize,
    /// Token-bucket sustained rate, requests per second. `f64::INFINITY`
    /// disables rate limiting (the undefended negative control).
    pub rate_per_s: f64,
    /// Token-bucket burst size (bucket capacity).
    pub burst: f64,
    /// Per-request latency budget: deadline = arrival + budget.
    pub deadline_ns: u64,
}

impl TenantConfig {
    /// A standard-class tenant with `rate_per_s` sustained rate.
    pub fn standard(rate_per_s: f64) -> Self {
        Self {
            priority: Priority::Standard,
            queue_capacity: 64,
            rate_per_s,
            burst: 2.0 * rate_per_s.max(1.0),
            deadline_ns: 50_000_000,
        }
    }

    /// Same tenant at a different service class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// Classic token bucket in nanosecond time: `level` refills at
/// `rate_per_s` up to `burst`; a request takes one token or is limited.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_ns: f64,
    burst: f64,
    level: f64,
    last_refill_ns: u64,
}

impl TokenBucket {
    /// Full bucket at time zero.
    pub fn new(rate_per_s: f64, burst: f64) -> Self {
        Self { rate_per_ns: rate_per_s / 1e9, burst, level: burst, last_refill_ns: 0 }
    }

    fn refill(&mut self, now_ns: u64) {
        if self.rate_per_ns.is_infinite() {
            self.level = self.burst;
            self.last_refill_ns = now_ns;
            return;
        }
        let dt = now_ns.saturating_sub(self.last_refill_ns) as f64;
        self.level = (self.level + dt * self.rate_per_ns).min(self.burst);
        self.last_refill_ns = now_ns;
    }

    /// Take one token if available. Infinite rate always succeeds.
    pub fn try_take(&mut self, now_ns: u64) -> bool {
        if self.rate_per_ns.is_infinite() {
            return true;
        }
        self.refill(now_ns);
        if self.level >= 1.0 {
            self.level -= 1.0;
            true
        } else {
            false
        }
    }

    /// Nanoseconds until one token will be available (0 if one already is).
    pub fn ns_until_token(&self, now_ns: u64) -> u64 {
        if self.rate_per_ns.is_infinite() {
            return 0;
        }
        let dt = now_ns.saturating_sub(self.last_refill_ns) as f64;
        let level = (self.level + dt * self.rate_per_ns).min(self.burst);
        if level >= 1.0 {
            0
        } else {
            (((1.0 - level) / self.rate_per_ns).ceil()) as u64
        }
    }
}

/// Circuit-breaker state (see [`CircuitBreaker`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, consecutive failures are counted.
    Closed,
    /// Tripped: requests fast-fail until the cooldown elapses.
    Open,
    /// Cooldown elapsed: the next requests probe; one more failure
    /// re-opens, a success closes.
    HalfOpen,
}

/// Counts consecutive *deadline failures* (sheds and late completions)
/// per tenant; `threshold` of them in a row open the breaker for
/// `cooldown_ns`. An open breaker converts queueing into fast-fail: the
/// tenant's clients get an honest retry-after instead of burying more
/// doomed requests in the queue.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown_ns: u64,
    consecutive_failures: u32,
    state: BreakerState,
    open_until_ns: u64,
    /// Times the breaker tripped (for the report).
    pub trips: u64,
}

impl CircuitBreaker {
    /// Closed breaker. `threshold == u32::MAX` effectively disables it.
    pub fn new(threshold: u32, cooldown_ns: u64) -> Self {
        Self {
            threshold,
            cooldown_ns,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            open_until_ns: 0,
            trips: 0,
        }
    }

    /// Current state, advancing Open → HalfOpen when the cooldown expired.
    pub fn state(&mut self, now_ns: u64) -> BreakerState {
        if self.state == BreakerState::Open && now_ns >= self.open_until_ns {
            self.state = BreakerState::HalfOpen;
        }
        self.state
    }

    /// Whether a request may pass right now.
    pub fn allow(&mut self, now_ns: u64) -> bool {
        self.state(now_ns) != BreakerState::Open
    }

    /// Nanoseconds until the breaker re-probes (0 when not open).
    pub fn ns_until_probe(&self, now_ns: u64) -> u64 {
        if self.state == BreakerState::Open {
            self.open_until_ns.saturating_sub(now_ns)
        } else {
            0
        }
    }

    /// Feed one terminal outcome for this tenant. `deadline_met == false`
    /// counts toward tripping; a success resets the streak and closes a
    /// half-open breaker.
    pub fn record(&mut self, deadline_met: bool, now_ns: u64) {
        let state = self.state(now_ns);
        if deadline_met {
            self.consecutive_failures = 0;
            if state == BreakerState::HalfOpen {
                self.state = BreakerState::Closed;
            }
            return;
        }
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = match state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.open_until_ns = now_ns + self.cooldown_ns;
            self.consecutive_failures = 0;
            self.trips += 1;
        }
    }
}

/// Live per-tenant serving state: policy + bounded queue + defenses.
#[derive(Debug)]
pub struct TenantState {
    /// Static policy.
    pub cfg: TenantConfig,
    /// Admitted requests waiting to be batched (bounded by
    /// `cfg.queue_capacity`).
    pub queue: VecDeque<Request>,
    /// Rate limiter.
    pub bucket: TokenBucket,
    /// Deadline-failure circuit breaker.
    pub breaker: CircuitBreaker,
    /// Deepest the queue has ever been (bounded-ness witness).
    pub queue_depth_max: usize,
}

impl TenantState {
    /// Fresh state for `cfg`; breaker thresholds come from the server
    /// config (see `ServeConfig`).
    pub fn new(cfg: TenantConfig, breaker_threshold: u32, breaker_cooldown_ns: u64) -> Self {
        Self {
            cfg,
            queue: VecDeque::new(),
            bucket: TokenBucket::new(cfg.rate_per_s, cfg.burst),
            breaker: CircuitBreaker::new(breaker_threshold, breaker_cooldown_ns),
            queue_depth_max: 0,
        }
    }

    /// Push an admitted request (caller already checked capacity).
    pub fn enqueue(&mut self, req: Request) {
        self.queue.push_back(req);
        self.queue_depth_max = self.queue_depth_max.max(self.queue.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn token_bucket_enforces_rate_and_burst() {
        // 10 rps, burst 2: two immediate takes pass, the third is limited
        let mut b = TokenBucket::new(10.0, 2.0);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0));
        let wait = b.ns_until_token(0);
        assert!(wait > 0 && wait <= 100 * MS, "one token at 10 rps is 100 ms away: {wait}");
        // after 100 ms a token is back
        assert!(b.try_take(100 * MS));
        assert!(!b.try_take(100 * MS));
    }

    #[test]
    fn token_bucket_caps_at_burst() {
        let mut b = TokenBucket::new(1000.0, 3.0);
        // a long idle period must not accumulate more than `burst`
        assert!(b.try_take(10_000 * MS));
        assert!(b.try_take(10_000 * MS));
        assert!(b.try_take(10_000 * MS));
        assert!(!b.try_take(10_000 * MS));
    }

    #[test]
    fn infinite_rate_never_limits() {
        let mut b = TokenBucket::new(f64::INFINITY, 1.0);
        for _ in 0..1000 {
            assert!(b.try_take(0));
        }
        assert_eq!(b.ns_until_token(0), 0);
    }

    #[test]
    fn breaker_trips_after_threshold_and_reprobes() {
        let mut br = CircuitBreaker::new(3, 500 * MS);
        assert!(br.allow(0));
        br.record(false, 0);
        br.record(false, 0);
        assert!(br.allow(0), "under threshold stays closed");
        br.record(false, 0);
        assert!(!br.allow(1), "third consecutive failure trips");
        assert_eq!(br.trips, 1);
        assert!(br.ns_until_probe(1) > 0);
        // cooldown elapses -> half-open probe allowed
        assert!(br.allow(501 * MS));
        assert_eq!(br.state(501 * MS), BreakerState::HalfOpen);
        // a failing probe re-opens immediately
        br.record(false, 501 * MS);
        assert!(!br.allow(502 * MS));
        assert_eq!(br.trips, 2);
        // next probe succeeds -> closed, streak reset
        br.record(true, 1002 * MS);
        assert_eq!(br.state(1002 * MS), BreakerState::Closed);
        br.record(false, 1002 * MS);
        br.record(false, 1002 * MS);
        assert!(br.allow(1002 * MS), "streak restarted after success");
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut br = CircuitBreaker::new(3, MS);
        br.record(false, 0);
        br.record(false, 0);
        br.record(true, 0);
        br.record(false, 0);
        br.record(false, 0);
        assert!(br.allow(0), "interleaved successes must keep the breaker closed");
        assert_eq!(br.trips, 0);
    }

    #[test]
    fn tenant_queue_tracks_watermark() {
        let cfg = TenantConfig::standard(100.0);
        let mut t = TenantState::new(cfg, 8, MS);
        for i in 0..5 {
            t.enqueue(Request {
                id: i,
                tenant: 0,
                tile: i,
                priority: cfg.priority,
                arrival_ns: 0,
                deadline_ns: cfg.deadline_ns,
            });
        }
        t.queue.pop_front();
        assert_eq!(t.queue.len(), 4);
        assert_eq!(t.queue_depth_max, 5, "watermark survives drain");
    }
}
