//! Graceful-degradation ladder under sustained overload.
//!
//! A single pressure signal — an EWMA of queue occupancy relative to
//! capacity, folded with the fraction of recent requests that missed
//! their deadline — drives a four-rung ladder:
//!
//! | rung | name            | behaviour change                                    |
//! |------|-----------------|-----------------------------------------------------|
//! | L0   | `Normal`        | full batching window, everything served             |
//! | L1   | `TightBatch`    | batch linger → 0, max batch shrunk (latency first)  |
//! | L2   | `CacheOnly`     | low-priority requests served from cache only (stale |
//! |      |                 | OK, flagged); a cache miss is shed, not computed    |
//! | L3   | `ShedLow`       | low-priority rejected at admission with `Degraded`  |
//!
//! Transitions are hysteretic: climbing one rung requires the EWMA above
//! the rung's `up` threshold, descending requires it below the *lower*
//! `down` threshold, so the ladder cannot flap on a noisy boundary. Every
//! transition is recorded for the [`crate::report::ServeReport`].

/// Degradation rung, ordered mildest to harshest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DegradeLevel {
    /// L0 — no degradation.
    #[default]
    Normal = 0,
    /// L1 — zero-linger, shrunken batches.
    TightBatch = 1,
    /// L2 — low-priority traffic served from cache only.
    CacheOnly = 2,
    /// L3 — low-priority traffic rejected at admission.
    ShedLow = 3,
}

impl DegradeLevel {
    fn from_rung(r: usize) -> Self {
        match r {
            0 => DegradeLevel::Normal,
            1 => DegradeLevel::TightBatch,
            2 => DegradeLevel::CacheOnly,
            _ => DegradeLevel::ShedLow,
        }
    }
}

/// One recorded ladder transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeTransition {
    /// When the transition happened, server-clock nanoseconds.
    pub at_ns: u64,
    /// Rung left.
    pub from: DegradeLevel,
    /// Rung entered.
    pub to: DegradeLevel,
    /// Pressure EWMA that triggered it.
    pub pressure: f64,
}

/// Ladder thresholds and EWMA smoothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeConfig {
    /// EWMA smoothing factor in (0, 1]; higher reacts faster.
    pub alpha: f64,
    /// Climb thresholds: pressure above `up[i]` moves L_i → L_{i+1}.
    pub up: [f64; 3],
    /// Descend thresholds: pressure below `down[i]` moves L_{i+1} → L_i.
    /// Each must sit strictly below the matching `up` for hysteresis.
    pub down: [f64; 3],
}

impl Default for DegradeConfig {
    fn default() -> Self {
        Self { alpha: 0.2, up: [0.55, 0.75, 0.9], down: [0.35, 0.55, 0.7] }
    }
}

/// Hysteretic pressure-driven ladder controller (see module docs).
#[derive(Debug, Clone)]
pub struct DegradeController {
    cfg: DegradeConfig,
    level: DegradeLevel,
    pressure: f64,
    /// Every transition taken, in order.
    pub transitions: Vec<DegradeTransition>,
    /// Highest rung ever reached.
    pub peak: DegradeLevel,
}

impl DegradeController {
    /// Controller at L0 with zero pressure.
    pub fn new(cfg: DegradeConfig) -> Self {
        Self {
            cfg,
            level: DegradeLevel::Normal,
            pressure: 0.0,
            transitions: Vec::new(),
            peak: DegradeLevel::Normal,
        }
    }

    /// Current rung.
    pub fn level(&self) -> DegradeLevel {
        self.level
    }

    /// Current pressure EWMA in [0, 1].
    pub fn pressure(&self) -> f64 {
        self.pressure
    }

    /// Fold one observation into the EWMA and walk the ladder (at most
    /// one rung per observation, in either direction).
    ///
    /// `queue_frac` is total queued / total capacity; `miss_frac` is the
    /// fraction of the latest completion window that missed deadlines.
    /// The instantaneous pressure is the max of the two: a saturated
    /// queue and a deadline-missing server are both overload even if the
    /// other signal looks calm.
    pub fn observe(&mut self, queue_frac: f64, miss_frac: f64, now_ns: u64) -> DegradeLevel {
        let instant = queue_frac.clamp(0.0, 1.0).max(miss_frac.clamp(0.0, 1.0));
        self.pressure += self.cfg.alpha * (instant - self.pressure);
        let rung = self.level as usize;
        let next = if rung < 3 && self.pressure > self.cfg.up[rung] {
            Some(DegradeLevel::from_rung(rung + 1))
        } else if rung > 0 && self.pressure < self.cfg.down[rung - 1] {
            Some(DegradeLevel::from_rung(rung - 1))
        } else {
            None
        };
        if let Some(to) = next {
            self.transitions.push(DegradeTransition {
                at_ns: now_ns,
                from: self.level,
                to,
                pressure: self.pressure,
            });
            self.level = to;
            self.peak = self.peak.max(to);
        }
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> DegradeController {
        DegradeController::new(DegradeConfig::default())
    }

    #[test]
    fn climbs_one_rung_at_a_time_under_pressure() {
        let mut c = ctl();
        let mut seen = vec![c.level()];
        for t in 0..60u64 {
            let l = c.observe(1.0, 1.0, t);
            if *seen.last().unwrap() != l {
                seen.push(l);
            }
        }
        assert_eq!(
            seen,
            vec![
                DegradeLevel::Normal,
                DegradeLevel::TightBatch,
                DegradeLevel::CacheOnly,
                DegradeLevel::ShedLow
            ],
            "full ladder climbed in order, no rung skipped"
        );
        assert_eq!(c.peak, DegradeLevel::ShedLow);
        assert_eq!(c.transitions.len(), 3);
    }

    #[test]
    fn recovers_when_pressure_drains() {
        let mut c = ctl();
        for t in 0..60u64 {
            c.observe(1.0, 1.0, t);
        }
        assert_eq!(c.level(), DegradeLevel::ShedLow);
        for t in 60..200u64 {
            c.observe(0.0, 0.0, t);
        }
        assert_eq!(c.level(), DegradeLevel::Normal, "ladder fully descends when calm");
        // 3 up + 3 down
        assert_eq!(c.transitions.len(), 6);
        assert_eq!(c.peak, DegradeLevel::ShedLow, "peak is sticky");
    }

    #[test]
    fn hysteresis_prevents_flapping_at_the_boundary() {
        let mut c = ctl();
        // drive just past the first up-threshold, then sit exactly between
        // down[0]=0.35 and up[0]=0.55 — the level must hold at TightBatch
        for t in 0..50u64 {
            c.observe(0.6, 0.0, t);
        }
        assert_eq!(c.level(), DegradeLevel::TightBatch);
        let transitions_before = c.transitions.len();
        for t in 50..250u64 {
            c.observe(0.45, 0.0, t);
        }
        assert_eq!(c.level(), DegradeLevel::TightBatch, "dead band holds the rung");
        assert_eq!(c.transitions.len(), transitions_before, "no flapping in the dead band");
    }

    #[test]
    fn either_signal_alone_raises_pressure() {
        let mut q = ctl();
        let mut m = ctl();
        for t in 0..40u64 {
            q.observe(0.9, 0.0, t);
            m.observe(0.0, 0.9, t);
        }
        assert!(q.level() > DegradeLevel::Normal, "queue saturation alone degrades");
        assert!(m.level() > DegradeLevel::Normal, "deadline misses alone degrade");
    }

    #[test]
    fn transitions_record_timestamps_in_order() {
        let mut c = ctl();
        for t in 0..60u64 {
            c.observe(1.0, 1.0, t * 10);
        }
        let at: Vec<u64> = c.transitions.iter().map(|t| t.at_ns).collect();
        let mut sorted = at.clone();
        sorted.sort_unstable();
        assert_eq!(at, sorted);
        for w in c.transitions.windows(2) {
            assert_eq!(w[0].to, w[1].from, "transition chain is contiguous");
        }
    }
}
