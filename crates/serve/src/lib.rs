//! # geofm-serve — overload-robust inference serving for frozen geofm encoders
//!
//! The pretraining side of this repo ends with a frozen ViT/MAE encoder;
//! this crate is the plane that serves it to many tenants under real
//! traffic, built around one contract: **bounded state, exact
//! accounting, graceful degradation — never unbounded growth, never a
//! hang, never a lost request.**
//!
//! | module | what lives there |
//! |--------|------------------|
//! | [`request`]  | request/verdict/outcome types + the conservation law |
//! | [`tenant`]   | bounded queues, token buckets, circuit breakers |
//! | [`cache`]    | `(tenant, tile)` embedding cache with generation-tagged invalidation |
//! | [`degrade`]  | the four-rung hysteretic degradation ladder |
//! | [`core`]     | the clock-free scheduler: admission → batching → shedding |
//! | [`backbone`] | the frozen-encoder trait: real ViT or deterministic sim |
//! | [`plane`]    | real threads: dispatcher, worker pool, hedged execution |
//! | [`sim`]      | deterministic virtual-time harness (bit-replayable chaos) |
//!
//! The scheduler ([`core::ServeCore`]) never reads a clock — every entry
//! point takes `now_ns` — so the identical decision logic runs under
//! real threads *and* under seeded virtual time, giving the chaos suite
//! deterministic replay while the threaded tests pin the structural
//! invariants (no hang, exact conservation) that wall-clock runs can
//! actually witness.

pub mod backbone;
pub mod cache;
pub mod core;
pub mod degrade;
pub mod plane;
pub mod report;
pub mod request;
pub mod sim;
pub mod tenant;

pub use backbone::{Backbone, SimBackbone, VitBackbone};
pub use cache::{CacheGen, CacheHit, CacheKey, EmbeddingCache};
pub use core::{Batch, ServeConfig, ServeCore};
pub use degrade::{DegradeConfig, DegradeController, DegradeLevel, DegradeTransition};
pub use plane::{PlaneConfig, ServePlane};
pub use report::{CacheReport, ServeReport, TenantReport};
pub use request::{Outcome, Priority, RejectReason, Request, TenantId, TileId, Verdict};
pub use sim::{run_sim, SimConfig};
pub use tenant::{BreakerState, CircuitBreaker, TenantConfig, TenantState, TokenBucket};
