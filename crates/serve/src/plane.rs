//! The real threaded serving plane.
//!
//! Wraps the clock-free [`ServeCore`] in actual machinery: a dispatcher
//! thread forming batches, a worker pool executing them on the backbone,
//! and a hedge monitor that launches duplicate executions for batches
//! straggling past an EWMA-adaptive timeout (the same
//! [`AdaptiveTimeout`] the collectives use) — first finisher wins via an
//! atomic `done` flag, the loser's work is discarded.
//!
//! Structural guarantees the chaos suite leans on:
//!
//! - **Never hang**: every loop checks the shutdown flag; injected
//!   worker hangs ([`FaultPlan::take_worker_hang`]) are sleeps in small
//!   increments that abort the moment the batch is done elsewhere or the
//!   plane shuts down. Condvar waits are bounded.
//! - **Exact conservation**: a popped batch either completes exactly
//!   once (the `done` swap) or is shed exactly once — including batches
//!   still queued or in flight at shutdown.

use crate::backbone::Backbone;
use crate::core::{Batch, ServeConfig, ServeCore};
use crate::report::ServeReport;
use crate::request::{TenantId, TileId, Verdict};
use crate::tenant::TenantConfig;
use geofm_collectives::{AdaptiveTimeout, AdaptiveTimeoutConfig};
use geofm_resilience::FaultPlan;
use geofm_telemetry::MetricsRegistry;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Threading and hedging knobs for the real plane.
#[derive(Debug, Clone)]
pub struct PlaneConfig {
    /// Worker threads executing batches.
    pub workers: usize,
    /// Launch hedged duplicates for straggling batches.
    pub hedge: bool,
    /// Duration of an injected worker hang (before abort conditions).
    pub hang: Duration,
    /// Dispatcher poll interval when no batch is ready.
    pub poll: Duration,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            hedge: true,
            hang: Duration::from_millis(80),
            poll: Duration::from_micros(200),
        }
    }
}

struct BatchTask {
    batch: Batch,
    /// Shared between an original and its hedged duplicate: first
    /// finisher swaps it and owns the batch's accounting.
    done: Arc<AtomicBool>,
    is_hedge: bool,
}

struct WorkQueue {
    queue: Mutex<VecDeque<Arc<BatchTask>>>,
    ready: Condvar,
}

struct Shared {
    core: Mutex<ServeCore>,
    work: WorkQueue,
    backbone: Arc<dyn Backbone>,
    plan: Option<Arc<FaultPlan>>,
    shutdown: AtomicBool,
    timer: Mutex<AdaptiveTimeout>,
    epoch: Instant,
    cfg: PlaneConfig,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn push_task(&self, task: Arc<BatchTask>) {
        self.work.queue.lock().expect("work queue lock").push_back(task);
        self.work.ready.notify_one();
    }

    /// Worker body for one popped task. Exactly one of
    /// `complete_batch` / `shed_batch` happens per batch id, guarded by
    /// the `done` swap.
    fn execute(&self, task: &BatchTask) {
        if task.done.load(Ordering::Acquire) {
            return; // the other copy already won
        }
        let hang = !task.is_hedge
            && self.plan.as_ref().is_some_and(|p| p.take_worker_hang(task.batch.id as usize));
        if hang {
            let t0 = Instant::now();
            while t0.elapsed() < self.cfg.hang {
                if task.done.load(Ordering::Acquire) || self.shutdown.load(Ordering::Acquire) {
                    break;
                }
                thread::sleep(Duration::from_micros(300));
            }
            if self.shutdown.load(Ordering::Acquire) && !task.done.swap(true, Ordering::AcqRel) {
                let now = self.now_ns();
                self.core.lock().expect("core lock").shed_batch(&task.batch, now);
                return;
            }
            if task.done.load(Ordering::Acquire) {
                return;
            }
        }
        let t0 = Instant::now();
        let results = self.backbone.encode(&task.batch.entries());
        let compute = t0.elapsed();
        if !task.done.swap(true, Ordering::AcqRel) {
            let now = self.now_ns();
            let mut core = self.core.lock().expect("core lock");
            if task.is_hedge {
                core.note_hedge_win();
            }
            core.complete_batch(&task.batch, &results, compute.as_nanos() as u64, now);
            drop(core);
            self.timer.lock().expect("timer lock").observe(compute);
        }
    }
}

/// Running server instance (see module docs).
pub struct ServePlane {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServePlane {
    /// Start dispatcher + workers over `backbone`, optionally injecting
    /// faults from `plan`.
    pub fn start(
        serve_cfg: ServeConfig,
        tenant_cfgs: &[TenantConfig],
        backbone: Arc<dyn Backbone>,
        plan: Option<Arc<FaultPlan>>,
        cfg: PlaneConfig,
    ) -> Self {
        Self::start_inner(serve_cfg, tenant_cfgs, backbone, plan, cfg, None)
    }

    /// [`ServePlane::start`] with `serve.*` metrics wired into `registry`
    /// (admissions, rejections, sheds, completions, queue depth, latency
    /// histograms — everything [`ServeCore::with_metrics`] registers).
    pub fn start_with_metrics(
        serve_cfg: ServeConfig,
        tenant_cfgs: &[TenantConfig],
        backbone: Arc<dyn Backbone>,
        plan: Option<Arc<FaultPlan>>,
        cfg: PlaneConfig,
        registry: &MetricsRegistry,
    ) -> Self {
        Self::start_inner(serve_cfg, tenant_cfgs, backbone, plan, cfg, Some(registry))
    }

    fn start_inner(
        serve_cfg: ServeConfig,
        tenant_cfgs: &[TenantConfig],
        backbone: Arc<dyn Backbone>,
        plan: Option<Arc<FaultPlan>>,
        cfg: PlaneConfig,
        registry: Option<&MetricsRegistry>,
    ) -> Self {
        let mut core = ServeCore::new(serve_cfg, tenant_cfgs, Arc::clone(&backbone), 0);
        if let Some(reg) = registry {
            core = core.with_metrics(reg);
        }
        let shared = Arc::new(Shared {
            core: Mutex::new(core),
            work: WorkQueue { queue: Mutex::new(VecDeque::new()), ready: Condvar::new() },
            backbone,
            plan,
            shutdown: AtomicBool::new(false),
            timer: Mutex::new(AdaptiveTimeout::new(AdaptiveTimeoutConfig {
                floor: Duration::from_millis(1),
                multiplier: 3.0,
                warmup: 5,
            })),
            epoch: Instant::now(),
            cfg: cfg.clone(),
        });

        let dispatcher = {
            let s = Arc::clone(&shared);
            thread::spawn(move || Self::dispatch_loop(&s))
        };
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let s = Arc::clone(&shared);
                thread::spawn(move || Self::worker_loop(&s))
            })
            .collect();
        Self { shared, dispatcher: Some(dispatcher), workers }
    }

    fn dispatch_loop(s: &Arc<Shared>) {
        // (task, launched-at) for hedge monitoring
        let mut in_flight: Vec<(Arc<BatchTask>, Instant, bool)> = Vec::new();
        while !s.shutdown.load(Ordering::Acquire) {
            let now = s.now_ns();
            let batch = s.core.lock().expect("core lock").form_batch(now);
            match batch {
                Some(batch) => {
                    let task = Arc::new(BatchTask {
                        batch,
                        done: Arc::new(AtomicBool::new(false)),
                        is_hedge: false,
                    });
                    in_flight.push((Arc::clone(&task), Instant::now(), false));
                    s.push_task(task);
                }
                None => thread::sleep(s.cfg.poll),
            }
            in_flight.retain(|(t, _, _)| !t.done.load(Ordering::Acquire));
            if s.cfg.hedge {
                let timeout = s.timer.lock().expect("timer lock").current();
                if let Some(timeout) = timeout {
                    for entry in &mut in_flight {
                        let (task, started, hedged) = entry;
                        if !*hedged && started.elapsed() > timeout {
                            *hedged = true;
                            let dup = Arc::new(BatchTask {
                                batch: task.batch.clone(),
                                done: Arc::clone(&task.done),
                                is_hedge: true,
                            });
                            s.core.lock().expect("core lock").note_hedge_launched();
                            s.push_task(dup);
                        }
                    }
                }
            }
        }
    }

    fn worker_loop(s: &Arc<Shared>) {
        loop {
            let task = {
                let mut q = s.work.queue.lock().expect("work queue lock");
                loop {
                    if let Some(t) = q.pop_front() {
                        break Some(t);
                    }
                    if s.shutdown.load(Ordering::Acquire) {
                        break None;
                    }
                    let (guard, _) = s
                        .work
                        .ready
                        .wait_timeout(q, Duration::from_millis(5))
                        .expect("work queue wait");
                    q = guard;
                }
            };
            let Some(task) = task else { return };
            s.execute(&task);
        }
    }

    /// Submit one request now; returns the id and the admission verdict.
    pub fn submit(&self, tenant: TenantId, tile: TileId) -> (u64, Verdict) {
        let now = self.shared.now_ns();
        self.shared.core.lock().expect("core lock").submit(tenant, tile, now)
    }

    /// Requests currently queued (not yet batched).
    pub fn queued(&self) -> usize {
        self.shared.core.lock().expect("core lock").queued_total()
    }

    /// Interim report snapshot (books may be mid-flight; conservation
    /// holds only after [`Self::shutdown`]).
    pub fn snapshot(&self) -> ServeReport {
        self.shared.core.lock().expect("core lock").report()
    }

    /// Wait (bounded) for all queued + in-flight work to finish.
    /// Returns false if `deadline` elapsed first.
    pub fn drain(&self, deadline: Duration) -> bool {
        let t0 = Instant::now();
        while t0.elapsed() < deadline {
            let queued = self.queued();
            let in_queue = self.shared.work.queue.lock().expect("work queue lock").len();
            if queued == 0 && in_queue == 0 {
                // one poll interval of settle time for in-flight completes
                thread::sleep(self.shared.cfg.poll.max(Duration::from_millis(2)));
                if self.queued() == 0 {
                    return true;
                }
            }
            thread::sleep(Duration::from_millis(1));
        }
        false
    }

    /// Stop accepting, shed everything still pending, join all threads,
    /// and return the final balanced report. Never blocks indefinitely:
    /// every loop this joins on observes the shutdown flag.
    pub fn shutdown(mut self) -> ServeReport {
        let now = self.shared.now_ns();
        self.shared.core.lock().expect("core lock").drain_shutdown(now);
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.ready.notify_all();
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // anything still in the work queue was never executed: shed it
        let leftovers: Vec<Arc<BatchTask>> =
            self.shared.work.queue.lock().expect("work queue lock").drain(..).collect();
        let now = self.shared.now_ns();
        let mut core = self.shared.core.lock().expect("core lock");
        for task in leftovers {
            if !task.done.swap(true, Ordering::AcqRel) {
                core.shed_batch(&task.batch, now);
            }
        }
        core.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::SimBackbone;

    fn plane(tenants: usize, plan: Option<Arc<FaultPlan>>, cfg: PlaneConfig) -> ServePlane {
        let backbone = Arc::new(SimBackbone::new(8, 50_000, 10_000));
        let serve_cfg = ServeConfig { linger_ns: 500_000, ..ServeConfig::default() };
        let tenant_cfgs = vec![TenantConfig::standard(f64::INFINITY); tenants];
        ServePlane::start(serve_cfg, &tenant_cfgs, backbone, plan, cfg)
    }

    #[test]
    fn serves_requests_end_to_end_and_balances() {
        let p = plane(2, None, PlaneConfig::default());
        for i in 0..40u64 {
            let (_, v) = p.submit((i % 2) as usize, i % 8);
            assert!(v.admitted());
        }
        assert!(p.drain(Duration::from_secs(10)), "drain must finish well inside the bound");
        let r = p.shutdown();
        r.assert_conservation();
        assert_eq!(r.submitted(), 40);
        assert!(r.completed() > 0);
        assert_eq!(r.shed(), 0, "nothing pending at a drained shutdown");
    }

    #[test]
    fn shutdown_mid_burst_never_hangs_and_accounts_everything() {
        let p = plane(3, None, PlaneConfig::default());
        for i in 0..300u64 {
            p.submit((i % 3) as usize, i);
        }
        // no drain: kill it mid-burst
        let r = p.shutdown();
        r.assert_conservation();
        assert_eq!(r.submitted(), 300);
    }

    #[test]
    fn injected_hang_is_beaten_by_a_hedge() {
        // batches 8.. hang: the first clean batches warm the adaptive
        // timer, then hedged duplicates beat the 300 ms stragglers
        let mut plan = FaultPlan::none();
        for b in 8..80 {
            plan = plan.with_worker_hang(b);
        }
        let backbone = Arc::new(SimBackbone::new(8, 50_000, 10_000));
        let serve_cfg =
            ServeConfig { linger_ns: 200_000, max_batch: 4, ..ServeConfig::default() };
        let tenant_cfgs = vec![TenantConfig::standard(f64::INFINITY)];
        let cfg = PlaneConfig { hang: Duration::from_millis(300), ..PlaneConfig::default() };
        let p = ServePlane::start(serve_cfg, &tenant_cfgs, backbone, Some(Arc::new(plan)), cfg);
        for i in 0..120u64 {
            p.submit(0, i);
            thread::sleep(Duration::from_millis(1));
        }
        assert!(p.drain(Duration::from_secs(20)), "hangs must not stall the plane");
        let r = p.shutdown();
        r.assert_conservation();
        assert_eq!(r.completed() + r.shed(), r.admitted());
        assert!(r.hedges_launched > 0, "stragglers must have triggered hedges");
    }
}
