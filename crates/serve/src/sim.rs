//! Deterministic virtual-time serving simulation.
//!
//! Drives a [`ServeCore`] with a seeded diurnal-plus-burst traffic
//! generator and a single virtual worker, consuming serve-side fault
//! injections from a [`FaultPlan`] (tenant bursts, slow clients, worker
//! hangs). Everything is integer/virtual-clock arithmetic off a seeded
//! LCG — two runs with the same `(config, plan, seed)` produce
//! **byte-identical** [`ServeReport`]s, which is the replay-determinism
//! property `tests/serve_chaos.rs` pins across 100+ schedules.
//!
//! The worker model mirrors the real plane: one batch in flight at a
//! time, cost charged from [`Backbone::batch_cost_ns`], an injected hang
//! multiplying the cost, and an EWMA-adaptive hedge (same
//! [`AdaptiveTimeout`] machinery the collectives use) that launches a
//! duplicate execution when the original straggles past the learned
//! timeout — first finisher wins.

use crate::backbone::{Backbone, SimBackbone};
use crate::core::{ServeConfig, ServeCore};
use crate::report::ServeReport;
use crate::tenant::TenantConfig;
use geofm_collectives::{AdaptiveTimeout, AdaptiveTimeoutConfig};
use geofm_resilience::FaultPlan;
use std::sync::Arc;
use std::time::Duration;

/// Traffic shape and world size for one simulated serving session.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Per-tenant policies (index = tenant id).
    pub tenants: Vec<TenantConfig>,
    /// Server policy.
    pub serve: ServeConfig,
    /// Traffic ticks to run.
    pub ticks: usize,
    /// Virtual duration of one tick, nanoseconds.
    pub tick_ns: u64,
    /// Mean requests per tenant per tick at the diurnal baseline.
    pub base_rate: f64,
    /// Diurnal swing in [0, 1]: peak = base·(1+amp), trough = base·(1−amp)
    /// on a triangle wave (integer-exact, no trig).
    pub diurnal_amplitude: f64,
    /// Diurnal period, ticks.
    pub diurnal_period: usize,
    /// Tile universe size per tenant — small universes make the
    /// embedding cache earn its keep.
    pub tiles: u64,
    /// Injected worker hangs multiply batch cost by this factor.
    pub hang_factor: u64,
    /// Launch hedged duplicates for straggling batches.
    pub hedge: bool,
    /// After the last tick: `true` keeps serving until the queues drain,
    /// `false` shuts down immediately, shedding whatever is queued
    /// (the "shutdown mid-burst" chaos posture).
    pub drain: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            tenants: vec![TenantConfig::standard(f64::INFINITY); 3],
            serve: ServeConfig::default(),
            ticks: 200,
            tick_ns: 1_000_000,
            base_rate: 2.0,
            diurnal_amplitude: 0.5,
            diurnal_period: 64,
            tiles: 256,
            hang_factor: 20,
            hedge: true,
            drain: true,
        }
    }
}

/// Embedding width of the sim backbone used by [`run_sim`].
pub const SIM_EMBED_DIM: usize = 8;
/// Fixed per-batch cost of the sim backbone, nanoseconds.
pub const SIM_BASE_COST_NS: u64 = 400_000;
/// Per-request marginal cost of the sim backbone, nanoseconds.
pub const SIM_PER_ITEM_COST_NS: u64 = 150_000;
/// Mean of the multiplicative service jitter applied in [`run_sim`]
/// (uniform in [1.0, 1.1]) — capacity planners must divide it out.
pub const SIM_JITTER_MEAN: f64 = 1.05;

/// Deterministic LCG (same constants as the resilience crate's sampler).
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Triangle diurnal multiplier in [1−amp, 1+amp].
fn diurnal(tick: usize, period: usize, amp: f64) -> f64 {
    if period == 0 {
        return 1.0;
    }
    let phase = tick % period;
    let half = period / 2;
    let frac = if half == 0 {
        0.0
    } else if phase < half {
        phase as f64 / half as f64
    } else {
        (period - phase) as f64 / half as f64
    };
    1.0 - amp + 2.0 * amp * frac
}

/// Run one simulated session (see module docs). Deterministic in
/// `(cfg, plan, seed)`.
pub fn run_sim(cfg: &SimConfig, plan: &FaultPlan, seed: u64) -> ServeReport {
    let backbone =
        Arc::new(SimBackbone::new(SIM_EMBED_DIM, SIM_BASE_COST_NS, SIM_PER_ITEM_COST_NS));
    let mut core = ServeCore::new(
        cfg.serve.clone(),
        &cfg.tenants,
        Arc::clone(&backbone) as Arc<dyn Backbone>,
        0,
    );
    let mut rng = Lcg::new(seed ^ 0x5e5e_5e5e_5e5e_5e5e);
    let mut hedge_timer = AdaptiveTimeout::new(AdaptiveTimeoutConfig {
        floor: Duration::from_micros(100),
        multiplier: 3.0,
        warmup: 4,
    });
    // prime the estimator from the backbone's own cost model: the server
    // knows what a full batch should cost, so even the very first
    // straggler is hedgeable instead of getting a free ride through
    // warmup
    for _ in 0..4 {
        hedge_timer
            .observe(Duration::from_nanos(backbone.batch_cost_ns(cfg.serve.max_batch.max(1))));
    }
    let mut worker_free_at: u64 = 0;

    let work = |core: &mut ServeCore,
                    worker_free_at: &mut u64,
                    hedge_timer: &mut AdaptiveTimeout,
                    rng: &mut Lcg,
                    window_end: u64| {
        // keep launching batches while the single worker frees up inside
        // this virtual window
        while *worker_free_at < window_end {
            let start = *worker_free_at;
            let Some(batch) = core.form_batch(start) else {
                // nothing ready now; jump to the next actionable instant
                match core.next_event_ns(start) {
                    Some(at) if at < window_end => {
                        *worker_free_at = at.max(start + 1);
                        continue;
                    }
                    _ => break,
                }
            };
            let n = batch.requests.len();
            let jitter = 1.0 + 0.1 * rng.next_f64();
            let base_cost = (backbone.batch_cost_ns(n) as f64 * jitter) as u64;
            let hang = plan.take_worker_hang(batch.id as usize);
            let straggle_cost =
                if hang { base_cost.saturating_mul(cfg.hang_factor) } else { base_cost };
            let mut done = start + straggle_cost;
            let mut compute = straggle_cost;
            // as in the real plane, the timer learns from the *winner's*
            // encode duration: a winning duplicate ran clean, so a hang
            // must not poison the EWMA and blind every later hedge
            let mut observed = straggle_cost;
            if cfg.hedge {
                if let Some(timeout) = hedge_timer.current() {
                    let timeout_ns = timeout.as_nanos() as u64;
                    if straggle_cost > timeout_ns {
                        core.note_hedge_launched();
                        let hedge_done = start + timeout_ns + base_cost;
                        if hedge_done < done {
                            core.note_hedge_win();
                            done = hedge_done;
                            compute = timeout_ns + base_cost;
                            observed = base_cost;
                        }
                    }
                }
            }
            // robust estimator: clamp the sample to the current bound so
            // an unhedged straggler cannot poison the EWMA and raise the
            // bar for every later hedge
            if let Some(t) = hedge_timer.current() {
                observed = observed.min(t.as_nanos() as u64);
            }
            hedge_timer.observe(Duration::from_nanos(observed));
            let results = backbone.encode(&batch.entries());
            core.complete_batch(&batch, &results, compute, done);
            *worker_free_at = done;
        }
        if *worker_free_at < window_end {
            *worker_free_at = window_end;
        }
    };

    for tick in 0..cfg.ticks {
        let tick_start = tick as u64 * cfg.tick_ns;
        let tick_end = tick_start + cfg.tick_ns;
        for tenant in 0..cfg.tenants.len() {
            let mean = cfg.base_rate * diurnal(tick, cfg.diurnal_period, cfg.diurnal_amplitude);
            let mut n = mean.floor() as usize;
            if rng.next_f64() < mean.fract() {
                n += 1;
            }
            n += plan.burst_extra(tenant, tick);
            let delay = plan
                .client_delay(tenant, tick)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0)
                .min(cfg.tick_ns.saturating_sub(1));
            for _ in 0..n {
                let offset = delay + rng.below(cfg.tick_ns.saturating_sub(delay).max(1));
                let tile = rng.below(cfg.tiles.max(1));
                core.submit(tenant, tile, tick_start + offset);
            }
        }
        work(&mut core, &mut worker_free_at, &mut hedge_timer, &mut rng, tick_end);
    }

    let end = cfg.ticks as u64 * cfg.tick_ns;
    if cfg.drain {
        // bounded post-traffic drain: at most 4× the run length
        let mut horizon = end;
        let limit = end.saturating_mul(4).max(end + cfg.tick_ns);
        while core.queued_total() > 0 && horizon < limit {
            horizon += cfg.tick_ns;
            work(&mut core, &mut worker_free_at, &mut hedge_timer, &mut rng, horizon);
        }
        core.drain_shutdown(horizon);
    } else {
        core.drain_shutdown(end);
    }
    core.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geofm_resilience::FaultMix;

    fn plan(seed: u64, mix: &FaultMix, ticks: usize) -> FaultPlan {
        FaultPlan::seeded_with_serve(seed, 4, 8, 4, 16, 3, ticks, mix)
    }

    #[test]
    fn clean_run_completes_everything_in_deadline() {
        let cfg = SimConfig { base_rate: 1.0, ticks: 100, ..SimConfig::default() };
        let r = run_sim(&cfg, &plan(1, &FaultMix::crashes_only(0.0), 100), 1);
        r.assert_conservation();
        assert!(r.submitted() > 0);
        assert_eq!(r.rejected(), 0, "clean light load rejects nothing");
        assert!(
            r.goodput() as f64 >= 0.99 * r.admitted() as f64,
            "light load serves essentially everything in deadline: {}/{}",
            r.goodput(),
            r.admitted()
        );
    }

    #[test]
    fn identical_seed_replays_byte_identical() {
        let cfg = SimConfig::default();
        let mix = FaultMix::serve_only(0.3, 0.1);
        let a = run_sim(&cfg, &plan(7, &mix, cfg.ticks), 7);
        let b = run_sim(&cfg, &plan(7, &mix, cfg.ticks), 7);
        assert_eq!(a, b, "same (config, plan, seed) must replay identically");
        let c = run_sim(&cfg, &plan(8, &mix, cfg.ticks), 8);
        assert_ne!(a, c, "different seed must actually change the run");
    }

    #[test]
    fn bursts_trigger_defenses_not_collapse() {
        let mut cfg = SimConfig { base_rate: 4.0, ..SimConfig::default() };
        for t in &mut cfg.tenants {
            t.queue_capacity = 16;
        }
        let mix = FaultMix { serve_burst_prob: 0.5, serve_burst_extra: (16, 48), ..FaultMix::crashes_only(0.0) };
        let r = run_sim(&cfg, &plan(3, &mix, cfg.ticks), 3);
        r.assert_conservation();
        assert!(r.rejected() + r.shed() > 0, "storms must hit the defenses");
        for t in r.tenants.values() {
            assert!(
                t.queue_depth_max <= 16,
                "bounded queue held under burst: {}",
                t.queue_depth_max
            );
        }
    }

    #[test]
    fn hangs_are_absorbed_by_hedging() {
        let cfg = SimConfig { base_rate: 2.0, ..SimConfig::default() };
        let mix = FaultMix { serve_hang_prob: 0.2, ..FaultMix::crashes_only(0.0) };
        let r = run_sim(&cfg, &plan(11, &mix, cfg.ticks), 11);
        r.assert_conservation();
        assert!(r.hedges_launched > 0, "straggling batches must trigger hedges");
        assert!(r.hedge_wins > 0, "duplicates must win against 20x stragglers");
    }

    #[test]
    fn shutdown_mid_burst_accounts_every_request() {
        let cfg = SimConfig { base_rate: 8.0, drain: false, ticks: 50, ..SimConfig::default() };
        let mix = FaultMix::serve_only(0.4, 0.1);
        let r = run_sim(&cfg, &plan(5, &mix, cfg.ticks), 5);
        r.assert_conservation();
        assert!(r.submitted() > 0);
    }
}
