//! Tile-id keyed embedding cache with generation-tagged invalidation.
//!
//! What a tenant is served is `adapter_t(backbone(tile))` — so a cached
//! value is keyed by `(tenant, tile)` and tagged with the *generation
//! pair* `(backbone_gen, adapter_gen)` it was computed under. Swapping
//! the shared frozen backbone bumps the backbone generation; hot-swapping
//! one tenant's adapter bumps that tenant's adapter generation. A lookup
//! against a newer generation is a **miss** (no stale-embedding escapes),
//! unless the caller explicitly opts into staleness — the cache-serving
//! rung of the degradation ladder, where a stale embedding beats a shed
//! request and the response is flagged as stale.
//!
//! Eviction is exact LRU via a monotonic access counter and a
//! `BTreeMap<access, key>` index — O(log n), fully deterministic, no
//! clock involved.

use crate::request::{TenantId, TileId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Cache key: the tenant-visible output identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Tenant whose adapter produced the value.
    pub tenant: TenantId,
    /// Tile the value embeds.
    pub tile: TileId,
}

/// Generation pair a cached value was computed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheGen {
    /// Shared frozen-backbone generation.
    pub backbone: u64,
    /// Per-tenant adapter generation.
    pub adapter: u64,
}

#[derive(Debug)]
struct Entry {
    value: Arc<Vec<f32>>,
    gen: CacheGen,
    access: u64,
}

/// A successful lookup: the value plus whether it came from an older
/// generation (only possible with `allow_stale`).
#[derive(Debug, Clone)]
pub struct CacheHit {
    /// The cached embedding.
    pub value: Arc<Vec<f32>>,
    /// True when the entry's generation pair differs from the queried one.
    pub stale: bool,
}

/// Bounded LRU embedding cache (see module docs).
#[derive(Debug)]
pub struct EmbeddingCache {
    capacity: usize,
    map: HashMap<CacheKey, Entry>,
    lru: BTreeMap<u64, CacheKey>,
    tick: u64,
    /// Lifetime hits (fresh + stale).
    pub hits: u64,
    /// Lifetime misses (absent + generation-stale without `allow_stale`).
    pub misses: u64,
    /// Entries dropped by capacity eviction.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation.
    pub invalidations: u64,
}

impl EmbeddingCache {
    /// Empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn touch(entry: &mut Entry, lru: &mut BTreeMap<u64, CacheKey>, key: CacheKey, tick: &mut u64) {
        lru.remove(&entry.access);
        *tick += 1;
        entry.access = *tick;
        lru.insert(*tick, key);
    }

    /// Look up `key` against the current generation pair `gen`.
    ///
    /// A generation mismatch is a miss unless `allow_stale`; the stale
    /// entry is evicted eagerly on a strict lookup so an invalidated
    /// value cannot linger and win a later stale-tolerant race it
    /// shouldn't.
    pub fn get(&mut self, key: CacheKey, gen: CacheGen, allow_stale: bool) -> Option<CacheHit> {
        match self.map.get_mut(&key) {
            None => {
                self.misses += 1;
                None
            }
            Some(entry) if entry.gen == gen => {
                Self::touch(entry, &mut self.lru, key, &mut self.tick);
                self.hits += 1;
                Some(CacheHit { value: Arc::clone(&entry.value), stale: false })
            }
            Some(entry) if allow_stale => {
                Self::touch(entry, &mut self.lru, key, &mut self.tick);
                self.hits += 1;
                Some(CacheHit { value: Arc::clone(&entry.value), stale: true })
            }
            Some(_) => {
                // stale under a strict lookup: evict now, miss
                let entry = self.map.remove(&key).expect("entry just matched");
                self.lru.remove(&entry.access);
                self.invalidations += 1;
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key` at generation `gen`, evicting the least
    /// recently used entry if at capacity.
    pub fn insert(&mut self, key: CacheKey, gen: CacheGen, value: Arc<Vec<f32>>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(old) = self.map.remove(&key) {
            self.lru.remove(&old.access);
        } else if self.map.len() >= self.capacity {
            // evict the globally least-recently-used entry
            let (&oldest, &victim) = self.lru.iter().next().expect("lru tracks every entry");
            self.lru.remove(&oldest);
            self.map.remove(&victim);
            self.evictions += 1;
        }
        self.tick += 1;
        self.lru.insert(self.tick, key);
        self.map.insert(key, Entry { value, gen, access: self.tick });
    }

    /// Purge every entry whose backbone generation is older than
    /// `backbone_gen` — called on backbone swap.
    pub fn invalidate_backbone(&mut self, backbone_gen: u64) {
        self.retain(|_, e| e.gen.backbone >= backbone_gen);
    }

    /// Purge every entry of `tenant` older than `adapter_gen` — called on
    /// that tenant's adapter hot-swap.
    pub fn invalidate_tenant(&mut self, tenant: TenantId, adapter_gen: u64) {
        self.retain(|k, e| k.tenant != tenant || e.gen.adapter >= adapter_gen);
    }

    fn retain(&mut self, keep: impl Fn(&CacheKey, &Entry) -> bool) {
        let before = self.map.len();
        let lru = &mut self.lru;
        self.map.retain(|k, e| {
            let keep = keep(k, e);
            if !keep {
                lru.remove(&e.access);
            }
            keep
        });
        self.invalidations += (before - self.map.len()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tenant: TenantId, tile: TileId) -> CacheKey {
        CacheKey { tenant, tile }
    }

    fn gen(backbone: u64, adapter: u64) -> CacheGen {
        CacheGen { backbone, adapter }
    }

    fn val(x: f32) -> Arc<Vec<f32>> {
        Arc::new(vec![x; 4])
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = EmbeddingCache::new(4);
        assert!(c.get(key(0, 1), gen(0, 0), false).is_none());
        c.insert(key(0, 1), gen(0, 0), val(1.0));
        let hit = c.get(key(0, 1), gen(0, 0), false).expect("fresh entry hits");
        assert!(!hit.stale);
        assert_eq!(hit.value[0], 1.0);
        assert!(c.get(key(0, 2), gen(0, 0), false).is_none(), "other tile misses");
        assert!(c.get(key(1, 1), gen(0, 0), false).is_none(), "other tenant misses");
        assert_eq!((c.hits, c.misses), (1, 3));
    }

    #[test]
    fn capacity_eviction_is_exact_lru() {
        let mut c = EmbeddingCache::new(2);
        c.insert(key(0, 1), gen(0, 0), val(1.0));
        c.insert(key(0, 2), gen(0, 0), val(2.0));
        // touch tile 1 so tile 2 is the LRU victim
        assert!(c.get(key(0, 1), gen(0, 0), false).is_some());
        c.insert(key(0, 3), gen(0, 0), val(3.0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions, 1);
        assert!(c.get(key(0, 2), gen(0, 0), false).is_none(), "LRU entry evicted");
        assert!(c.get(key(0, 1), gen(0, 0), false).is_some(), "recently-used survives");
        assert!(c.get(key(0, 3), gen(0, 0), false).is_some());
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = EmbeddingCache::new(2);
        c.insert(key(0, 1), gen(0, 0), val(1.0));
        c.insert(key(0, 1), gen(0, 0), val(9.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(key(0, 1), gen(0, 0), false).unwrap().value[0], 9.0);
        assert_eq!(c.evictions, 0);
    }

    #[test]
    fn backbone_swap_invalidates_everything_stale() {
        let mut c = EmbeddingCache::new(8);
        c.insert(key(0, 1), gen(0, 0), val(1.0));
        c.insert(key(1, 2), gen(0, 0), val(2.0));
        // the swap bumps the backbone generation; old entries must not serve
        assert!(c.get(key(0, 1), gen(1, 0), false).is_none(), "no stale escape after swap");
        c.invalidate_backbone(1);
        assert!(c.is_empty(), "eager purge drops every old-backbone entry");
        // repopulated entries at the new generation serve normally
        c.insert(key(0, 1), gen(1, 0), val(3.0));
        assert!(c.get(key(0, 1), gen(1, 0), false).is_some());
    }

    #[test]
    fn adapter_swap_invalidates_only_that_tenant() {
        let mut c = EmbeddingCache::new(8);
        c.insert(key(0, 1), gen(0, 0), val(1.0));
        c.insert(key(1, 1), gen(0, 0), val(2.0));
        c.invalidate_tenant(0, 1);
        assert!(c.get(key(0, 1), gen(0, 1), false).is_none(), "swapped tenant purged");
        assert!(
            c.get(key(1, 1), gen(0, 0), false).is_some(),
            "other tenant's entries survive the swap"
        );
    }

    #[test]
    fn strict_lookup_evicts_stale_lazily() {
        let mut c = EmbeddingCache::new(8);
        c.insert(key(0, 1), gen(0, 0), val(1.0));
        // no eager invalidate called; the strict lookup still refuses and evicts
        assert!(c.get(key(0, 1), gen(0, 1), false).is_none());
        assert_eq!(c.len(), 0, "stale entry lazily evicted on strict lookup");
        assert_eq!(c.invalidations, 1);
    }

    #[test]
    fn stale_tolerant_lookup_serves_flagged() {
        let mut c = EmbeddingCache::new(8);
        c.insert(key(0, 1), gen(0, 0), val(1.0));
        let hit = c.get(key(0, 1), gen(1, 2), true).expect("degraded mode serves stale");
        assert!(hit.stale, "stale service must be flagged");
        // and the entry survives for the next degraded hit
        assert!(c.get(key(0, 1), gen(1, 2), true).is_some());
    }

    #[test]
    fn zero_capacity_cache_never_stores() {
        let mut c = EmbeddingCache::new(0);
        c.insert(key(0, 1), gen(0, 0), val(1.0));
        assert!(c.get(key(0, 1), gen(0, 0), false).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_interleaved_with_invalidation_keeps_lru_consistent() {
        let mut c = EmbeddingCache::new(3);
        for t in 0..3u64 {
            c.insert(key(0, t), gen(0, 0), val(t as f32));
        }
        c.invalidate_tenant(0, 1); // purge all three
        assert!(c.is_empty());
        for t in 10..14u64 {
            c.insert(key(0, t), gen(0, 1), val(t as f32));
        }
        assert_eq!(c.len(), 3);
        assert!(c.get(key(0, 10), gen(0, 1), false).is_none(), "oldest of the refill evicted");
        assert!(c.get(key(0, 13), gen(0, 1), false).is_some());
    }
}
