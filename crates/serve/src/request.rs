//! Request, verdict, and outcome types of the serving plane.
//!
//! Every request submitted to the server receives **exactly one verdict**
//! at admission time ([`Verdict::Admitted`] or [`Verdict::Rejected`]) and,
//! if admitted, **exactly one terminal outcome** ([`Outcome`]). That
//! two-phase accounting is the conservation law `tests/serve_chaos.rs`
//! pins: `submitted = admitted + rejected` and
//! `admitted = completed + shed`, with nothing lost and nothing counted
//! twice — the serving twin of the trainer's "bit-identical or structured
//! report, never hang" invariant.

/// Tenant index into the server's tenant table.
pub type TenantId = usize;

/// Opaque geospatial tile identifier (the embedding-cache key).
pub type TileId = u64;

/// Tenant service class. Degradation sheds lower classes first; the
/// batcher serves higher classes first when capacity is contended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Best-effort batch/analytics traffic — first to be shed.
    Low = 0,
    /// Default interactive traffic.
    Standard = 1,
    /// Latency-sensitive traffic — last to be shed.
    Premium = 2,
}

/// One inference request over the frozen backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Unique per-run request id (assigned by the submitter).
    pub id: u64,
    /// Issuing tenant.
    pub tenant: TenantId,
    /// Tile whose embedding is requested.
    pub tile: TileId,
    /// Service class (copied from the tenant's config at submit).
    pub priority: Priority,
    /// Arrival timestamp, nanoseconds on the server clock.
    pub arrival_ns: u64,
    /// Absolute deadline on the server clock; work finishing later has
    /// zero value to the client.
    pub deadline_ns: u64,
}

/// Why a request was turned away at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RejectReason {
    /// The tenant's bounded queue is full — the backpressure signal that
    /// replaces unbounded growth.
    QueueFull,
    /// The tenant exhausted its token bucket.
    RateLimited,
    /// The tenant's circuit breaker is open after repeated deadline
    /// failures; fast-fail instead of queueing doomed work.
    CircuitOpen,
    /// Sustained overload: the degradation ladder is shedding this
    /// tenant's service class at admission.
    Degraded,
    /// The server is draining for shutdown.
    ShuttingDown,
}

/// Admission decision, returned synchronously from `submit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Queued for batching (or completed instantly from cache).
    Admitted,
    /// Turned away; `retry_after_ns` is the server's drain-rate estimate
    /// of when capacity returns — never retry sooner.
    Rejected {
        /// Why the request was refused.
        reason: RejectReason,
        /// Suggested client backoff, nanoseconds.
        retry_after_ns: u64,
    },
}

impl Verdict {
    /// Whether the request entered the serving pipeline.
    pub fn admitted(&self) -> bool {
        matches!(self, Verdict::Admitted)
    }
}

/// Terminal outcome of an admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// An embedding was produced and delivered.
    Completed {
        /// End-to-end latency (completion − arrival), nanoseconds.
        latency_ns: u64,
        /// Whether the deadline was met — only these count as goodput.
        in_deadline: bool,
        /// Served from the embedding cache without touching the backbone.
        from_cache: bool,
        /// Served from a stale cache generation under degradation.
        stale: bool,
    },
    /// Expired in queue and was shed *before* compute — the deadline
    /// scheduler refusing to burn backbone time on dead work.
    ShedDeadline,
    /// Shed under cache-only degradation: the tile was not cached and
    /// the ladder forbade compute for this service class.
    ShedCacheMiss,
    /// Still queued when the server shut down mid-burst.
    ShedShutdown,
}

impl Outcome {
    /// Whether the outcome is a completion (any kind).
    pub fn completed(&self) -> bool {
        matches!(self, Outcome::Completed { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_low_to_premium() {
        assert!(Priority::Low < Priority::Standard);
        assert!(Priority::Standard < Priority::Premium);
    }

    #[test]
    fn verdict_admitted_predicate() {
        assert!(Verdict::Admitted.admitted());
        assert!(!Verdict::Rejected { reason: RejectReason::QueueFull, retry_after_ns: 1 }
            .admitted());
    }
}
