//! The model side of the serving plane: a frozen encoder behind a
//! narrow [`Backbone`] trait.
//!
//! Serving decouples scheduling from the model through three facts the
//! scheduler needs: *what generation* the backbone and each tenant's
//! adapter are at (for cache invalidation), *how to encode* a batch of
//! `(tenant, tile)` pairs, and *how long* a batch of a given size costs
//! (so the deterministic harness can charge virtual time the same way
//! wall-clock charges real time). Two implementations:
//!
//! - [`SimBackbone`] — hash-derived embeddings and an affine cost model;
//!   the deterministic workhorse for chaos tests and the frontier sweep.
//! - [`VitBackbone`] — a real frozen [`VitModel`] encoder over synthetic
//!   tile imagery, proving the plane serves actual ViT features.
//!
//! Generation bumps use atomics so a swap can land while worker threads
//! hold `&dyn Backbone`.

use crate::request::{TenantId, TileId};
use geofm_tensor::Tensor;
use geofm_vit::{VitConfig, VitModel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Frozen encoder + per-tenant adapters, as seen by the scheduler.
pub trait Backbone: Send + Sync {
    /// Embedding width of the served features.
    fn embed_dim(&self) -> usize;

    /// Current backbone generation (bumped on model swap).
    fn backbone_gen(&self) -> u64;

    /// Current adapter generation for `tenant` (bumped on hot-swap).
    fn adapter_gen(&self, tenant: TenantId) -> u64;

    /// Encode one batch: one adapted embedding per `(tenant, tile)` entry.
    fn encode(&self, entries: &[(TenantId, TileId)]) -> Vec<Arc<Vec<f32>>>;

    /// Nominal cost of a batch of `n` requests, nanoseconds — the quantum
    /// the virtual-time harness charges per batch. Real execution ignores
    /// this and measures the clock.
    fn batch_cost_ns(&self, n: usize) -> u64;
}

/// Deterministic hash-embedding backbone with an affine cost model.
#[derive(Debug)]
pub struct SimBackbone {
    dim: usize,
    base_ns: u64,
    per_item_ns: u64,
    backbone_gen: AtomicU64,
    adapter_gens: Mutex<Vec<u64>>,
}

impl SimBackbone {
    /// `dim`-wide embeddings; a batch of `n` costs `base + n * per_item`.
    pub fn new(dim: usize, base_ns: u64, per_item_ns: u64) -> Self {
        Self {
            dim,
            base_ns,
            per_item_ns,
            backbone_gen: AtomicU64::new(0),
            adapter_gens: Mutex::new(Vec::new()),
        }
    }

    /// Simulate a backbone model swap (invalidates every cached tile).
    pub fn swap_backbone(&self) {
        self.backbone_gen.fetch_add(1, Ordering::SeqCst);
    }

    /// Simulate one tenant's adapter hot-swap.
    pub fn swap_adapter(&self, tenant: TenantId) {
        let mut gens = self.adapter_gens.lock().expect("adapter gens lock");
        if gens.len() <= tenant {
            gens.resize(tenant + 1, 0);
        }
        gens[tenant] += 1;
    }

    fn mix(mut x: u64) -> u64 {
        // splitmix64 finalizer
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }
}

impl Backbone for SimBackbone {
    fn embed_dim(&self) -> usize {
        self.dim
    }

    fn backbone_gen(&self) -> u64 {
        self.backbone_gen.load(Ordering::SeqCst)
    }

    fn adapter_gen(&self, tenant: TenantId) -> u64 {
        self.adapter_gens.lock().expect("adapter gens lock").get(tenant).copied().unwrap_or(0)
    }

    fn encode(&self, entries: &[(TenantId, TileId)]) -> Vec<Arc<Vec<f32>>> {
        let bgen = self.backbone_gen();
        entries
            .iter()
            .map(|&(tenant, tile)| {
                let agen = self.adapter_gen(tenant);
                let seed = Self::mix(tile ^ bgen.rotate_left(17) ^ (tenant as u64).rotate_left(41) ^ agen.rotate_left(29));
                let v: Vec<f32> = (0..self.dim)
                    .map(|i| {
                        let h = Self::mix(seed.wrapping_add(i as u64));
                        // map to [-1, 1)
                        (h >> 40) as f32 / (1u64 << 23) as f32 - 1.0
                    })
                    .collect();
                Arc::new(v)
            })
            .collect()
    }

    fn batch_cost_ns(&self, n: usize) -> u64 {
        self.base_ns + self.per_item_ns * n as u64
    }
}

/// A real frozen ViT encoder serving adapted mean-pooled features over
/// synthetic tile imagery.
pub struct VitBackbone {
    model: VitModel,
    cfg: VitConfig,
    base_ns: u64,
    per_item_ns: u64,
    backbone_gen: AtomicU64,
    adapter_gens: Mutex<Vec<u64>>,
}

impl VitBackbone {
    /// Wrap a frozen `model` built from `cfg`.
    pub fn new(model: VitModel, cfg: VitConfig) -> Self {
        Self {
            model,
            cfg,
            base_ns: 200_000,
            per_item_ns: 50_000,
            backbone_gen: AtomicU64::new(0),
            adapter_gens: Mutex::new(Vec::new()),
        }
    }

    /// Bump the backbone generation, as a checkpoint-reload swap would.
    pub fn swap_backbone(&self) {
        self.backbone_gen.fetch_add(1, Ordering::SeqCst);
    }

    /// Bump one tenant's adapter generation.
    pub fn swap_adapter(&self, tenant: TenantId) {
        let mut gens = self.adapter_gens.lock().expect("adapter gens lock");
        if gens.len() <= tenant {
            gens.resize(tenant + 1, 0);
        }
        gens[tenant] += 1;
    }

    /// Deterministic synthetic imagery for `tile`: each pixel is a cheap
    /// hash of (tile, pixel index) in [0, 1) — stable across runs so the
    /// same tile always embeds identically at a given generation.
    fn tile_image(&self, tile: TileId, out: &mut [f32]) {
        let seed = SimBackbone::mix(tile.wrapping_mul(0x9e3779b97f4a7c15));
        for (i, px) in out.iter_mut().enumerate() {
            let h = SimBackbone::mix(seed.wrapping_add(i as u64));
            *px = (h >> 40) as f32 / (1u64 << 24) as f32;
        }
    }
}

impl Backbone for VitBackbone {
    fn embed_dim(&self) -> usize {
        self.cfg.width
    }

    fn backbone_gen(&self) -> u64 {
        self.backbone_gen.load(Ordering::SeqCst)
    }

    fn adapter_gen(&self, tenant: TenantId) -> u64 {
        self.adapter_gens.lock().expect("adapter gens lock").get(tenant).copied().unwrap_or(0)
    }

    fn encode(&self, entries: &[(TenantId, TileId)]) -> Vec<Arc<Vec<f32>>> {
        let pix = self.cfg.channels * self.cfg.img * self.cfg.img;
        let b = entries.len();
        let mut images = Tensor::zeros(&[b, pix]);
        for (row, &(_, tile)) in entries.iter().enumerate() {
            self.tile_image(tile, &mut images.data_mut()[row * pix..(row + 1) * pix]);
        }
        let feats = self.model.features_inference(&images);
        let w = feats.dim(1);
        entries
            .iter()
            .enumerate()
            .map(|(row, &(tenant, _))| {
                // per-tenant adapter: a deterministic diagonal rescale keyed by
                // (tenant, adapter generation) — enough to make adapted outputs
                // tenant- and generation-distinct without trainable state
                let agen = self.adapter_gen(tenant);
                let scale = 1.0 + 0.05 * ((tenant as u64 * 31 + agen * 7) % 13) as f32;
                let v: Vec<f32> =
                    feats.data()[row * w..(row + 1) * w].iter().map(|x| x * scale).collect();
                Arc::new(v)
            })
            .collect()
    }

    fn batch_cost_ns(&self, n: usize) -> u64 {
        self.base_ns + self.per_item_ns * n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geofm_tensor::TensorRng;

    #[test]
    fn sim_embeddings_are_deterministic_and_generation_sensitive() {
        let b = SimBackbone::new(8, 1000, 100);
        let a1 = b.encode(&[(0, 42)]);
        let a2 = b.encode(&[(0, 42)]);
        assert_eq!(a1[0], a2[0], "same tile, same generation => identical");
        let other_tile = b.encode(&[(0, 43)]);
        assert_ne!(a1[0], other_tile[0]);
        let other_tenant = b.encode(&[(1, 42)]);
        assert_ne!(a1[0], other_tenant[0], "adapters make outputs tenant-distinct");
        b.swap_backbone();
        let swapped = b.encode(&[(0, 42)]);
        assert_ne!(a1[0], swapped[0], "backbone swap changes the embedding");
        b.swap_adapter(0);
        let adapted = b.encode(&[(0, 42)]);
        assert_ne!(swapped[0], adapted[0], "adapter swap changes the embedding");
    }

    #[test]
    fn sim_cost_model_is_affine() {
        let b = SimBackbone::new(8, 1000, 100);
        assert_eq!(b.batch_cost_ns(0), 1000);
        assert_eq!(b.batch_cost_ns(10), 2000);
    }

    #[test]
    fn vit_backbone_serves_real_frozen_features() {
        let cfg = VitConfig::tiny_family().remove(0);
        let mut rng = TensorRng::seed_from(7);
        let model = VitModel::new(&cfg, &mut rng);
        let b = VitBackbone::new(model, cfg.clone());
        let out = b.encode(&[(0, 1), (1, 1), (0, 2)]);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].len(), cfg.width);
        assert!(out[0].iter().all(|x| x.is_finite()));
        // same tile re-encodes identically; different tenant adapters differ
        let again = b.encode(&[(0, 1)]);
        assert_eq!(out[0], again[0]);
        assert_ne!(out[0], out[1], "tenant adapters differentiate the same tile");
        assert_ne!(out[0], out[2], "different tiles embed differently");
        // adapter swap for tenant 0 changes only tenant 0's output
        b.swap_adapter(0);
        let post = b.encode(&[(0, 1), (1, 1)]);
        assert_ne!(out[0], post[0]);
        assert_eq!(out[1], post[1]);
    }
}
