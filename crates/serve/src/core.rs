//! The serving-plane state machine: admission, deadline-aware batching,
//! shedding, degradation.
//!
//! [`ServeCore`] is deliberately clock-free: every entry point takes an
//! explicit `now_ns`, so the *same* scheduler logic runs under the real
//! threaded plane ([`crate::plane`], `Instant`-derived nanoseconds) and
//! the deterministic virtual-time harness ([`crate::sim`]). That is what
//! makes 100+ chaos schedules bit-replayable: all nondeterminism lives
//! outside this module.
//!
//! ## Admission chain (defended mode)
//!
//! `shutdown → ladder (L3 sheds low-priority) → circuit breaker → token
//! bucket → bounded queue`. Every rejection carries an honest
//! `retry_after_ns` estimated from the specific defense that fired. In
//! undefended mode ([`ServeConfig::undefended`], the figX negative
//! control) the chain collapses to "enqueue, unbounded, FIFO" — the
//! classic head-of-line death spiral this crate exists to prevent.
//!
//! ## Batching
//!
//! `form_batch` first sheds queue entries whose deadlines already passed
//! (*before* compute — dead work never reaches the backbone), then fills
//! a batch highest-priority-first, round-robin across tenants within a
//! class. A linger window trades p50 for throughput: small batches wait
//! up to `linger_ns` for company unless the ladder says otherwise.

use crate::backbone::Backbone;
use crate::cache::{CacheGen, CacheKey, EmbeddingCache};
use crate::degrade::{DegradeController, DegradeLevel};
use crate::report::{CacheReport, ServeReport, TenantReport};
use crate::request::{Outcome, Priority, RejectReason, Request, TenantId, TileId, Verdict};
use crate::tenant::{TenantConfig, TenantState};
use geofm_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Server-wide policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Max requests per backbone batch at L0.
    pub max_batch: usize,
    /// Shrunken max batch at L1+ (latency over throughput).
    pub tight_max_batch: usize,
    /// How long a non-full batch waits for company at L0 — the
    /// p50-vs-throughput knob. L1+ forces it to zero.
    pub linger_ns: u64,
    /// Consecutive deadline failures that trip a tenant's breaker. Set
    /// high enough that a single stalled batch (which sheds everything
    /// queued behind it) does not read as tenant-specific doom.
    pub breaker_threshold: u32,
    /// Breaker open time before a half-open probe. Sized to roughly the
    /// time a full bounded queue takes to drain — long enough for the
    /// backlog to clear, short enough that a transient stall does not
    /// black-hole the tenant for many deadline budgets.
    pub breaker_cooldown_ns: u64,
    /// Embedding-cache capacity, entries.
    pub cache_capacity: usize,
    /// Fraction of wall-clock the backbone may burn before CPU overrun
    /// feeds the pressure signal (the CPU-budget load shedder).
    pub cpu_budget: f64,
    /// Ladder thresholds.
    pub degrade: crate::degrade::DegradeConfig,
    /// Master defense switch. `false` = naive server: unbounded FIFO, no
    /// limits, no shedding, everything computed eventually.
    pub defended: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            tight_max_batch: 4,
            linger_ns: 2_000_000,
            breaker_threshold: 16,
            breaker_cooldown_ns: 25_000_000,
            cache_capacity: 1024,
            cpu_budget: 0.85,
            degrade: crate::degrade::DegradeConfig::default(),
            defended: true,
        }
    }
}

impl ServeConfig {
    /// The negative control: identical capacity, every defense off.
    pub fn undefended() -> Self {
        Self { defended: false, ..Self::default() }
    }
}

/// A formed batch awaiting backbone execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Monotonic batch id (the hedge-injection coordinate in chaos runs).
    pub id: u64,
    /// Requests in service order.
    pub requests: Vec<Request>,
}

impl Batch {
    /// `(tenant, tile)` pairs in request order, as the backbone wants.
    pub fn entries(&self) -> Vec<(TenantId, TileId)> {
        self.requests.iter().map(|r| (r.tenant, r.tile)).collect()
    }
}

struct ServeMetrics {
    admitted: Arc<Counter>,
    rejected: Arc<Counter>,
    shed: Arc<Counter>,
    completed: Arc<Counter>,
    cache_hits: Arc<Counter>,
    hedges: Arc<Counter>,
    hedge_wins: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    degrade_level: Arc<Gauge>,
    latency: Arc<Histogram>,
    batch_size: Arc<Histogram>,
}

impl ServeMetrics {
    fn new(reg: &MetricsRegistry) -> Self {
        Self {
            admitted: reg.counter("serve.admitted"),
            rejected: reg.counter("serve.rejected"),
            shed: reg.counter("serve.shed"),
            completed: reg.counter("serve.completed"),
            cache_hits: reg.counter("serve.cache_hits"),
            hedges: reg.counter("serve.hedge_launched"),
            hedge_wins: reg.counter("serve.hedge_wins"),
            queue_depth: reg.gauge("serve.queue_depth"),
            degrade_level: reg.gauge("serve.degrade_level"),
            latency: reg.histogram("serve.latency_ns"),
            batch_size: reg.histogram("serve.batch_size"),
        }
    }
}

/// The clock-free scheduler (see module docs).
pub struct ServeCore {
    cfg: ServeConfig,
    tenants: Vec<TenantState>,
    acc: Vec<TenantReport>,
    cache: EmbeddingCache,
    degrade: DegradeController,
    backbone: Arc<dyn Backbone>,
    next_req_id: u64,
    next_batch_id: u64,
    start_ns: u64,
    busy_ns: u64,
    shutting_down: bool,
    latencies: Vec<u64>,
    batches: u64,
    batched_requests: u64,
    hedges_launched: u64,
    hedge_wins: u64,
    window_done: u64,
    window_missed: u64,
    metrics: Option<ServeMetrics>,
}

impl ServeCore {
    /// New core over `backbone` with one [`TenantState`] per config.
    /// `start_ns` anchors the CPU-budget elapsed clock.
    pub fn new(
        cfg: ServeConfig,
        tenant_cfgs: &[TenantConfig],
        backbone: Arc<dyn Backbone>,
        start_ns: u64,
    ) -> Self {
        let tenants: Vec<TenantState> = tenant_cfgs
            .iter()
            .map(|&t| {
                let (thr, cool) = if cfg.defended {
                    (cfg.breaker_threshold, cfg.breaker_cooldown_ns)
                } else {
                    (u32::MAX, 0)
                };
                let t = if cfg.defended {
                    t
                } else {
                    // naive server: no rate limiting either
                    TenantConfig { rate_per_s: f64::INFINITY, ..t }
                };
                TenantState::new(t, thr, cool)
            })
            .collect();
        let acc = vec![TenantReport::default(); tenants.len()];
        Self {
            cache: EmbeddingCache::new(cfg.cache_capacity),
            degrade: DegradeController::new(cfg.degrade),
            cfg,
            tenants,
            acc,
            backbone,
            next_req_id: 0,
            next_batch_id: 0,
            start_ns,
            busy_ns: 0,
            shutting_down: false,
            latencies: Vec::new(),
            batches: 0,
            batched_requests: 0,
            hedges_launched: 0,
            hedge_wins: 0,
            window_done: 0,
            window_missed: 0,
            metrics: None,
        }
    }

    /// Wire `serve.*` metrics into `registry`.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(ServeMetrics::new(registry));
        self
    }

    /// Number of configured tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Whether shutdown drain has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down
    }

    /// Current degradation rung.
    pub fn degrade_level(&self) -> DegradeLevel {
        self.degrade.level()
    }

    /// Total requests currently queued across tenants.
    pub fn queued_total(&self) -> usize {
        self.tenants.iter().map(|t| t.queue.len()).sum()
    }

    fn gen_for(&self, tenant: TenantId) -> CacheGen {
        CacheGen {
            backbone: self.backbone.backbone_gen(),
            adapter: self.backbone.adapter_gen(tenant),
        }
    }

    fn record_outcome(&mut self, req: &Request, outcome: Outcome, now_ns: u64) {
        let tr = &mut self.acc[req.tenant];
        match outcome {
            Outcome::Completed { latency_ns, in_deadline, from_cache, stale } => {
                if in_deadline {
                    tr.completed_in_deadline += 1;
                    self.window_done += 1;
                } else {
                    tr.completed_late += 1;
                    self.window_missed += 1;
                }
                if from_cache {
                    tr.from_cache += 1;
                }
                if stale {
                    tr.stale_served += 1;
                }
                self.latencies.push(latency_ns);
                self.tenants[req.tenant].breaker.record(in_deadline, now_ns);
                if let Some(m) = &self.metrics {
                    m.completed.inc(1);
                    m.latency.record(latency_ns);
                    if from_cache {
                        m.cache_hits.inc(1);
                    }
                }
            }
            Outcome::ShedDeadline | Outcome::ShedCacheMiss | Outcome::ShedShutdown => {
                match outcome {
                    Outcome::ShedDeadline => tr.shed_deadline += 1,
                    Outcome::ShedCacheMiss => tr.shed_cache_miss += 1,
                    _ => tr.shed_shutdown += 1,
                }
                self.window_missed += 1;
                self.tenants[req.tenant].breaker.record(false, now_ns);
                if let Some(m) = &self.metrics {
                    m.shed.inc(1);
                }
            }
        }
    }

    fn reject(&mut self, tenant: TenantId, reason: RejectReason, retry_after_ns: u64) -> Verdict {
        *self.acc[tenant].rejected.entry(reason).or_insert(0) += 1;
        if let Some(m) = &self.metrics {
            m.rejected.inc(1);
        }
        Verdict::Rejected { reason, retry_after_ns }
    }

    /// Rough time for the tenant's queue to drain at current batch sizing.
    fn drain_estimate_ns(&self, queued: usize) -> u64 {
        let per_batch = self.backbone.batch_cost_ns(self.cfg.max_batch.max(1));
        let batches = queued.div_ceil(self.cfg.max_batch.max(1)) as u64;
        (batches + 1) * per_batch
    }

    /// Submit one request. Returns its id and **exactly one** verdict; if
    /// the verdict is `Admitted`, exactly one [`Outcome`] will follow
    /// (possibly within this call, for cache fast-path completions).
    pub fn submit(&mut self, tenant: TenantId, tile: TileId, now_ns: u64) -> (u64, Verdict) {
        let id = self.next_req_id;
        self.next_req_id += 1;
        self.acc[tenant].submitted += 1;

        if self.shutting_down {
            let v = self.reject(tenant, RejectReason::ShuttingDown, 0);
            return (id, v);
        }

        let cfg = self.tenants[tenant].cfg;
        let req = Request {
            id,
            tenant,
            tile,
            priority: cfg.priority,
            arrival_ns: now_ns,
            deadline_ns: now_ns.saturating_add(cfg.deadline_ns),
        };

        if self.cfg.defended {
            // L3: lowest class is turned away at the door
            if self.degrade.level() >= DegradeLevel::ShedLow && cfg.priority == Priority::Low {
                let retry = self.drain_estimate_ns(self.queued_total());
                let v = self.reject(tenant, RejectReason::Degraded, retry);
                return (id, v);
            }
            if !self.tenants[tenant].breaker.allow(now_ns) {
                let retry = self.tenants[tenant].breaker.ns_until_probe(now_ns);
                let v = self.reject(tenant, RejectReason::CircuitOpen, retry);
                return (id, v);
            }
            if !self.tenants[tenant].bucket.try_take(now_ns) {
                let retry = self.tenants[tenant].bucket.ns_until_token(now_ns);
                let v = self.reject(tenant, RejectReason::RateLimited, retry);
                return (id, v);
            }
            if self.tenants[tenant].queue.len() >= cfg.queue_capacity {
                let retry = self.drain_estimate_ns(self.tenants[tenant].queue.len());
                let v = self.reject(tenant, RejectReason::QueueFull, retry);
                return (id, v);
            }
        }

        self.acc[tenant].admitted += 1;
        if let Some(m) = &self.metrics {
            m.admitted.inc(1);
        }

        // L2 cache-only service for the lowest class: stale hits are
        // served flagged, misses are shed instead of computed.
        let cache_only = self.cfg.defended
            && self.degrade.level() >= DegradeLevel::CacheOnly
            && cfg.priority == Priority::Low;
        let gen = self.gen_for(tenant);
        let key = CacheKey { tenant, tile };
        if let Some(hit) = self.cache.get(key, gen, cache_only) {
            let outcome = Outcome::Completed {
                latency_ns: 0,
                in_deadline: true,
                from_cache: true,
                stale: hit.stale,
            };
            self.record_outcome(&req, outcome, now_ns);
            return (id, Verdict::Admitted);
        }
        if cache_only {
            self.record_outcome(&req, Outcome::ShedCacheMiss, now_ns);
            return (id, Verdict::Admitted);
        }

        self.tenants[tenant].enqueue(req);
        if let Some(m) = &self.metrics {
            m.queue_depth.set(self.queued_total() as i64);
        }
        (id, Verdict::Admitted)
    }

    /// Shed every queued request whose deadline has already passed —
    /// before it can waste backbone time.
    fn shed_expired(&mut self, now_ns: u64) {
        if !self.cfg.defended {
            return;
        }
        for t in 0..self.tenants.len() {
            while let Some(front) = self.tenants[t].queue.front() {
                if front.deadline_ns > now_ns {
                    break; // per-tenant FIFO + uniform budget => deadline-ordered
                }
                let req = self.tenants[t].queue.pop_front().expect("front exists");
                self.record_outcome(&req, Outcome::ShedDeadline, now_ns);
            }
        }
    }

    fn effective_max_batch(&self) -> usize {
        if self.cfg.defended && self.degrade.level() >= DegradeLevel::TightBatch {
            self.cfg.tight_max_batch
        } else {
            self.cfg.max_batch
        }
    }

    fn effective_linger(&self) -> u64 {
        if self.cfg.defended && self.degrade.level() >= DegradeLevel::TightBatch {
            0
        } else {
            self.cfg.linger_ns
        }
    }

    /// Fold queue occupancy, the recent deadline-miss window, and CPU
    /// overrun into the ladder.
    fn observe_pressure(&mut self, now_ns: u64) {
        if !self.cfg.defended {
            return;
        }
        let capacity: usize = self.tenants.iter().map(|t| t.cfg.queue_capacity).sum();
        let queue_frac = if capacity == 0 {
            0.0
        } else {
            self.queued_total() as f64 / capacity as f64
        };
        let total = self.window_done + self.window_missed;
        let miss_frac = if total == 0 { 0.0 } else { self.window_missed as f64 / total as f64 };
        // windowed, not lifetime: decay so recovery is observable
        self.window_done = (self.window_done * 3) / 4;
        self.window_missed = (self.window_missed * 3) / 4;
        let elapsed = now_ns.saturating_sub(self.start_ns).max(1);
        let cpu_frac = self.busy_ns as f64 / elapsed as f64;
        let overrun = if self.cfg.cpu_budget < 1.0 {
            ((cpu_frac - self.cfg.cpu_budget) / (1.0 - self.cfg.cpu_budget)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.degrade.observe(queue_frac.max(overrun), miss_frac, now_ns);
        if let Some(m) = &self.metrics {
            m.degrade_level.set(self.degrade.level() as i64);
            m.queue_depth.set(self.queued_total() as i64);
        }
    }

    /// Try to form the next batch at `now_ns`.
    ///
    /// Returns `None` when nothing is ready — either the queues are empty
    /// or the linger window says a small batch should wait for company.
    pub fn form_batch(&mut self, now_ns: u64) -> Option<Batch> {
        if self.shutting_down {
            return None;
        }
        self.shed_expired(now_ns);
        self.observe_pressure(now_ns);
        let queued = self.queued_total();
        if queued == 0 {
            return None;
        }
        let max = self.effective_max_batch().max(1);
        if queued < max {
            let oldest =
                self.tenants.iter().filter_map(|t| t.queue.front()).map(|r| r.arrival_ns).min();
            if let Some(oldest) = oldest {
                if now_ns.saturating_sub(oldest) < self.effective_linger() {
                    return None;
                }
            }
        }
        // highest class first; round-robin one-per-tenant inside a class
        let mut requests = Vec::with_capacity(max);
        for class in [Priority::Premium, Priority::Standard, Priority::Low] {
            loop {
                let mut took = false;
                for t in 0..self.tenants.len() {
                    if requests.len() >= max {
                        break;
                    }
                    if self.tenants[t].cfg.priority != class {
                        continue;
                    }
                    if let Some(req) = self.tenants[t].queue.pop_front() {
                        requests.push(req);
                        took = true;
                    }
                }
                if !took || requests.len() >= max {
                    break;
                }
            }
            if requests.len() >= max {
                break;
            }
        }
        if requests.is_empty() {
            return None;
        }
        let id = self.next_batch_id;
        self.next_batch_id += 1;
        if let Some(m) = &self.metrics {
            m.batch_size.record(requests.len() as u64);
            m.queue_depth.set(self.queued_total() as i64);
        }
        Some(Batch { id, requests })
    }

    /// Earliest future instant at which `form_batch` could do something
    /// it can't do now: linger expiry or the next queued deadline. `None`
    /// when the queues are empty. Drives the virtual-time harness.
    pub fn next_event_ns(&self, now_ns: u64) -> Option<u64> {
        let oldest =
            self.tenants.iter().filter_map(|t| t.queue.front()).map(|r| r.arrival_ns).min()?;
        let linger_at = oldest.saturating_add(self.effective_linger());
        let deadline = self
            .tenants
            .iter()
            .flat_map(|t| t.queue.iter())
            .map(|r| r.deadline_ns)
            .min()
            .unwrap_or(u64::MAX);
        Some(linger_at.min(deadline).max(now_ns))
    }

    /// Record a finished batch: one embedding per request, computed in
    /// `compute_ns`, finishing at `now_ns`. Inserts into the cache at the
    /// backbone's *current* generations (a swap mid-batch means the batch
    /// results are already stale and will be refused by strict lookups).
    pub fn complete_batch(
        &mut self,
        batch: &Batch,
        results: &[Arc<Vec<f32>>],
        compute_ns: u64,
        now_ns: u64,
    ) {
        assert_eq!(batch.requests.len(), results.len(), "one embedding per request");
        self.busy_ns += compute_ns;
        self.batches += 1;
        self.batched_requests += batch.requests.len() as u64;
        for (req, val) in batch.requests.iter().zip(results) {
            let gen = self.gen_for(req.tenant);
            self.cache.insert(CacheKey { tenant: req.tenant, tile: req.tile }, gen, Arc::clone(val));
            let latency_ns = now_ns.saturating_sub(req.arrival_ns);
            let outcome = Outcome::Completed {
                latency_ns,
                in_deadline: now_ns <= req.deadline_ns,
                from_cache: false,
                stale: false,
            };
            self.record_outcome(req, outcome, now_ns);
        }
        self.observe_pressure(now_ns);
    }

    /// Account an in-flight batch that will never complete (shutdown).
    pub fn shed_batch(&mut self, batch: &Batch, now_ns: u64) {
        for req in batch.requests.clone() {
            self.record_outcome(&req, Outcome::ShedShutdown, now_ns);
        }
    }

    /// A hedged duplicate execution was launched for a straggling batch.
    pub fn note_hedge_launched(&mut self) {
        self.hedges_launched += 1;
        if let Some(m) = &self.metrics {
            m.hedges.inc(1);
        }
    }

    /// The duplicate finished before the original.
    pub fn note_hedge_win(&mut self) {
        self.hedge_wins += 1;
        if let Some(m) = &self.metrics {
            m.hedge_wins.inc(1);
        }
    }

    /// Invalidate cache entries after a backbone swap (delegates to the
    /// backbone's current generation).
    pub fn on_backbone_swap(&mut self) {
        self.cache.invalidate_backbone(self.backbone.backbone_gen());
    }

    /// Invalidate one tenant's cache entries after an adapter swap.
    pub fn on_adapter_swap(&mut self, tenant: TenantId) {
        self.cache.invalidate_tenant(tenant, self.backbone.adapter_gen(tenant));
    }

    /// Begin shutdown: refuse new work and shed everything still queued.
    /// In-flight batches must be finished or [`Self::shed_batch`]-ed by
    /// the caller before the report balances.
    pub fn drain_shutdown(&mut self, now_ns: u64) {
        self.shutting_down = true;
        for t in 0..self.tenants.len() {
            while let Some(req) = self.tenants[t].queue.pop_front() {
                self.record_outcome(&req, Outcome::ShedShutdown, now_ns);
            }
        }
        if let Some(m) = &self.metrics {
            m.queue_depth.set(0);
        }
    }

    /// Assemble the final (or interim) report.
    pub fn report(&self) -> ServeReport {
        let mut tenants = BTreeMap::new();
        for (i, (acc, state)) in self.acc.iter().zip(&self.tenants).enumerate() {
            let mut tr = acc.clone();
            tr.queue_depth_max = state.queue_depth_max;
            tr.breaker_trips = state.breaker.trips;
            tenants.insert(i, tr);
        }
        let mut latencies = self.latencies.clone();
        latencies.sort_unstable();
        ServeReport {
            tenants,
            batches: self.batches,
            batched_requests: self.batched_requests,
            hedges_launched: self.hedges_launched,
            hedge_wins: self.hedge_wins,
            cache: CacheReport {
                hits: self.cache.hits,
                misses: self.cache.misses,
                evictions: self.cache.evictions,
                invalidations: self.cache.invalidations,
            },
            degrade_transitions: self.degrade.transitions.clone(),
            degrade_peak: self.degrade.peak,
            latencies_ns: latencies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::SimBackbone;

    const MS: u64 = 1_000_000;

    fn core_with(cfg: ServeConfig, tenant_cfgs: &[TenantConfig]) -> ServeCore {
        let backbone = Arc::new(SimBackbone::new(8, MS, MS / 10));
        ServeCore::new(cfg, tenant_cfgs, backbone, 0)
    }

    fn run_batch(core: &mut ServeCore, now_ns: u64) -> Option<(Batch, u64)> {
        let batch = core.form_batch(now_ns)?;
        let backbone = Arc::new(SimBackbone::new(8, MS, MS / 10));
        let results = backbone.encode(&batch.entries());
        let cost = backbone.batch_cost_ns(batch.requests.len());
        let done = now_ns + cost;
        core.complete_batch(&batch, &results, cost, done);
        Some((batch, done))
    }

    #[test]
    fn admit_batch_complete_balances_books() {
        let cfg = ServeConfig { linger_ns: 0, ..ServeConfig::default() };
        let mut core = core_with(cfg, &[TenantConfig::standard(f64::INFINITY)]);
        for tile in 0..5u64 {
            let (_, v) = core.submit(0, tile, 0);
            assert!(v.admitted());
        }
        run_batch(&mut core, 0).expect("batch forms");
        let r = core.report();
        r.assert_conservation();
        assert_eq!(r.goodput(), 5);
        assert_eq!(r.batches, 1);
    }

    #[test]
    fn queue_overflow_rejects_with_retry_after() {
        let mut t = TenantConfig::standard(f64::INFINITY);
        t.queue_capacity = 2;
        let mut core = core_with(ServeConfig::default(), &[t]);
        assert!(core.submit(0, 0, 0).1.admitted());
        assert!(core.submit(0, 1, 0).1.admitted());
        match core.submit(0, 2, 0).1 {
            Verdict::Rejected { reason: RejectReason::QueueFull, retry_after_ns } => {
                assert!(retry_after_ns > 0, "retry-after must be an honest estimate");
            }
            v => panic!("expected QueueFull, got {v:?}"),
        }
        core.drain_shutdown(1); // conservation is a terminal-state property
        core.report().assert_conservation();
    }

    #[test]
    fn rate_limit_rejects_beyond_bucket() {
        let mut t = TenantConfig::standard(10.0);
        t.burst = 2.0;
        let mut core = core_with(ServeConfig::default(), &[t]);
        assert!(core.submit(0, 0, 0).1.admitted());
        assert!(core.submit(0, 1, 0).1.admitted());
        match core.submit(0, 2, 0).1 {
            Verdict::Rejected { reason: RejectReason::RateLimited, retry_after_ns } => {
                assert!(retry_after_ns > 0);
            }
            v => panic!("expected RateLimited, got {v:?}"),
        }
    }

    #[test]
    fn expired_requests_shed_before_compute() {
        let mut t = TenantConfig::standard(f64::INFINITY);
        t.deadline_ns = 10 * MS;
        let cfg = ServeConfig { linger_ns: 0, ..ServeConfig::default() };
        let mut core = core_with(cfg, &[t]);
        core.submit(0, 0, 0);
        core.submit(0, 1, 0);
        // both deadlines long gone: no batch forms, both shed
        assert!(core.form_batch(100 * MS).is_none());
        let r = core.report();
        r.assert_conservation();
        assert_eq!(r.tenants[&0].shed_deadline, 2);
        assert_eq!(r.batches, 0, "dead work never reached the backbone");
    }

    #[test]
    fn linger_holds_small_batches_then_releases() {
        let cfg = ServeConfig { linger_ns: 5 * MS, ..ServeConfig::default() };
        let mut core = core_with(cfg, &[TenantConfig::standard(f64::INFINITY)]);
        core.submit(0, 0, 0);
        assert!(core.form_batch(MS).is_none(), "inside the linger window");
        assert_eq!(core.next_event_ns(MS), Some(5 * MS), "wake at linger expiry");
        let b = core.form_batch(6 * MS).expect("linger expired");
        assert_eq!(b.requests.len(), 1);
    }

    #[test]
    fn full_batch_skips_linger() {
        let cfg =
            ServeConfig { linger_ns: 5 * MS, max_batch: 2, ..ServeConfig::default() };
        let mut core = core_with(cfg, &[TenantConfig::standard(f64::INFINITY)]);
        core.submit(0, 0, 0);
        core.submit(0, 1, 0);
        assert!(core.form_batch(0).is_some(), "a full batch goes immediately");
    }

    #[test]
    fn premium_rides_ahead_of_low() {
        let low = TenantConfig::standard(f64::INFINITY).with_priority(Priority::Low);
        let premium = TenantConfig::standard(f64::INFINITY).with_priority(Priority::Premium);
        let cfg = ServeConfig { linger_ns: 0, max_batch: 2, ..ServeConfig::default() };
        let mut core = core_with(cfg, &[low, premium]);
        core.submit(0, 0, 0);
        core.submit(0, 1, 0);
        core.submit(1, 2, 0);
        let b = core.form_batch(0).unwrap();
        assert_eq!(b.requests[0].tenant, 1, "premium first despite arriving last");
        assert_eq!(b.requests.len(), 2);
    }

    #[test]
    fn cache_fast_path_completes_at_submit() {
        let cfg = ServeConfig { linger_ns: 0, ..ServeConfig::default() };
        let mut core = core_with(cfg, &[TenantConfig::standard(f64::INFINITY)]);
        core.submit(0, 7, 0);
        run_batch(&mut core, 0);
        let (_, v) = core.submit(0, 7, 10 * MS);
        assert!(v.admitted());
        let r = core.report();
        r.assert_conservation();
        assert_eq!(r.tenants[&0].from_cache, 1, "second request served from cache");
        assert_eq!(r.batches, 1, "no second backbone batch");
    }

    #[test]
    fn shutdown_sheds_queue_and_refuses_new_work() {
        let mut core = core_with(ServeConfig::default(), &[TenantConfig::standard(f64::INFINITY)]);
        core.submit(0, 0, 0);
        core.submit(0, 1, 0);
        core.drain_shutdown(MS);
        assert_eq!(core.queued_total(), 0);
        match core.submit(0, 2, 2 * MS).1 {
            Verdict::Rejected { reason: RejectReason::ShuttingDown, .. } => {}
            v => panic!("expected ShuttingDown, got {v:?}"),
        }
        let r = core.report();
        r.assert_conservation();
        assert_eq!(r.tenants[&0].shed_shutdown, 2);
    }

    #[test]
    fn undefended_mode_queues_without_limit_and_never_sheds() {
        let mut t = TenantConfig::standard(1.0);
        t.queue_capacity = 2;
        t.deadline_ns = MS;
        let cfg = ServeConfig { linger_ns: 0, ..ServeConfig::undefended() };
        let mut core = core_with(cfg, &[t]);
        for tile in 0..50u64 {
            assert!(core.submit(0, tile, 0).1.admitted(), "no admission control");
        }
        assert_eq!(core.queued_total(), 50, "unbounded queue growth");
        // far past every deadline, the naive server still computes it all
        let mut now = 100 * MS;
        while let Some((_, done)) = run_batch(&mut core, now) {
            now = done;
        }
        let r = core.report();
        r.assert_conservation();
        assert_eq!(r.tenants[&0].shed_deadline, 0);
        assert_eq!(r.completed(), 50);
        assert_eq!(r.goodput(), 0, "every completion was late — the naive failure mode");
    }

    #[test]
    fn sustained_overload_climbs_ladder_and_sheds_low_at_door() {
        let mut low = TenantConfig::standard(f64::INFINITY).with_priority(Priority::Low);
        low.queue_capacity = 8;
        low.deadline_ns = 5 * MS;
        let cfg = ServeConfig { linger_ns: 0, max_batch: 2, ..ServeConfig::default() };
        let mut core = core_with(cfg, &[low]);
        // flood: queues saturate, deadlines miss, ladder climbs
        let mut now;
        let mut degraded_reject = false;
        for step in 0..400u64 {
            now = step * MS;
            for tile in 0..6u64 {
                let (_, v) = core.submit(0, step * 100 + tile, now);
                if matches!(v, Verdict::Rejected { reason: RejectReason::Degraded, .. }) {
                    degraded_reject = true;
                }
            }
            // a slow server: one small batch per ms
            if let Some(batch) = core.form_batch(now) {
                let n = batch.requests.len();
                let cost = 10 * MS; // pathologically slow => guaranteed misses
                let results: Vec<_> = (0..n).map(|_| Arc::new(vec![0.0f32; 8])).collect();
                core.complete_batch(&batch, &results, cost, now + cost);
            }
        }
        let r = core.report();
        r.assert_conservation();
        assert_eq!(r.degrade_peak, DegradeLevel::ShedLow, "ladder reached L3");
        assert!(degraded_reject, "low-priority turned away at the door");
        assert!(!r.degrade_transitions.is_empty());
    }

    #[test]
    fn backbone_swap_invalidates_served_cache() {
        let backbone = Arc::new(SimBackbone::new(8, MS, MS / 10));
        let cfg = ServeConfig { linger_ns: 0, ..ServeConfig::default() };
        let mut core = ServeCore::new(
            cfg,
            &[TenantConfig::standard(f64::INFINITY)],
            Arc::clone(&backbone) as Arc<dyn Backbone>,
            0,
        );
        core.submit(0, 7, 0);
        let batch = core.form_batch(0).unwrap();
        let results = backbone.encode(&batch.entries());
        core.complete_batch(&batch, &results, MS, MS);
        backbone.swap_backbone();
        core.on_backbone_swap();
        // the old embedding must not serve: request re-enters the queue
        let (_, v) = core.submit(0, 7, 2 * MS);
        assert!(v.admitted());
        assert_eq!(core.queued_total(), 1, "stale entry did not fast-path");
        let r = core.report();
        assert_eq!(r.tenants[&0].from_cache, 0);
        assert!(r.cache.invalidations >= 1);
    }
}
