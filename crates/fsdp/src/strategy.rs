//! Sharding strategies and FSDP configuration knobs.

/// The distributed strategies studied in the paper (§III-C, Figures 2–4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardingStrategy {
    /// FSDP `NO_SHARD`: pure data parallelism, per-unit all-reduce.
    NoShard,
    /// PyTorch DDP baseline: data parallelism with **fixed-size** gradient
    /// buckets (default 25 MB), the behaviour §IV-C contrasts with FSDP's
    /// per-module message sizing.
    Ddp {
        /// Bucket size in bytes.
        bucket_bytes: usize,
    },
    /// FSDP `FULL_SHARD`: parameters, gradients and optimizer state sharded
    /// across the whole world; parameters are gathered per unit in the
    /// forward pass and **again** in the backward pass.
    FullShard,
    /// FSDP `SHARD_GRAD_OP`: gradients and optimizer state sharded, but
    /// parameters are gathered once per step and kept through backward.
    ShardGradOp,
    /// FSDP `HYBRID_SHARD` with a sharding group of `shard_size` ranks:
    /// FULL_SHARD semantics inside the group, replication + all-reduce
    /// across groups. `shard_size = 1` is the paper's `HYBRID_1GPU`.
    Hybrid {
        /// Ranks per sharding group.
        shard_size: usize,
    },
}

impl ShardingStrategy {
    /// Paper-style display name.
    pub fn name(&self) -> String {
        match self {
            Self::NoShard => "NO_SHARD".into(),
            Self::Ddp { .. } => "DDP".into(),
            Self::FullShard => "FULL_SHARD".into(),
            Self::ShardGradOp => "SHARD_GRAD_OP".into(),
            Self::Hybrid { shard_size } => format!("HYBRID_{}GPUs", shard_size),
        }
    }

    /// Size of the group across which parameters are sharded, given the
    /// world size (1 ⇒ no parameter sharding).
    pub fn shard_group_size(&self, world: usize) -> usize {
        match self {
            Self::NoShard | Self::Ddp { .. } => 1,
            Self::FullShard | Self::ShardGradOp => world,
            Self::Hybrid { shard_size } => *shard_size,
        }
    }

    /// Whether parameters are re-gathered for the backward pass
    /// (FULL_SHARD semantics) as opposed to kept resident.
    pub fn regathers_in_backward(&self) -> bool {
        matches!(self, Self::FullShard | Self::Hybrid { .. })
    }

    /// DDP with PyTorch's default 25 MB bucket.
    pub fn ddp_default() -> Self {
        Self::Ddp { bucket_bytes: 25 * 1024 * 1024 }
    }

    /// The strategy an elastic reshard continues with at `new_world` ranks.
    ///
    /// Everything except `HYBRID_SHARD(k)` is world-size-agnostic
    /// (`shard_group_size` already follows the world), but a hybrid shard
    /// group must divide the world evenly for the replica groups to form —
    /// so `Hybrid { shard_size: k }` remaps to the **largest divisor of
    /// `new_world` that is ≤ k**: the closest group size that preserves the
    /// intra-group sharding / cross-group replication split without ever
    /// *growing* a group past what the original memory budget allowed.
    pub fn remap_for_world(&self, new_world: usize) -> Self {
        assert!(new_world > 0, "cannot remap to an empty world");
        match self {
            Self::Hybrid { shard_size } => {
                let k = (*shard_size).min(new_world);
                let remapped =
                    (1..=k).rev().find(|s| new_world.is_multiple_of(*s)).expect("1 divides everything");
                Self::Hybrid { shard_size: remapped }
            }
            other => *other,
        }
    }
}

/// Backward-prefetch policy (§IV-B). In the real threaded engine this only
/// changes issue order (numerics are identical); the Frontier simulator
/// prices the overlap differences (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetchPolicy {
    /// Request next unit's parameters only after the current unit's
    /// communication completes.
    None,
    /// Request before the current unit drops its parameters, after its
    /// communication is issued.
    BackwardPost,
    /// Request before the current unit's communication calls — maximum
    /// compute/communication overlap (the paper's best setting).
    #[default]
    BackwardPre,
}

impl PrefetchPolicy {
    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::None => "None",
            Self::BackwardPost => "BACKWARD_POST",
            Self::BackwardPre => "BACKWARD_PRE",
        }
    }
}

/// Comm/compute overlap knobs for the real rank-thread engine.
///
/// When enabled, a rank routes its per-unit collectives through a
/// dedicated [`geofm_collectives::CommThread`] — forward all-gathers are
/// prefetched `prefetch_depth` units ahead, backward re-gathers likewise,
/// and gradient reduce-scatters are double-buffered so the next unit's
/// reduce is in flight while the current unit's replica all-reduce runs on
/// the compute thread. Numerics are bit-identical either way (the comm
/// thread executes the exact same collectives in the same order; see
/// `tests/overlap_equivalence.rs`) — only the exposed-comm fraction of the
/// step changes, which `overlap.*` telemetry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapConfig {
    /// Route collectives through the per-rank comm thread.
    pub enabled: bool,
    /// In-flight async collectives per phase (≥ 1): unit `u + depth`'s
    /// all-gather is issued while unit `u`'s result is being consumed.
    /// Plays the role of §IV-B's `limit_all_gathers` rate limit for the
    /// real engine.
    pub prefetch_depth: usize,
}

impl OverlapConfig {
    /// Overlap on, with a default prefetch depth of 4. Deeper-than-FSDP's
    /// default (2) because the batched ring submission makes extra
    /// in-flight units nearly free, and `bench_overlap` measures depth 4
    /// as the sweet spot: a wider window smooths the rank-to-rank arrival
    /// stagger at each collective's rendezvous, while depth 8 overshoots
    /// (live pooled buffers start thrashing cache).
    pub fn on() -> Self {
        Self { enabled: true, prefetch_depth: 4 }
    }

    /// Fully blocking collectives (the pre-overlap engine).
    pub fn off() -> Self {
        Self { enabled: false, prefetch_depth: 2 }
    }
}

impl Default for OverlapConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// Full FSDP configuration for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsdpConfig {
    /// Sharding strategy.
    pub strategy: ShardingStrategy,
    /// Backward prefetch policy.
    pub prefetch: PrefetchPolicy,
    /// Rate-limit in-flight all-gathers (§IV-B `limit_all_gathers`).
    pub limit_all_gathers: bool,
    /// Comm/compute overlap for the rank-thread engine.
    pub overlap: OverlapConfig,
}

impl FsdpConfig {
    /// The paper's best-performing knob settings for a given strategy,
    /// with blocking collectives (overlap is opt-in via
    /// [`FsdpConfig::overlapped`] so perf baselines stay comparable).
    pub fn tuned(strategy: ShardingStrategy) -> Self {
        Self {
            strategy,
            prefetch: PrefetchPolicy::BackwardPre,
            limit_all_gathers: true,
            overlap: OverlapConfig::off(),
        }
    }

    /// [`FsdpConfig::tuned`] with the comm/compute overlap engine on.
    pub fn overlapped(strategy: ShardingStrategy) -> Self {
        Self { overlap: OverlapConfig::on(), ..Self::tuned(strategy) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_vocabulary() {
        assert_eq!(ShardingStrategy::NoShard.name(), "NO_SHARD");
        assert_eq!(ShardingStrategy::FullShard.name(), "FULL_SHARD");
        assert_eq!(ShardingStrategy::ShardGradOp.name(), "SHARD_GRAD_OP");
        assert_eq!(ShardingStrategy::Hybrid { shard_size: 2 }.name(), "HYBRID_2GPUs");
        assert_eq!(ShardingStrategy::ddp_default().name(), "DDP");
        assert_eq!(PrefetchPolicy::BackwardPre.name(), "BACKWARD_PRE");
    }

    #[test]
    fn shard_group_sizes() {
        let w = 16;
        assert_eq!(ShardingStrategy::NoShard.shard_group_size(w), 1);
        assert_eq!(ShardingStrategy::FullShard.shard_group_size(w), 16);
        assert_eq!(ShardingStrategy::ShardGradOp.shard_group_size(w), 16);
        assert_eq!(ShardingStrategy::Hybrid { shard_size: 4 }.shard_group_size(w), 4);
    }

    #[test]
    fn remap_keeps_world_agnostic_strategies() {
        for s in [
            ShardingStrategy::NoShard,
            ShardingStrategy::ddp_default(),
            ShardingStrategy::FullShard,
            ShardingStrategy::ShardGradOp,
        ] {
            assert_eq!(s.remap_for_world(3), s);
            assert_eq!(s.remap_for_world(7), s);
        }
    }

    #[test]
    fn remap_hybrid_to_largest_divisor_not_above_k() {
        let h = |k| ShardingStrategy::Hybrid { shard_size: k };
        // 4 ranks → 3: group of 2 no longer divides, drop to 1
        assert_eq!(h(2).remap_for_world(3), h(1));
        // 8 → 6 with k=4: largest divisor of 6 that is ≤ 4 is 3
        assert_eq!(h(4).remap_for_world(6), h(3));
        // shrink within divisibility keeps the group
        assert_eq!(h(2).remap_for_world(6), h(2));
        // group never grows past the original k
        assert_eq!(h(2).remap_for_world(8), h(2));
        // k larger than the new world clamps then divides
        assert_eq!(h(8).remap_for_world(6), h(6));
        // the remapped group always divides the world
        for k in 1..=8 {
            for w in 1..=8 {
                let ShardingStrategy::Hybrid { shard_size } = h(k).remap_for_world(w) else {
                    panic!("hybrid must stay hybrid");
                };
                assert_eq!(w % shard_size, 0, "k={k} w={w} → {shard_size}");
                assert!(shard_size <= k.min(w).max(1));
            }
        }
    }

    #[test]
    fn backward_regather_semantics() {
        assert!(ShardingStrategy::FullShard.regathers_in_backward());
        assert!(ShardingStrategy::Hybrid { shard_size: 2 }.regathers_in_backward());
        assert!(!ShardingStrategy::ShardGradOp.regathers_in_backward());
        assert!(!ShardingStrategy::NoShard.regathers_in_backward());
    }

    #[test]
    fn tuned_config_uses_paper_best() {
        let c = FsdpConfig::tuned(ShardingStrategy::FullShard);
        assert_eq!(c.prefetch, PrefetchPolicy::BackwardPre);
        assert!(c.limit_all_gathers);
        assert!(!c.overlap.enabled, "overlap is opt-in");
    }

    #[test]
    fn overlapped_config_enables_the_comm_thread() {
        let c = FsdpConfig::overlapped(ShardingStrategy::FullShard);
        assert!(c.overlap.enabled);
        assert!(c.overlap.prefetch_depth >= 1);
        // everything else matches the tuned baseline
        assert_eq!(c.strategy, ShardingStrategy::FullShard);
        assert_eq!(c.prefetch, PrefetchPolicy::BackwardPre);
    }
}
