//! Composable rank runtime: an ordered middleware stack around the FSDP
//! step loop.
//!
//! Five PRs grew health monitoring, the SDC guard, fault injection,
//! checkpointing and the elastic drain protocol into the per-rank
//! training loop ad hoc; every new policy meant editing the loop body.
//! This module extracts each policy into a [`RankMiddleware`] and leaves
//! the rank loop in `trainer.rs` a thin driver that walks the stack:
//!
//! | hook                | when                                              |
//! |---------------------|---------------------------------------------------|
//! | `before_forward`    | top of the step, before any collective            |
//! | `around_collective` | wraps the step's collective schedule (observe)    |
//! | `after_backward`    | gradients reduced, before the update is accepted  |
//! | `on_step`           | step accepted: loss committed, cadenced work      |
//! | `on_failure`        | the rank is abandoning the attempt                |
//! | `on_finish`         | clean end of the attempt, after materialize       |
//!
//! `before_forward` / `after_backward` return [`Control`]: the first
//! non-`Continue` verdict short-circuits the rest of the chain and steers
//! the driver (skip the step, roll the cursor back). `around_collective`
//! is **observational by construction** — it receives an opaque thunk and
//! must invoke it exactly once; it can time or count the collective but
//! cannot rewrite its result. That restriction is what makes the
//! hook-equivalence suite's claim provable: interleaving observers into
//! the stack cannot change `DistReport`/`FailureReport` bits.
//!
//! ## Stack order is part of the contract
//!
//! Policies compose correctly in exactly one order, enforced at
//! construction by [`RuntimeStack::new`] (a misordered stack is a
//! structured [`StackError`], not a latent corruption):
//!
//! 1. **Health** before **Guard** — a guard rollback re-executes steps;
//!    health statistics for the first execution must already be recorded,
//!    and the skip screen must not hide a straggler observation.
//! 2. **Guard** before **Inject** — the guard's skip screen passes over a
//!    step *before* fault draws are consumed, so a skipped step consumes
//!    no faults (the bit-identical-recovery law: a clean comparator told
//!    to skip the same steps replays the identical fault schedule).
//! 3. **Guard** before **Checkpoint** — never persist state a pending
//!    guard verdict could roll back.
//! 4. **Checkpoint** before **Drain** — a checkpoint taken inside the
//!    drain window could persist state the failure path is discarding.
//!
//! [`Stage::Observe`] middleware (probes, tracers) are exempt: they may
//! appear anywhere, in any number, and the equivalence suite exercises
//! exactly that freedom. DESIGN.md §17 is the prose version of this
//! contract; `tests/runtime_equivalence.rs` is the executable one.

use crate::flat::FlatLayout;
use crate::health::HealthMonitor;
use crate::rank::{FsdpRank, StepError, StepReport};
use crate::reshard::shards_to_global;
use crate::sentinel::Sentinel;
use crate::trainer::{GuardConfig, ResilienceConfig};
use geofm_collectives::{CorruptPayload, RankGroups};
use geofm_nn::{AdamWState, Module};
use geofm_resilience::{
    ElasticCheckpoint, FaultPlan, GuardReport, RankFailure, RankSlot, StepCheckpoint,
};
use geofm_telemetry::Telemetry;
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Where a middleware sits in the canonical stack order. Declaration
/// order **is** the required execution order; see the module docs for why
/// each inversion is unsound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Straggler/health accounting.
    Health,
    /// SDC guard: skip screen, verdict exchange, rollback.
    Guard,
    /// Fault injection (chaos harness only).
    Inject,
    /// Step checkpointing (legacy + elastic two-barrier protocol).
    Checkpoint,
    /// Failure-path comm drain.
    Drain,
    /// Pure observation — exempt from ordering and duplication rules.
    Observe,
}

/// Identity of one middleware: a stable name plus its [`Stage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Stable name, unique within a stack (except [`Stage::Observe`]).
    pub name: &'static str,
    /// Ordering class.
    pub stage: Stage,
}

/// Why a stack was rejected at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackError {
    /// Two policy middleware appear in an unsound order.
    Misordered {
        /// The earlier (out-of-place) middleware.
        first: &'static str,
        /// The later middleware it must not precede.
        second: &'static str,
        /// Which composition law the order breaks.
        reason: &'static str,
    },
    /// The same policy middleware appears twice.
    Duplicate {
        /// The repeated name.
        name: &'static str,
    },
}

impl std::fmt::Display for StackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Misordered { first, second, reason } => {
                write!(f, "middleware `{first}` may not precede `{second}`: {reason}")
            }
            Self::Duplicate { name } => {
                write!(f, "middleware `{name}` appears more than once in the stack")
            }
        }
    }
}

impl std::error::Error for StackError {}

/// The reason an inversion of two stages is unsound (module docs, laws
/// 1–4). Falls back to the generic ordering statement for pairs without
/// a sharper story.
fn ordering_violation(earlier: Stage, later: Stage) -> &'static str {
    match (earlier, later) {
        (Stage::Guard, Stage::Health) => {
            "a guard rollback re-executes steps, so health statistics must be \
             recorded before the guard's skip screen and verdict can discard them"
        }
        (Stage::Inject, Stage::Guard) => {
            "fault draws must not be consumed on steps the guard's skip screen \
             passes over — a skipped step consumes no faults"
        }
        (Stage::Checkpoint, Stage::Guard) => {
            "a checkpoint must never persist state a pending guard verdict could \
             roll back"
        }
        (Stage::Drain, Stage::Checkpoint) => {
            "a checkpoint inside the drain window could persist state the failure \
             path is discarding"
        }
        _ => "stages must run in Health < Guard < Inject < Checkpoint < Drain order",
    }
}

/// What a `before_forward` / `after_backward` hook tells the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Proceed to the next middleware / next phase.
    Continue,
    /// Pass over this step entirely: no collectives, no fault draws, no
    /// update. The issuing middleware has already recorded the canonical
    /// placeholder; the driver advances the cursor.
    SkipStep,
    /// Roll the driver's step cursor back to `to_step`. The issuing
    /// middleware has already restored model/optimizer/loss state; the
    /// driver only moves the cursor and re-enters the loop.
    Rollback {
        /// Step to resume from.
        to_step: usize,
    },
}

/// How the failure path should drain this rank's comm thread, set by the
/// failure site and executed by [`DrainMw::on_failure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrainPolicy {
    /// No drain (crash-like failures: the restart loop rebuilds groups).
    #[default]
    Never,
    /// Drain only under elastic resharding (survivor half of the drain
    /// protocol: poisoned groups terminate queued async ops promptly).
    IfElastic,
    /// Always drain (permanent departures and rejoin teardowns).
    Always,
}

/// Per-step context the driver threads through every hook.
pub struct StepCx<'a> {
    /// This rank's global id.
    pub rank: usize,
    /// World size of the attempt.
    pub world: usize,
    /// Total step horizon of the run.
    pub steps: usize,
    /// First step of this attempt (resume point).
    pub start_step: usize,
    /// The step being executed.
    pub step: usize,
    /// Committed rank-local loss series (guard rollback truncates it,
    /// checkpoints clone it).
    pub local_losses: &'a mut Vec<f32>,
    /// Rank-local work this step (injected delays + compute, no barrier
    /// waits) — what the health monitor compares across ranks.
    pub local_work: Duration,
    /// Degraded-GCD slowdown drawn for this step, consumed by compute.
    pub degraded: Option<f64>,
    /// One-shot loss poison drawn for this step.
    pub poison_loss: bool,
    /// The step's report, once the collective schedule completed.
    pub report: Option<StepReport>,
    /// Checksum verdict, when the reduce flagged a corrupt contribution.
    pub corrupt: Option<CorruptPayload>,
    /// Drain policy for the failure path (set by the failure site).
    pub drain: DrainPolicy,
}

/// One policy (or observer) around the rank step loop. Every hook has a
/// no-op default so a middleware implements only what it owns.
pub trait RankMiddleware<M: Module> {
    /// Stable identity + stage (drives construction-time validation).
    fn descriptor(&self) -> Descriptor;

    /// Top of the step, before any collective or fault draw.
    fn before_forward(
        &mut self,
        _fr: &mut FsdpRank<M>,
        _cx: &mut StepCx<'_>,
    ) -> Result<Control, RankFailure> {
        Ok(Control::Continue)
    }

    /// Gradients reduced; decide whether the step's update stands.
    fn after_backward(
        &mut self,
        _fr: &mut FsdpRank<M>,
        _cx: &mut StepCx<'_>,
    ) -> Result<Control, RankFailure> {
        Ok(Control::Continue)
    }

    /// Wrap the step's collective schedule. Observational: implementors
    /// MUST invoke `run` exactly once (the driver panics the rank if the
    /// chain swallows the body) and cannot alter its result.
    fn around_collective(&mut self, _label: &'static str, run: &mut dyn FnMut()) {
        run()
    }

    /// The step was accepted: its loss is committed; run cadenced work.
    fn on_step(
        &mut self,
        _fr: &mut FsdpRank<M>,
        _cx: &mut StepCx<'_>,
    ) -> Result<(), RankFailure> {
        Ok(())
    }

    /// The rank is abandoning the attempt with `failure`. Groups are
    /// already poisoned by the failure site; this is where drain-style
    /// teardown runs.
    fn on_failure(&mut self, _fr: &mut FsdpRank<M>, _cx: &StepCx<'_>, _failure: &RankFailure) {}

    /// Clean end of the attempt (after materialize): final deposits.
    fn on_finish(
        &mut self,
        _fr: &mut FsdpRank<M>,
        _cx: &mut StepCx<'_>,
    ) -> Result<(), RankFailure> {
        Ok(())
    }
}

/// An ordered, validated stack of middleware. Construction rejects
/// misordered or duplicated policy middleware with a [`StackError`].
pub struct RuntimeStack<'a, M: Module> {
    mws: Vec<Box<dyn RankMiddleware<M> + 'a>>,
}

impl<'a, M: Module> RuntimeStack<'a, M> {
    /// Validate and seal the stack. Policy stages must appear in
    /// non-decreasing canonical order with no duplicates;
    /// [`Stage::Observe`] entries are exempt from both rules.
    pub fn new(mws: Vec<Box<dyn RankMiddleware<M> + 'a>>) -> Result<Self, StackError> {
        let mut seen: Vec<&'static str> = Vec::new();
        let mut prev: Option<Descriptor> = None;
        for mw in &mws {
            let d = mw.descriptor();
            if d.stage == Stage::Observe {
                continue;
            }
            if seen.contains(&d.name) {
                return Err(StackError::Duplicate { name: d.name });
            }
            seen.push(d.name);
            if let Some(p) = prev {
                if d.stage < p.stage {
                    return Err(StackError::Misordered {
                        first: p.name,
                        second: d.name,
                        reason: ordering_violation(p.stage, d.stage),
                    });
                }
            }
            prev = Some(d);
        }
        Ok(Self { mws })
    }

    /// Run `before_forward` down the stack; first non-`Continue` wins.
    pub fn before_forward(
        &mut self,
        fr: &mut FsdpRank<M>,
        cx: &mut StepCx<'_>,
    ) -> Result<Control, RankFailure> {
        for mw in &mut self.mws {
            match mw.before_forward(fr, cx)? {
                Control::Continue => {}
                c => return Ok(c),
            }
        }
        Ok(Control::Continue)
    }

    /// Run `after_backward` down the stack; first non-`Continue` wins.
    pub fn after_backward(
        &mut self,
        fr: &mut FsdpRank<M>,
        cx: &mut StepCx<'_>,
    ) -> Result<Control, RankFailure> {
        for mw in &mut self.mws {
            match mw.after_backward(fr, cx)? {
                Control::Continue => {}
                c => return Ok(c),
            }
        }
        Ok(Control::Continue)
    }

    /// Run `on_step` down the stack.
    pub fn on_step(
        &mut self,
        fr: &mut FsdpRank<M>,
        cx: &mut StepCx<'_>,
    ) -> Result<(), RankFailure> {
        for mw in &mut self.mws {
            mw.on_step(fr, cx)?;
        }
        Ok(())
    }

    /// Notify every middleware the rank is abandoning the attempt.
    pub fn on_failure(&mut self, fr: &mut FsdpRank<M>, cx: &StepCx<'_>, failure: &RankFailure) {
        for mw in &mut self.mws {
            mw.on_failure(fr, cx, failure);
        }
    }

    /// Run `on_finish` down the stack.
    pub fn on_finish(
        &mut self,
        fr: &mut FsdpRank<M>,
        cx: &mut StepCx<'_>,
    ) -> Result<(), RankFailure> {
        for mw in &mut self.mws {
            mw.on_finish(fr, cx)?;
        }
        Ok(())
    }

    /// Nest `body` inside every middleware's `around_collective`, front
    /// of the stack outermost, and return its value.
    pub fn around<R>(&mut self, label: &'static str, body: impl FnOnce() -> R) -> R {
        fn rec<M: Module>(
            mws: &mut [Box<dyn RankMiddleware<M> + '_>],
            label: &'static str,
            run: &mut dyn FnMut(),
        ) {
            match mws.split_first_mut() {
                None => run(),
                Some((head, rest)) => {
                    head.around_collective(label, &mut || rec(rest, label, run))
                }
            }
        }
        let mut body = Some(body);
        let mut out = None;
        rec(&mut self.mws, label, &mut || {
            let f = body.take().expect("around_collective must invoke its body exactly once");
            out = Some(f());
        });
        out.expect("an around_collective hook swallowed the collective body")
    }
}

fn count(tel: Option<&Telemetry>, name: &str) {
    if let Some(t) = tel {
        t.metrics.counter(name).inc(1);
    }
}

fn fail(rank: usize, step: usize, cause: String) -> RankFailure {
    RankFailure { rank, step, cause }
}

// ---------------------------------------------------------------------------
// Health
// ---------------------------------------------------------------------------

/// Feeds the cross-rank [`HealthMonitor`] with this rank's per-step local
/// work (injected delays + compute, no barrier waits).
pub struct HealthMw<'a> {
    health: &'a HealthMonitor,
}

impl<'a> HealthMw<'a> {
    /// Attach to the run's shared monitor.
    pub fn new(health: &'a HealthMonitor) -> Self {
        Self { health }
    }
}

impl<M: Module> RankMiddleware<M> for HealthMw<'_> {
    fn descriptor(&self) -> Descriptor {
        Descriptor { name: "health", stage: Stage::Health }
    }

    fn on_step(
        &mut self,
        _fr: &mut FsdpRank<M>,
        cx: &mut StepCx<'_>,
    ) -> Result<(), RankFailure> {
        self.health.record(cx.rank, cx.local_work);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Guard
// ---------------------------------------------------------------------------

/// The SDC/loss-spike guard: deterministic skip screen, world-wide
/// verdict exchange, [`Sentinel`] screening, rollback-and-skip with a
/// bounded budget, and the cadenced in-memory rollback snapshot.
///
/// All guard state is deterministic and identical across ranks: the
/// sentinel sees only globally-agreed statistics and the skip set only
/// changes on globally-agreed trips, so every rank reaches the identical
/// verdict at the identical step — no extra agreement round needed.
pub struct GuardMw<'a> {
    gc: &'a GuardConfig,
    slot: &'a Mutex<Option<GuardReport>>,
    tel: Option<Arc<Telemetry>>,
    sentinel: Sentinel,
    skip: BTreeSet<usize>,
    gr: GuardReport,
    snap_params: Vec<f32>,
    snap_adam: AdamWState,
    snap_step: usize,
    snap_losses_len: usize,
}

impl<'a> GuardMw<'a> {
    /// Build the guard for one rank. Must be constructed **after** the
    /// resume restore so the initial rollback snapshot captures the
    /// restored state.
    pub fn new<M: Module>(
        gc: &'a GuardConfig,
        fr: &FsdpRank<M>,
        start_step: usize,
        losses_len: usize,
        slot: &'a Mutex<Option<GuardReport>>,
        tel: Option<Arc<Telemetry>>,
    ) -> Self {
        let (snap_params, snap_adam) = fr.export_state();
        Self {
            gc,
            slot,
            tel,
            sentinel: Sentinel::new(gc.sentinel),
            skip: gc.skip_steps.clone(),
            gr: GuardReport::default(),
            snap_params,
            snap_adam,
            snap_step: start_step,
            snap_losses_len: losses_len,
        }
    }
}

impl<M: Module> RankMiddleware<M> for GuardMw<'_> {
    fn descriptor(&self) -> Descriptor {
        Descriptor { name: "guard", stage: Stage::Guard }
    }

    fn before_forward(
        &mut self,
        _fr: &mut FsdpRank<M>,
        cx: &mut StepCx<'_>,
    ) -> Result<Control, RankFailure> {
        if self.skip.contains(&cx.step) {
            // deterministic skip: canonical NaN loss, no collectives, no
            // faults, no update — every rank passes over in lockstep
            cx.local_losses.push(f32::NAN);
            return Ok(Control::SkipStep);
        }
        Ok(Control::Continue)
    }

    fn after_backward(
        &mut self,
        fr: &mut FsdpRank<M>,
        cx: &mut StepCx<'_>,
    ) -> Result<Control, RankFailure> {
        // guard exchange: spread this rank's (loss, corrupt?) world-wide
        let mut exchange_corrupt: Option<CorruptPayload> = None;
        let mut ex = [
            cx.report.as_ref().map_or(0.0, |r| r.loss),
            if cx.corrupt.is_some() { 1.0 } else { 0.0 },
        ];
        match fr.try_world_all_reduce(&mut ex) {
            Ok(()) => {}
            Err(StepError::Corrupt(c)) => exchange_corrupt = Some(c),
            Err(e) => {
                count(self.tel.as_deref(), "fault.rank_lost");
                fr.poison_groups();
                return Err(fail(cx.rank, cx.step, e.to_string()));
            }
        }
        let trip_cause: Option<String> = if ex[1] > 0.0 || exchange_corrupt.is_some() {
            self.gr.checksum_trips += 1;
            Some(match cx.corrupt.or(exchange_corrupt) {
                Some(c) => {
                    format!("corrupt reduce payload (rank {}, chunk {})", c.rank, c.chunk)
                }
                None => "corrupt reduce payload detected by a peer group".into(),
            })
        } else {
            let mean_loss = ex[0] / cx.world as f32;
            let r = cx.report.as_ref().expect("no corruption implies a completed step");
            self.sentinel.screen(cx.step, mean_loss, r.grad_norm).map(|t| {
                self.gr.sentinel_trips += 1;
                t.to_string()
            })
        };

        let Some(cause) = trip_cause else { return Ok(Control::Continue) };
        // every rank reached this identical verdict at this identical
        // step — roll back and skip in lockstep
        self.gr.trips += 1;
        count(self.tel.as_deref(), "guard.trip");
        if self.gr.rollbacks >= self.gc.max_rollbacks {
            *lock(self.slot) = Some(self.gr.clone());
            fr.poison_groups();
            return Err(fail(
                cx.rank,
                cx.step,
                format!("guard rollback budget exhausted: {cause}"),
            ));
        }
        self.gr.rollbacks += 1;
        self.gr.skipped_steps.push(cx.step);
        self.gr.wasted_steps += cx.step - self.snap_step;
        count(self.tel.as_deref(), "guard.rollbacks");
        if let Some(t) = self.tel.as_deref() {
            t.metrics.histogram("guard.rollback.steps").record((cx.step - self.snap_step) as u64);
        }
        fr.restore_state(&self.snap_params, self.snap_adam.clone());
        cx.local_losses.truncate(self.snap_losses_len);
        self.sentinel.truncate(self.snap_step);
        self.skip.insert(cx.step);
        Ok(Control::Rollback { to_step: self.snap_step })
    }

    fn on_step(
        &mut self,
        fr: &mut FsdpRank<M>,
        cx: &mut StepCx<'_>,
    ) -> Result<(), RankFailure> {
        let done = cx.step + 1;
        if self.gc.snapshot_every > 0 && done.is_multiple_of(self.gc.snapshot_every) {
            let (p, a) = fr.export_state();
            self.snap_params = p;
            self.snap_adam = a;
            self.snap_step = done;
            self.snap_losses_len = cx.local_losses.len();
        }
        Ok(())
    }

    fn on_finish(
        &mut self,
        _fr: &mut FsdpRank<M>,
        cx: &mut StepCx<'_>,
    ) -> Result<(), RankFailure> {
        if cx.rank == 0 {
            *lock(self.slot) = Some(self.gr.clone());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Consumes the [`FaultPlan`]'s per-(rank, step) draws: stragglers,
/// crashes, hangs, permanent departures, spare rejoins, degraded
/// ranks/links, bit flips and loss poisons — the chaos harness's whole
/// vocabulary, in the exact order the draws must be consumed.
pub struct InjectMw<'a> {
    plan: &'a FaultPlan,
    /// A clone of this rank's groups, used to watch for peer poison
    /// during an injected hang and to set the link-slowdown factor.
    probe: RankGroups,
    collective_timeout: Option<Duration>,
    elastic_on: bool,
    can_grow: bool,
    tel: Option<Arc<Telemetry>>,
}

impl<'a> InjectMw<'a> {
    /// Build the injector for one rank.
    pub fn new(
        plan: &'a FaultPlan,
        probe: RankGroups,
        collective_timeout: Option<Duration>,
        elastic_on: bool,
        can_grow: bool,
        tel: Option<Arc<Telemetry>>,
    ) -> Self {
        Self { plan, probe, collective_timeout, elastic_on, can_grow, tel }
    }
}

impl<M: Module> RankMiddleware<M> for InjectMw<'_> {
    fn descriptor(&self) -> Descriptor {
        Descriptor { name: "inject", stage: Stage::Inject }
    }

    fn before_forward(
        &mut self,
        fr: &mut FsdpRank<M>,
        cx: &mut StepCx<'_>,
    ) -> Result<Control, RankFailure> {
        let tel = self.tel.as_deref();
        let (rank, step) = (cx.rank, cx.step);
        if let Some(delay) = self.plan.slow_delay(rank, step) {
            count(tel, "fault.straggler");
            std::thread::sleep(delay);
            cx.local_work += delay;
        }
        if self.plan.take_crash(rank, step) {
            count(tel, "fault.injected_crash");
            fr.poison_groups();
            return Err(fail(rank, step, "injected rank crash".into()));
        }
        if self.plan.take_hang(rank, step) {
            // A hung rank never enters the step's collectives. Peers
            // detect the silence via the (adaptive) timeout, get
            // Err(RankLost) and poison their groups; once that happens —
            // or after a hard cap, if nobody is waiting with a timeout —
            // this rank folds into the normal restart path. The hang is
            // one-shot, so the restarted world runs through.
            count(tel, "fault.injected_hang");
            let cap =
                self.collective_timeout.map(|t| t * 4).unwrap_or(Duration::from_secs(30));
            let hung_at = Instant::now();
            while !self.probe.any_poisoned() && hung_at.elapsed() < cap {
                std::thread::sleep(Duration::from_millis(1));
            }
            fr.poison_groups();
            return Err(fail(rank, step, "rank hung in collective".into()));
        }
        if self.plan.take_leave(rank, step) {
            // permanent departure: poison first so every in-flight
            // collective terminates fast, then the drain middleware
            // empties this rank's comm thread before the thread exits
            count(tel, "fault.rank_leave");
            fr.poison_groups();
            cx.drain = DrainPolicy::Always;
            return Err(fail(rank, step, crate::trainer::CAUSE_LEAVE.into()));
        }
        if self.elastic_on && self.can_grow && self.plan.take_rejoin(step) {
            // a spare arrived: the observing rank tears the attempt down
            // so the restart loop can re-grow the world
            count(tel, "fault.spare_rejoin");
            fr.poison_groups();
            cx.drain = DrainPolicy::Always;
            return Err(fail(rank, step, crate::trainer::CAUSE_REJOIN.into()));
        }
        cx.degraded = self.plan.degraded_slowdown(rank, step);
        if cx.degraded.is_some() {
            count(tel, "fault.degraded_rank");
        }
        let link = self.plan.link_slowdown(rank, step);
        if link.is_some() {
            count(tel, "fault.degraded_link");
        }
        self.probe.set_link_slowdown(link.unwrap_or(1.0));
        // SDC injection: a one-shot bit flip lands in this rank's next
        // reduce contribution; a one-shot loss poison turns the reported
        // local loss into NaN (well-formed bits, wrong number — only the
        // sentinel can catch it)
        if let Some(bit) = self.plan.take_bitflip(rank, step) {
            count(tel, "fault.injected_bitflip");
            fr.arm_bitflip(bit);
        }
        cx.poison_loss = self.plan.take_poison(rank, step);
        if cx.poison_loss {
            count(tel, "fault.injected_poison");
        }
        Ok(Control::Continue)
    }
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

/// The two-barrier checkpoint protocol: every rank deposits its slot,
/// barrier, rank 0 assembles and persists (legacy [`StepCheckpoint`]
/// and/or world-size-independent [`ElasticCheckpoint`]), barrier. Also
/// carries the injected checkpoint-writer crash (torn half-write).
pub struct CheckpointMw<'a> {
    resilience: &'a ResilienceConfig,
    elastic_on: bool,
    elastic_disk: Option<&'a Path>,
    elastic_snapshot: &'a Mutex<Option<ElasticCheckpoint>>,
    slots: &'a [Mutex<Option<RankSlot>>],
    loss_prefix: &'a [f32],
    units: Vec<usize>,
    shard_size: usize,
    tel: Option<Arc<Telemetry>>,
}

impl<'a> CheckpointMw<'a> {
    /// Build the checkpoint middleware for one rank.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        resilience: &'a ResilienceConfig,
        elastic_on: bool,
        elastic_disk: Option<&'a Path>,
        elastic_snapshot: &'a Mutex<Option<ElasticCheckpoint>>,
        slots: &'a [Mutex<Option<RankSlot>>],
        loss_prefix: &'a [f32],
        units: Vec<usize>,
        shard_size: usize,
        tel: Option<Arc<Telemetry>>,
    ) -> Self {
        Self {
            resilience,
            elastic_on,
            elastic_disk,
            elastic_snapshot,
            slots,
            loss_prefix,
            units,
            shard_size,
            tel,
        }
    }
}

impl<M: Module> RankMiddleware<M> for CheckpointMw<'_> {
    fn descriptor(&self) -> Descriptor {
        Descriptor { name: "checkpoint", stage: Stage::Checkpoint }
    }

    fn on_step(&mut self, fr: &mut FsdpRank<M>, cx: &mut StepCx<'_>) -> Result<(), RankFailure> {
        let done = cx.step + 1;
        if !(self.resilience.checkpoint_every > 0
            && done.is_multiple_of(self.resilience.checkpoint_every)
            && (self.resilience.checkpoint_path.is_some() || self.elastic_on))
        {
            return Ok(());
        }
        let (rank, step, world) = (cx.rank, cx.step, cx.world);
        let (params, adam) = fr.export_state();
        *lock(&self.slots[rank]) = Some(RankSlot {
            params,
            adam_m: adam.m,
            adam_v: adam.v,
            adam_t: adam.t,
            losses: cx.local_losses.clone(),
        });
        if let Err(lost) = fr.try_world_barrier() {
            fr.poison_groups();
            return Err(fail(rank, step, lost.to_string()));
        }
        if rank == 0 {
            let ranks: Vec<RankSlot> = self
                .slots
                .iter()
                .map(|m| lock(m).take().expect("every rank deposits a slot pre-barrier"))
                .collect();
            if self.resilience.fault_plan.take_checkpoint_crash(step) {
                // writer dies before any durable or in-memory image
                // commits; with a legacy path, half the buffer lands in
                // the .tmp sibling (torn write) — the previous durable
                // checkpoint survives
                count(self.tel.as_deref(), "fault.injected_ckpt_crash");
                if let Some(path) = self.resilience.checkpoint_path.as_ref() {
                    let ck = StepCheckpoint { step: done as u64, ranks };
                    let bytes = ck.to_bytes();
                    if let Some(parent) = path.parent() {
                        let _ = std::fs::create_dir_all(parent);
                    }
                    let _ =
                        std::fs::write(path.with_extension("tmp"), &bytes[..bytes.len() / 2]);
                }
                fr.poison_groups();
                return Err(fail(rank, step, "injected checkpoint-writer crash".into()));
            }
            if self.elastic_on {
                // assemble the world-size-independent GEOFMCK3 image:
                // state is replicated across shard groups, so the first
                // group's shards carry everything
                let layout = FlatLayout::new(&self.units, self.shard_size);
                let take = |f: fn(&RankSlot) -> &Vec<f32>| -> Vec<Vec<f32>> {
                    ranks[..self.shard_size].iter().map(|s| f(s).clone()).collect()
                };
                let mut mean_losses = self.loss_prefix.to_vec();
                for i in 0..ranks[0].losses.len() {
                    mean_losses
                        .push(ranks.iter().map(|s| s.losses[i]).sum::<f32>() / world as f32);
                }
                let eck = ElasticCheckpoint {
                    step: done as u64,
                    world_written: world as u64,
                    shard_n_written: self.shard_size as u64,
                    adam_t: ranks[0].adam_t,
                    unit_sizes: self.units.clone(),
                    params: shards_to_global(&layout, &take(|s| &s.params)),
                    adam_m: shards_to_global(&layout, &take(|s| &s.adam_m)),
                    adam_v: shards_to_global(&layout, &take(|s| &s.adam_v)),
                    mean_losses,
                };
                if let Some(path) = self.elastic_disk {
                    let span = self
                        .tel
                        .as_deref()
                        .map(|t| t.phase("reshard.ckpt.write", rank as u64));
                    let saved = eck.save(path);
                    drop(span);
                    if let Err(e) = saved {
                        fr.poison_groups();
                        return Err(fail(
                            rank,
                            step,
                            format!("elastic checkpoint write failed: {e}"),
                        ));
                    }
                }
                *lock(self.elastic_snapshot) = Some(eck);
            }
            if let Some(path) = self.resilience.checkpoint_path.as_ref() {
                let ck = StepCheckpoint { step: done as u64, ranks };
                let span = self.tel.as_deref().map(|t| t.phase("ckpt.write", rank as u64));
                let saved = ck.save(path);
                drop(span);
                if let Err(e) = saved {
                    fr.poison_groups();
                    return Err(fail(rank, step, format!("checkpoint write failed: {e}")));
                }
            }
            count(self.tel.as_deref(), "fault.checkpoints");
        }
        if let Err(lost) = fr.try_world_barrier() {
            fr.poison_groups();
            return Err(fail(rank, step, lost.to_string()));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Drain
// ---------------------------------------------------------------------------

/// Executes the failure-path drain policy: once the failure site has
/// poisoned the groups, drain this rank's comm thread so no queued async
/// op can touch state after the thread exits (the survivor half of the
/// elastic drain protocol).
pub struct DrainMw {
    elastic_on: bool,
}

impl DrainMw {
    /// Build the drain middleware.
    pub fn new(elastic_on: bool) -> Self {
        Self { elastic_on }
    }
}

impl<M: Module> RankMiddleware<M> for DrainMw {
    fn descriptor(&self) -> Descriptor {
        Descriptor { name: "drain", stage: Stage::Drain }
    }

    fn on_failure(&mut self, fr: &mut FsdpRank<M>, cx: &StepCx<'_>, _failure: &RankFailure) {
        match cx.drain {
            DrainPolicy::Always => fr.quiesce_comm(),
            DrainPolicy::IfElastic if self.elastic_on => fr.quiesce_comm(),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Probe (Observe stage)
// ---------------------------------------------------------------------------

/// Hook-invocation counters a [`ProbeMw`] accumulates. The equivalence
/// suite installs a probe, re-runs a pinned schedule, and asserts the
/// `DistReport`/`FailureReport` bits did not move while the counters did.
#[derive(Debug, Default)]
pub struct ProbeCounters {
    /// `before_forward` invocations.
    pub before_forward: AtomicUsize,
    /// `after_backward` invocations.
    pub after_backward: AtomicUsize,
    /// `around_collective` invocations.
    pub around_collective: AtomicUsize,
    /// `on_step` invocations.
    pub on_step: AtomicUsize,
    /// `on_failure` invocations.
    pub on_failure: AtomicUsize,
    /// `on_finish` invocations.
    pub on_finish: AtomicUsize,
}

static PROBE: RwLock<Option<Arc<ProbeCounters>>> = RwLock::new(None);

/// Install a process-global probe: every stack built after this call
/// interleaves [`ProbeMw`] observers between all policy middleware.
/// Test-only instrumentation; serialize callers (the equivalence suite
/// guards itself with a mutex).
pub fn install_probe(p: Arc<ProbeCounters>) {
    *PROBE.write().unwrap_or_else(PoisonError::into_inner) = Some(p);
}

/// Remove the process-global probe.
pub fn uninstall_probe() {
    *PROBE.write().unwrap_or_else(PoisonError::into_inner) = None;
}

pub(crate) fn probe() -> Option<Arc<ProbeCounters>> {
    PROBE.read().unwrap_or_else(PoisonError::into_inner).clone()
}

/// A pure observer ([`Stage::Observe`]): counts hook invocations and
/// changes nothing. Exempt from ordering/duplication rules, so any number
/// can be interleaved anywhere — exactly the freedom the equivalence
/// suite exercises.
pub struct ProbeMw {
    counters: Arc<ProbeCounters>,
}

impl ProbeMw {
    /// Observe into `counters`.
    pub fn new(counters: Arc<ProbeCounters>) -> Self {
        Self { counters }
    }
}

impl<M: Module> RankMiddleware<M> for ProbeMw {
    fn descriptor(&self) -> Descriptor {
        Descriptor { name: "probe", stage: Stage::Observe }
    }

    fn before_forward(
        &mut self,
        _fr: &mut FsdpRank<M>,
        _cx: &mut StepCx<'_>,
    ) -> Result<Control, RankFailure> {
        self.counters.before_forward.fetch_add(1, Ordering::Relaxed);
        Ok(Control::Continue)
    }

    fn after_backward(
        &mut self,
        _fr: &mut FsdpRank<M>,
        _cx: &mut StepCx<'_>,
    ) -> Result<Control, RankFailure> {
        self.counters.after_backward.fetch_add(1, Ordering::Relaxed);
        Ok(Control::Continue)
    }

    fn around_collective(&mut self, _label: &'static str, run: &mut dyn FnMut()) {
        self.counters.around_collective.fetch_add(1, Ordering::Relaxed);
        run()
    }

    fn on_step(
        &mut self,
        _fr: &mut FsdpRank<M>,
        _cx: &mut StepCx<'_>,
    ) -> Result<(), RankFailure> {
        self.counters.on_step.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn on_failure(&mut self, _fr: &mut FsdpRank<M>, _cx: &StepCx<'_>, _failure: &RankFailure) {
        self.counters.on_failure.fetch_add(1, Ordering::Relaxed);
    }

    fn on_finish(
        &mut self,
        _fr: &mut FsdpRank<M>,
        _cx: &mut StepCx<'_>,
    ) -> Result<(), RankFailure> {
        self.counters.on_finish.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}
