//! Flat-parameter layout: units, padding, and shard ranges.
//!
//! FSDP wraps a model into *units* (here: one per transformer block plus the
//! embedding and head units — see `VitModel::unit_param_counts`). Each
//! unit's parameters are flattened; for sharding, the flat buffer is padded
//! to a multiple of the shard-group size so all-gathered shards are equal
//! length (exactly as PyTorch FSDP pads its `FlatParameter`s).

use std::ops::Range;

/// The flat layout of a model for a given shard-group size.
#[derive(Debug, Clone)]
pub struct FlatLayout {
    /// Unpadded element ranges of each unit within the model's flat buffer.
    pub unit_ranges: Vec<Range<usize>>,
    /// Padded length of each unit (multiple of `shard_n`).
    pub padded_lens: Vec<usize>,
    /// Shard-group size.
    pub shard_n: usize,
}

impl FlatLayout {
    /// Build a layout from per-unit parameter counts.
    ///
    /// # Panics
    /// Panics if `shard_n == 0` or `unit_sizes` is empty.
    pub fn new(unit_sizes: &[usize], shard_n: usize) -> Self {
        assert!(shard_n > 0, "shard group must be non-empty");
        assert!(!unit_sizes.is_empty(), "model must have at least one unit");
        let mut unit_ranges = Vec::with_capacity(unit_sizes.len());
        let mut padded_lens = Vec::with_capacity(unit_sizes.len());
        let mut off = 0usize;
        for &len in unit_sizes {
            unit_ranges.push(off..off + len);
            padded_lens.push(len.div_ceil(shard_n) * shard_n);
            off += len;
        }
        Self { unit_ranges, padded_lens, shard_n }
    }

    /// Number of units.
    pub fn num_units(&self) -> usize {
        self.unit_ranges.len()
    }

    /// Total unpadded elements.
    pub fn total_len(&self) -> usize {
        self.unit_ranges.last().map(|r| r.end).unwrap_or(0)
    }

    /// Shard length of unit `u` (equal across ranks by construction).
    pub fn shard_len(&self, u: usize) -> usize {
        self.padded_lens[u] / self.shard_n
    }

    /// Total owned elements per rank across all units.
    pub fn total_shard_len(&self) -> usize {
        (0..self.num_units()).map(|u| self.shard_len(u)).sum()
    }

    /// The (padded) range of unit `u` owned by `shard_rank`, expressed
    /// relative to the unit's padded buffer.
    pub fn shard_range(&self, u: usize, shard_rank: usize) -> Range<usize> {
        assert!(shard_rank < self.shard_n, "shard rank out of range");
        let s = self.shard_len(u);
        shard_rank * s..(shard_rank + 1) * s
    }

    /// Extract rank `shard_rank`'s shard of unit `u` from the model's flat
    /// buffer, zero-padding past the unit's real end.
    pub fn extract_shard(&self, flat: &[f32], u: usize, shard_rank: usize) -> Vec<f32> {
        let unit = &self.unit_ranges[u];
        let r = self.shard_range(u, shard_rank);
        let mut out = vec![0.0f32; self.shard_len(u)];
        for (i, o) in out.iter_mut().enumerate() {
            let idx = r.start + i;
            if idx < unit.len() {
                *o = flat[unit.start + idx];
            }
        }
        out
    }

    /// Write a fully gathered padded unit buffer back into the model's flat
    /// buffer (dropping padding).
    pub fn write_gathered(&self, flat: &mut [f32], u: usize, gathered: &[f32]) {
        let unit = &self.unit_ranges[u];
        assert_eq!(gathered.len(), self.padded_lens[u], "gathered length mismatch");
        flat[unit.clone()].copy_from_slice(&gathered[..unit.len()]);
    }

    /// Copy unit `u` of the flat buffer into a padded scratch buffer
    /// (zero padding), e.g. gradients before reduce-scatter.
    pub fn padded_unit(&self, flat: &[f32], u: usize, scratch: &mut Vec<f32>) {
        let unit = &self.unit_ranges[u];
        scratch.clear();
        scratch.resize(self.padded_lens[u], 0.0);
        scratch[..unit.len()].copy_from_slice(&flat[unit.clone()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_basics() {
        let l = FlatLayout::new(&[10, 7, 4], 4);
        assert_eq!(l.num_units(), 3);
        assert_eq!(l.total_len(), 21);
        assert_eq!(l.padded_lens, vec![12, 8, 4]);
        assert_eq!(l.shard_len(0), 3);
        assert_eq!(l.shard_len(1), 2);
        assert_eq!(l.shard_len(2), 1);
        assert_eq!(l.total_shard_len(), 6);
        assert_eq!(l.unit_ranges[1], 10..17);
    }

    #[test]
    fn shard_extract_and_regather_roundtrip() {
        let flat: Vec<f32> = (0..21).map(|i| i as f32).collect();
        let l = FlatLayout::new(&[10, 7, 4], 4);
        for u in 0..3 {
            // simulate all-gather: concatenate the 4 shards
            let mut gathered = Vec::new();
            for r in 0..4 {
                gathered.extend(l.extract_shard(&flat, u, r));
            }
            assert_eq!(gathered.len(), l.padded_lens[u]);
            let mut rebuilt = flat.clone();
            // clobber then restore
            for v in &mut rebuilt[l.unit_ranges[u].clone()] {
                *v = -1.0;
            }
            l.write_gathered(&mut rebuilt, u, &gathered);
            assert_eq!(rebuilt, flat);
        }
    }

    #[test]
    fn padding_is_zero() {
        let flat: Vec<f32> = (0..10).map(|i| i as f32 + 1.0).collect();
        let l = FlatLayout::new(&[10], 4);
        let last = l.extract_shard(&flat, 0, 3);
        // unit 10 elems, padded 12, shard 3 owns [9,12) → [9th elem, 0, 0]
        assert_eq!(last, vec![10.0, 0.0, 0.0]);
    }

    #[test]
    fn padded_unit_copies_and_pads() {
        let flat: Vec<f32> = (0..5).map(|i| i as f32).collect();
        let l = FlatLayout::new(&[5], 2);
        let mut scratch = Vec::new();
        l.padded_unit(&flat, 0, &mut scratch);
        assert_eq!(scratch, vec![0., 1., 2., 3., 4., 0.]);
    }

    #[test]
    fn shard_n_one_is_identity() {
        let l = FlatLayout::new(&[6, 3], 1);
        assert_eq!(l.padded_lens, vec![6, 3]);
        assert_eq!(l.total_shard_len(), 9);
        let flat: Vec<f32> = (0..9).map(|i| i as f32).collect();
        assert_eq!(l.extract_shard(&flat, 1, 0), vec![6., 7., 8.]);
    }

    #[test]
    #[should_panic(expected = "shard rank out of range")]
    fn rejects_bad_shard_rank() {
        let l = FlatLayout::new(&[8], 2);
        let _ = l.shard_range(0, 2);
    }
}
